#!/usr/bin/env python3
"""Docs gate: keep ARCHITECTURE.md and the rest of the handbook honest.

Two checks, run by the CI `docs` job (no dependencies beyond the
standard library):

1. **Markdown links.** Every relative link in the repo's tracked *.md
   files must resolve to an existing file (external http(s)/mailto
   links and pure #anchors are skipped; a #fragment on a relative link
   is checked for file existence only).

2. **Knob-table coverage.** Every field of `struct loop_options`
   (parsed from src/op2/include/op2/loop_options.hpp) and every
   `OP2HPX_*` environment variable that appears anywhere in the
   sources must be mentioned in ARCHITECTURE.md's "Knob table"
   section. Adding a knob without documenting it fails this script,
   and therefore CI.

Exit status: 0 clean, 1 with findings (each printed on its own line).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ARCHITECTURE = REPO / "ARCHITECTURE.md"
LOOP_OPTIONS = REPO / "src" / "op2" / "include" / "op2" / "loop_options.hpp"

# Directories whose *.md / sources are ours to check. ISSUE.md and the
# paper-metadata files are driver-managed inputs, not handbook pages.
DOC_FILES = [
    p
    for p in sorted(REPO.rglob("*.md"))
    if not any(part in {"build", ".git", "build-tsan", "build-asan"}
               for part in p.parts)
    and p.name not in {"ISSUE.md", "PAPER.md", "PAPERS.md", "SNIPPETS.md"}
]
SOURCE_DIRS = [REPO / "src", REPO / "bench", REPO / "examples",
               REPO / "tests"]
SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
ENV_RE = re.compile(r"\bOP2HPX_[A-Z_]+\b")


def check_links() -> list[str]:
    problems = []
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}")
    return problems


def loop_option_fields() -> list[str]:
    """Field names of struct loop_options, parsed from the header."""
    text = LOOP_OPTIONS.read_text(encoding="utf-8")
    m = re.search(r"struct loop_options \{(.*?)\n\};", text, re.DOTALL)
    if m is None:
        raise SystemExit(f"cannot find struct loop_options in {LOOP_OPTIONS}")
    body = m.group(1)
    fields = []
    for line in body.splitlines():
        line = line.strip()
        if line.startswith(("//", "///")) or not line:
            continue
        # A field declaration line: `<type...> name = default;` or
        # `<type...> name;` — take the identifier left of `=`/`;`.
        decl = re.match(r"[A-Za-z_][\w:<>,\s*&{}]*?(\w+)\s*(?:=[^;]*)?;", line)
        if decl:
            fields.append(decl.group(1))
    if not fields:
        raise SystemExit("parsed zero loop_options fields — parser broken?")
    return fields


def env_vars_in_sources() -> set[str]:
    found = set()
    for root in SOURCE_DIRS:
        for src in root.rglob("*"):
            if src.suffix not in SOURCE_SUFFIXES or not src.is_file():
                continue
            found.update(ENV_RE.findall(src.read_text(encoding="utf-8",
                                                      errors="replace")))
    return found


def knob_table_section() -> str:
    text = ARCHITECTURE.read_text(encoding="utf-8")
    m = re.search(r"^## Knob table$(.*?)(?=^## )", text,
                  re.DOTALL | re.MULTILINE)
    if m is None:
        raise SystemExit("ARCHITECTURE.md has no '## Knob table' section")
    return m.group(1)


def check_knob_table() -> list[str]:
    section = knob_table_section()
    problems = []
    for field in loop_option_fields():
        if f"loop_options::{field}" not in section:
            problems.append(
                "ARCHITECTURE.md knob table: missing loop_options field "
                f"`loop_options::{field}` (declared in "
                "src/op2/include/op2/loop_options.hpp)")
    for var in sorted(env_vars_in_sources()):
        if var not in section:
            problems.append(
                f"ARCHITECTURE.md knob table: missing env var `{var}` "
                "(referenced in the sources)")
    return problems


def main() -> int:
    problems = check_links() + check_knob_table()
    for p in problems:
        print(p)
    if problems:
        print(f"\ncheck_docs: {len(problems)} problem(s)")
        return 1
    print(f"check_docs: OK ({len(DOC_FILES)} markdown files, "
          f"{len(loop_option_fields())} loop_options fields, "
          f"{len(env_vars_in_sources())} OP2HPX_* vars)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
