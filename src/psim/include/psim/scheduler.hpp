#pragma once

#include <cstdint>

#include <psim/machine.hpp>
#include <psim/memory.hpp>
#include <psim/workload.hpp>

namespace psim {

/// How the runtime sizes chunks of blocks (Section IV-B of the paper).
enum class chunk_mode {
    omp_static,   ///< blocks/threads per worker (OpenMP static schedule)
    hpx_static,   ///< blocks/threads per chunk (HPX 0.9.x `par` default)
    auto_chunk,   ///< ~target_chunk_us worth of blocks, per loop
    persistent,   ///< equal chunk *time* across loops (the paper's policy)
};

struct sim_options {
    int threads = 1;
    int iterations = 100;
    chunk_mode chunking = chunk_mode::hpx_static;
    double target_chunk_us = 100.0;  ///< auto/persistent chunk-time target
    bool prefetch = false;
    double prefetch_distance = 15.0;  ///< cache lines
    memory_model mem;
    std::uint64_t seed = 42;          ///< jitter/imbalance reproducibility
    /// Dataflow only: let chunk j of a dependent loop start once the
    /// *corresponding fraction* of each producer loop has completed
    /// (Fig. 12: "the execution of each chunk in a loop depends on the
    /// execution of the chunks in the previous loop"). When false, a
    /// dependent loop waits for producers to finish entirely.
    bool chunk_pipelining = true;
};

struct sim_result {
    double total_s = 0.0;          ///< simulated wall-clock
    double busy_frac = 0.0;        ///< mean worker utilisation
    std::uint64_t tasks = 0;       ///< chunks executed
    double bytes_streamed = 0.0;   ///< for bandwidth figures
    [[nodiscard]] double bandwidth_gbs() const noexcept {
        return total_s > 0.0 ? bytes_streamed / total_s * 1e-9 : 0.0;
    }
};

/// Fork-join execution (the stock OP2/OpenMP code path of Fig. 4):
/// every loop is a parallel region; every colour ends in a barrier that
/// waits for the slowest worker; loops never overlap.
sim_result simulate_fork_join(machine_model const& m, workload const& w,
                              sim_options const& o);

/// Dataflow execution (the paper's redesign, Section IV): loop instances
/// form a DAG through their dats; chunks of ready loops are greedily
/// scheduled onto the earliest-free worker (work stealing); no global
/// barriers — only true dependencies serialise.
sim_result simulate_dataflow(machine_model const& m, workload const& w,
                             sim_options const& o);

}  // namespace psim
