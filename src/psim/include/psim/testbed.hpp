#pragma once

#include <vector>

#include <psim/machine.hpp>
#include <psim/memory.hpp>
#include <psim/scheduler.hpp>
#include <psim/workload.hpp>

namespace psim {

/// The calibrated model of the paper's experimental setup (Section VI):
/// Airfoil (~720K nodes, 1.5M edges) on 2x Xeon E5-2630, HT on, 32 HW
/// threads, HPX 0.9.99.
struct testbed {
    machine_model machine;
    workload airfoil;
    memory_model mem;
    int iterations = 100;  ///< simulated outer iterations per data point
};

/// Construct the calibrated testbed.
testbed paper_testbed();

/// The thread counts the paper sweeps (HT engaged beyond 16).
std::vector<int> paper_thread_counts();

}  // namespace psim
