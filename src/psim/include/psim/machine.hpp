#pragma once

#include <cstdint>

namespace psim {

/// Cost/capacity model of a shared-memory node. Defaults are calibrated
/// for the paper's testbed: 2x Intel Xeon E5-2630 (2x8 cores, 2.4 GHz,
/// hyper-threading enabled => 32 hardware threads).
///
/// Two effects dominate the measured curves:
///  * SMT: beyond `cores` threads, sibling hyper-threads share a core;
///    the pair's combined throughput is `smt_throughput` (< 2), so each
///    thread slows to smt_throughput/2.
///  * Scheduling jitter: per-(worker, loop) multiplicative speed noise
///    (OS preemption, turbo, cache/NUMA interference). Barrier-style
///    execution pays the *slowest* worker at every join; fine-grained
///    task scheduling pays roughly the *mean*. This asymmetry is the
///    mechanistic source of the dataflow gains in Figs. 15-17.
struct machine_model {
    int cores = 16;
    int smt = 2;
    double smt_throughput = 1.35;  ///< combined throughput of 2 HT siblings

    // Parallel-region (fork/join) costs, microseconds.
    double fork_base_us = 4.0;          ///< enter #pragma omp parallel
    double fork_per_thread_us = 0.35;   ///< per woken thread
    double barrier_base_us = 1.5;       ///< join/barrier fixed part
    double barrier_log_us = 0.9;        ///< * log2(threads)

    // Task-based (dataflow) costs, microseconds. Calibrated against the
    // epoch-based intrusive engine (bench_dataflow_chain: ~0.69 us per
    // dependent-chain loop end to end, ~2.3x below the PR 1 future-chain
    // machinery these constants used to mirror: one when_all vector +
    // continuation shared-state + shared_future per dat per loop).
    // task_spawn_us also dropped: chunk tasks ride intrusive task_nodes
    // through the Chase-Lev deques, no per-task allocation.
    double task_spawn_us = 0.35;        ///< create+schedule one chunk task
    double issue_overhead_us = 0.5;     ///< per loop instance (epoch admin)

    // Per-(worker, loop-instance) speed jitter (relative std-dev).
    double jitter_sigma = 0.055;         ///< threads <= cores
    double jitter_sigma_smt = 0.13;     ///< threads > cores (HT interference)

    /// Deterministic base speed of every worker when `threads` are active.
    [[nodiscard]] double base_speed(int threads) const noexcept;

    /// Jitter std-dev applicable at this thread count.
    [[nodiscard]] double jitter(int threads) const noexcept;

    /// Fork + join cost of one parallel region with `threads` workers.
    [[nodiscard]] double fork_cost_us(int threads) const noexcept;
    [[nodiscard]] double barrier_cost_us(int threads) const noexcept;

    [[nodiscard]] int max_threads() const noexcept { return cores * smt; }

    /// Prior cost (microseconds) of issuing one partition-granular
    /// dataflow loop of `elems` elements split into `partitions`
    /// sub-nodes on `threads` workers: issue admin + one task spawn per
    /// sub-node + the compute divided over min(partitions, threads)
    /// workers at base_speed. Exported for the online tuner
    /// (op2/tune.hpp), which seeds each candidate's measurement cell
    /// with this value so the first issue is never blind — the absolute
    /// scale is a nominal per-element cost, only the *ordering* across
    /// partition counts matters, and real measurements replace it after
    /// one run.
    [[nodiscard]] double partition_prior_us(std::size_t elems,
                                            std::size_t partitions,
                                            int threads) const noexcept;
};

}  // namespace psim
