#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace psim {

/// Static description of one op_par_loop call site, as the simulator
/// sees it: a bag of blocks (mini-partitions) with a mean per-block cost,
/// grouped into conflict colours.
struct loop_class {
    std::string name;
    std::size_t blocks = 1;
    double block_us = 10.0;       ///< mean compute+memory cost per block
    double block_cv = 0.25;       ///< per-block cost variability
    int colors = 1;               ///< plan colours (serialised sub-phases)
    double mem_frac = 0.35;       ///< fraction of block_us that is memory
                                  ///< stall (prefetchable, Figs. 18-20)
    double bytes_per_block = 0.0; ///< streamed bytes (bandwidth figures)
};

/// One iteration's issue sequence plus dependency edges. Positions index
/// `issue_order`; cross-iteration edges connect position `from` of
/// iteration i to position `to` of iteration i+1.
struct workload {
    std::vector<loop_class> loops;

    struct edge {
        int from;
        int to;
    };
    std::vector<int> issue_order;   ///< loop-class index per issue position
    std::vector<edge> intra_deps;   ///< within one iteration
    std::vector<edge> cross_deps;   ///< previous iteration -> this one

    [[nodiscard]] double serial_work_us() const;  ///< one iteration's work
};

/// The Airfoil workload (paper Section II-B): 720K-node/1.5M-edge mesh,
/// five loops, the inner k-loop executed twice per iteration:
///   save_soln; { adt_calc; res_calc; bres_calc; update; } x2
/// Dependencies mirror the dats: q, qold, adt, res chains (Fig. 10-11).
/// `part_size` is the plan block size (OP2 default 128).
workload airfoil_workload(std::size_t ncell = 720'000 * 1,
                          std::size_t nedge = 1'500'000,
                          std::size_t nbedge = 4'800,
                          std::size_t part_size = 128);

/// A streaming loop over `n` elements of `ncontainers` double arrays
/// (the Fig. 14 micro-workload behind the bandwidth figures 19-20).
workload stream_workload(std::size_t n, int ncontainers,
                         std::size_t part_size = 4096);

}  // namespace psim
