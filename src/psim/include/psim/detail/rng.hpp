#pragma once

#include <cstdint>

namespace psim::detail {

/// splitmix64 — cheap, high-quality 64-bit mixing for deterministic
/// per-(entity, index) pseudo-randomness without carrying RNG state.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Uniform in [0, 1).
inline double uniform01(std::uint64_t h) noexcept {
    return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/// Approximately standard-normal deviate from a hash (Irwin-Hall with 4
/// uniforms; plenty for jitter modelling and fully deterministic).
inline double normalish(std::uint64_t h) noexcept {
    double s = 0.0;
    for (int i = 0; i < 4; ++i) {
        h = mix64(h + static_cast<std::uint64_t>(i) + 1);
        s += uniform01(h);
    }
    return (s - 2.0) / 0.5773502691896258;  // std of Irwin-Hall(4) = 1/sqrt(3)
}

}  // namespace psim::detail
