#pragma once

namespace psim {

/// Analytic model of the software-prefetching iterator (paper Section V).
///
/// The prefetch distance d is expressed in cache lines (the paper's
/// prefetch_distance_factor). Three competing effects shape Fig. 20:
///  * timeliness: lines requested too late (small d) are still in flight
///    when the loop reaches them — modelled as 1 - exp(-d/late_scale);
///  * retention: lines requested too early (large d) are evicted before
///    use — modelled as exp(-(d/evict_scale)^2);
///  * issue overhead: every prefetch instruction costs a little; smaller
///    d means the savings shrink while the per-line cost stays, so tiny
///    distances lose ("very small prefetcher distances ... more data to
///    be prefetched, which becomes more expensive").
struct memory_model {
    double late_scale = 4.0;       ///< cache lines until timely
    double evict_scale = 110.0;    ///< cache lines until eviction dominates
    double issue_overhead_frac = 0.05;  ///< overhead as a fraction of the
                                        ///< stall one line costs, per issue

    /// Fraction of the memory-stall time removed at distance d (can be
    /// slightly negative for pathological distances).
    [[nodiscard]] double stall_reduction(double distance_lines) const noexcept;
};

/// Effective per-block cost: compute part + residual memory stalls.
/// `block_us`/`mem_frac` from loop_class; prefetch off => unchanged.
double effective_block_us(double block_us, double mem_frac, bool prefetch,
                          double distance_lines, memory_model const& mm) noexcept;

}  // namespace psim
