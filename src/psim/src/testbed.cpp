#include <psim/testbed.hpp>

namespace psim {

testbed paper_testbed() {
    testbed tb;
    tb.machine = machine_model{};           // defaults = 2x E5-2630, HT
    tb.airfoil = airfoil_workload();        // 720K cells / 1.5M edges
    tb.mem = memory_model{};                // sweet spot near distance 15
    tb.iterations = 100;
    return tb;
}

std::vector<int> paper_thread_counts() {
    return {1, 2, 4, 8, 16, 24, 32};
}

}  // namespace psim
