#include <psim/memory.hpp>

#include <algorithm>
#include <cmath>

namespace psim {

double memory_model::stall_reduction(double d) const noexcept {
    if (d <= 0.0) {
        return 0.0;
    }
    // Timeliness: a prefetch issued d lines ahead has had time to
    // complete with probability ~ 1 - exp(-d/late_scale).
    double const timely = 1.0 - std::exp(-d / late_scale);
    // Retention: the earlier the prefetch, the likelier eviction before
    // use (capacity/competition), ~ gaussian fall-off.
    double const retained = std::exp(-(d / evict_scale) * (d / evict_scale));
    // Issue overhead: one prefetch instruction per line regardless of d;
    // at small d the useful window shrinks while the cost stays, so the
    // relative overhead grows like 1/d.
    double const overhead = issue_overhead_frac * (1.0 + 4.0 / d);
    return std::clamp(timely * retained - overhead, -0.25, 1.0);
}

double effective_block_us(double block_us, double mem_frac, bool prefetch,
                          double distance_lines,
                          memory_model const& mm) noexcept {
    if (!prefetch) {
        return block_us;
    }
    double const stall = block_us * mem_frac;
    double const compute = block_us - stall;
    double const reduction = mm.stall_reduction(distance_lines);
    return compute + stall * (1.0 - reduction);
}

}  // namespace psim
