#include <psim/scheduler.hpp>

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include <psim/detail/rng.hpp>

namespace psim {

namespace {

using detail::hash_combine;
using detail::normalish;

/// Per-class block cost factors (deterministic imbalance) with prefix
/// sums so any contiguous block range costs O(1) to evaluate.
struct class_profile {
    double block_us_eff = 0.0;        // mean, after the memory model
    std::vector<double> prefix;       // prefix[i] = sum of factors [0, i)

    [[nodiscard]] double range_us(std::size_t b, std::size_t e) const {
        return (prefix[e] - prefix[b]) * block_us_eff;
    }
};

std::vector<class_profile> build_profiles(workload const& w,
                                          sim_options const& o) {
    std::vector<class_profile> out(w.loops.size());
    for (std::size_t li = 0; li < w.loops.size(); ++li) {
        auto const& lc = w.loops[li];
        class_profile p;
        p.block_us_eff = effective_block_us(lc.block_us, lc.mem_frac,
                                            o.prefetch, o.prefetch_distance,
                                            o.mem);
        p.prefix.resize(lc.blocks + 1);
        p.prefix[0] = 0.0;
        for (std::size_t b = 0; b < lc.blocks; ++b) {
            double const z =
                normalish(hash_combine(o.seed, hash_combine(li, b)));
            double const f = std::max(0.25, 1.0 + lc.block_cv * z);
            p.prefix[b + 1] = p.prefix[b] + f;
        }
        out[li] = std::move(p);
    }
    return out;
}

/// Per-(worker, loop-instance) speed multiplier: OS/HT/turbo jitter.
double worker_speed(machine_model const& m, sim_options const& o,
                    std::uint64_t instance, int worker) {
    double const sigma = m.jitter(o.threads);
    double const z = normalish(hash_combine(
        o.seed ^ 0xabcdef1234567890ULL,
        hash_combine(instance, static_cast<std::uint64_t>(worker))));
    return std::max(0.4, 1.0 + sigma * z) * m.base_speed(o.threads);
}

/// Colour c of a loop covers the contiguous block range [cb, ce).
void color_range(loop_class const& lc, int c, std::size_t& cb,
                 std::size_t& ce) {
    auto const nc = static_cast<std::size_t>(lc.colors);
    std::size_t const base = lc.blocks / nc;
    std::size_t const rem = lc.blocks % nc;
    auto const cc = static_cast<std::size_t>(c);
    cb = cc * base + std::min(cc, rem);
    ce = cb + base + (cc < rem ? 1 : 0);
}

double total_bytes(workload const& w, sim_options const& o) {
    double bytes = 0.0;
    for (int pos : w.issue_order) {
        auto const& lc = w.loops[static_cast<std::size_t>(pos)];
        bytes += static_cast<double>(lc.blocks) * lc.bytes_per_block;
    }
    return bytes * static_cast<double>(o.iterations);
}

}  // namespace

sim_result simulate_fork_join(machine_model const& m, workload const& w,
                              sim_options const& o) {
    int const T = std::max(1, std::min(o.threads, m.max_threads()));
    auto const profiles = build_profiles(w, o);

    double t_us = 0.0;
    double busy_us = 0.0;
    std::uint64_t tasks = 0;

    std::size_t const P = w.issue_order.size();
    for (int it = 0; it < o.iterations; ++it) {
        for (std::size_t pos = 0; pos < P; ++pos) {
            auto const li = static_cast<std::size_t>(w.issue_order[pos]);
            auto const& lc = w.loops[li];
            auto const& prof = profiles[li];
            std::uint64_t const inst =
                static_cast<std::uint64_t>(it) * P + pos;

            t_us += m.fork_cost_us(T);
            for (int c = 0; c < lc.colors; ++c) {
                std::size_t cb = 0;
                std::size_t ce = 0;
                color_range(lc, c, cb, ce);
                std::size_t const bc = ce - cb;
                // OpenMP static schedule: contiguous equal shares.
                double slowest = 0.0;
                auto const tt = static_cast<std::size_t>(T);
                std::size_t const base = bc / tt;
                std::size_t const rem = bc % tt;
                std::size_t cursor = cb;
                for (int wk = 0; wk < T; ++wk) {
                    std::size_t const share =
                        base + (static_cast<std::size_t>(wk) < rem ? 1 : 0);
                    if (share == 0) {
                        continue;
                    }
                    double const work =
                        prof.range_us(cursor, cursor + share) /
                        worker_speed(m, o, inst, wk);
                    cursor += share;
                    busy_us += work;
                    slowest = std::max(slowest, work);
                    ++tasks;
                }
                // The barrier at the end of the colour waits for the
                // slowest worker — the fork-join tax.
                t_us += slowest + m.barrier_cost_us(T);
            }
        }
    }

    sim_result r;
    r.total_s = t_us * 1e-6;
    r.busy_frac = t_us > 0.0 ? busy_us / (static_cast<double>(T) * t_us) : 0.0;
    r.tasks = tasks;
    r.bytes_streamed = total_bytes(w, o);
    return r;
}

namespace {

/// Progress record of one executed loop instance: monotone chunk finish
/// times, so a consumer can ask "when was fraction f of this loop done?".
struct instance_progress {
    std::vector<double> chunk_finish;  // running max, one per chunk

    [[nodiscard]] double finish() const {
        return chunk_finish.empty() ? 0.0 : chunk_finish.back();
    }

    /// Time at which fraction `f` (0, 1] of the instance had completed.
    [[nodiscard]] double finish_at_fraction(double f) const {
        if (chunk_finish.empty()) {
            return 0.0;
        }
        auto const n = chunk_finish.size();
        auto idx = static_cast<std::size_t>(
            std::ceil(f * static_cast<double>(n))) ;
        if (idx == 0) {
            idx = 1;
        }
        if (idx > n) {
            idx = n;
        }
        return chunk_finish[idx - 1];
    }
};

}  // namespace

sim_result simulate_dataflow(machine_model const& m, workload const& w,
                             sim_options const& o) {
    int const T = std::max(1, std::min(o.threads, m.max_threads()));
    auto const profiles = build_profiles(w, o);

    std::size_t const P = w.issue_order.size();
    std::size_t const total_instances =
        static_cast<std::size_t>(o.iterations) * P;
    std::vector<instance_progress> progress(total_instances);

    // Earliest-free worker queue: (free_time_us, worker id).
    using slot = std::pair<double, int>;
    std::priority_queue<slot, std::vector<slot>, std::greater<>> workers;
    for (int wk = 0; wk < T; ++wk) {
        workers.emplace(0.0, wk);
    }

    double busy_us = 0.0;
    std::uint64_t tasks = 0;
    double makespan = 0.0;
    double persistent_target_us = 0.0;  // chunk_mode::persistent state

    for (std::size_t inst = 0; inst < total_instances; ++inst) {
        std::size_t const it = inst / P;
        std::size_t const pos = inst % P;
        auto const li = static_cast<std::size_t>(w.issue_order[pos]);
        auto const& lc = w.loops[li];
        auto const& prof = profiles[li];

        // Producer instances this one depends on (through its dats).
        std::vector<std::size_t> deps;
        for (auto const& d : w.intra_deps) {
            if (static_cast<std::size_t>(d.to) == pos) {
                deps.push_back(it * P + static_cast<std::size_t>(d.from));
            }
        }
        if (it > 0) {
            for (auto const& d : w.cross_deps) {
                if (static_cast<std::size_t>(d.to) == pos) {
                    deps.push_back((it - 1) * P +
                                   static_cast<std::size_t>(d.from));
                }
            }
        }

        // Chunk size in blocks for this loop.
        auto chunk_of = [&](std::size_t bc) -> std::size_t {
            auto const tt = static_cast<std::size_t>(T);
            switch (o.chunking) {
                case chunk_mode::omp_static:
                    return std::max<std::size_t>(1, bc / tt + (bc % tt != 0));
                case chunk_mode::hpx_static:
                    // HPX 0.9.x `par` default static partitioning: chunks
                    // equal in *size* (one per worker), so their execution
                    // *times* differ across loops — the paper's Fig. 12a.
                    return std::max<std::size_t>(1, bc / tt + (bc % tt != 0));
                case chunk_mode::auto_chunk:
                    return std::max<std::size_t>(
                        1, static_cast<std::size_t>(std::llround(
                               o.target_chunk_us / prof.block_us_eff)));
                case chunk_mode::persistent: {
                    if (persistent_target_us == 0.0) {
                        // Calibrating loop: chunk picked automatically by
                        // for_each (time-targeted), and its chunk *time*
                        // becomes the persistent target (Fig. 12b).
                        std::size_t const ch = std::max<std::size_t>(
                            1, static_cast<std::size_t>(std::llround(
                                   o.target_chunk_us / prof.block_us_eff)));
                        persistent_target_us =
                            static_cast<double>(ch) * prof.block_us_eff;
                        return ch;
                    }
                    return std::max<std::size_t>(
                        1, static_cast<std::size_t>(std::llround(
                               persistent_target_us / prof.block_us_eff)));
                }
            }
            return 1;
        };

        // Total chunk count (for fraction mapping).
        std::size_t total_chunks = 0;
        for (int c = 0; c < lc.colors; ++c) {
            std::size_t cb = 0;
            std::size_t ce = 0;
            color_range(lc, c, cb, ce);
            std::size_t const chunk = chunk_of(ce - cb);
            total_chunks += (ce - cb + chunk - 1) / chunk;
        }

        auto& prog = progress[inst];
        prog.chunk_finish.reserve(total_chunks);

        double const issue_overhead = m.issue_overhead_us;
        double full_deps_ready = issue_overhead;
        for (std::size_t d : deps) {
            full_deps_ready =
                std::max(full_deps_ready, progress[d].finish() + issue_overhead);
        }

        std::size_t k = 0;  // running chunk index across colours
        double color_gate = 0.0;
        double running_max = 0.0;
        for (int c = 0; c < lc.colors; ++c) {
            std::size_t cb = 0;
            std::size_t ce = 0;
            color_range(lc, c, cb, ce);
            std::size_t const chunk = chunk_of(ce - cb);
            double color_max = color_gate;
            for (std::size_t b = cb; b < ce; b += chunk, ++k) {
                std::size_t const e = std::min(b + chunk, ce);

                // Chunk readiness: corresponding fraction of every
                // producer (chunk pipelining) or full producer finish.
                double ready = issue_overhead;
                if (o.chunk_pipelining) {
                    double const f = static_cast<double>(k + 1) /
                                     static_cast<double>(total_chunks);
                    for (std::size_t d : deps) {
                        ready = std::max(ready, progress[d].finish_at_fraction(
                                                    f) +
                                                    issue_overhead);
                    }
                } else {
                    ready = full_deps_ready;
                }
                ready = std::max(ready, color_gate);

                auto [free_t, wk] = workers.top();
                workers.pop();
                double const start = std::max(ready, free_t);
                double const dur =
                    prof.range_us(b, e) / worker_speed(m, o, inst, wk) +
                    m.task_spawn_us;
                double const end = start + dur;
                workers.emplace(end, wk);
                busy_us += dur;
                ++tasks;
                color_max = std::max(color_max, end);
                running_max = std::max(running_max, end);
                prog.chunk_finish.push_back(running_max);
            }
            color_gate = color_max;  // colours serialise within the loop
        }
        makespan = std::max(makespan, prog.finish());
    }

    sim_result r;
    r.total_s = makespan * 1e-6;
    r.busy_frac =
        makespan > 0.0 ? busy_us / (static_cast<double>(T) * makespan) : 0.0;
    r.tasks = tasks;
    r.bytes_streamed = total_bytes(w, o);
    return r;
}

}  // namespace psim
