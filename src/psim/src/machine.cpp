#include <psim/machine.hpp>

#include <algorithm>
#include <cmath>

namespace psim {

double machine_model::base_speed(int threads) const noexcept {
    if (threads <= cores) {
        return 1.0;
    }
    int const t = std::min(threads, max_threads());
    // Cores hosting 2 HT siblings deliver smt_throughput combined; the
    // remainder host one full-speed thread. Average per-thread speed.
    int const dual = t - cores;
    int const single = cores - dual;
    double const total = static_cast<double>(dual) * smt_throughput +
                         static_cast<double>(single) * 1.0;
    return total / static_cast<double>(t);
}

double machine_model::jitter(int threads) const noexcept {
    if (threads <= cores) {
        return jitter_sigma;
    }
    double const f =
        std::min(1.0, static_cast<double>(threads - cores) /
                          static_cast<double>(cores));
    return jitter_sigma + f * (jitter_sigma_smt - jitter_sigma);
}

double machine_model::fork_cost_us(int threads) const noexcept {
    return fork_base_us + fork_per_thread_us * static_cast<double>(threads);
}

double machine_model::barrier_cost_us(int threads) const noexcept {
    return barrier_base_us +
           barrier_log_us * std::log2(std::max(2.0, static_cast<double>(threads)));
}

double machine_model::partition_prior_us(std::size_t elems,
                                         std::size_t partitions,
                                         int threads) const noexcept {
    // Nominal per-element kernel cost. The tuner overwrites the prior
    // with the first real measurement, so this only has to get the
    // spawn-overhead vs. parallelism trade-off qualitatively right.
    constexpr double elem_us = 0.001;
    std::size_t const parts = std::max<std::size_t>(1, partitions);
    int const active = static_cast<int>(std::min<std::size_t>(
        parts, static_cast<std::size_t>(std::max(1, threads))));
    double const spawn_us =
        issue_overhead_us + task_spawn_us * static_cast<double>(parts);
    double const work_us = static_cast<double>(elems) * elem_us /
                           (static_cast<double>(active) * base_speed(active));
    return spawn_us + work_us;
}

}  // namespace psim
