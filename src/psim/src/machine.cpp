#include <psim/machine.hpp>

#include <algorithm>
#include <cmath>

namespace psim {

double machine_model::base_speed(int threads) const noexcept {
    if (threads <= cores) {
        return 1.0;
    }
    int const t = std::min(threads, max_threads());
    // Cores hosting 2 HT siblings deliver smt_throughput combined; the
    // remainder host one full-speed thread. Average per-thread speed.
    int const dual = t - cores;
    int const single = cores - dual;
    double const total = static_cast<double>(dual) * smt_throughput +
                         static_cast<double>(single) * 1.0;
    return total / static_cast<double>(t);
}

double machine_model::jitter(int threads) const noexcept {
    if (threads <= cores) {
        return jitter_sigma;
    }
    double const f =
        std::min(1.0, static_cast<double>(threads - cores) /
                          static_cast<double>(cores));
    return jitter_sigma + f * (jitter_sigma_smt - jitter_sigma);
}

double machine_model::fork_cost_us(int threads) const noexcept {
    return fork_base_us + fork_per_thread_us * static_cast<double>(threads);
}

double machine_model::barrier_cost_us(int threads) const noexcept {
    return barrier_base_us +
           barrier_log_us * std::log2(std::max(2.0, static_cast<double>(threads)));
}

}  // namespace psim
