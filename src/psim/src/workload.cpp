#include <psim/workload.hpp>

#include <algorithm>

namespace psim {

double workload::serial_work_us() const {
    double us = 0.0;
    for (int pos : issue_order) {
        auto const& lc = loops[static_cast<std::size_t>(pos)];
        us += static_cast<double>(lc.blocks) * lc.block_us;
    }
    return us;
}

workload airfoil_workload(std::size_t ncell, std::size_t nedge,
                          std::size_t nbedge, std::size_t part_size) {
    auto blocks_of = [&](std::size_t n) {
        return std::max<std::size_t>(1, (n + part_size - 1) / part_size);
    };
    double const scale = static_cast<double>(part_size) / 128.0;

    workload w;
    // Per-128-element block costs (us) estimated from per-element kernel
    // costs on the paper-era Xeon: save ~60ns, adt ~260ns, res ~230ns,
    // bres ~260ns, update ~130ns per element. mem_frac reflects how
    // memory-bound each kernel is (save_soln is a pure copy).
    w.loops = {
        {"save_soln", blocks_of(ncell), 7.7 * scale, 0.18, 1, 0.58,
         static_cast<double>(part_size) * 8 * 8.0},
        {"adt_calc", blocks_of(ncell), 33.0 * scale, 0.22, 1, 0.26,
         static_cast<double>(part_size) * 8 * 7.0},
        {"res_calc", blocks_of(nedge), 29.0 * scale, 0.30, 3, 0.35,
         static_cast<double>(part_size) * 8 * 13.0},
        {"bres_calc", blocks_of(nbedge), 33.0 * scale, 0.30, 2, 0.25,
         static_cast<double>(part_size) * 8 * 9.0},
        {"update", blocks_of(ncell), 16.6 * scale, 0.20, 1, 0.42,
         static_cast<double>(part_size) * 8 * 13.0},
    };

    // Issue order of one iteration (Fig. 2, k-loop unrolled twice):
    // 0:save 1:adt 2:res 3:bres 4:update 5:adt 6:res 7:bres 8:update
    w.issue_order = {0, 1, 2, 3, 4, 1, 2, 3, 4};

    // Dependency edges between issue positions, derived from the dats
    // exactly as the epoch records of op2::exec::issue() would
    // (op2/exec/dataflow.hpp — RAW on the epoch's writer, WAR/WAW on
    // writer + readers):
    //   res(adt RAW), bres(adt RAW, res WAW on res-dat),
    //   update(save RAW qold, q WAR vs adt/res/bres reads, res RAW),
    //   second half chains through update's q write.
    w.intra_deps = {
        {1, 2}, {1, 3}, {2, 3},                  // adt -> res -> bres
        {0, 4}, {1, 4}, {2, 4}, {3, 4},          // -> update (k=0)
        {4, 5},                                   // q written -> adt (k=1)
        {4, 6}, {5, 6}, {5, 7}, {6, 7},           // k=1 chain
        {0, 8}, {5, 8}, {6, 8}, {7, 8},           // -> update (k=1)
    };
    // Next iteration: save_soln and adt_calc read q written by update(k=1).
    w.cross_deps = {
        {8, 0},
        {8, 1},
    };
    return w;
}

workload stream_workload(std::size_t n, int ncontainers,
                         std::size_t part_size) {
    workload w;
    double const nc = static_cast<double>(ncontainers);
    // Per-element: ~0.9ns compute + ~1.05ns memory stall per container.
    double const compute_ns = 1.2;
    double const stall_ns = 0.48 * nc;  // residual after the hardware prefetcher
    double const block_us =
        static_cast<double>(part_size) * (compute_ns + stall_ns) * 1e-3;
    loop_class lc;
    lc.name = "stream";
    lc.blocks = std::max<std::size_t>(1, (n + part_size - 1) / part_size);
    lc.block_us = block_us;
    lc.block_cv = 0.10;
    lc.colors = 1;
    lc.mem_frac = stall_ns / (compute_ns + stall_ns);
    lc.bytes_per_block = static_cast<double>(part_size) * 8.0 * nc;
    w.loops = {lc};
    w.issue_order = {0};
    w.intra_deps = {};
    w.cross_deps = {{0, 0}};  // iterations of the stream are dependent
    return w;
}

}  // namespace psim
