#pragma once

#include <cstddef>
#include <vector>

#include <airfoil/mesh.hpp>
#include <op2/op2.hpp>

namespace airfoil {

/// Configuration of one Airfoil run.
struct app_config {
    mesh_params mesh;
    int niter = 100;  ///< outer pseudo-time iterations (paper: 1000)
    op2::backend be = op2::backend::seq;
    op2::loop_options opts;
    /// Record sqrt(rms/ncell) every `rms_stride` iterations (>=1).
    int rms_stride = 1;
    /// Allocate the problem's dats with partition-affine first touch
    /// (op2/memory.hpp): each set partition's pages are initialised on
    /// the worker its loops will be pinned to. Only honoured by the
    /// run(app_config) overload, which declares the dats itself; follows
    /// the process-wide memory::first_touch_enabled() default.
    bool first_touch = op2::memory::first_touch_enabled();
    /// Fault-tolerant execution: checkpoint the state dats (q, qold,
    /// adt, res) every N iterations and, when an iteration segment
    /// fails (an injected fault, a throwing kernel, a quarantined
    /// read), roll back to the last checkpoint and re-issue the
    /// segment, up to opts.retries times. Recovery is exact: the
    /// rms accumulators of a re-issued segment are re-zeroed and the
    /// dat bytes restored wholesale, so a recovered run's output is
    /// bitwise-identical to an undisturbed run of the same
    /// configuration. 0 disables checkpointing (the seed behaviour:
    /// issue everything, fence once).
    int checkpoint_every = 0;
};

/// Outcome of one run.
struct app_result {
    std::vector<double> rms_history;  ///< sampled residual trajectory
    double final_rms = 0.0;
    double elapsed_s = 0.0;           ///< wall-clock of the iteration loop
    std::vector<double> q_final;      ///< final conserved state (ncell*4)
    /// Checkpoint rollbacks taken (checkpoint_every > 0 only): how many
    /// failed segments were rolled back and re-issued successfully.
    int recoveries = 0;
};

/// The OP2 view of the Airfoil mesh: declared sets, maps, and dats.
/// Kept alive for the duration of the simulation.
struct problem {
    op2::op_set nodes, edges, bedges, cells;
    op2::op_map pedge, pecell, pbedge, pbecell, pcell;
    op2::op_dat p_bound, p_x, p_q, p_qold, p_adt, p_res;
    std::size_t ncell = 0;
};

/// Declare all OP2 entities for `m`.
problem make_problem(mesh const& m);

/// Run the five-loop Airfoil iteration (paper Fig. 2) on the configured
/// backend:
///  * seq / fork_join: loops execute synchronously (fork_join has the
///    OpenMP-style global barrier after every loop);
///  * hpx: all 2*niter*5 loops are *issued* up front and chained through
///    dat futures (dataflow interleaving, Section IV); the run fences at
///    the end.
app_result run(app_config const& cfg);

/// Convenience: run on an existing problem (shared by tests/benches).
app_result run(problem& prob, app_config const& cfg);

}  // namespace airfoil
