#pragma once

// The five user kernels of the OP2 Airfoil benchmark, reproduced from
// the reference implementation (save_soln.h, adt_calc.h, res_calc.h,
// bres_calc.h, update.h). Each kernel operates on one element of its
// loop's iteration set and receives one pointer per op_arg.

#include <cmath>

#include <airfoil/constants.hpp>

namespace airfoil::kernels {

/// Direct loop over cells: snapshot the solution (q -> qold).
inline void save_soln(double const* q, double* qold) {
    for (int n = 0; n < 4; ++n) {
        qold[n] = q[n];
    }
}

/// Direct-ish loop over cells (indirect reads of the 4 corner nodes):
/// compute the area/timestep measure per cell.
inline void adt_calc(double const* x1, double const* x2, double const* x3,
                     double const* x4, double const* q, double* adt) {
    double const ri = 1.0 / q[0];
    double const u = ri * q[1];
    double const v = ri * q[2];
    double const c = std::sqrt(gam * gm1 * (ri * q[3] - 0.5 * (u * u + v * v)));

    double dx = x2[0] - x1[0];
    double dy = x2[1] - x1[1];
    double a = std::fabs(u * dy - v * dx) + c * std::sqrt(dx * dx + dy * dy);

    dx = x3[0] - x2[0];
    dy = x3[1] - x2[1];
    a += std::fabs(u * dy - v * dx) + c * std::sqrt(dx * dx + dy * dy);

    dx = x4[0] - x3[0];
    dy = x4[1] - x3[1];
    a += std::fabs(u * dy - v * dx) + c * std::sqrt(dx * dx + dy * dy);

    dx = x1[0] - x4[0];
    dy = x1[1] - x4[1];
    a += std::fabs(u * dy - v * dx) + c * std::sqrt(dx * dx + dy * dy);

    *adt = a / cfl;
}

/// Indirect loop over interior edges: accumulate fluxes into the two
/// adjacent cells (OP_INC; needs colouring).
inline void res_calc(double const* x1, double const* x2, double const* q1,
                     double const* q2, double const* adt1, double const* adt2,
                     double* res1, double* res2) {
    double const dx = x1[0] - x2[0];
    double const dy = x1[1] - x2[1];

    double ri = 1.0 / q1[0];
    double const p1 = gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]));
    double const vol1 = ri * (q1[1] * dy - q1[2] * dx);

    ri = 1.0 / q2[0];
    double const p2 = gm1 * (q2[3] - 0.5 * ri * (q2[1] * q2[1] + q2[2] * q2[2]));
    double const vol2 = ri * (q2[1] * dy - q2[2] * dx);

    double const mu = 0.5 * ((*adt1) + (*adt2)) * eps;

    double f = 0.5 * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0]);
    res1[0] += f;
    res2[0] -= f;
    f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) +
        mu * (q1[1] - q2[1]);
    res1[1] += f;
    res2[1] -= f;
    f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) +
        mu * (q1[2] - q2[2]);
    res1[2] += f;
    res2[2] -= f;
    f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) + mu * (q1[3] - q2[3]);
    res1[3] += f;
    res2[3] -= f;
}

/// Indirect loop over boundary edges: wall (bound == 1) applies the
/// pressure force; far-field (bound == 2) fluxes against qinf.
inline void bres_calc(double const* x1, double const* x2, double const* q1,
                      double const* adt1, double* res1, int const* bound) {
    double const dx = x1[0] - x2[0];
    double const dy = x1[1] - x2[1];

    double ri = 1.0 / q1[0];
    double const p1 = gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]));

    if (*bound == 1) {
        res1[1] += +p1 * dy;
        res1[2] += -p1 * dx;
        return;
    }

    double const vol1 = ri * (q1[1] * dy - q1[2] * dx);

    ri = 1.0 / qinf[0];
    double const p2 =
        gm1 * (qinf[3] - 0.5 * ri * (qinf[1] * qinf[1] + qinf[2] * qinf[2]));
    double const vol2 = ri * (qinf[1] * dy - qinf[2] * dx);

    double const mu = (*adt1) * eps;

    double f = 0.5 * (vol1 * q1[0] + vol2 * qinf[0]) + mu * (q1[0] - qinf[0]);
    res1[0] += f;
    f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * qinf[1] + p2 * dy) +
        mu * (q1[1] - qinf[1]);
    res1[1] += f;
    f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * qinf[2] - p2 * dx) +
        mu * (q1[2] - qinf[2]);
    res1[2] += f;
    f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (qinf[3] + p2)) +
        mu * (q1[3] - qinf[3]);
    res1[3] += f;
}

/// Direct loop over cells: advance the solution one pseudo-time step and
/// accumulate the global RMS residual (op_arg_gbl OP_INC).
inline void update(double const* qold, double* q, double* res,
                   double const* adt, double* rms) {
    double const adti = 1.0 / (*adt);
    for (int n = 0; n < 4; ++n) {
        double const del = adti * res[n];
        q[n] = qold[n] - del;
        res[n] = 0.0;
        *rms += del * del;
    }
}

}  // namespace airfoil::kernels
