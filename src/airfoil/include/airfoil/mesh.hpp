#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace airfoil {

/// An unstructured view of a structured quad grid over a channel with a
/// smooth bump ("airfoil surface") on the lower wall — the same entity/
/// connectivity layout as OP2's new_grid.dat input for the Airfoil
/// benchmark:
///   * nodes with 2D coordinates `x`
///   * cells -> 4 corner nodes (`pcell`, counter-clockwise)
///   * interior edges -> 2 nodes (`pedge`) and 2 cells (`pecell`)
///   * boundary edges -> 2 nodes (`pbedge`), 1 cell (`pbecell`) and a
///     boundary code (`bound`: 1 = wall, 2 = far-field)
///
/// Edge orientation invariant (used by res_calc/bres_calc): for edge
/// nodes (n1, n2) and cells (c1, c2), the normal (y1-y2, x2-x1) points
/// out of c1 into c2; boundary-edge normals point out of the domain.
struct mesh {
    std::size_t nnode = 0;
    std::size_t ncell = 0;
    std::size_t nedge = 0;
    std::size_t nbedge = 0;

    std::vector<double> x;      // nnode * 2
    std::vector<int> pcell;     // ncell * 4
    std::vector<int> pedge;     // nedge * 2
    std::vector<int> pecell;    // nedge * 2
    std::vector<int> pbedge;    // nbedge * 2
    std::vector<int> pbecell;   // nbedge * 1
    std::vector<int> bound;     // nbedge * 1

    std::vector<double> q_init;  // ncell * 4, free-stream state
};

/// Parameters for the generator. The default 120x60 grid gives ~7.3k
/// cells; the paper's mesh (~720K nodes) corresponds to nx=1200, ny=600.
struct mesh_params {
    std::size_t nx = 120;       ///< cells in x
    std::size_t ny = 60;        ///< cells in y
    double length = 4.0;        ///< channel length
    double height = 2.0;        ///< channel height
    double bump_height = 0.05;  ///< lower-wall bump amplitude
};

/// Generate the channel-with-bump mesh. Throws std::invalid_argument for
/// degenerate dimensions (nx or ny < 2).
mesh make_mesh(mesh_params const& p = {});

/// Structural validation used by tests: connectivity ranges, edge/cell
/// orientation invariant, per-node edge balance. Returns an empty string
/// when consistent, otherwise a description of the first violation.
std::string check_mesh(mesh const& m);

}  // namespace airfoil
