#pragma once

// Reader/writer for the OP2 Airfoil grid file format (new_grid.dat):
//
//   nnode ncell nedge nbedge
//   <nnode  lines>  x y                      (node coordinates)
//   <ncell  lines>  n0 n1 n2 n3              (cell -> 4 nodes)
//   <nedge  lines>  n1 n2 c1 c2              (edge -> nodes + cells)
//   <nbedge lines>  n1 n2 c  b               (bedge -> nodes, cell, bound)
//
// The paper's input (~720K nodes) ships in exactly this layout; we use
// the same format so meshes round-trip with stock OP2 tooling.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include <airfoil/mesh.hpp>

namespace airfoil {

/// Raised on malformed input (bad header, truncated body, out-of-range
/// connectivity).
class mesh_io_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Serialise `m` in new_grid.dat layout.
void write_mesh(std::ostream& os, mesh const& m);
void write_mesh_file(std::string const& path, mesh const& m);

/// Parse a new_grid.dat stream. The q_init field is set to the free
/// stream (the file format does not carry flow state). Throws
/// mesh_io_error on malformed input; the result always passes
/// check_mesh() range validation.
mesh read_mesh(std::istream& is);
mesh read_mesh_file(std::string const& path);

}  // namespace airfoil
