#pragma once

// Reader/writer for the OP2 Airfoil grid file format (new_grid.dat):
//
//   nnode ncell nedge nbedge
//   <nnode  lines>  x y                      (node coordinates)
//   <ncell  lines>  n0 n1 n2 n3              (cell -> 4 nodes)
//   <nedge  lines>  n1 n2 c1 c2              (edge -> nodes + cells)
//   <nbedge lines>  n1 n2 c  b               (bedge -> nodes, cell, bound)
//
// The paper's input (~720K nodes) ships in exactly this layout; we use
// the same format so meshes round-trip with stock OP2 tooling.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include <airfoil/mesh.hpp>

namespace airfoil {

/// Raised on malformed input (bad header, truncated body, out-of-range
/// connectivity) and on file open/write failures. Parse errors are
/// *structured*: source() names the file (or "<stream>"), section()
/// the grid-file section being read ("header", "node coordinates",
/// "cell connectivity", "edge list", "boundary-edge list"), and line()
/// the 1-based input line — the what() message carries all three, so a
/// driver that just prints it and exits non-zero still reports exactly
/// where the mesh broke.
class mesh_io_error : public std::runtime_error {
public:
    /// Unstructured failure (open/write): message only.
    using std::runtime_error::runtime_error;

    /// Structured parse failure at source:line in `section`.
    mesh_io_error(std::string source, std::string section,
                  std::size_t line, std::string const& detail)
      : std::runtime_error("mesh_io: " + source + ":" +
                           std::to_string(line) + ": " + section + ": " +
                           detail),
        source_(std::move(source)), section_(std::move(section)),
        line_(line) {}

    /// File (or "<stream>") the error came from; empty when
    /// unstructured.
    [[nodiscard]] std::string const& source() const noexcept {
        return source_;
    }
    /// Grid-file section being parsed; empty when unstructured.
    [[nodiscard]] std::string const& section() const noexcept {
        return section_;
    }
    /// 1-based input line; 0 when unstructured.
    [[nodiscard]] std::size_t line() const noexcept { return line_; }

private:
    std::string source_;
    std::string section_;
    std::size_t line_ = 0;
};

/// Serialise `m` in new_grid.dat layout.
void write_mesh(std::ostream& os, mesh const& m);
void write_mesh_file(std::string const& path, mesh const& m);

/// Parse a new_grid.dat stream. The q_init field is set to the free
/// stream (the file format does not carry flow state). Throws
/// mesh_io_error on malformed input — with source()/section()/line()
/// naming exactly where — and the result always passes check_mesh()
/// range validation. `source` labels the stream in diagnostics
/// (read_mesh_file passes the path; the plain overload uses
/// "<stream>").
mesh read_mesh(std::istream& is, std::string const& source);
mesh read_mesh(std::istream& is);
mesh read_mesh_file(std::string const& path);

}  // namespace airfoil
