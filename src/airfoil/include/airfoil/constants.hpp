#pragma once

// Flow constants of the OP2 Airfoil benchmark (Giles et al.; paper
// Section II-B). Values match the reference airfoil.cpp.

#include <array>
#include <cmath>

namespace airfoil {

inline constexpr double gam = 1.4;    ///< ratio of specific heats
inline constexpr double gm1 = 0.4;    ///< gam - 1
inline constexpr double cfl = 0.9;    ///< CFL number
inline constexpr double eps = 0.05;   ///< numerical smoothing coefficient
inline constexpr double mach = 0.4;   ///< free-stream Mach number

/// Free-stream conserved state [rho, rho*u, rho*v, rho*E], initialised
/// exactly like the reference: p = r = 1, u = sqrt(gam*p/r)*mach, v = 0.
inline std::array<double, 4> make_qinf() noexcept {
    double const p = 1.0;
    double const r = 1.0;
    double const u = std::sqrt(gam * p / r) * mach;
    double const e = p / (r * gm1) + 0.5 * u * u;
    return {r, r * u, 0.0, r * e};
}

/// Global free-stream state used by bres_calc (far-field boundaries).
inline const std::array<double, 4> qinf = make_qinf();

}  // namespace airfoil
