#include <airfoil/app.hpp>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include <airfoil/kernels.hpp>
#include <hpxlite/util/timing.hpp>

namespace airfoil {

using namespace op2;

problem make_problem(mesh const& m) {
    problem p;
    p.ncell = m.ncell;

    p.nodes = op_decl_set(m.nnode, "nodes");
    p.edges = op_decl_set(m.nedge, "edges");
    p.bedges = op_decl_set(m.nbedge, "bedges");
    p.cells = op_decl_set(m.ncell, "cells");

    p.pedge = op_decl_map(p.edges, p.nodes, 2, m.pedge, "pedge");
    p.pecell = op_decl_map(p.edges, p.cells, 2, m.pecell, "pecell");
    p.pbedge = op_decl_map(p.bedges, p.nodes, 2, m.pbedge, "pbedge");
    p.pbecell = op_decl_map(p.bedges, p.cells, 1, m.pbecell, "pbecell");
    p.pcell = op_decl_map(p.cells, p.nodes, 4, m.pcell, "pcell");

    p.p_bound = op_decl_dat(p.bedges, 1, "int", m.bound, "p_bound");
    p.p_x = op_decl_dat(p.nodes, 2, "double", m.x, "p_x");
    p.p_q = op_decl_dat(p.cells, 4, "double", m.q_init, "p_q");
    p.p_qold = op_decl_dat_zero<double>(p.cells, 4, "double", "p_qold");
    p.p_adt = op_decl_dat_zero<double>(p.cells, 1, "double", "p_adt");
    p.p_res = op_decl_dat_zero<double>(p.cells, 4, "double", "p_res");
    return p;
}

namespace {

/// One inner step (the paper's Fig. 2 loop chain, issued on `be`).
/// `rms` must point to stable storage when be == hpx. When `handles`
/// is non-null every issued loop's handle is appended — the
/// checkpoint-recovering driver gets failures at segment granularity
/// through handle.get() instead of one terminal fence.
void issue_step(problem& p, op2::backend be, loop_options const& opts,
                double* rms,
                std::vector<exec::loop_handle>* handles = nullptr) {
    namespace k = airfoil::kernels;

    // All backends dispatch through the exec layer; with hpx_dataflow the
    // whole time-march chain is merely *issued* here — the staged kernels
    // run asynchronously out of the epoch graph and the caller fences
    // once at the end of the run.
    loop_options lo = opts;
    lo.backend = to_exec_backend(be);
    auto loop = [&](char const* name, op_set const& set, auto kernel,
                    auto... args) {
        auto h = exec::run_loop(lo, name, set, kernel, args...);
        if (handles != nullptr) {
            handles->push_back(std::move(h));
        }
    };

    loop("save_soln", p.cells, k::save_soln,
         op_arg_dat(p.p_q, -1, OP_ID, 4, "double", OP_READ),
         op_arg_dat(p.p_qold, -1, OP_ID, 4, "double", OP_WRITE));

    for (int kk = 0; kk < 2; ++kk) {
        loop("adt_calc", p.cells, k::adt_calc,
             op_arg_dat(p.p_x, 0, p.pcell, 2, "double", OP_READ),
             op_arg_dat(p.p_x, 1, p.pcell, 2, "double", OP_READ),
             op_arg_dat(p.p_x, 2, p.pcell, 2, "double", OP_READ),
             op_arg_dat(p.p_x, 3, p.pcell, 2, "double", OP_READ),
             op_arg_dat(p.p_q, -1, OP_ID, 4, "double", OP_READ),
             op_arg_dat(p.p_adt, -1, OP_ID, 1, "double", OP_WRITE));

        loop("res_calc", p.edges, k::res_calc,
             op_arg_dat(p.p_x, 0, p.pedge, 2, "double", OP_READ),
             op_arg_dat(p.p_x, 1, p.pedge, 2, "double", OP_READ),
             op_arg_dat(p.p_q, 0, p.pecell, 4, "double", OP_READ),
             op_arg_dat(p.p_q, 1, p.pecell, 4, "double", OP_READ),
             op_arg_dat(p.p_adt, 0, p.pecell, 1, "double", OP_READ),
             op_arg_dat(p.p_adt, 1, p.pecell, 1, "double", OP_READ),
             op_arg_dat(p.p_res, 0, p.pecell, 4, "double", OP_INC),
             op_arg_dat(p.p_res, 1, p.pecell, 4, "double", OP_INC));

        loop("bres_calc", p.bedges, k::bres_calc,
             op_arg_dat(p.p_x, 0, p.pbedge, 2, "double", OP_READ),
             op_arg_dat(p.p_x, 1, p.pbedge, 2, "double", OP_READ),
             op_arg_dat(p.p_q, 0, p.pbecell, 4, "double", OP_READ),
             op_arg_dat(p.p_adt, 0, p.pbecell, 1, "double", OP_READ),
             op_arg_dat(p.p_res, 0, p.pbecell, 4, "double", OP_INC),
             op_arg_dat(p.p_bound, -1, OP_ID, 1, "int", OP_READ));

        loop("update", p.cells, k::update,
             op_arg_dat(p.p_qold, -1, OP_ID, 4, "double", OP_READ),
             op_arg_dat(p.p_q, -1, OP_ID, 4, "double", OP_WRITE),
             op_arg_dat(p.p_res, -1, OP_ID, 4, "double", OP_RW),
             op_arg_dat(p.p_adt, -1, OP_ID, 1, "double", OP_READ),
             op_arg_gbl(rms, 1, "double", OP_INC));
    }
}

}  // namespace

app_result run(problem& p, app_config const& cfg) {
    if (cfg.niter <= 0) {
        throw std::invalid_argument("airfoil::run: niter must be positive");
    }
    int const stride = cfg.rms_stride < 1 ? 1 : cfg.rms_stride;

    app_result result;
    // Per-iteration rms accumulators; stable storage so the hpx backend
    // can keep the whole pipeline in flight and fence only once.
    std::vector<double> rms(static_cast<std::size_t>(cfg.niter), 0.0);

    hpxlite::util::stopwatch sw;
    if (cfg.checkpoint_every > 0) {
        // Fault-tolerant march: checkpoint the state dats every N
        // iterations and re-issue a failed segment from the last
        // checkpoint, up to opts.retries rollbacks. Recovery is exact —
        // the restored bytes and the re-zeroed rms accumulators make a
        // recovered run bitwise-identical to an undisturbed one.
        std::vector<op_dat> const state = {p.p_q, p.p_qold, p.p_adt,
                                           p.p_res};
        exec::checkpoint ckpt;
        ckpt.capture(state);
        std::size_t tries = cfg.opts.retries;
        std::vector<exec::loop_handle> handles;
        int it = 0;
        while (it < cfg.niter) {
            int const seg_end =
                std::min(cfg.niter, it + cfg.checkpoint_every);
            try {
                handles.clear();
                for (int i = it; i < seg_end; ++i) {
                    // Re-issued iterations must re-accumulate from
                    // zero: OP_INC globals are not covered by the dat
                    // checkpoint.
                    rms[static_cast<std::size_t>(i)] = 0.0;
                    issue_step(p, cfg.be, cfg.opts,
                               &rms[static_cast<std::size_t>(i)],
                               &handles);
                }
                for (auto const& h : handles) {
                    h.get();
                }
                ckpt.capture(state);  // segment good: advance the epoch
                it = seg_end;
            } catch (...) {
                if (tries == 0) {
                    throw;
                }
                --tries;
                ++result.recoveries;
                // Quiesce whatever is still in flight (failed nodes
                // skip their bodies), then restore the last good epoch
                // — contents, dependency records, and quarantine.
                op_fence_all();
                ckpt.rollback();
            }
        }
    } else {
        for (int it = 0; it < cfg.niter; ++it) {
            issue_step(p, cfg.be, cfg.opts,
                       &rms[static_cast<std::size_t>(it)]);
        }
        if (cfg.be == backend::hpx) {
            op_fence_all();
        }
    }
    result.elapsed_s = sw.elapsed_s();

    for (int it = 0; it < cfg.niter; ++it) {
        if ((it + 1) % stride == 0 || it + 1 == cfg.niter) {
            result.rms_history.push_back(
                std::sqrt(rms[static_cast<std::size_t>(it)] /
                          static_cast<double>(2 * p.ncell)));
        }
    }
    result.final_rms = result.rms_history.empty() ? 0.0
                                                  : result.rms_history.back();
    auto qv = p.p_q.view<double>();
    result.q_final.assign(qv.begin(), qv.end());
    return result;
}

app_result run(app_config const& cfg) {
    mesh m = make_mesh(cfg.mesh);
    problem p = [&] {
        // Declare the dats under the configured first-touch policy; the
        // scope guard restores the process-wide setting even when a dat
        // declaration throws (other problems may coexist).
        op2::memory::first_touch_scope scope(cfg.first_touch);
        return make_problem(m);
    }();
    return run(p, cfg);
}

}  // namespace airfoil
