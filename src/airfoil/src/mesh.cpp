#include <airfoil/mesh.hpp>

#include <cmath>
#include <stdexcept>
#include <string>

#include <airfoil/constants.hpp>

namespace airfoil {

namespace {

/// Smooth compact bump centred mid-channel (the "airfoil" surface).
double bump(double x, double length, double h) {
    double const t = (x - 0.5 * length) / (0.15 * length);
    return h * std::exp(-t * t);
}

}  // namespace

mesh make_mesh(mesh_params const& p) {
    if (p.nx < 2 || p.ny < 2) {
        throw std::invalid_argument("make_mesh: nx and ny must be >= 2");
    }
    std::size_t const nx = p.nx;
    std::size_t const ny = p.ny;

    mesh m;
    m.nnode = (nx + 1) * (ny + 1);
    m.ncell = nx * ny;
    m.nedge = (nx - 1) * ny + nx * (ny - 1);  // interior vertical + horizontal
    m.nbedge = 2 * nx + 2 * ny;

    auto node_id = [&](std::size_t i, std::size_t j) {
        return static_cast<int>(j * (nx + 1) + i);
    };
    auto cell_id = [&](std::size_t i, std::size_t j) {
        return static_cast<int>(j * nx + i);
    };

    // --- node coordinates: rectangle with a lower-wall bump that decays
    // linearly toward the upper wall.
    m.x.resize(m.nnode * 2);
    for (std::size_t j = 0; j <= ny; ++j) {
        for (std::size_t i = 0; i <= nx; ++i) {
            double const xf = p.length * static_cast<double>(i) /
                              static_cast<double>(nx);
            double const yf = p.height * static_cast<double>(j) /
                              static_cast<double>(ny);
            double const blend =
                1.0 - static_cast<double>(j) / static_cast<double>(ny);
            auto const n = static_cast<std::size_t>(node_id(i, j));
            m.x[2 * n] = xf;
            m.x[2 * n + 1] = yf + bump(xf, p.length, p.bump_height) * blend;
        }
    }

    // --- cells: corner nodes counter-clockwise.
    m.pcell.resize(m.ncell * 4);
    for (std::size_t j = 0; j < ny; ++j) {
        for (std::size_t i = 0; i < nx; ++i) {
            auto const c = static_cast<std::size_t>(cell_id(i, j));
            m.pcell[4 * c + 0] = node_id(i, j);
            m.pcell[4 * c + 1] = node_id(i + 1, j);
            m.pcell[4 * c + 2] = node_id(i + 1, j + 1);
            m.pcell[4 * c + 3] = node_id(i, j + 1);
        }
    }

    // --- interior edges. Orientation: normal (y1-y2, x2-x1) points out
    // of pecell[0] into pecell[1].
    m.pedge.reserve(m.nedge * 2);
    m.pecell.reserve(m.nedge * 2);
    // Vertical edges at x-line i (1..nx-1) between cells (i-1,j)|(i,j):
    // nodes bottom->top, normal points in -x, i.e. out of the RIGHT cell.
    for (std::size_t j = 0; j < ny; ++j) {
        for (std::size_t i = 1; i < nx; ++i) {
            m.pedge.push_back(node_id(i, j));
            m.pedge.push_back(node_id(i, j + 1));
            m.pecell.push_back(cell_id(i, j));      // right cell (c1)
            m.pecell.push_back(cell_id(i - 1, j));  // left cell  (c2)
        }
    }
    // Horizontal edges at y-line j (1..ny-1) between cells (i,j-1)|(i,j):
    // nodes left->right, normal points in +y, i.e. out of the LOWER cell.
    for (std::size_t j = 1; j < ny; ++j) {
        for (std::size_t i = 0; i < nx; ++i) {
            m.pedge.push_back(node_id(i, j));
            m.pedge.push_back(node_id(i + 1, j));
            m.pecell.push_back(cell_id(i, j - 1));  // lower cell (c1)
            m.pecell.push_back(cell_id(i, j));      // upper cell (c2)
        }
    }

    // --- boundary edges; normals must point out of the domain.
    m.pbedge.reserve(m.nbedge * 2);
    m.pbecell.reserve(m.nbedge);
    m.bound.reserve(m.nbedge);
    // Bottom (j=0), the "airfoil" wall (bound=1): outward normal -y
    // => nodes right->left.
    for (std::size_t i = 0; i < nx; ++i) {
        m.pbedge.push_back(node_id(i + 1, 0));
        m.pbedge.push_back(node_id(i, 0));
        m.pbecell.push_back(cell_id(i, 0));
        m.bound.push_back(1);
    }
    // Top (j=ny), far-field (bound=2): outward +y => nodes left->right.
    for (std::size_t i = 0; i < nx; ++i) {
        m.pbedge.push_back(node_id(i, ny));
        m.pbedge.push_back(node_id(i + 1, ny));
        m.pbecell.push_back(cell_id(i, ny - 1));
        m.bound.push_back(2);
    }
    // Left (i=0), far-field: outward -x => nodes bottom->top.
    for (std::size_t j = 0; j < ny; ++j) {
        m.pbedge.push_back(node_id(0, j));
        m.pbedge.push_back(node_id(0, j + 1));
        m.pbecell.push_back(cell_id(0, j));
        m.bound.push_back(2);
    }
    // Right (i=nx), far-field: outward +x => nodes top->bottom.
    for (std::size_t j = 0; j < ny; ++j) {
        m.pbedge.push_back(node_id(nx, j + 1));
        m.pbedge.push_back(node_id(nx, j));
        m.pbecell.push_back(cell_id(nx - 1, j));
        m.bound.push_back(2);
    }

    // --- initial state: uniform free stream.
    m.q_init.resize(m.ncell * 4);
    for (std::size_t c = 0; c < m.ncell; ++c) {
        for (std::size_t n = 0; n < 4; ++n) {
            m.q_init[4 * c + n] = qinf[n];
        }
    }
    return m;
}

std::string check_mesh(mesh const& m) {
    auto fail = [](std::string msg) { return msg; };

    if (m.x.size() != m.nnode * 2) return fail("x size mismatch");
    if (m.pcell.size() != m.ncell * 4) return fail("pcell size mismatch");
    if (m.pedge.size() != m.nedge * 2) return fail("pedge size mismatch");
    if (m.pecell.size() != m.nedge * 2) return fail("pecell size mismatch");
    if (m.pbedge.size() != m.nbedge * 2) return fail("pbedge size mismatch");
    if (m.pbecell.size() != m.nbedge) return fail("pbecell size mismatch");
    if (m.bound.size() != m.nbedge) return fail("bound size mismatch");
    if (m.q_init.size() != m.ncell * 4) return fail("q_init size mismatch");

    auto node_ok = [&](int n) {
        return n >= 0 && static_cast<std::size_t>(n) < m.nnode;
    };
    auto cell_ok = [&](int c) {
        return c >= 0 && static_cast<std::size_t>(c) < m.ncell;
    };
    for (int n : m.pcell) {
        if (!node_ok(n)) return fail("pcell entry out of range");
    }
    for (int n : m.pedge) {
        if (!node_ok(n)) return fail("pedge entry out of range");
    }
    for (int c : m.pecell) {
        if (!cell_ok(c)) return fail("pecell entry out of range");
    }
    for (int n : m.pbedge) {
        if (!node_ok(n)) return fail("pbedge entry out of range");
    }
    for (int c : m.pbecell) {
        if (!cell_ok(c)) return fail("pbecell entry out of range");
    }
    for (int b : m.bound) {
        if (b != 1 && b != 2) return fail("bound code must be 1 or 2");
    }
    for (std::size_t e = 0; e < m.nedge; ++e) {
        if (m.pecell[2 * e] == m.pecell[2 * e + 1]) {
            return fail("edge with identical cells");
        }
        if (m.pedge[2 * e] == m.pedge[2 * e + 1]) {
            return fail("edge with identical nodes");
        }
    }

    // Every cell must be bounded by exactly 4 (interior + boundary) edges.
    std::vector<int> edges_per_cell(m.ncell, 0);
    for (std::size_t e = 0; e < m.nedge; ++e) {
        ++edges_per_cell[static_cast<std::size_t>(m.pecell[2 * e])];
        ++edges_per_cell[static_cast<std::size_t>(m.pecell[2 * e + 1])];
    }
    for (std::size_t e = 0; e < m.nbedge; ++e) {
        ++edges_per_cell[static_cast<std::size_t>(m.pbecell[e])];
    }
    for (std::size_t c = 0; c < m.ncell; ++c) {
        if (edges_per_cell[c] != 4) {
            return fail("cell " + std::to_string(c) +
                        " bounded by != 4 edges");
        }
    }
    return {};
}

}  // namespace airfoil
