#include <airfoil/mesh_io.hpp>

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include <airfoil/constants.hpp>

namespace airfoil {

namespace {

/// Whitespace-delimited token extraction that counts input lines, so a
/// parse failure can name the exact source line. Newlines are consumed
/// (and counted) *before* each extraction — after the skip, operator>>
/// sees a non-space character and cannot silently cross lines — so
/// line() at failure points at the line holding (or missing) the bad
/// token.
class token_reader {
public:
    token_reader(std::istream& is, std::string source)
      : is_(is), source_(std::move(source)) {}

    /// Extract the next token into `v`; false at EOF/parse failure.
    template <typename T>
    [[nodiscard]] bool next(T& v) {
        skip_space();
        return static_cast<bool>(is_ >> v);
    }

    /// Extract, or throw the structured diagnostic.
    template <typename T>
    void require(T& v, char const* section, char const* what) {
        if (!next(v)) {
            fail(section, std::string("missing or malformed ") + what);
        }
    }

    /// Extract a connectivity index and range-check it.
    void require_index(int& out, std::size_t limit, char const* section,
                       char const* what) {
        long v = 0;
        require(v, section, what);
        if (v < 0 || static_cast<std::size_t>(v) >= limit) {
            fail(section, std::string(what) + " index out of range: " +
                              std::to_string(v) + " (limit " +
                              std::to_string(limit) + ")");
        }
        out = static_cast<int>(v);
    }

    [[noreturn]] void fail(char const* section,
                           std::string const& detail) const {
        throw mesh_io_error(source_, section, line_, detail);
    }

    [[nodiscard]] std::size_t line() const noexcept { return line_; }

private:
    void skip_space() {
        int c = 0;
        while ((c = is_.peek()) != std::char_traits<char>::eof() &&
               std::isspace(static_cast<unsigned char>(c)) != 0) {
            if (c == '\n') {
                ++line_;
            }
            is_.get();
        }
    }

    std::istream& is_;
    std::string source_;
    std::size_t line_ = 1;
};

}  // namespace

void write_mesh(std::ostream& os, mesh const& m) {
    os << m.nnode << ' ' << m.ncell << ' ' << m.nedge << ' ' << m.nbedge
       << '\n';
    os.precision(17);
    for (std::size_t n = 0; n < m.nnode; ++n) {
        os << m.x[2 * n] << ' ' << m.x[2 * n + 1] << '\n';
    }
    for (std::size_t c = 0; c < m.ncell; ++c) {
        os << m.pcell[4 * c] << ' ' << m.pcell[4 * c + 1] << ' '
           << m.pcell[4 * c + 2] << ' ' << m.pcell[4 * c + 3] << '\n';
    }
    for (std::size_t e = 0; e < m.nedge; ++e) {
        os << m.pedge[2 * e] << ' ' << m.pedge[2 * e + 1] << ' '
           << m.pecell[2 * e] << ' ' << m.pecell[2 * e + 1] << '\n';
    }
    for (std::size_t e = 0; e < m.nbedge; ++e) {
        os << m.pbedge[2 * e] << ' ' << m.pbedge[2 * e + 1] << ' '
           << m.pbecell[e] << ' ' << m.bound[e] << '\n';
    }
}

void write_mesh_file(std::string const& path, mesh const& m) {
    std::ofstream f(path);
    if (!f) {
        throw mesh_io_error("mesh_io: cannot open for writing: " + path);
    }
    write_mesh(f, m);
}

mesh read_mesh(std::istream& is, std::string const& source) {
    token_reader in(is, source);
    mesh m;

    long nnode = -1;
    long ncell = -1;
    long nedge = -1;
    long nbedge = -1;
    in.require(nnode, "header", "node count");
    in.require(ncell, "header", "cell count");
    in.require(nedge, "header", "edge count");
    in.require(nbedge, "header", "boundary-edge count");
    if (nnode < 0 || ncell < 0 || nedge < 0 || nbedge < 0) {
        in.fail("header", "negative entity count");
    }
    m.nnode = static_cast<std::size_t>(nnode);
    m.ncell = static_cast<std::size_t>(ncell);
    m.nedge = static_cast<std::size_t>(nedge);
    m.nbedge = static_cast<std::size_t>(nbedge);

    m.x.resize(m.nnode * 2);
    for (std::size_t n = 0; n < m.nnode; ++n) {
        in.require(m.x[2 * n], "node coordinates", "x coordinate");
        in.require(m.x[2 * n + 1], "node coordinates", "y coordinate");
    }

    m.pcell.resize(m.ncell * 4);
    for (std::size_t c = 0; c < m.ncell * 4; ++c) {
        in.require_index(m.pcell[c], m.nnode, "cell connectivity",
                         "cell node");
    }

    m.pedge.resize(m.nedge * 2);
    m.pecell.resize(m.nedge * 2);
    for (std::size_t e = 0; e < m.nedge; ++e) {
        in.require_index(m.pedge[2 * e], m.nnode, "edge list", "edge node");
        in.require_index(m.pedge[2 * e + 1], m.nnode, "edge list",
                         "edge node");
        in.require_index(m.pecell[2 * e], m.ncell, "edge list", "edge cell");
        in.require_index(m.pecell[2 * e + 1], m.ncell, "edge list",
                         "edge cell");
    }

    m.pbedge.resize(m.nbedge * 2);
    m.pbecell.resize(m.nbedge);
    m.bound.resize(m.nbedge);
    for (std::size_t e = 0; e < m.nbedge; ++e) {
        in.require_index(m.pbedge[2 * e], m.nnode, "boundary-edge list",
                         "bedge node");
        in.require_index(m.pbedge[2 * e + 1], m.nnode, "boundary-edge list",
                         "bedge node");
        in.require_index(m.pbecell[e], m.ncell, "boundary-edge list",
                         "bedge cell");
        in.require(m.bound[e], "boundary-edge list", "bound flag");
    }

    m.q_init.resize(m.ncell * 4);
    for (std::size_t c = 0; c < m.ncell; ++c) {
        for (std::size_t k = 0; k < 4; ++k) {
            m.q_init[4 * c + k] = qinf[k];
        }
    }
    return m;
}

mesh read_mesh(std::istream& is) { return read_mesh(is, "<stream>"); }

mesh read_mesh_file(std::string const& path) {
    std::ifstream f(path);
    if (!f) {
        throw mesh_io_error("mesh_io: cannot open: " + path);
    }
    return read_mesh(f, path);
}

}  // namespace airfoil
