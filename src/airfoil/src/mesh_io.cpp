#include <airfoil/mesh_io.hpp>

#include <fstream>
#include <ostream>
#include <sstream>

#include <airfoil/constants.hpp>

namespace airfoil {

namespace {

void check_range(long v, std::size_t limit, char const* what) {
    if (v < 0 || static_cast<std::size_t>(v) >= limit) {
        throw mesh_io_error(std::string("mesh_io: ") + what +
                            " index out of range: " + std::to_string(v));
    }
}

}  // namespace

void write_mesh(std::ostream& os, mesh const& m) {
    os << m.nnode << ' ' << m.ncell << ' ' << m.nedge << ' ' << m.nbedge
       << '\n';
    os.precision(17);
    for (std::size_t n = 0; n < m.nnode; ++n) {
        os << m.x[2 * n] << ' ' << m.x[2 * n + 1] << '\n';
    }
    for (std::size_t c = 0; c < m.ncell; ++c) {
        os << m.pcell[4 * c] << ' ' << m.pcell[4 * c + 1] << ' '
           << m.pcell[4 * c + 2] << ' ' << m.pcell[4 * c + 3] << '\n';
    }
    for (std::size_t e = 0; e < m.nedge; ++e) {
        os << m.pedge[2 * e] << ' ' << m.pedge[2 * e + 1] << ' '
           << m.pecell[2 * e] << ' ' << m.pecell[2 * e + 1] << '\n';
    }
    for (std::size_t e = 0; e < m.nbedge; ++e) {
        os << m.pbedge[2 * e] << ' ' << m.pbedge[2 * e + 1] << ' '
           << m.pbecell[e] << ' ' << m.bound[e] << '\n';
    }
}

void write_mesh_file(std::string const& path, mesh const& m) {
    std::ofstream f(path);
    if (!f) {
        throw mesh_io_error("mesh_io: cannot open for writing: " + path);
    }
    write_mesh(f, m);
}

mesh read_mesh(std::istream& is) {
    mesh m;
    long nnode = -1;
    long ncell = -1;
    long nedge = -1;
    long nbedge = -1;
    if (!(is >> nnode >> ncell >> nedge >> nbedge) || nnode < 0 ||
        ncell < 0 || nedge < 0 || nbedge < 0) {
        throw mesh_io_error("mesh_io: malformed header");
    }
    m.nnode = static_cast<std::size_t>(nnode);
    m.ncell = static_cast<std::size_t>(ncell);
    m.nedge = static_cast<std::size_t>(nedge);
    m.nbedge = static_cast<std::size_t>(nbedge);

    m.x.resize(m.nnode * 2);
    for (std::size_t n = 0; n < m.nnode; ++n) {
        if (!(is >> m.x[2 * n] >> m.x[2 * n + 1])) {
            throw mesh_io_error("mesh_io: truncated node coordinates");
        }
    }

    m.pcell.resize(m.ncell * 4);
    for (std::size_t c = 0; c < m.ncell * 4; ++c) {
        long v = 0;
        if (!(is >> v)) {
            throw mesh_io_error("mesh_io: truncated cell connectivity");
        }
        check_range(v, m.nnode, "cell node");
        m.pcell[c] = static_cast<int>(v);
    }

    m.pedge.resize(m.nedge * 2);
    m.pecell.resize(m.nedge * 2);
    for (std::size_t e = 0; e < m.nedge; ++e) {
        long n1 = 0;
        long n2 = 0;
        long c1 = 0;
        long c2 = 0;
        if (!(is >> n1 >> n2 >> c1 >> c2)) {
            throw mesh_io_error("mesh_io: truncated edge list");
        }
        check_range(n1, m.nnode, "edge node");
        check_range(n2, m.nnode, "edge node");
        check_range(c1, m.ncell, "edge cell");
        check_range(c2, m.ncell, "edge cell");
        m.pedge[2 * e] = static_cast<int>(n1);
        m.pedge[2 * e + 1] = static_cast<int>(n2);
        m.pecell[2 * e] = static_cast<int>(c1);
        m.pecell[2 * e + 1] = static_cast<int>(c2);
    }

    m.pbedge.resize(m.nbedge * 2);
    m.pbecell.resize(m.nbedge);
    m.bound.resize(m.nbedge);
    for (std::size_t e = 0; e < m.nbedge; ++e) {
        long n1 = 0;
        long n2 = 0;
        long c = 0;
        long b = 0;
        if (!(is >> n1 >> n2 >> c >> b)) {
            throw mesh_io_error("mesh_io: truncated boundary-edge list");
        }
        check_range(n1, m.nnode, "bedge node");
        check_range(n2, m.nnode, "bedge node");
        check_range(c, m.ncell, "bedge cell");
        m.pbedge[2 * e] = static_cast<int>(n1);
        m.pbedge[2 * e + 1] = static_cast<int>(n2);
        m.pbecell[e] = static_cast<int>(c);
        m.bound[e] = static_cast<int>(b);
    }

    m.q_init.resize(m.ncell * 4);
    for (std::size_t c = 0; c < m.ncell; ++c) {
        for (std::size_t k = 0; k < 4; ++k) {
            m.q_init[4 * c + k] = qinf[k];
        }
    }
    return m;
}

mesh read_mesh_file(std::string const& path) {
    std::ifstream f(path);
    if (!f) {
        throw mesh_io_error("mesh_io: cannot open: " + path);
    }
    return read_mesh(f);
}

}  // namespace airfoil
