#include <hpxlite/threads/thread_pool.hpp>

#include <cassert>

namespace hpxlite::threads {

namespace {
// Which pool (if any) the current OS thread belongs to, and its index.
thread_local thread_pool const* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

// Yield-spins a worker performs after a fruitless sweep before parking.
// Small: parking is cheap now that submit only signals actual sleepers.
constexpr int kIdleSpins = 16;
}  // namespace

thread_pool::thread_pool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = 1;
    }
    queues_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        queues_.push_back(std::make_unique<ws_deque<task_type>>());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

thread_pool::~thread_pool() {
    wait_idle();
    stop_.store(true, std::memory_order_release);
    {
        // Taking the mutex orders the store against a worker that is
        // between its final predicate check and the wait.
        std::lock_guard<std::mutex> lk(sleep_mtx_);
    }
    sleep_cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

bool thread_pool::on_worker_thread() const noexcept {
    return tls_pool == this;
}

std::size_t thread_pool::worker_index() const noexcept {
    return tls_pool == this ? tls_index : workers_.size();
}

void thread_pool::wake_one() {
    // seq_cst pairs with the worker's seq_cst sleeper registration: either
    // we observe the sleeper (and notify), or the sleeper's later read of
    // queued_ observes our enqueue (and it does not sleep).
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
        {
            // Empty critical section: a worker that passed its predicate
            // check but has not entered wait() yet holds the mutex, so
            // this cannot notify into the gap.
            std::lock_guard<std::mutex> lk(sleep_mtx_);
        }
        sleep_cv_.notify_one();
    }
}

void thread_pool::submit(task_type t) {
    assert(t);
    pending_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_seq_cst);
    if (on_worker_thread()) {
        queues_[tls_index]->push(new task_type(std::move(t)));
    } else {
        std::lock_guard<util::spinlock> lk(global_queue_.mtx);
        global_queue_.tasks.push_back(std::move(t));
    }
    wake_one();
}

bool thread_pool::try_pop(std::size_t index, task_type& out) {
    task_type* p = queues_[index]->pop();
    if (p == nullptr) {
        return false;
    }
    out = std::move(*p);
    delete p;
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

bool thread_pool::try_steal(std::size_t thief, task_type& out) {
    std::size_t const n = queues_.size();
    for (std::size_t k = 1; k <= n; ++k) {
        std::size_t const victim = (thief + k) % n;
        task_type* p = queues_[victim]->steal();
        if (p != nullptr) {
            out = std::move(*p);
            delete p;
            queued_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

bool thread_pool::try_pop_global(task_type& out) {
    std::lock_guard<util::spinlock> lk(global_queue_.mtx);
    if (global_queue_.tasks.empty()) {
        return false;
    }
    out = std::move(global_queue_.tasks.front());
    global_queue_.tasks.pop_front();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

bool thread_pool::run_one() {
    task_type t;
    bool found = false;
    if (on_worker_thread()) {
        found = try_pop(tls_index, t) || try_pop_global(t) ||
                try_steal(tls_index, t);
    } else {
        found = try_pop_global(t) || try_steal(0, t);
    }
    if (!found) {
        return false;
    }
    t();
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        idle_cv_.notify_all();
    }
    return true;
}

void thread_pool::worker_loop(std::size_t index) {
    tls_pool = this;
    tls_index = index;
    while (!stop_.load(std::memory_order_acquire)) {
        if (run_one()) {
            continue;
        }
        // Fruitless sweep: spin briefly (work may be in flight between a
        // producer's counter bump and its push), then park.
        bool retry = false;
        for (int s = 0; s < kIdleSpins; ++s) {
            if (queued_.load(std::memory_order_acquire) != 0 ||
                stop_.load(std::memory_order_acquire)) {
                retry = true;
                break;
            }
            std::this_thread::yield();
        }
        if (retry) {
            continue;
        }
        std::unique_lock<std::mutex> lk(sleep_mtx_);
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        if (queued_.load(std::memory_order_seq_cst) != 0 ||
            stop_.load(std::memory_order_acquire)) {
            // Work (or shutdown) arrived between the sweep and
            // registration; do not sleep.
            sleepers_.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        sleep_cv_.wait(lk, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   queued_.load(std::memory_order_acquire) != 0;
        });
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    tls_pool = nullptr;
}

void thread_pool::wait_idle() {
    // Help while waiting so wait_idle() from a worker cannot deadlock.
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (!run_one()) {
            std::unique_lock<std::mutex> lk(idle_mtx_);
            idle_cv_.wait_for(lk, std::chrono::microseconds(200), [this] {
                return pending_.load(std::memory_order_acquire) == 0;
            });
        }
    }
}

}  // namespace hpxlite::threads
