#include <hpxlite/threads/thread_pool.hpp>

#include <cassert>

namespace hpxlite::threads {

namespace {
// Which pool (if any) the current OS thread belongs to, and its index.
thread_local thread_pool const* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;
}  // namespace

thread_pool::thread_pool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = 1;
    }
    queues_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        queues_.push_back(std::make_unique<worker_queue>());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

thread_pool::~thread_pool() {
    wait_idle();
    stop_.store(true, std::memory_order_release);
    sleep_cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

bool thread_pool::on_worker_thread() const noexcept {
    return tls_pool == this;
}

std::size_t thread_pool::worker_index() const noexcept {
    return tls_pool == this ? tls_index : workers_.size();
}

void thread_pool::submit(task_type t) {
    assert(t);
    pending_.fetch_add(1, std::memory_order_relaxed);
    if (on_worker_thread()) {
        auto& q = *queues_[tls_index];
        std::lock_guard<util::spinlock> lk(q.mtx);
        q.tasks.push_back(std::move(t));
    } else {
        std::lock_guard<util::spinlock> lk(global_queue_.mtx);
        global_queue_.tasks.push_back(std::move(t));
    }
    sleep_cv_.notify_one();
}

bool thread_pool::try_pop(std::size_t index, task_type& out) {
    auto& q = *queues_[index];
    std::lock_guard<util::spinlock> lk(q.mtx);
    if (q.tasks.empty()) {
        return false;
    }
    out = std::move(q.tasks.back());  // LIFO for locality
    q.tasks.pop_back();
    return true;
}

bool thread_pool::try_steal(std::size_t thief, task_type& out) {
    std::size_t const n = queues_.size();
    for (std::size_t k = 1; k <= n; ++k) {
        std::size_t const victim = (thief + k) % n;
        auto& q = *queues_[victim];
        std::lock_guard<util::spinlock> lk(q.mtx);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());  // FIFO steal
            q.tasks.pop_front();
            return true;
        }
    }
    return false;
}

bool thread_pool::try_pop_global(task_type& out) {
    std::lock_guard<util::spinlock> lk(global_queue_.mtx);
    if (global_queue_.tasks.empty()) {
        return false;
    }
    out = std::move(global_queue_.tasks.front());
    global_queue_.tasks.pop_front();
    return true;
}

bool thread_pool::run_one() {
    task_type t;
    bool found = false;
    if (on_worker_thread()) {
        found = try_pop(tls_index, t) || try_pop_global(t) ||
                try_steal(tls_index, t);
    } else {
        found = try_pop_global(t) || try_steal(0, t);
    }
    if (!found) {
        return false;
    }
    t();
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        idle_cv_.notify_all();
    }
    return true;
}

void thread_pool::worker_loop(std::size_t index) {
    tls_pool = this;
    tls_index = index;
    while (!stop_.load(std::memory_order_acquire)) {
        if (run_one()) {
            continue;
        }
        // Nothing found anywhere: park until new work arrives.
        std::unique_lock<std::mutex> lk(sleep_mtx_);
        sleep_cv_.wait_for(lk, std::chrono::milliseconds(1), [this] {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) != 0;
        });
    }
    tls_pool = nullptr;
}

void thread_pool::wait_idle() {
    // Help while waiting so wait_idle() from a worker cannot deadlock.
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (!run_one()) {
            std::unique_lock<std::mutex> lk(idle_mtx_);
            idle_cv_.wait_for(lk, std::chrono::microseconds(200), [this] {
                return pending_.load(std::memory_order_acquire) == 0;
            });
        }
    }
}

}  // namespace hpxlite::threads
