#include <hpxlite/threads/thread_pool.hpp>

#include <cassert>

#include <hpxlite/threads/topology.hpp>
#include <hpxlite/util/env.hpp>

#if defined(__linux__) && !defined(__ANDROID__)
#include <pthread.h>
#include <sched.h>
#define HPXLITE_HAS_SETAFFINITY 1
#endif

namespace hpxlite::threads {

namespace {
// Which pool (if any) the current OS thread belongs to, and its index.
thread_local thread_pool const* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

// Scheduler fault hook (set_task_fault_hook). Constant-initialised so
// installers running during static initialisation are safe.
std::atomic<task_fault_hook> g_task_fault_hook{nullptr};

// Yield-spins a worker performs after a fruitless sweep before parking.
// Small: parking is cheap now that submit only signals actual sleepers.
constexpr int kIdleSpins = 16;
}  // namespace

void set_task_fault_hook(task_fault_hook h) noexcept {
    g_task_fault_hook.store(h, std::memory_order_release);
}

task_fault_hook get_task_fault_hook() noexcept {
    return g_task_fault_hook.load(std::memory_order_acquire);
}

pool_options pool_options::from_env() noexcept {
    pool_options o;
    static bool const bind = util::env_flag("OP2HPX_BIND_WORKERS", false);
    o.bind_workers = bind;
    return o;
}

thread_pool::thread_pool(std::size_t num_threads)
  : thread_pool(num_threads, pool_options::from_env()) {}

thread_pool::thread_pool(std::size_t num_threads, pool_options opts)
  : opts_(opts) {
    if (num_threads == 0) {
        num_threads = 1;
    }
    queues_.reserve(num_threads);
    inboxes_.reserve(num_threads);
    slots_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        queues_.push_back(std::make_unique<ws_deque<task_node>>());
        inboxes_.push_back(std::make_unique<injection_queue>());
        slots_.push_back(std::make_unique<worker_slot>());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

thread_pool::~thread_pool() {
    wait_idle();
    stop_.store(true, std::memory_order_release);
    for (auto& slot : slots_) {
        {
            // Taking the mutex orders the store against a worker that is
            // between its final predicate check and the wait.
            std::lock_guard<std::mutex> lk(slot->mtx);
        }
        slot->cv.notify_all();
    }
    for (auto& w : workers_) {
        w.join();
    }
    // Discard anything still queued (only reachable when a task was
    // submitted after wait_idle drained). Discarding a node may enqueue
    // successors — e.g. a dataflow node completing its graph with a
    // shutdown error — so pop one at a time until every queue is empty,
    // rather than iterating (and before members are torn down).
    for (;;) {
        task_node* n = try_pop_global();
        for (std::size_t i = 0; n == nullptr && i < queues_.size(); ++i) {
            n = queues_[i]->steal();
        }
        for (std::size_t i = 0; n == nullptr && i < inboxes_.size(); ++i) {
            n = try_pop_inbox(i);
        }
        if (n == nullptr) {
            break;
        }
        n->discard();
    }
}

bool thread_pool::on_worker_thread() const noexcept {
    return tls_pool == this;
}

std::size_t thread_pool::worker_index() const noexcept {
    return tls_pool == this ? tls_index : workers_.size();
}

bool thread_pool::wake_worker(std::size_t worker) {
    worker_slot& slot = *slots_[worker];
    // seq_cst pairs with the worker's seq_cst registration (asleep flag
    // set before the sleeper count): either we observe the flag (and
    // notify this slot), or the registering worker's later read of
    // queued_ observes our enqueue (and it does not sleep).
    if (!slot.asleep.load(std::memory_order_seq_cst)) {
        return false;
    }
    {
        // Empty critical section: a worker that passed its predicate
        // check but has not entered wait() yet holds the mutex, so
        // this cannot notify into the gap.
        std::lock_guard<std::mutex> lk(slot.mtx);
    }
    slot.cv.notify_one();
    return true;
}

void thread_pool::wake_one() {
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
        // Rotate the scan start so concurrent wakers tend to rouse
        // *different* sleepers instead of piling notifies on slot 0.
        std::size_t const start =
            wake_rr_.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t k = 0; k < slots_.size(); ++k) {
            if (wake_worker((start + k) % slots_.size())) {
                break;
            }
        }
    }
    // A parked wait_idle helper can also pick the new task up.
    notify_idle_waiters();
}

void thread_pool::notify_idle_waiters() {
    if (idle_waiters_.load(std::memory_order_seq_cst) > 0) {
        {
            // Empty critical section, same reasoning as wake_one: a
            // waiter between its registration/recheck and wait() holds
            // the mutex.
            std::lock_guard<std::mutex> lk(idle_mtx_);
        }
        idle_cv_.notify_all();
    }
}

void thread_pool::submit(task_type t) {
    assert(t);
    submit(static_cast<task_node*>(new fn_task_node(std::move(t))));
}

void thread_pool::submit(task_node* n) {
    assert(n != nullptr && n->action != nullptr);
    pending_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_seq_cst);
    if (on_worker_thread()) {
        queues_[tls_index]->push(n);
    } else {
        std::lock_guard<util::spinlock> lk(global_queue_.mtx);
        global_queue_.tasks.push_back(n);
        global_queue_.approx_size.store(global_queue_.tasks.size(),
                                        std::memory_order_relaxed);
    }
    wake_one();
}

void thread_pool::submit_to(std::size_t worker, task_node* n) {
    assert(n != nullptr && n->action != nullptr);
    worker %= workers_.size();
    pending_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_seq_cst);
    if (on_worker_thread() && tls_index == worker) {
        // The target is the caller: the lock-free owner push keeps the
        // affinity path allocation- and lock-free for self-submissions
        // (a partition's sub-node completing and readying the next one).
        queues_[worker]->push(n);
        // The caller will pop it itself; wake an arbitrary sleeper only
        // as a load-balancing assist, like plain submit.
        wake_one();
    } else {
        {
            std::lock_guard<util::spinlock> lk(inboxes_[worker]->mtx);
            inboxes_[worker]->tasks.push_back(n);
            inboxes_[worker]->approx_size.store(
                inboxes_[worker]->tasks.size(), std::memory_order_relaxed);
        }
        // Targeted wakeup: rouse the *hinted* worker's slot first, not
        // an arbitrary sleeper (who would steal the task out of the
        // owner's inbox while the owner slept on — under light load the
        // hint now sticks). Only when the owner is awake — likely busy —
        // fall back to waking any sleeper, which may steal the pinned
        // task: that keeps the old progress/latency property that a
        // busy owner's pinned work migrates instead of stalling.
        if (wake_worker(worker)) {
            notify_idle_waiters();
        } else {
            wake_one();
        }
    }
}

void thread_pool::submit_to(std::size_t worker, task_type t) {
    assert(t);
    submit_to(worker, static_cast<task_node*>(new fn_task_node(std::move(t))));
}

task_node* thread_pool::try_pop(std::size_t index) {
    task_node* n = queues_[index]->pop();
    if (n != nullptr) {
        queued_.fetch_sub(1, std::memory_order_relaxed);
    }
    return n;
}

task_node* thread_pool::try_pop_inbox(std::size_t index) {
    injection_queue& q = *inboxes_[index];
    if (q.approx_size.load(std::memory_order_relaxed) == 0) {
        return nullptr;  // racy fast path; see injection_queue::approx_size
    }
    std::lock_guard<util::spinlock> lk(q.mtx);
    if (q.tasks.empty()) {
        return nullptr;
    }
    task_node* n = q.tasks.front();
    q.tasks.pop_front();
    q.approx_size.store(q.tasks.size(), std::memory_order_relaxed);
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return n;
}

task_node* thread_pool::try_steal(std::size_t thief) {
    std::size_t const nq = queues_.size();
    // Sweep every victim's deque first, then the inboxes: stealing
    // unhinted work is free, robbing another worker's pinned partition
    // costs that partition's cache affinity — do it only when nothing
    // else is runnable.
    for (std::size_t k = 1; k <= nq; ++k) {
        std::size_t const victim = (thief + k) % nq;
        task_node* n = queues_[victim]->steal();
        if (n != nullptr) {
            queued_.fetch_sub(1, std::memory_order_relaxed);
            return n;
        }
    }
    for (std::size_t k = 1; k <= nq; ++k) {
        std::size_t const victim = (thief + k) % nq;
        task_node* n = try_pop_inbox(victim);
        if (n != nullptr) {
            return n;
        }
    }
    return nullptr;
}

task_node* thread_pool::try_pop_global() {
    if (global_queue_.approx_size.load(std::memory_order_relaxed) == 0) {
        return nullptr;  // racy fast path; see injection_queue::approx_size
    }
    std::lock_guard<util::spinlock> lk(global_queue_.mtx);
    if (global_queue_.tasks.empty()) {
        return nullptr;
    }
    task_node* n = global_queue_.tasks.front();
    global_queue_.tasks.pop_front();
    global_queue_.approx_size.store(global_queue_.tasks.size(),
                                    std::memory_order_relaxed);
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return n;
}

bool thread_pool::run_one() {
    task_node* n = nullptr;
    if (on_worker_thread()) {
        n = try_pop(tls_index);
        if (n == nullptr) {
            // Pinned work next: the inbox holds the partitions this
            // worker owns, which is exactly the work whose data is (or
            // will be) in this core's cache.
            n = try_pop_inbox(tls_index);
        }
        if (n == nullptr) {
            n = try_pop_global();
        }
        if (n == nullptr) {
            n = try_steal(tls_index);
        }
    } else {
        n = try_pop_global();
        if (n == nullptr) {
            n = try_steal(0);
        }
    }
    if (n == nullptr) {
        return false;
    }
    // Fault-injection gate: one relaxed load when no hook is installed.
    // A hook may sleep (delay injection) or ask for the task to be
    // discarded — the exact code path teardown uses for never-run
    // tasks, so upper layers see their real abandoned-work errors.
    if (task_fault_hook const hook =
            g_task_fault_hook.load(std::memory_order_relaxed);
        hook != nullptr && hook() == task_fault::drop) {
        n->discard();
    } else {
        n->execute();
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
    // seq_cst pairs with wait_idle's waiter registration, mirroring the
    // submit/sleeper protocol.
    if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
        notify_idle_waiters();
    }
    return true;
}

void thread_pool::bind_worker(std::size_t index) {
#if defined(HPXLITE_HAS_SETAFFINITY)
    // Node-major core choice: worker i takes the i-th CPU of the
    // node-grouped order (topology.hpp), so consecutive workers fill
    // one NUMA node's cores before spilling to the next — a partition's
    // owner (p % pool_size) and its neighbours share a memory
    // controller, and the pages their first touch faults in land on
    // that node. Single-node machines get the identity order, i.e.
    // exactly the old i % hardware_concurrency binding.
    topology_info const& topo = topology();
    std::size_t const ncpu = topo.cpus() == 0 ? 1 : topo.cpus();
    std::size_t const cpu =
        static_cast<std::size_t>(topo.node_major[index % ncpu]);
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
        // Failure (restricted cpuset, exotic kernel) silently keeps the
        // unbound behaviour: the hint degrades to thread affinity only.
        return;
    }
    // Re-read the mask the kernel actually applied before counting the
    // worker as bound: on restricted runners (cgroup cpusets, some
    // container hosts) the set call can report success while a later
    // cpuset reconciliation widens the mask again, so counting on
    // set-success overstated bound_workers() and affinity tests
    // trusted bindings that were not in force. Only a verified
    // single-CPU mask on the requested core counts.
    cpu_set_t applied;
    CPU_ZERO(&applied);
    if (pthread_getaffinity_np(pthread_self(), sizeof(applied),
                               &applied) == 0 &&
        CPU_COUNT(&applied) == 1 &&
        CPU_ISSET(cpu, &applied)) {
        bound_.fetch_add(1, std::memory_order_acq_rel);
    }
#else
    (void)index;
#endif
}

void thread_pool::worker_loop(std::size_t index) {
    tls_pool = this;
    tls_index = index;
    if (opts_.bind_workers) {
        bind_worker(index);
    }
    worker_slot& slot = *slots_[index];
    while (!stop_.load(std::memory_order_acquire)) {
        if (run_one()) {
            continue;
        }
        // Fruitless sweep: spin briefly (work may be in flight between a
        // producer's counter bump and its push), then park.
        bool retry = false;
        for (int s = 0; s < kIdleSpins; ++s) {
            if (queued_.load(std::memory_order_acquire) != 0 ||
                stop_.load(std::memory_order_acquire)) {
                retry = true;
                break;
            }
            std::this_thread::yield();
        }
        if (retry) {
            continue;
        }
        std::unique_lock<std::mutex> lk(slot.mtx);
        // The asleep flag must be visible before the sleeper count: a
        // waker that observes sleepers_ > 0 scans the flags next, and
        // must find at least the worker whose registration it saw.
        slot.asleep.store(true, std::memory_order_seq_cst);
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        if (queued_.load(std::memory_order_seq_cst) != 0 ||
            stop_.load(std::memory_order_acquire)) {
            // Work (or shutdown) arrived between the sweep and
            // registration; do not sleep.
            slot.asleep.store(false, std::memory_order_relaxed);
            sleepers_.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        slot.cv.wait(lk, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   queued_.load(std::memory_order_acquire) != 0;
        });
        slot.asleep.store(false, std::memory_order_relaxed);
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    tls_pool = nullptr;
}

void thread_pool::wait_idle() {
    // Help while waiting so wait_idle() from a worker cannot deadlock.
    // When there is nothing to help with, park on idle_cv_ behind the
    // waiter count — the sleeper protocol submit() already uses — instead
    // of the old 200 us polling loop. Woken either when the pool drains
    // (run_one's last pending decrement) or when new helpable work is
    // queued (wake_one).
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (run_one()) {
            continue;
        }
        std::unique_lock<std::mutex> lk(idle_mtx_);
        idle_waiters_.fetch_add(1, std::memory_order_seq_cst);
        if (pending_.load(std::memory_order_seq_cst) == 0 ||
            queued_.load(std::memory_order_seq_cst) != 0) {
            // Drained (or new work to help with) between the failed
            // run_one and registration; do not sleep.
            idle_waiters_.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        idle_cv_.wait(lk, [this] {
            return pending_.load(std::memory_order_acquire) == 0 ||
                   queued_.load(std::memory_order_acquire) != 0;
        });
        idle_waiters_.fetch_sub(1, std::memory_order_relaxed);
    }
}

}  // namespace hpxlite::threads
