#include <hpxlite/runtime.hpp>

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace hpxlite {

namespace {

std::mutex g_mtx;
std::unique_ptr<threads::thread_pool> g_pool;

std::size_t default_num_threads() {
    if (char const* env = std::getenv("HPXLITE_NUM_THREADS")) {
        try {
            std::size_t n = std::stoul(env);
            if (n > 0) {
                return n;
            }
        } catch (...) {
            // fall through to hardware concurrency
        }
    }
    std::size_t hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : hc;
}

}  // namespace

void init(runtime_config cfg) {
    std::size_t n = cfg.num_threads == 0 ? default_num_threads() : cfg.num_threads;
    std::lock_guard<std::mutex> lk(g_mtx);
    if (g_pool && g_pool->size() == n) {
        return;
    }
    g_pool.reset();  // join old pool first
    g_pool = std::make_unique<threads::thread_pool>(n);
}

void finalize() {
    std::lock_guard<std::mutex> lk(g_mtx);
    g_pool.reset();
}

threads::thread_pool& get_pool() {
    {
        std::lock_guard<std::mutex> lk(g_mtx);
        if (g_pool) {
            return *g_pool;
        }
    }
    init();
    std::lock_guard<std::mutex> lk(g_mtx);
    return *g_pool;
}

std::size_t get_num_worker_threads() { return get_pool().size(); }

}  // namespace hpxlite
