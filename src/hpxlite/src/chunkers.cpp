#include <hpxlite/execution/chunkers.hpp>

#include <algorithm>

namespace hpxlite::execution {

chunk_domain& global_chunk_domain() {
    static chunk_domain domain;
    return domain;
}

namespace detail {

std::size_t probe_count(std::size_t n) noexcept {
    // ~1% of the loop, bounded so probing stays cheap but measurable.
    return std::clamp<std::size_t>(n / 100, 1, 1024);
}

std::size_t clamp_chunk(std::size_t chunk, std::size_t n,
                        std::size_t workers) noexcept {
    if (chunk == 0) {
        chunk = 1;
    }
    // Never fewer than one chunk per worker (when n allows it): chunking
    // coarser than n/workers serialises the loop.
    std::size_t const max_chunk = std::max<std::size_t>(1, n / std::max<std::size_t>(1, workers));
    return std::min(chunk, max_chunk);
}

}  // namespace detail

}  // namespace hpxlite::execution
