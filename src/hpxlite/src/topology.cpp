#include <hpxlite/threads/topology.hpp>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#if defined(HPXLITE_HAS_LIBNUMA)
#include <numa.h>
#endif

namespace hpxlite::threads {

namespace {

std::size_t probed_cpus() {
    std::size_t n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

/// Parse a sysfs cpulist ("0-3,8-11,15") into per-cpu node marks.
/// Returns false on any parse surprise so the caller can fall back.
bool apply_cpulist(std::string const& list, int node,
                   std::vector<int>& core_node) {
    char const* s = list.c_str();
    while (*s != '\0' && *s != '\n') {
        char* end = nullptr;
        long const lo = std::strtol(s, &end, 10);
        if (end == s || lo < 0) {
            return false;
        }
        long hi = lo;
        s = end;
        if (*s == '-') {
            ++s;
            hi = std::strtol(s, &end, 10);
            if (end == s || hi < lo) {
                return false;
            }
            s = end;
        }
        for (long c = lo; c <= hi; ++c) {
            if (static_cast<std::size_t>(c) < core_node.size()) {
                core_node[static_cast<std::size_t>(c)] = node;
            }
        }
        if (*s == ',') {
            ++s;
        }
    }
    return true;
}

/// Linux sysfs probe: needs no library, works in ordinary containers.
/// False when the node directories are absent (non-Linux, restricted
/// /sys) — single-node fallback applies.
bool probe_sysfs(std::vector<int>& core_node) {
    bool any = false;
    for (std::size_t node = 0; node <= core_node.size(); ++node) {
        char path[96];
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/node/node%zu/cpulist", node);
        std::FILE* f = std::fopen(path, "re");
        if (f == nullptr) {
            break;  // node ids are contiguous; the first gap is the end
        }
        char buf[512];
        std::string list;
        if (std::fgets(buf, sizeof(buf), f) != nullptr) {
            list = buf;
        }
        std::fclose(f);
        if (!apply_cpulist(list, static_cast<int>(node), core_node)) {
            return false;
        }
        any = true;
    }
    return any;
}

#if defined(HPXLITE_HAS_LIBNUMA)
bool probe_libnuma(std::vector<int>& core_node) {
    if (numa_available() < 0) {
        return false;
    }
    for (std::size_t c = 0; c < core_node.size(); ++c) {
        int const node = numa_node_of_cpu(static_cast<int>(c));
        core_node[c] = node < 0 ? 0 : node;
    }
    return true;
}
#endif

topology_info probe() {
    topology_info t;
    t.core_node.assign(probed_cpus(), 0);
    bool probed = false;
#if defined(HPXLITE_HAS_LIBNUMA)
    probed = probe_libnuma(t.core_node);
#endif
    if (!probed) {
        probed = probe_sysfs(t.core_node);
    }
    if (!probed) {
        // Single-node identity: node-major order == 0..N-1, which makes
        // every consumer behave exactly like the pre-topology code.
        std::fill(t.core_node.begin(), t.core_node.end(), 0);
    }
    int max_node = 0;
    for (int n : t.core_node) {
        max_node = std::max(max_node, n);
    }
    t.nodes = static_cast<std::size_t>(max_node) + 1;
    t.node_major.resize(t.core_node.size());
    for (std::size_t c = 0; c < t.node_major.size(); ++c) {
        t.node_major[c] = static_cast<int>(c);
    }
    std::stable_sort(t.node_major.begin(), t.node_major.end(),
                     [&](int a, int b) {
                         return t.core_node[static_cast<std::size_t>(a)] <
                                t.core_node[static_cast<std::size_t>(b)];
                     });
    return t;
}

}  // namespace

topology_info const& topology() {
    static topology_info const t = probe();
    return t;
}

bool bind_range_to_node(void* p, std::size_t len, int node) noexcept {
#if defined(HPXLITE_HAS_LIBNUMA)
    if (p == nullptr || len == 0 || numa_available() < 0 ||
        node > numa_max_node()) {
        return false;
    }
    numa_tonode_memory(p, len, node);
    return true;
#else
    (void)p;
    (void)len;
    (void)node;
    return false;
#endif
}

}  // namespace hpxlite::threads
