#pragma once

#include <atomic>
#include <memory>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include <hpxlite/lcos/future.hpp>

namespace hpxlite::lcos {

namespace detail {

/// Shared frame for when_all: counts unready inputs; the last one to
/// become ready publishes the (now all-ready) container of futures.
template <typename Container>
struct when_all_frame {
    explicit when_all_frame(Container c) : inputs(std::move(c)) {}

    Container inputs;
    std::atomic<std::size_t> pending{1};  // +1 sentinel held by the armer
    state_ptr<Container> result = std::make_shared<
        lcos::detail::shared_state<Container>>();

    void notify() {
        if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            result->set_value(std::move(inputs));
        }
    }
};

template <typename Frame, typename Fut>
void arm_one(std::shared_ptr<Frame> const& frame, Fut& f) {
    if (!f.valid()) {
        return;  // ignore empty futures, matching hpx::when_all
    }
    auto st = get_state(f);
    if (st->is_ready()) {
        return;
    }
    frame->pending.fetch_add(1, std::memory_order_relaxed);
    st->add_continuation([frame] { frame->notify(); });
}

}  // namespace detail

/// Wait for all futures in a vector; the returned future delivers the
/// vector back with every element ready.
template <typename T>
future<std::vector<future<T>>> when_all(std::vector<future<T>> futures) {
    using container = std::vector<future<T>>;
    auto frame =
        std::make_shared<detail::when_all_frame<container>>(std::move(futures));
    for (auto& f : frame->inputs) {
        detail::arm_one(frame, f);
    }
    auto result = frame->result;
    frame->notify();  // release sentinel
    return future<container>(std::move(result));
}

template <typename T>
future<std::vector<shared_future<T>>> when_all(
    std::vector<shared_future<T>> futures) {
    using container = std::vector<shared_future<T>>;
    auto frame =
        std::make_shared<detail::when_all_frame<container>>(std::move(futures));
    for (auto& f : frame->inputs) {
        detail::arm_one(frame, f);
    }
    auto result = frame->result;
    frame->notify();
    return future<container>(std::move(result));
}

/// Variadic when_all over a mix of future<> / shared_future<> objects.
/// Delivers a tuple of the (ready) futures.
template <typename... Futs,
          typename = std::enable_if_t<(is_future_v<Futs> && ...)>>
future<std::tuple<std::decay_t<Futs>...>> when_all(Futs&&... futs) {
    using container = std::tuple<std::decay_t<Futs>...>;
    auto frame = std::make_shared<detail::when_all_frame<container>>(
        container(std::forward<Futs>(futs)...));
    std::apply([&](auto&... fs) { (detail::arm_one(frame, fs), ...); },
               frame->inputs);
    auto result = frame->result;
    frame->notify();
    return future<container>(std::move(result));
}

inline future<std::tuple<>> when_all() {
    return make_ready_future(std::tuple<>());
}

}  // namespace hpxlite::lcos

namespace hpxlite {
using lcos::when_all;
}
