#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <hpxlite/runtime.hpp>
#include <hpxlite/threads/task_node.hpp>
#include <hpxlite/util/spinlock.hpp>
#include <hpxlite/util/unique_function.hpp>

namespace hpxlite::lcos::detail {

/// The execution/continuation task embedded in every shared state.
///
/// future::then and async used to route their work through the pool's
/// generic submit(unique_function) path, which heap-allocates one
/// fn_task_node per call. The state a then/async creates is a heap
/// allocation anyway, so the task node (and the callable, and the
/// intrusive hook that links it into the source state's continuation
/// list) live *inside* it: arming and firing a continuation allocates
/// nothing beyond the state itself.
///
/// Lifecycle: arm() stores the work and a self-owning reference to the
/// enclosing state (breaking nothing: the cycle dissolves when the task
/// runs or is discarded). The task fires at most once — submitted by
/// the source state on readiness (then) or directly by the launcher
/// (async). On pool teardown with the task still queued, `abandon` is
/// invoked instead so waiters see a broken-task error, not a hang.
struct cont_task : threads::task_node {
    util::unique_function fn;
    std::shared_ptr<void> keep;        // enclosing state, while armed
    void* owner = nullptr;             // the typed shared_state<R>*
    void (*abandon)(void*) = nullptr;  // deposit "discarded" into owner
    threads::thread_pool* pool = nullptr;
    cont_task* next = nullptr;         // source state's intrusive list

    cont_task() {
        action = [](threads::task_node* n, bool run) {
            auto* self = static_cast<cont_task*>(n);
            // Move everything out first: running (or abandoning) the
            // task may release the last reference to the enclosing
            // state, taking this object with it.
            auto keep_alive = std::move(self->keep);
            auto work = std::move(self->fn);
            if (run) {
                work();
            } else if (self->abandon != nullptr) {
                self->abandon(self->owner);
            }
        };
    }

    template <typename F>
    void arm(threads::thread_pool& p, std::shared_ptr<void> self, F&& f,
             void* state, void (*on_abandon)(void*)) {
        pool = &p;
        keep = std::move(self);
        fn = std::forward<F>(f);
        owner = state;
        abandon = on_abandon;
    }

    void submit() { pool->submit(static_cast<threads::task_node*>(this)); }
};

/// Thrown on protocol violations (double set, get on invalid future, ...).
class future_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

template <typename T>
struct state_storage {
    std::optional<T> value;

    template <typename... A>
    void emplace(A&&... a) {
        value.emplace(std::forward<A>(a)...);
    }
};

template <>
struct state_storage<void> {
    void emplace() {}
};

/// The shared state behind future/promise/dataflow.
///
/// Continuations registered before the state becomes ready run on the
/// thread that fulfils the state (they must therefore be cheap — the
/// library only ever registers "decrement a counter / reschedule on the
/// pool" callbacks). Continuations registered after readiness run inline.
///
/// wait() *helps*: a pool worker blocked on an unready state executes
/// other pending tasks instead of sleeping, so waiting inside tasks can
/// never deadlock the pool (essential on small machines).
template <typename T>
class shared_state {
public:
    using continuation_type = util::unique_function;

    shared_state() = default;
    shared_state(shared_state const&) = delete;
    shared_state& operator=(shared_state const&) = delete;

    [[nodiscard]] bool is_ready() const noexcept {
        return ready_.load(std::memory_order_acquire);
    }

    template <typename... A>
    void set_value(A&&... a) {
        std::vector<continuation_type> conts;
        cont_task* tasks = nullptr;
        {
            std::lock_guard<util::spinlock> lk(mtx_);
            if (ready_.load(std::memory_order_relaxed)) {
                throw future_error("shared_state: value already set");
            }
            storage_.emplace(std::forward<A>(a)...);
            ready_.store(true, std::memory_order_release);
            conts.swap(continuations_);
            tasks = detach_tasks();
        }
        cv_.notify_all();
        for (auto& c : conts) {
            c();
        }
        submit_tasks(tasks);
    }

    void set_exception(std::exception_ptr e) {
        std::vector<continuation_type> conts;
        cont_task* tasks = nullptr;
        {
            std::lock_guard<util::spinlock> lk(mtx_);
            if (ready_.load(std::memory_order_relaxed)) {
                throw future_error("shared_state: value already set");
            }
            eptr_ = std::move(e);
            ready_.store(true, std::memory_order_release);
            conts.swap(continuations_);
            tasks = detach_tasks();
        }
        cv_.notify_all();
        for (auto& c : conts) {
            c();
        }
        submit_tasks(tasks);
    }

    [[nodiscard]] bool has_exception() const {
        std::lock_guard<util::spinlock> lk(mtx_);
        return static_cast<bool>(eptr_);
    }

    void wait() {
        if (is_ready()) {
            return;
        }
        auto& pool = hpxlite::get_pool();
        if (pool.on_worker_thread()) {
            // Cooperative wait: keep the core busy with other tasks.
            while (!is_ready()) {
                if (!pool.run_one()) {
                    std::this_thread::yield();
                }
            }
        } else {
            std::unique_lock<util::spinlock> lk(mtx_);
            cv_.wait(lk, [this] { return is_ready(); });
        }
    }

    /// Move the value out (future::get). Rethrows a stored exception.
    decltype(auto) move_value() {
        wait();
        rethrow_if_exception();
        if constexpr (!std::is_void_v<T>) {
            return std::move(*storage_.value);
        }
    }

    /// Reference to the value (shared_future::get).
    template <typename U = T>
    std::enable_if_t<!std::is_void_v<U>, U const&> value_ref() {
        wait();
        rethrow_if_exception();
        return *storage_.value;
    }

    void wait_and_rethrow() {
        wait();
        rethrow_if_exception();
    }

    /// Register `c`. Runs inline immediately when already ready.
    void add_continuation(continuation_type c) {
        {
            std::lock_guard<util::spinlock> lk(mtx_);
            if (!ready_.load(std::memory_order_relaxed)) {
                continuations_.push_back(std::move(c));
                return;
            }
        }
        c();
    }

    /// This state's embedded task slot. Each state is created by exactly
    /// one of async/then/promise/dataflow, so the slot has exactly one
    /// prospective user (the launcher or the continuation that produces
    /// this state).
    [[nodiscard]] cont_task& task() noexcept { return task_; }

    /// Register an armed task to be pool-submitted when this state
    /// becomes ready (submitted immediately if it already is). Unlike
    /// add_continuation this allocates nothing: the task is embedded in
    /// the successor's state and linked intrusively.
    void add_continuation_task(cont_task& t) {
        {
            std::lock_guard<util::spinlock> lk(mtx_);
            if (!ready_.load(std::memory_order_relaxed)) {
                t.next = task_head_;
                task_head_ = &t;
                return;
            }
        }
        t.submit();
    }

    /// Arm this state's embedded task and submit it right away (async).
    template <typename F>
    void launch(threads::thread_pool& pool, std::shared_ptr<void> self,
                F&& f) {
        task_.arm(pool, std::move(self), std::forward<F>(f), this,
                  &abandon_into);
        task_.submit();
    }

    /// cont_task::abandon target: pool torn down with the task still
    /// queued — deposit an error instead of leaving waiters hanging.
    static void abandon_into(void* s) {
        auto* st = static_cast<shared_state*>(s);
        if (!st->is_ready()) {
            st->set_exception(std::make_exception_ptr(
                future_error("task discarded at shutdown")));
        }
    }

private:
    /// Detach the registered task list (callers hold mtx_).
    [[nodiscard]] cont_task* detach_tasks() noexcept {
        cont_task* head = task_head_;
        task_head_ = nullptr;
        return head;
    }

    static void submit_tasks(cont_task* head) {
        while (head != nullptr) {
            cont_task* next = head->next;  // submit() may free the task
            head->submit();
            head = next;
        }
    }
    void rethrow_if_exception() {
        std::exception_ptr e;
        {
            std::lock_guard<util::spinlock> lk(mtx_);
            e = eptr_;
        }
        if (e) {
            std::rethrow_exception(e);
        }
    }

    mutable util::spinlock mtx_;
    std::condition_variable_any cv_;
    std::atomic<bool> ready_{false};
    std::exception_ptr eptr_;
    state_storage<T> storage_;
    std::vector<continuation_type> continuations_;
    cont_task task_;               // this state's own work (then/async)
    cont_task* task_head_ = nullptr;  // successors waiting on this state
};

}  // namespace hpxlite::lcos::detail
