#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <hpxlite/runtime.hpp>
#include <hpxlite/util/spinlock.hpp>
#include <hpxlite/util/unique_function.hpp>

namespace hpxlite::lcos::detail {

/// Thrown on protocol violations (double set, get on invalid future, ...).
class future_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

template <typename T>
struct state_storage {
    std::optional<T> value;

    template <typename... A>
    void emplace(A&&... a) {
        value.emplace(std::forward<A>(a)...);
    }
};

template <>
struct state_storage<void> {
    void emplace() {}
};

/// The shared state behind future/promise/dataflow.
///
/// Continuations registered before the state becomes ready run on the
/// thread that fulfils the state (they must therefore be cheap — the
/// library only ever registers "decrement a counter / reschedule on the
/// pool" callbacks). Continuations registered after readiness run inline.
///
/// wait() *helps*: a pool worker blocked on an unready state executes
/// other pending tasks instead of sleeping, so waiting inside tasks can
/// never deadlock the pool (essential on small machines).
template <typename T>
class shared_state {
public:
    using continuation_type = util::unique_function;

    shared_state() = default;
    shared_state(shared_state const&) = delete;
    shared_state& operator=(shared_state const&) = delete;

    [[nodiscard]] bool is_ready() const noexcept {
        return ready_.load(std::memory_order_acquire);
    }

    template <typename... A>
    void set_value(A&&... a) {
        std::vector<continuation_type> conts;
        {
            std::lock_guard<util::spinlock> lk(mtx_);
            if (ready_.load(std::memory_order_relaxed)) {
                throw future_error("shared_state: value already set");
            }
            storage_.emplace(std::forward<A>(a)...);
            ready_.store(true, std::memory_order_release);
            conts.swap(continuations_);
        }
        cv_.notify_all();
        for (auto& c : conts) {
            c();
        }
    }

    void set_exception(std::exception_ptr e) {
        std::vector<continuation_type> conts;
        {
            std::lock_guard<util::spinlock> lk(mtx_);
            if (ready_.load(std::memory_order_relaxed)) {
                throw future_error("shared_state: value already set");
            }
            eptr_ = std::move(e);
            ready_.store(true, std::memory_order_release);
            conts.swap(continuations_);
        }
        cv_.notify_all();
        for (auto& c : conts) {
            c();
        }
    }

    [[nodiscard]] bool has_exception() const {
        std::lock_guard<util::spinlock> lk(mtx_);
        return static_cast<bool>(eptr_);
    }

    void wait() {
        if (is_ready()) {
            return;
        }
        auto& pool = hpxlite::get_pool();
        if (pool.on_worker_thread()) {
            // Cooperative wait: keep the core busy with other tasks.
            while (!is_ready()) {
                if (!pool.run_one()) {
                    std::this_thread::yield();
                }
            }
        } else {
            std::unique_lock<util::spinlock> lk(mtx_);
            cv_.wait(lk, [this] { return is_ready(); });
        }
    }

    /// Move the value out (future::get). Rethrows a stored exception.
    decltype(auto) move_value() {
        wait();
        rethrow_if_exception();
        if constexpr (!std::is_void_v<T>) {
            return std::move(*storage_.value);
        }
    }

    /// Reference to the value (shared_future::get).
    template <typename U = T>
    std::enable_if_t<!std::is_void_v<U>, U const&> value_ref() {
        wait();
        rethrow_if_exception();
        return *storage_.value;
    }

    void wait_and_rethrow() {
        wait();
        rethrow_if_exception();
    }

    /// Register `c`. Runs inline immediately when already ready.
    void add_continuation(continuation_type c) {
        {
            std::lock_guard<util::spinlock> lk(mtx_);
            if (!ready_.load(std::memory_order_relaxed)) {
                continuations_.push_back(std::move(c));
                return;
            }
        }
        c();
    }

private:
    void rethrow_if_exception() {
        std::exception_ptr e;
        {
            std::lock_guard<util::spinlock> lk(mtx_);
            e = eptr_;
        }
        if (e) {
            std::rethrow_exception(e);
        }
    }

    mutable util::spinlock mtx_;
    std::condition_variable_any cv_;
    std::atomic<bool> ready_{false};
    std::exception_ptr eptr_;
    state_storage<T> storage_;
    std::vector<continuation_type> continuations_;
};

}  // namespace hpxlite::lcos::detail
