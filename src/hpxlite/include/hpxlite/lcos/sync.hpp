#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <thread>

#include <hpxlite/runtime.hpp>
#include <hpxlite/util/spinlock.hpp>

namespace hpxlite::lcos {

namespace detail {

/// Cooperative wait shared by the sync LCOs: workers help execute pool
/// tasks instead of blocking, external threads spin-yield.
template <typename Pred>
void cooperative_wait(Pred&& ready) {
    if (ready()) {
        return;
    }
    auto& pool = hpxlite::get_pool();
    while (!ready()) {
        if (!pool.on_worker_thread() || !pool.run_one()) {
            std::this_thread::yield();
        }
    }
}

}  // namespace detail

/// Manual-reset event: threads wait until some thread calls set().
class event {
public:
    void set() noexcept { flag_.store(true, std::memory_order_release); }

    void reset() noexcept { flag_.store(false, std::memory_order_release); }

    [[nodiscard]] bool occurred() const noexcept {
        return flag_.load(std::memory_order_acquire);
    }

    void wait() const {
        detail::cooperative_wait([this] { return occurred(); });
    }

private:
    std::atomic<bool> flag_{false};
};

/// Single-use countdown latch (LCO flavour of std::latch, but with
/// help-while-waiting so it is safe to wait on from pool workers).
class latch {
public:
    explicit latch(std::ptrdiff_t count) : count_(count) {}

    void count_down(std::ptrdiff_t n = 1) noexcept {
        count_.fetch_sub(n, std::memory_order_acq_rel);
    }

    [[nodiscard]] bool is_ready() const noexcept {
        return count_.load(std::memory_order_acquire) <= 0;
    }

    void wait() const {
        detail::cooperative_wait([this] { return is_ready(); });
    }

    void arrive_and_wait() {
        count_down();
        wait();
    }

private:
    std::atomic<std::ptrdiff_t> count_;
};

/// Cyclic barrier for a fixed number of participants. Used by the
/// fork-join (OpenMP-style) OP2 backend to model the implicit barrier at
/// the end of `#pragma omp parallel for`.
class barrier {
public:
    explicit barrier(std::size_t participants)
      : participants_(participants) {}

    /// Block until all participants have arrived (cooperatively on pool
    /// workers). Reusable across rounds.
    void arrive_and_wait() {
        std::size_t const my_round = round_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            participants_) {
            arrived_.store(0, std::memory_order_relaxed);
            round_.fetch_add(1, std::memory_order_acq_rel);
        } else {
            detail::cooperative_wait([this, my_round] {
                return round_.load(std::memory_order_acquire) != my_round;
            });
        }
    }

private:
    std::size_t const participants_;
    std::atomic<std::size_t> arrived_{0};
    std::atomic<std::size_t> round_{0};
};

}  // namespace hpxlite::lcos
