#pragma once

#include <exception>
#include <memory>
#include <type_traits>
#include <utility>

#include <hpxlite/lcos/detail/shared_state.hpp>
#include <hpxlite/runtime.hpp>

namespace hpxlite::lcos {

template <typename T>
class future;
template <typename T>
class shared_future;
template <typename T>
class promise;

// ---------------------------------------------------------------------------
// traits
// ---------------------------------------------------------------------------

template <typename T>
struct is_future : std::false_type {};
template <typename T>
struct is_future<future<T>> : std::true_type {};
template <typename T>
struct is_future<shared_future<T>> : std::true_type {};

/// True for future<T> and shared_future<T> (after decay).
template <typename T>
inline constexpr bool is_future_v = is_future<std::decay_t<T>>::value;

template <typename T>
struct future_value {
    using type = T;
};
template <typename T>
struct future_value<future<T>> {
    using type = T;
};
template <typename T>
struct future_value<shared_future<T>> {
    using type = T;
};

/// future<T> -> T; shared_future<T> -> T; U -> U.
template <typename T>
using future_value_t = typename future_value<std::decay_t<T>>::type;

/// future<future<T>> collapses to future<T> (one level).
template <typename T>
struct unwrap_result {
    using type = T;
};
template <typename T>
struct unwrap_result<future<T>> {
    using type = T;
};
template <typename T>
struct unwrap_result<shared_future<T>> {
    using type = T;
};
template <typename T>
using unwrap_result_t = typename unwrap_result<T>::type;

namespace detail {

template <typename T>
using state_ptr = std::shared_ptr<lcos::detail::shared_state<T>>;

// Accessors kept in detail so user code cannot reach the shared state.
template <typename T>
state_ptr<T> const& get_state(future<T> const& f);
template <typename T>
state_ptr<T> const& get_state(shared_future<T> const& f);

template <typename T>
future<T> make_future_from_state(state_ptr<T> st);

/// Invoke `f(args...)` and deposit the result (or exception) into `rs`.
/// When the invocation itself returns a future, forward that inner
/// future's eventual result instead (one-level unwrapping).
template <typename R, typename F, typename Tuple>
void invoke_into_state(state_ptr<R> const& rs, F&& f, Tuple&& args);

}  // namespace detail

// ---------------------------------------------------------------------------
// future<T>
// ---------------------------------------------------------------------------

/// A single-owner handle to an asynchronously produced value.
///
/// Mirrors hpx::future: move-only, `get()` consumes the value, `then()`
/// attaches a continuation executed on the runtime's pool, `share()`
/// converts to a copyable shared_future.
template <typename T>
class future {
public:
    using value_type = T;

    future() noexcept = default;
    explicit future(detail::state_ptr<T> st) noexcept : state_(std::move(st)) {}

    future(future&&) noexcept = default;
    future& operator=(future&&) noexcept = default;
    future(future const&) = delete;
    future& operator=(future const&) = delete;

    [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

    [[nodiscard]] bool is_ready() const {
        ensure_valid();
        return state_->is_ready();
    }

    void wait() const {
        ensure_valid();
        state_->wait();
    }

    /// Blocks (cooperatively on workers) and returns the value, consuming
    /// this future. Rethrows a stored exception.
    T get() {
        ensure_valid();
        auto st = std::move(state_);
        if constexpr (std::is_void_v<T>) {
            st->move_value();
        } else {
            return st->move_value();
        }
    }

    /// Convert to a copyable shared_future, consuming this future.
    shared_future<T> share() noexcept { return shared_future<T>(std::move(state_)); }

    /// Attach a continuation `f(future<T>&&)`; returns the continuation's
    /// result as a future (unwrapped one level if `f` itself returns a
    /// future). The continuation runs on the global pool.
    ///
    /// Allocation-free beyond the result state itself: the continuation
    /// task_node (and the callable, SBO permitting) is embedded in the
    /// result's shared state and linked intrusively into this future's
    /// state — no fn_task_node, no per-continuation vector slot.
    template <typename F>
    auto then(F&& f) -> future<unwrap_result_t<std::invoke_result_t<F, future<T>&&>>> {
        ensure_valid();
        using R0 = std::invoke_result_t<F, future<T>&&>;
        using R = unwrap_result_t<R0>;
        auto rs = std::make_shared<lcos::detail::shared_state<R>>();
        auto st = std::move(state_);
        auto* src = st.get();
        rs->task().arm(
            hpxlite::get_pool(), rs,
            [st = std::move(st), rs,
             fn = std::decay_t<F>(std::forward<F>(f))]() mutable {
                detail::invoke_into_state<R>(
                    rs, std::move(fn),
                    std::forward_as_tuple(future<T>(std::move(st))));
            },
            rs.get(), &lcos::detail::shared_state<R>::abandon_into);
        src->add_continuation_task(rs->task());
        return future<R>(std::move(rs));
    }

private:
    void ensure_valid() const {
        if (!state_) {
            throw lcos::detail::future_error("future: no shared state");
        }
    }

    friend detail::state_ptr<T> const& detail::get_state<T>(future<T> const&);

    detail::state_ptr<T> state_;
};

// ---------------------------------------------------------------------------
// shared_future<T>
// ---------------------------------------------------------------------------

/// Copyable future; `get()` returns a const reference (or void).
template <typename T>
class shared_future {
public:
    using value_type = T;

    shared_future() noexcept = default;
    explicit shared_future(detail::state_ptr<T> st) noexcept
      : state_(std::move(st)) {}
    shared_future(future<T>&& f) noexcept  // NOLINT(google-explicit-constructor)
      : shared_future(std::move(f).share()) {}

    [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

    [[nodiscard]] bool is_ready() const {
        ensure_valid();
        return state_->is_ready();
    }

    void wait() const {
        ensure_valid();
        state_->wait();
    }

    decltype(auto) get() const {
        ensure_valid();
        if constexpr (std::is_void_v<T>) {
            state_->wait_and_rethrow();
        } else {
            return state_->template value_ref<T>();
        }
    }

    template <typename F>
    auto then(F&& f) const
        -> future<unwrap_result_t<std::invoke_result_t<F, shared_future<T>>>> {
        ensure_valid();
        using R0 = std::invoke_result_t<F, shared_future<T>>;
        using R = unwrap_result_t<R0>;
        auto rs = std::make_shared<lcos::detail::shared_state<R>>();
        auto st = state_;
        auto* src = st.get();
        rs->task().arm(
            hpxlite::get_pool(), rs,
            [st = std::move(st), rs,
             fn = std::decay_t<F>(std::forward<F>(f))]() mutable {
                detail::invoke_into_state<R>(
                    rs, std::move(fn),
                    std::forward_as_tuple(shared_future<T>(st)));
            },
            rs.get(), &lcos::detail::shared_state<R>::abandon_into);
        src->add_continuation_task(rs->task());
        return future<R>(std::move(rs));
    }

private:
    void ensure_valid() const {
        if (!state_) {
            throw lcos::detail::future_error("shared_future: no shared state");
        }
    }

    friend detail::state_ptr<T> const& detail::get_state<T>(shared_future<T> const&);

    detail::state_ptr<T> state_;
};

// ---------------------------------------------------------------------------
// promise<T>
// ---------------------------------------------------------------------------

/// Producer side of a future. Destroying an unfulfilled promise stores a
/// broken_promise exception.
template <typename T>
class promise {
public:
    promise() : state_(std::make_shared<lcos::detail::shared_state<T>>()) {}

    promise(promise&&) noexcept = default;
    promise& operator=(promise&&) noexcept = default;
    promise(promise const&) = delete;
    promise& operator=(promise const&) = delete;

    ~promise() {
        if (state_ && !state_->is_ready()) {
            state_->set_exception(std::make_exception_ptr(
                lcos::detail::future_error("broken promise")));
        }
    }

    future<T> get_future() {
        if (future_taken_) {
            throw lcos::detail::future_error("promise: future already retrieved");
        }
        future_taken_ = true;
        return future<T>(state_);
    }

    template <typename... A>
    void set_value(A&&... a) {
        state_->set_value(std::forward<A>(a)...);
    }

    void set_exception(std::exception_ptr e) {
        state_->set_exception(std::move(e));
    }

private:
    detail::state_ptr<T> state_;
    bool future_taken_ = false;
};

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

namespace detail {

template <typename T>
state_ptr<T> const& get_state(future<T> const& f) {
    return f.state_;
}
template <typename T>
state_ptr<T> const& get_state(shared_future<T> const& f) {
    return f.state_;
}

template <typename T>
future<T> make_future_from_state(state_ptr<T> st) {
    return future<T>(std::move(st));
}

template <typename R, typename F, typename Tuple>
void invoke_into_state(state_ptr<R> const& rs, F&& f, Tuple&& args) {
    using R0 = decltype(std::apply(std::forward<F>(f), std::forward<Tuple>(args)));
    try {
        if constexpr (is_future_v<R0>) {
            // One-level unwrap: wait for the inner future, then forward.
            R0 inner = std::apply(std::forward<F>(f), std::forward<Tuple>(args));
            auto ist = get_state(inner);
            ist->add_continuation([ist, rs]() mutable {
                try {
                    if constexpr (std::is_void_v<R>) {
                        ist->wait_and_rethrow();
                        rs->set_value();
                    } else {
                        rs->set_value(ist->move_value());
                    }
                } catch (...) {
                    rs->set_exception(std::current_exception());
                }
            });
        } else if constexpr (std::is_void_v<R0>) {
            std::apply(std::forward<F>(f), std::forward<Tuple>(args));
            rs->set_value();
        } else {
            rs->set_value(
                std::apply(std::forward<F>(f), std::forward<Tuple>(args)));
        }
    } catch (...) {
        rs->set_exception(std::current_exception());
    }
}

}  // namespace detail

/// A future that is already ready, holding `value`.
template <typename T>
future<std::decay_t<T>> make_ready_future(T&& value) {
    auto st = std::make_shared<lcos::detail::shared_state<std::decay_t<T>>>();
    st->set_value(std::forward<T>(value));
    return future<std::decay_t<T>>(std::move(st));
}

inline future<void> make_ready_future() {
    auto st = std::make_shared<lcos::detail::shared_state<void>>();
    st->set_value();
    return future<void>(std::move(st));
}

/// A future that is already holding an exception.
template <typename T>
future<T> make_exceptional_future(std::exception_ptr e) {
    auto st = std::make_shared<lcos::detail::shared_state<T>>();
    st->set_exception(std::move(e));
    return future<T>(std::move(st));
}

/// Launch `f(args...)` on the global pool; returns its result as a
/// future. The work rides the task_node embedded in the future's shared
/// state — no fn_task_node allocation on the spawn path.
template <typename F, typename... Args>
auto async(F&& f, Args&&... args)
    -> future<unwrap_result_t<std::invoke_result_t<F, Args...>>> {
    using R0 = std::invoke_result_t<F, Args...>;
    using R = unwrap_result_t<R0>;
    auto rs = std::make_shared<lcos::detail::shared_state<R>>();
    rs->launch(
        hpxlite::get_pool(), rs,
        [rs, fn = std::decay_t<F>(std::forward<F>(f)),
         tup = std::make_tuple(std::decay_t<Args>(std::forward<Args>(args))...)]() mutable {
            detail::invoke_into_state<R>(rs, std::move(fn), std::move(tup));
        });
    return future<R>(std::move(rs));
}

}  // namespace hpxlite::lcos

namespace hpxlite {
using lcos::async;
using lcos::future;
using lcos::is_future_v;
using lcos::make_exceptional_future;
using lcos::make_ready_future;
using lcos::promise;
using lcos::shared_future;
}  // namespace hpxlite
