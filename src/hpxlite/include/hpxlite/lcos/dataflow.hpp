#pragma once

#include <atomic>
#include <memory>
#include <tuple>
#include <type_traits>
#include <utility>

#include <hpxlite/lcos/future.hpp>
#include <hpxlite/runtime.hpp>

namespace hpxlite::lcos {

namespace detail {

/// Frame shared between the dataflow call-site and the continuations
/// hooked onto its future arguments. Holds the callable and all arguments
/// until the last future becomes ready, then schedules the invocation on
/// the pool. The result is published through `result`.
template <typename F, typename Tuple, typename R>
struct dataflow_frame
  : std::enable_shared_from_this<dataflow_frame<F, Tuple, R>> {
    dataflow_frame(F f, Tuple t) : fn(std::move(f)), args(std::move(t)) {}

    F fn;
    Tuple args;
    std::atomic<std::size_t> pending{1};  // +1 armer sentinel
    state_ptr<R> result = std::make_shared<lcos::detail::shared_state<R>>();

    void arm() {
        auto self = this->shared_from_this();
        std::apply(
            [&](auto&... as) {
                (
                    [&](auto& a) {
                        using A = std::decay_t<decltype(a)>;
                        if constexpr (is_future_v<A>) {
                            if (a.valid()) {
                                auto st = get_state(a);
                                if (!st->is_ready()) {
                                    pending.fetch_add(
                                        1, std::memory_order_relaxed);
                                    st->add_continuation(
                                        [self] { self->notify(); });
                                }
                            }
                        }
                    }(as),
                    ...);
            },
            args);
        notify();  // release sentinel
    }

    void notify() {
        if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            auto self = this->shared_from_this();
            hpxlite::get_pool().submit([self] { self->execute(); });
        }
    }

    void execute() {
        invoke_into_state<R>(result, std::move(fn), std::move(args));
    }
};

}  // namespace detail

/// hpx::lcos::local::dataflow: defer invoking `f(args...)` until every
/// future among `args` is ready, then run it on the pool. Future
/// arguments are passed through *as (ready) futures*; combine with
/// hpxlite::unwrapped to receive plain values. Returns the result as a
/// future (unwrapped one level when `f` itself returns a future).
///
/// Chained dataflows form the implicit execution DAG the paper relies on
/// for interleaving OP2 loops (Figures 6–11).
template <typename F, typename... Ts>
auto dataflow(F&& f, Ts&&... ts)
    -> future<unwrap_result_t<
        std::invoke_result_t<std::decay_t<F>, std::decay_t<Ts>&&...>>> {
    using tuple_t = std::tuple<std::decay_t<Ts>...>;
    using R0 = std::invoke_result_t<std::decay_t<F>, std::decay_t<Ts>&&...>;
    using R = unwrap_result_t<R0>;
    auto frame =
        std::make_shared<detail::dataflow_frame<std::decay_t<F>, tuple_t, R>>(
            std::decay_t<F>(std::forward<F>(f)),
            tuple_t(std::forward<Ts>(ts)...));
    auto result = frame->result;
    frame->arm();
    return future<R>(std::move(result));
}

}  // namespace hpxlite::lcos

namespace hpxlite {
using lcos::dataflow;
}
