#pragma once

// One env-flag parser for every locality knob (OP2HPX_BIND_WORKERS,
// OP2HPX_FIRST_TOUCH, OP2HPX_SIMD_GATHER, ...): the accepted spellings
// must not drift between knobs, and a fix must reach all of them.

#include <cstdlib>
#include <cstring>

namespace hpxlite::util {

/// Read boolean environment variable `name`. Unset or unrecognised
/// values yield `fallback`; 1/on/true/yes mean true and 0/off/false/no
/// mean false, case-insensitively.
[[nodiscard]] inline bool env_flag(char const* name, bool fallback) noexcept {
    char const* v = std::getenv(name);
    if (v == nullptr) {
        return fallback;
    }
    auto matches = [v](char const* word) {
        std::size_t i = 0;
        for (; word[i] != '\0'; ++i) {
            char const c = v[i];
            char const lower =
                c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
            if (lower != word[i]) {
                return false;
            }
        }
        return v[i] == '\0';
    };
    for (char const* t : {"1", "on", "true", "yes"}) {
        if (matches(t)) {
            return true;
        }
    }
    for (char const* f : {"0", "off", "false", "no"}) {
        if (matches(f)) {
            return false;
        }
    }
    return fallback;
}

}  // namespace hpxlite::util
