#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace hpxlite::util {

/// A move-only replacement for std::function<void()>.
///
/// Tasks routinely capture promises and futures, which are move-only, so
/// std::function (which requires CopyConstructible targets) cannot hold
/// them. Uses a small-buffer optimisation for targets up to 48 bytes.
class unique_function {
    static constexpr std::size_t sbo_size = 48;
    static constexpr std::size_t sbo_align = alignof(std::max_align_t);

    struct vtable {
        void (*invoke)(void* obj);
        void (*move_to)(void* from, void* to) noexcept;
        void (*destroy)(void* obj) noexcept;
        bool heap;
    };

    template <typename F, bool Heap>
    static vtable const* vtable_for() {
        static constexpr vtable vt{
            // invoke
            +[](void* obj) {
                if constexpr (Heap) {
                    (*static_cast<F*>(*static_cast<void**>(obj)))();
                } else {
                    (*static_cast<F*>(obj))();
                }
            },
            // move_to
            +[](void* from, void* to) noexcept {
                if constexpr (Heap) {
                    *static_cast<void**>(to) = *static_cast<void**>(from);
                    *static_cast<void**>(from) = nullptr;
                } else {
                    ::new (to) F(std::move(*static_cast<F*>(from)));
                    static_cast<F*>(from)->~F();
                }
            },
            // destroy
            +[](void* obj) noexcept {
                if constexpr (Heap) {
                    delete static_cast<F*>(*static_cast<void**>(obj));
                } else {
                    static_cast<F*>(obj)->~F();
                }
            },
            Heap};
        return &vt;
    }

public:
    unique_function() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, unique_function> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    unique_function(F&& f) {  // NOLINT(google-explicit-constructor)
        using D = std::decay_t<F>;
        if constexpr (sizeof(D) <= sbo_size && alignof(D) <= sbo_align &&
                      std::is_nothrow_move_constructible_v<D>) {
            ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
            vt_ = vtable_for<D, false>();
        } else {
            *reinterpret_cast<void**>(buffer_) = new D(std::forward<F>(f));
            vt_ = vtable_for<D, true>();
        }
    }

    unique_function(unique_function&& other) noexcept { move_from(other); }

    unique_function& operator=(unique_function&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    unique_function(unique_function const&) = delete;
    unique_function& operator=(unique_function const&) = delete;

    ~unique_function() { reset(); }

    void operator()() {
        vt_->invoke(buffer_);
    }

    explicit operator bool() const noexcept { return vt_ != nullptr; }

    void reset() noexcept {
        if (vt_ != nullptr) {
            vt_->destroy(buffer_);
            vt_ = nullptr;
        }
    }

private:
    void move_from(unique_function& other) noexcept {
        if (other.vt_ != nullptr) {
            other.vt_->move_to(other.buffer_, buffer_);
            vt_ = other.vt_;
            other.vt_ = nullptr;
        }
    }

    alignas(sbo_align) unsigned char buffer_[sbo_size] = {};
    vtable const* vt_ = nullptr;
};

}  // namespace hpxlite::util
