#pragma once

#include <cstddef>
#include <iterator>

namespace hpxlite::util {

/// Random-access counting iterator over std::size_t, the hpxlite stand-in
/// for boost::irange used in the paper's listings.
class counting_iterator {
public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = std::size_t;
    using difference_type = std::ptrdiff_t;
    using pointer = std::size_t const*;
    using reference = std::size_t;

    counting_iterator() noexcept = default;
    explicit counting_iterator(std::size_t v) noexcept : v_(v) {}

    reference operator*() const noexcept { return v_; }
    reference operator[](difference_type k) const noexcept {
        return v_ + static_cast<std::size_t>(k);
    }

    counting_iterator& operator++() noexcept {
        ++v_;
        return *this;
    }
    counting_iterator operator++(int) noexcept {
        auto t = *this;
        ++v_;
        return t;
    }
    counting_iterator& operator--() noexcept {
        --v_;
        return *this;
    }
    counting_iterator operator--(int) noexcept {
        auto t = *this;
        --v_;
        return t;
    }
    counting_iterator& operator+=(difference_type k) noexcept {
        v_ += static_cast<std::size_t>(k);
        return *this;
    }
    counting_iterator& operator-=(difference_type k) noexcept {
        v_ -= static_cast<std::size_t>(k);
        return *this;
    }

    friend counting_iterator operator+(counting_iterator it,
                                       difference_type k) noexcept {
        return it += k;
    }
    friend counting_iterator operator+(difference_type k,
                                       counting_iterator it) noexcept {
        return it += k;
    }
    friend counting_iterator operator-(counting_iterator it,
                                       difference_type k) noexcept {
        return it -= k;
    }
    friend difference_type operator-(counting_iterator a,
                                     counting_iterator b) noexcept {
        return static_cast<difference_type>(a.v_) -
               static_cast<difference_type>(b.v_);
    }
    friend bool operator==(counting_iterator a, counting_iterator b) noexcept {
        return a.v_ == b.v_;
    }
    friend bool operator!=(counting_iterator a, counting_iterator b) noexcept {
        return a.v_ != b.v_;
    }
    friend bool operator<(counting_iterator a, counting_iterator b) noexcept {
        return a.v_ < b.v_;
    }
    friend bool operator<=(counting_iterator a, counting_iterator b) noexcept {
        return a.v_ <= b.v_;
    }
    friend bool operator>(counting_iterator a, counting_iterator b) noexcept {
        return a.v_ > b.v_;
    }
    friend bool operator>=(counting_iterator a, counting_iterator b) noexcept {
        return a.v_ >= b.v_;
    }

private:
    std::size_t v_ = 0;
};

/// Half-open index range [begin, end), analogous to boost::irange.
class irange {
public:
    irange(std::size_t b, std::size_t e) noexcept : b_(b), e_(e < b ? b : e) {}

    [[nodiscard]] counting_iterator begin() const noexcept {
        return counting_iterator(b_);
    }
    [[nodiscard]] counting_iterator end() const noexcept {
        return counting_iterator(e_);
    }
    [[nodiscard]] std::size_t size() const noexcept { return e_ - b_; }

private:
    std::size_t b_;
    std::size_t e_;
};

}  // namespace hpxlite::util
