#pragma once

#include <functional>
#include <type_traits>
#include <utility>

#include <hpxlite/lcos/future.hpp>

namespace hpxlite::util {

namespace detail {

template <typename T>
decltype(auto) unwrap_arg(T&& t) {
    if constexpr (lcos::is_future_v<T>) {
        static_assert(!std::is_void_v<lcos::future_value_t<T>>,
                      "unwrapped cannot forward future<void> as an argument");
        return std::forward<T>(t).get();
    } else {
        return std::forward<T>(t);
    }
}

}  // namespace detail

/// `unwrapped(f)` adapts a callable so it can be used with dataflow:
/// future arguments are replaced with their values (`.get()`), non-future
/// arguments pass through unchanged. This mirrors hpx::util::unwrapped as
/// used in Figures 7 and 8 of the paper.
template <typename F>
struct unwrapping_t {
    F f;

    template <typename... Ts>
    decltype(auto) operator()(Ts&&... ts) {
        return std::invoke(f, detail::unwrap_arg(std::forward<Ts>(ts))...);
    }
};

template <typename F>
unwrapping_t<std::decay_t<F>> unwrapped(F&& f) {
    return {std::forward<F>(f)};
}

}  // namespace hpxlite::util

namespace hpxlite {
using util::unwrapped;
}
