#pragma once

#include <chrono>
#include <cstdint>

namespace hpxlite::util {

/// Monotonic wall-clock helpers used by the auto chunkers and the benches.
using clock = std::chrono::steady_clock;

inline std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               clock::now().time_since_epoch())
        .count();
}

/// Simple stopwatch: `elapsed_ns()` since construction or last `reset()`.
class stopwatch {
public:
    stopwatch() noexcept : start_(clock::now()) {}

    void reset() noexcept { start_ = clock::now(); }

    [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   clock::now() - start_)
            .count();
    }

    [[nodiscard]] double elapsed_s() const noexcept {
        return static_cast<double>(elapsed_ns()) * 1e-9;
    }

private:
    clock::time_point start_;
};

}  // namespace hpxlite::util
