#pragma once

#include <atomic>
#include <thread>

namespace hpxlite::util {

/// A test-and-test-and-set spinlock with exponential backoff.
///
/// Satisfies Lockable, so it can be used with std::unique_lock and
/// std::condition_variable_any. Used to protect the short critical sections
/// of future shared states and the pool queues, where a full std::mutex
/// would be disproportionate.
class spinlock {
public:
    spinlock() noexcept = default;
    spinlock(spinlock const&) = delete;
    spinlock& operator=(spinlock const&) = delete;

    void lock() noexcept {
        int spins = 0;
        for (;;) {
            if (!flag_.exchange(true, std::memory_order_acquire)) {
                return;
            }
            while (flag_.load(std::memory_order_relaxed)) {
                if (++spins < 64) {
                    // busy-wait a short while before yielding
#if defined(__x86_64__) || defined(__i386__)
                    __builtin_ia32_pause();
#endif
                } else {
                    std::this_thread::yield();
                }
            }
        }
    }

    bool try_lock() noexcept {
        return !flag_.load(std::memory_order_relaxed) &&
               !flag_.exchange(true, std::memory_order_acquire);
    }

    void unlock() noexcept { flag_.store(false, std::memory_order_release); }

private:
    std::atomic<bool> flag_{false};
};

}  // namespace hpxlite::util
