#pragma once

#include <cstddef>

#include <hpxlite/threads/thread_pool.hpp>

namespace hpxlite {

/// Runtime configuration for hpxlite::init().
struct runtime_config {
    /// Number of OS worker threads. 0 means "decide automatically":
    /// the HPXLITE_NUM_THREADS environment variable if set, otherwise
    /// std::thread::hardware_concurrency().
    std::size_t num_threads = 0;
};

/// Initialise the global runtime (idempotent; re-init with a different
/// thread count tears the old pool down first, which requires it to be
/// idle). All parallel algorithms and dataflow default to this pool.
void init(runtime_config cfg = {});

/// Destroy the global pool. Safe to call when not initialised.
void finalize();

/// The global pool; lazily initialised with default config on first use.
threads::thread_pool& get_pool();

/// Number of worker threads in the global pool.
std::size_t get_num_worker_threads();

/// RAII helper for tests and benches that need a specific thread count.
class runtime_guard {
public:
    explicit runtime_guard(std::size_t num_threads) {
        init(runtime_config{num_threads});
    }
    runtime_guard(runtime_guard const&) = delete;
    runtime_guard& operator=(runtime_guard const&) = delete;
    ~runtime_guard() { finalize(); }
};

}  // namespace hpxlite
