#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <variant>

namespace hpxlite::execution {

/// Fixed chunk size. size == 0 means "n / (4 * workers)" at run time.
struct static_chunk_size {
    std::size_t size = 0;
};

/// Self-scheduling: workers repeatedly grab `size` iterations from a
/// shared counter. Good for irregular per-iteration cost.
struct dynamic_chunk_size {
    std::size_t size = 1024;
};

/// Time-targeted chunking: probe a handful of iterations, derive the
/// per-iteration cost, then size chunks so each takes ~target_ns.
/// (Mirrors hpx::parallel::auto_chunk_size.)
struct auto_chunk_size {
    std::int64_t target_ns = 100'000;  // 100 us per chunk
};

/// Shared calibration state for persistent_auto_chunk_size.
///
/// The *first* loop executed against a given domain fixes the target
/// chunk execution time; every subsequent loop (typically the dependent
/// loops interleaved with the first through dataflow) probes its own
/// per-iteration cost and solves for the chunk size giving the *same
/// chunk execution time* (paper Fig. 12b: chunk1/chunk2/chunk3 differ in
/// size but equalise in duration).
class chunk_domain {
public:
    /// Record the measured chunk time of the calibrating loop.
    /// Only the first record wins; later calls are ignored.
    void record(std::int64_t chunk_time_ns) noexcept {
        std::int64_t expected = 0;
        target_.compare_exchange_strong(expected, chunk_time_ns,
                                        std::memory_order_acq_rel);
    }

    [[nodiscard]] std::int64_t target_ns() const noexcept {
        return target_.load(std::memory_order_acquire);
    }

    [[nodiscard]] bool calibrated() const noexcept { return target_ns() != 0; }

    void reset() noexcept { target_.store(0, std::memory_order_release); }

private:
    std::atomic<std::int64_t> target_{0};
};

/// The execution policy parameter proposed by the paper (Section IV-B):
/// equalise chunk *execution times* across dependent loops sharing a
/// chunk_domain. With domain == nullptr a process-global domain is used.
struct persistent_auto_chunk_size {
    chunk_domain* domain = nullptr;
    /// Target used by the calibrating (first) loop.
    std::int64_t default_target_ns = 100'000;
};

/// Tagged union over all chunk-size parameters understood by the
/// parallel algorithms.
using chunker =
    std::variant<static_chunk_size, dynamic_chunk_size, auto_chunk_size,
                 persistent_auto_chunk_size>;

/// The process-global chunk domain used when persistent_auto_chunk_size
/// is constructed without an explicit domain.
chunk_domain& global_chunk_domain();

namespace detail {

/// Decision produced by resolve_chunk(): how to partition `n` iterations.
struct chunk_plan {
    std::size_t chunk = 1;      // iterations per task
    bool self_scheduling = false;
    // When the chunker required probing, iterations [0, probed) have
    // already been executed inline by resolve_chunk.
    std::size_t probed = 0;
    // Domain to calibrate with the achieved chunk time (or nullptr).
    chunk_domain* calibrate = nullptr;
    std::int64_t per_iter_ns = 0;
};

/// Number of iterations to probe for time-based chunkers.
std::size_t probe_count(std::size_t n) noexcept;

/// Clamp helper shared by the chunk heuristics.
std::size_t clamp_chunk(std::size_t chunk, std::size_t n,
                        std::size_t workers) noexcept;

}  // namespace detail

}  // namespace hpxlite::execution
