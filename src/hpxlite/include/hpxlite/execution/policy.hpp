#pragma once

#include <cstddef>

#include <hpxlite/execution/chunkers.hpp>
#include <hpxlite/threads/thread_pool.hpp>

namespace hpxlite::execution {

/// Tag passed to a policy's call operator to obtain its asynchronous
/// (task) variant: `par(task)`, `seq(task)` — Table I of the paper.
struct task_policy_tag {
    explicit constexpr task_policy_tag() = default;
};
inline constexpr task_policy_tag task{};

class sequenced_task_policy;
class parallel_task_policy;

/// Sequential execution (Table I: `seq`).
class sequenced_policy {
public:
    sequenced_task_policy operator()(task_policy_tag) const noexcept;
};

/// Sequential + asynchronous (Table I: `seq(task)`): the algorithm runs
/// as a single task and returns a future.
class sequenced_task_policy {};

/// Parallel execution (Table I: `par`). Carries a chunk-size parameter
/// and (optionally) a specific pool; defaults to the global runtime pool.
class parallel_policy {
public:
    parallel_task_policy operator()(task_policy_tag) const noexcept;

    /// Return a copy of this policy using chunker `c`
    /// (e.g. `par.with(persistent_auto_chunk_size{})`).
    [[nodiscard]] parallel_policy with(chunker c) const {
        parallel_policy p(*this);
        p.chunk = std::move(c);
        return p;
    }

    [[nodiscard]] parallel_policy on(threads::thread_pool& target) const {
        parallel_policy p(*this);
        p.pool = &target;
        return p;
    }

    chunker chunk = auto_chunk_size{};
    threads::thread_pool* pool = nullptr;  // nullptr → global pool
};

/// Parallel + asynchronous (Table I: `par(task)`): returns a future.
class parallel_task_policy {
public:
    [[nodiscard]] parallel_task_policy with(chunker c) const {
        parallel_task_policy p(*this);
        p.chunk = std::move(c);
        return p;
    }

    [[nodiscard]] parallel_task_policy on(threads::thread_pool& target) const {
        parallel_task_policy p(*this);
        p.pool = &target;
        return p;
    }

    chunker chunk = auto_chunk_size{};
    threads::thread_pool* pool = nullptr;
};

inline sequenced_task_policy sequenced_policy::operator()(
    task_policy_tag) const noexcept {
    return {};
}

inline parallel_task_policy parallel_policy::operator()(
    task_policy_tag) const noexcept {
    parallel_task_policy p;
    p.chunk = chunk;
    p.pool = pool;
    return p;
}

inline const sequenced_policy seq{};
inline const parallel_policy par{};

template <typename P>
struct is_task_policy : std::false_type {};
template <>
struct is_task_policy<sequenced_task_policy> : std::true_type {};
template <>
struct is_task_policy<parallel_task_policy> : std::true_type {};
template <typename P>
inline constexpr bool is_task_policy_v = is_task_policy<std::decay_t<P>>::value;

template <typename P>
struct is_parallel_policy : std::false_type {};
template <>
struct is_parallel_policy<parallel_policy> : std::true_type {};
template <>
struct is_parallel_policy<parallel_task_policy> : std::true_type {};
template <typename P>
inline constexpr bool is_parallel_policy_v =
    is_parallel_policy<std::decay_t<P>>::value;

template <typename P>
struct is_execution_policy : std::false_type {};
template <>
struct is_execution_policy<sequenced_policy> : std::true_type {};
template <>
struct is_execution_policy<sequenced_task_policy> : std::true_type {};
template <>
struct is_execution_policy<parallel_policy> : std::true_type {};
template <>
struct is_execution_policy<parallel_task_policy> : std::true_type {};
template <typename P>
inline constexpr bool is_execution_policy_v =
    is_execution_policy<std::decay_t<P>>::value;

}  // namespace hpxlite::execution

namespace hpxlite {
namespace parallel {
using execution::par;
using execution::seq;
using execution::task;
}  // namespace parallel
}  // namespace hpxlite
