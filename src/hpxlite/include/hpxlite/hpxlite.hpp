// Umbrella header for hpxlite — the HPX-runtime subset reimplemented for
// the OP2/HPX paper reproduction. See DESIGN.md for scope and mapping to
// the original HPX constructs.
#pragma once

#include <hpxlite/config.hpp>
#include <hpxlite/runtime.hpp>

#include <hpxlite/threads/thread_pool.hpp>

#include <hpxlite/lcos/dataflow.hpp>
#include <hpxlite/lcos/future.hpp>
#include <hpxlite/lcos/sync.hpp>
#include <hpxlite/lcos/when_all.hpp>

#include <hpxlite/execution/chunkers.hpp>
#include <hpxlite/execution/policy.hpp>

#include <hpxlite/algorithms/for_each.hpp>
#include <hpxlite/algorithms/for_loop.hpp>
#include <hpxlite/algorithms/reduce.hpp>
#include <hpxlite/algorithms/transform.hpp>

#include <hpxlite/prefetching/prefetcher.hpp>

#include <hpxlite/util/irange.hpp>
#include <hpxlite/util/timing.hpp>
#include <hpxlite/util/unwrapped.hpp>
