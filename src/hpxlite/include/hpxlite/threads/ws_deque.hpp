#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define HPXLITE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HPXLITE_TSAN 1
#endif
#endif

namespace hpxlite::threads {

namespace detail {
/// ThreadSanitizer does not model std::atomic_thread_fence, so the
/// fence-published payload hand-off (owner writes the item, thief reads
/// it after winning the CAS) is reported as a race. Under TSan the slot
/// store/load pair carries an explicit release/acquire edge instead —
/// semantically redundant with the fences, but visible to the tool.
#ifdef HPXLITE_TSAN
inline constexpr std::memory_order slot_store_order =
    std::memory_order_release;
inline constexpr std::memory_order slot_load_order = std::memory_order_acquire;
#else
inline constexpr std::memory_order slot_store_order =
    std::memory_order_relaxed;
inline constexpr std::memory_order slot_load_order = std::memory_order_relaxed;
#endif
}  // namespace detail

/// Chase–Lev lock-free work-stealing deque (the formulation of Lê,
/// Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing for
/// Weak Memory Models", PPoPP'13), specialised to pointer-sized items.
///
/// Exactly one owner thread may call push()/pop() (bottom end, LIFO —
/// cache-friendly for nested spawns); any number of thieves may call
/// steal() (top end, FIFO — good for load balance). No operation takes a
/// lock; the only synchronisation is one CAS on the contended
/// pop-vs-steal race for the last item.
///
/// The ring buffer grows geometrically. Old rings must stay readable by
/// in-flight thieves, so they are retired to a list owned by the deque
/// and freed on destruction (a few KiB at worst — a deque that peaked at
/// N items has retired at most 2N slots).
template <typename T>
class ws_deque {
    static_assert(sizeof(T*) <= sizeof(void*));

public:
    explicit ws_deque(std::size_t initial_capacity = 256) {
        // Ring indexing masks with cap-1, so the capacity must be a
        // power of two; round odd requests up instead of corrupting.
        rings_.push_back(std::make_unique<ring>(
            std::bit_ceil(std::max<std::size_t>(2, initial_capacity))));
        buf_.store(rings_.back().get(), std::memory_order_relaxed);
    }

    ws_deque(ws_deque const&) = delete;
    ws_deque& operator=(ws_deque const&) = delete;

    ~ws_deque() {
        // The pool drains before tearing down workers; this handles the
        // abnormal path so queued items never leak. Intrusive items
        // (task_node) are not owned via delete — they get their disposal
        // hook instead.
        while (T* t = pop()) {
            if constexpr (requires { t->discard(); }) {
                t->discard();
            } else {
                delete t;
            }
        }
    }

    /// Owner only. Takes ownership of `t`.
    void push(T* t) {
        std::int64_t const b = bottom_.load(std::memory_order_relaxed);
        std::int64_t const top = top_.load(std::memory_order_acquire);
        ring* a = buf_.load(std::memory_order_relaxed);
        if (b - top > static_cast<std::int64_t>(a->cap) - 1) {
            a = grow(a, top, b);
        }
        a->slot(b).store(t, detail::slot_store_order);
        std::atomic_thread_fence(std::memory_order_release);
        bottom_.store(b + 1, std::memory_order_relaxed);
    }

    /// Owner only. nullptr when empty.
    T* pop() {
        std::int64_t const b = bottom_.load(std::memory_order_relaxed) - 1;
        ring* const a = buf_.load(std::memory_order_relaxed);
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_relaxed);
        T* x = nullptr;
        if (t <= b) {
            x = a->slot(b).load(std::memory_order_relaxed);
            if (t == b) {
                // Last item: race the thieves for it.
                if (!top_.compare_exchange_strong(t, t + 1,
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_relaxed)) {
                    x = nullptr;  // a thief won
                }
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
        } else {
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return x;
    }

    /// Any thread. nullptr when empty *or* when the CAS race was lost
    /// (callers treat both as a miss and move to the next victim).
    T* steal() {
        std::int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t const b = bottom_.load(std::memory_order_acquire);
        if (t >= b) {
            return nullptr;
        }
        ring* const a = buf_.load(std::memory_order_acquire);
        T* x = a->slot(t).load(detail::slot_load_order);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
            return nullptr;
        }
        return x;
    }

    /// Approximate (racy) emptiness check, for spin heuristics only.
    [[nodiscard]] bool empty() const noexcept {
        return bottom_.load(std::memory_order_relaxed) <=
               top_.load(std::memory_order_relaxed);
    }

private:
    struct ring {
        explicit ring(std::size_t n)
          : cap(n), mask(n - 1), slots(new std::atomic<T*>[n]) {}
        std::size_t const cap;
        std::size_t const mask;
        std::unique_ptr<std::atomic<T*>[]> slots;

        std::atomic<T*>& slot(std::int64_t i) noexcept {
            return slots[static_cast<std::size_t>(i) & mask];
        }
    };

    /// Owner only (called from push). Copies the live range into a ring
    /// of twice the capacity and publishes it; the old ring is retired,
    /// not freed, because thieves may still be reading it.
    ring* grow(ring* a, std::int64_t top, std::int64_t b) {
        rings_.push_back(std::make_unique<ring>(a->cap * 2));
        ring* const bigger = rings_.back().get();
        for (std::int64_t i = top; i < b; ++i) {
            bigger->slot(i).store(a->slot(i).load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
        }
        buf_.store(bigger, std::memory_order_release);
        return bigger;
    }

    alignas(64) std::atomic<std::int64_t> top_{0};
    alignas(64) std::atomic<std::int64_t> bottom_{0};
    std::atomic<ring*> buf_{nullptr};
    std::vector<std::unique_ptr<ring>> rings_;  // owner-mutated only
};

}  // namespace hpxlite::threads
