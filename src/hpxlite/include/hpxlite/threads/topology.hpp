#pragma once

// CPU/NUMA topology probe. One read-only snapshot per process, taken
// on first use:
//
//  * with libnuma available at configure time (OP2HPX_WITH_NUMA, the
//    HPXLITE_HAS_LIBNUMA compile definition) the node map comes from
//    numa_node_of_cpu and page placement (bind_range_to_node) goes
//    through numa_tonode_memory/mbind;
//  * without it, the node map is parsed from
//    /sys/devices/system/node/node*/cpulist (Linux, no library
//    needed) and page placement is a no-op — first-touch still places
//    pages correctly because the touching worker is core-bound;
//  * anywhere else (or when both probes fail) the topology degrades to
//    a single node with an identity core order, which reproduces the
//    pre-topology `i % hardware_concurrency` binding exactly.
//
// Consumers: thread_pool::bind_worker picks worker i's core node-major
// (fill one node's cores before spilling to the next, so a partition's
// owner and its neighbours share a memory controller), and the op2
// memory layer re-exports the snapshot as op2::memory::topology().

#include <cstddef>
#include <vector>

namespace hpxlite::threads {

struct topology_info {
    /// Number of NUMA nodes (>= 1).
    std::size_t nodes = 1;
    /// cpu id -> node id, sized by the probed CPU count.
    std::vector<int> core_node;
    /// CPU ids grouped node-major: all of node 0's cpus (ascending),
    /// then node 1's, ... Worker i binds to node_major[i % cpus()].
    std::vector<int> node_major;

    [[nodiscard]] std::size_t cpus() const noexcept {
        return core_node.size();
    }
    [[nodiscard]] int node_of(std::size_t cpu) const noexcept {
        return cpu < core_node.size() ? core_node[cpu] : 0;
    }
};

/// The process's topology snapshot (probed once, immutable, safe to
/// read concurrently).
[[nodiscard]] topology_info const& topology();

/// Best-effort page placement: ask the OS to put [p, p + len) on
/// `node`. True only when libnuma was linked and the call succeeded;
/// false is not an error — callers rely on core-bound first touch as
/// the portable placement mechanism and treat this as an accelerator.
bool bind_range_to_node(void* p, std::size_t len, int node) noexcept;

}  // namespace hpxlite::threads
