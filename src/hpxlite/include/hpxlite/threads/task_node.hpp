#pragma once

#include <hpxlite/util/unique_function.hpp>

namespace hpxlite::threads {

/// Intrusive unit of work for the pool's queues.
///
/// The Chase–Lev deques store plain pointers, which used to force one
/// heap allocation per submitted task (`new unique_function`) even when
/// the callable itself fit the function's small buffer. A task_node is
/// instead embedded in whatever already owns the work — a bulk sweep's
/// stack frame, op2's dataflow loop node — so the spawn path allocates
/// nothing. The single `action` pointer both runs and disposes
/// (`run == true`) or disposes only (`run == false`, pool teardown with
/// work still queued); disposal means "release whatever keeps the node
/// alive", which for embedded nodes is usually a no-op or a refcount
/// drop, never `delete this` by the queue.
struct task_node {
    using action_type = void (*)(task_node*, bool run);
    action_type action = nullptr;

    void execute() { action(this, true); }
    void discard() noexcept { action(this, false); }
};

/// Heap adapter for the type-erased submit(unique_function) path: one
/// node embedding the callable. External/generic submits that have no
/// natural node to embed into still pay exactly one allocation, as
/// before — the win is that callers with a node now pay zero.
struct fn_task_node final : task_node {
    util::unique_function fn;

    explicit fn_task_node(util::unique_function f) : fn(std::move(f)) {
        action = [](task_node* n, bool run) {
            auto* self = static_cast<fn_task_node*>(n);
            if (run) {
                // Free the node even if fn throws (an escaped exception
                // terminates the worker anyway, but don't leak).
                struct guard {
                    fn_task_node* node;
                    ~guard() { delete node; }
                } g{self};
                self->fn();
            } else {
                delete self;
            }
        };
    }
};

}  // namespace hpxlite::threads
