#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <hpxlite/util/spinlock.hpp>
#include <hpxlite/util/unique_function.hpp>

namespace hpxlite::threads {

/// A fixed-size worker pool with per-worker queues and work stealing.
///
/// Design notes (see DESIGN.md):
///  * Workers pop LIFO from their own queue (cache-friendly for nested
///    spawns) and steal FIFO from victims (good for load balance).
///  * `run_one()` lets *any* thread — worker or external — execute one
///    pending task. future::wait() uses it to "help" instead of blocking,
///    which is what makes nested waits deadlock-free even with one OS
///    thread in the pool.
///  * Sleeping workers park on a condition variable; `submit` wakes one.
class thread_pool {
public:
    using task_type = util::unique_function;

    /// Create a pool with `num_threads` OS worker threads (>= 1).
    explicit thread_pool(std::size_t num_threads);

    thread_pool(thread_pool const&) = delete;
    thread_pool& operator=(thread_pool const&) = delete;

    /// Joins all workers. Pending tasks are drained before shutdown.
    ~thread_pool();

    /// Schedule `t` for execution. Thread-safe. Tasks submitted from a
    /// worker thread go to that worker's local queue.
    void submit(task_type t);

    /// Execute one pending task if any is available.
    /// @return true if a task was executed.
    bool run_one();

    /// Number of worker threads.
    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// True when the calling thread is one of *this* pool's workers.
    [[nodiscard]] bool on_worker_thread() const noexcept;

    /// Index of the calling worker in [0, size()), or size() for external
    /// threads. Used by parallel algorithms for per-worker scratch space.
    [[nodiscard]] std::size_t worker_index() const noexcept;

    /// Block until no task is queued or running. Intended for tests.
    void wait_idle();

    /// Total number of tasks executed since construction (approximate,
    /// relaxed counter). Exposed for the micro benches.
    [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
        return executed_.load(std::memory_order_relaxed);
    }

private:
    struct worker_queue {
        util::spinlock mtx;
        std::deque<task_type> tasks;
    };

    void worker_loop(std::size_t index);
    bool try_pop(std::size_t index, task_type& out);
    bool try_steal(std::size_t thief, task_type& out);
    bool try_pop_global(task_type& out);

    std::vector<std::unique_ptr<worker_queue>> queues_;
    worker_queue global_queue_;

    std::vector<std::thread> workers_;

    std::mutex sleep_mtx_;
    std::condition_variable sleep_cv_;

    std::mutex idle_mtx_;
    std::condition_variable idle_cv_;

    std::atomic<std::size_t> pending_{0};  // queued + running
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<bool> stop_{false};
};

}  // namespace hpxlite::threads
