#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <hpxlite/threads/task_node.hpp>
#include <hpxlite/threads/ws_deque.hpp>
#include <hpxlite/util/spinlock.hpp>
#include <hpxlite/util/unique_function.hpp>

namespace hpxlite::threads {

/// What a task-fault hook asks the pool to do with the task it is about
/// to run. `drop` discards the node without executing it — the same
/// path pool teardown takes for never-run tasks — so upper layers can
/// test their abandoned-work error handling deterministically.
enum class task_fault { none, drop };

/// Process-wide scheduler fault hook, consulted by run_one() right
/// before each task executes. The hook may also sleep (delay injection)
/// before returning. Installed by fault-injection layers; nullptr (the
/// default) keeps the dispatch path at one relaxed atomic load. The
/// hook must be safe to call concurrently from every worker.
using task_fault_hook = task_fault (*)();
void set_task_fault_hook(task_fault_hook h) noexcept;
[[nodiscard]] task_fault_hook get_task_fault_hook() noexcept;

/// Construction-time knobs of a thread_pool.
struct pool_options {
    /// Bind worker i to a core chosen *node-major* from the probed
    /// topology (threads/topology.hpp): consecutive workers fill one
    /// NUMA node's cores before spilling to the next, so the dataflow
    /// placement hint (partition p -> worker p % pool_size) means a
    /// core *and* a memory controller — neighbouring partitions share
    /// a node and their first-touched pages land on it. Single-node
    /// machines reduce to the classic i % hardware_concurrency
    /// binding. Best-effort and portable: a no-op on platforms without
    /// pthread_setaffinity_np (or when the kernel rejects/ignores it,
    /// e.g. restrictive cpusets — see bound_workers()).
    bool bind_workers = false;

    /// Defaults from the environment: OP2HPX_BIND_WORKERS=1/on/true/yes
    /// turns worker binding on for every pool that does not override it.
    [[nodiscard]] static pool_options from_env() noexcept;
};

/// A fixed-size worker pool with per-worker lock-free deques and work
/// stealing.
///
/// Design notes (see DESIGN.md):
///  * Each worker owns a Chase–Lev deque: it pushes/pops LIFO at the
///    bottom without locks (cache-friendly for nested spawns) and thieves
///    steal FIFO from the top with a single CAS (good for load balance).
///    External threads submit through a small spinlocked injection queue.
///  * `submit_to(worker, n)` is the affinity-hinted path: the task lands
///    in the target worker's inbox (or directly on its deque when the
///    caller *is* that worker), and the worker drains its inbox before
///    stealing — so partition-pinned work stays on the worker that owns
///    the partition's cache lines. Inboxes are still visible to thieves
///    as a last resort, so a hint never strands work on a busy worker
///    and load balance survives skewed pinning.
///  * `run_one()` lets *any* thread — worker or external — execute one
///    pending task. future::wait() uses it to "help" instead of blocking,
///    which is what makes nested waits deadlock-free even with one OS
///    thread in the pool.
///  * Idle workers park on a *per-worker* condition variable behind a
///    sleeper count: `submit` only touches a mutex/condvar when a worker
///    is actually asleep, so the steady-state submit path is lock-free,
///    and parked workers use a proper predicate wait (no periodic
///    polling). The per-worker slots make wakeups targeted: `submit_to`
///    wakes the *hinted* worker's slot, so under light load a pinned
///    task is claimed by its owner instead of whichever arbitrary
///    sleeper the old shared condvar happened to rouse (which would
///    then steal the task out of the owner's inbox while the owner
///    slept on).
class thread_pool {
public:
    using task_type = util::unique_function;

    /// Create a pool with `num_threads` OS worker threads (>= 1), with
    /// options from pool_options::from_env().
    explicit thread_pool(std::size_t num_threads);

    /// Create a pool with explicit options.
    thread_pool(std::size_t num_threads, pool_options opts);

    thread_pool(thread_pool const&) = delete;
    thread_pool& operator=(thread_pool const&) = delete;

    /// Joins all workers. Pending tasks are drained before shutdown.
    ~thread_pool();

    /// Schedule `t` for execution. Thread-safe. Tasks submitted from a
    /// worker thread go to that worker's own deque. Allocates one
    /// fn_task_node to carry the callable through the pointer-based
    /// deques; callers on a hot path should embed a task_node instead.
    void submit(task_type t);

    /// Schedule an intrusive task node. Zero allocation: the node lives
    /// inside the submitter's own structure (stack frame, dataflow loop
    /// node, ...) and must stay alive until its action has run. The pool
    /// calls `n->execute()` exactly once (or `n->discard()` on teardown)
    /// and never touches the node afterwards.
    void submit(task_node* n);

    /// Schedule `n` with a worker-affinity hint: run on worker
    /// `worker % size()` if it gets there first. When the calling thread
    /// *is* that worker the node goes straight onto its lock-free deque;
    /// otherwise it lands in the worker's inbox, which the worker drains
    /// before it ever tries to steal. The hint is strictly best-effort —
    /// idle workers (and external helpers) steal from foreign inboxes
    /// once their own work is gone, so a bad hint costs locality, never
    /// progress.
    void submit_to(std::size_t worker, task_node* n);

    /// Affinity-hinted submit of a type-erased callable (one fn_task_node
    /// allocation, like submit(task_type)).
    void submit_to(std::size_t worker, task_type t);

    /// Execute one pending task if any is available.
    /// @return true if a task was executed.
    bool run_one();

    /// Number of worker threads.
    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// True when the calling thread is one of *this* pool's workers.
    [[nodiscard]] bool on_worker_thread() const noexcept;

    /// Index of the calling worker in [0, size()), or size() for external
    /// threads. Used by parallel algorithms for per-worker scratch space.
    [[nodiscard]] std::size_t worker_index() const noexcept;

    /// Block until no task is queued or running. Helps execute pending
    /// work; when there is nothing to help with, parks on a condition
    /// variable behind a waiter count (same protocol as the worker
    /// sleepers — no periodic polling) until the pool drains or new
    /// helpable work arrives.
    void wait_idle();

    /// Total number of tasks executed since construction (approximate,
    /// relaxed counter). Exposed for the micro benches.
    [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
        return executed_.load(std::memory_order_relaxed);
    }

    /// Tasks currently queued or running (approximate, relaxed). A
    /// stall watchdog samples this together with tasks_executed(): a
    /// nonzero pending count with a frozen executed count is a graph
    /// making no progress.
    [[nodiscard]] std::size_t tasks_pending() const noexcept {
        return pending_.load(std::memory_order_relaxed);
    }

    /// Workers currently parked on their sleep slots (approximate).
    [[nodiscard]] std::size_t sleeping_workers() const noexcept {
        return sleepers_.load(std::memory_order_relaxed);
    }

    /// Workers whose core binding (pool_options::bind_workers) actually
    /// took effect — verified by re-reading the applied mask after the
    /// worker started, not by trusting the set call's return code
    /// (restricted runners can acknowledge a bind they don't keep).
    /// 0 when binding is off or unsupported; tests use this to skip
    /// affinity assertions under restrictive cpusets.
    [[nodiscard]] std::size_t bound_workers() const noexcept {
        return bound_.load(std::memory_order_acquire);
    }

private:
    struct injection_queue {
        util::spinlock mtx;
        std::deque<task_node*> tasks;
        /// Racy size mirror (updated under mtx, read without): lets the
        /// pop/steal sweeps skip the spinlock when the queue is empty —
        /// the common case for every foreign inbox a thief probes. Same
        /// "approximate emptiness for spin heuristics" contract as
        /// ws_deque::empty(); a stale zero is re-checked by the sweep's
        /// queued_-counter retry loop before any worker parks.
        std::atomic<std::size_t> approx_size{0};
    };

    /// One worker's private parking spot. The asleep flag participates
    /// in the same seq_cst Dekker protocol as the sleeper count: a waker
    /// either observes the flag (and notifies this slot) or the
    /// registering worker's later read of queued_ observes the enqueue.
    struct worker_slot {
        std::mutex mtx;
        std::condition_variable cv;
        std::atomic<bool> asleep{false};
    };

    void worker_loop(std::size_t index);
    void bind_worker(std::size_t index);
    task_node* try_pop(std::size_t index);
    task_node* try_pop_inbox(std::size_t index);
    task_node* try_steal(std::size_t thief);
    task_node* try_pop_global();
    void wake_one();
    bool wake_worker(std::size_t worker);
    void notify_idle_waiters();

    std::vector<std::unique_ptr<ws_deque<task_node>>> queues_;
    /// Per-worker affinity inboxes (submit_to). Chase–Lev push is
    /// owner-only, so cross-thread affinity submissions need their own
    /// channel; a small spinlocked deque is enough — the inbox carries
    /// one node per (partition, colour) issue, not the fan-out hot path.
    std::vector<std::unique_ptr<injection_queue>> inboxes_;
    injection_queue global_queue_;

    /// Per-worker parking slots (targeted wakeups; see class comment).
    std::vector<std::unique_ptr<worker_slot>> slots_;

    std::vector<std::thread> workers_;

    std::mutex idle_mtx_;
    std::condition_variable idle_cv_;

    pool_options opts_;

    std::atomic<std::size_t> queued_{0};   // enqueued, not yet dequeued
    std::atomic<std::size_t> pending_{0};  // queued + running
    std::atomic<std::size_t> sleepers_{0};
    std::atomic<std::size_t> idle_waiters_{0};  // parked in wait_idle
    std::atomic<std::size_t> wake_rr_{0};       // wake_one scan rotation
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::size_t> bound_{0};  // workers whose binding stuck
    std::atomic<bool> stop_{false};
};

}  // namespace hpxlite::threads
