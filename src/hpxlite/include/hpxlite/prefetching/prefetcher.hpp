#pragma once

// The HPX data prefetcher of Section V of the paper.
//
// `make_prefetcher_context(begin, end, distance_factor, c1, c2, ..., cn)`
// wraps an index range and a set of containers. Iterating the context
// (typically through hpxlite::parallel::for_each) yields the plain loop
// indices, but as the iterator advances it issues software prefetches for
// the elements of *all* registered containers `distance` ahead of the
// current position, where per container
//
//     distance = distance_factor * (cache_line_size / sizeof(element))
//
// i.e. the distance factor is expressed in units of cache lines, exactly
// as the paper prescribes ("prefetch_distance_factor is designed to be
// determined based on the length of the cache line"). One prefetch per
// cache line per container is issued (not one per element).
//
// Combined with a parallel/asynchronous execution policy this reproduces
// the paper's thread-based-prefetching-without-global-barriers scheme
// (Figures 13-14).

#include <cstddef>
#include <iterator>
#include <tuple>
#include <utility>

#include <hpxlite/config.hpp>

namespace hpxlite::parallel {

namespace detail {

inline void prefetch_read(void const* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, 0 /*read*/, 3 /*high locality*/);
#else
    (void)addr;
#endif
}

/// Per-container prefetch geometry, fixed at context construction.
struct container_view {
    char const* base = nullptr;      // first element
    std::size_t elem_size = 1;       // sizeof(value_type)
    std::size_t size = 0;            // number of elements
    std::size_t elems_per_line = 1;  // cache_line_size / elem_size (>= 1)
    std::size_t distance = 0;        // prefetch lookahead, in elements

    void maybe_prefetch(std::size_t idx) const noexcept {
        // Issue one prefetch per cache line of this container.
        if (idx % elems_per_line != 0) {
            return;
        }
        std::size_t const target = idx + distance;
        if (target < size) {
            prefetch_read(base + target * elem_size);
        }
    }
};

template <typename C>
container_view make_view(C& c, std::size_t distance_factor) noexcept {
    using value_type = typename C::value_type;
    container_view v;
    v.base = reinterpret_cast<char const*>(c.data());
    v.elem_size = sizeof(value_type);
    v.size = c.size();
    v.elems_per_line = cache_line_size / sizeof(value_type);
    if (v.elems_per_line == 0) {
        v.elems_per_line = 1;
    }
    v.distance = distance_factor * v.elems_per_line;
    return v;
}

}  // namespace detail

/// The range object returned by make_prefetcher_context. NumContainers is
/// fixed at construction; views are stored by value so the context is
/// self-contained (but it does NOT own the container storage).
template <std::size_t NumContainers>
class prefetcher_context {
public:
    template <typename... Cs>
    prefetcher_context(std::size_t begin_idx, std::size_t end_idx,
                       std::size_t distance_factor, Cs&... cs) noexcept
      : begin_(begin_idx),
        end_(end_idx < begin_idx ? begin_idx : end_idx),
        views_{detail::make_view(cs, distance_factor)...} {
        static_assert(sizeof...(Cs) == NumContainers);
    }

    /// Random-access iterator producing indices; prefetches on access.
    class iterator {
    public:
        using iterator_category = std::random_access_iterator_tag;
        using value_type = std::size_t;
        using difference_type = std::ptrdiff_t;
        using pointer = std::size_t const*;
        using reference = std::size_t;

        iterator() noexcept = default;
        iterator(std::size_t idx, prefetcher_context const* ctx) noexcept
          : idx_(idx), ctx_(ctx) {}

        reference operator*() const noexcept {
            ctx_->touch(idx_);
            return idx_;
        }
        reference operator[](difference_type k) const noexcept {
            std::size_t const i = idx_ + static_cast<std::size_t>(k);
            ctx_->touch(i);
            return i;
        }

        iterator& operator++() noexcept {
            ++idx_;
            return *this;
        }
        iterator operator++(int) noexcept {
            auto t = *this;
            ++idx_;
            return t;
        }
        iterator& operator--() noexcept {
            --idx_;
            return *this;
        }
        iterator operator--(int) noexcept {
            auto t = *this;
            --idx_;
            return t;
        }
        iterator& operator+=(difference_type k) noexcept {
            idx_ += static_cast<std::size_t>(k);
            return *this;
        }
        iterator& operator-=(difference_type k) noexcept {
            idx_ -= static_cast<std::size_t>(k);
            return *this;
        }
        friend iterator operator+(iterator it, difference_type k) noexcept {
            return it += k;
        }
        friend iterator operator+(difference_type k, iterator it) noexcept {
            return it += k;
        }
        friend iterator operator-(iterator it, difference_type k) noexcept {
            return it -= k;
        }
        friend difference_type operator-(iterator a, iterator b) noexcept {
            return static_cast<difference_type>(a.idx_) -
                   static_cast<difference_type>(b.idx_);
        }
        friend bool operator==(iterator a, iterator b) noexcept {
            return a.idx_ == b.idx_;
        }
        friend bool operator!=(iterator a, iterator b) noexcept {
            return a.idx_ != b.idx_;
        }
        friend bool operator<(iterator a, iterator b) noexcept {
            return a.idx_ < b.idx_;
        }
        friend bool operator<=(iterator a, iterator b) noexcept {
            return a.idx_ <= b.idx_;
        }
        friend bool operator>(iterator a, iterator b) noexcept {
            return a.idx_ > b.idx_;
        }
        friend bool operator>=(iterator a, iterator b) noexcept {
            return a.idx_ >= b.idx_;
        }

    private:
        std::size_t idx_ = 0;
        prefetcher_context const* ctx_ = nullptr;
    };

    [[nodiscard]] iterator begin() const noexcept {
        return iterator(begin_, this);
    }
    [[nodiscard]] iterator end() const noexcept { return iterator(end_, this); }
    [[nodiscard]] std::size_t size() const noexcept { return end_ - begin_; }

    /// Prefetch the lookahead elements of every container for index i.
    void touch(std::size_t i) const noexcept {
        for (auto const& v : views_) {
            v.maybe_prefetch(i);
        }
    }

private:
    std::size_t begin_;
    std::size_t end_;
    detail::container_view views_[NumContainers];
};

/// Factory mirroring hpx::parallel::make_prefetcher_context (Fig. 14).
/// Containers must expose data()/size()/value_type (e.g. std::vector);
/// mixed element types are fine — each container gets its own prefetch
/// distance derived from its element size.
template <typename... Cs>
prefetcher_context<sizeof...(Cs)> make_prefetcher_context(
    std::size_t begin_idx, std::size_t end_idx, std::size_t distance_factor,
    Cs&... cs) noexcept {
    return prefetcher_context<sizeof...(Cs)>(begin_idx, end_idx,
                                             distance_factor, cs...);
}

}  // namespace hpxlite::parallel
