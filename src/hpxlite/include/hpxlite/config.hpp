// hpxlite: a compact, from-scratch reimplementation of the HPX runtime
// constructs used by "Redesigning OP2 Compiler to Use HPX Runtime
// Asynchronous Techniques" (Khatami, Kaiser, Ramanujam; IPPS 2017):
// futures, dataflow, execution policies, chunk-size controls, parallel
// algorithms and the prefetching iterator.
//
// This header defines build-wide constants and small utilities.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hpxlite {

/// Assumed cache line size in bytes. The prefetching iterator derives its
/// per-container prefetch stride from this (see Section V of the paper:
/// "prefetch_distance_factor is designed to be determined based on the
/// length of the cache line").
inline constexpr std::size_t cache_line_size = 64;

/// Library version, mirrored from the top-level CMake project version.
struct version_info {
    int major = 0;
    int minor = 1;
    int patch = 0;
};

constexpr version_info version() noexcept { return {}; }

}  // namespace hpxlite
