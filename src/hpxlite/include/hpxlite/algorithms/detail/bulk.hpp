#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <variant>
#include <vector>

#include <hpxlite/execution/chunkers.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/lcos/future.hpp>
#include <hpxlite/runtime.hpp>
#include <hpxlite/threads/task_node.hpp>
#include <hpxlite/util/timing.hpp>

namespace hpxlite::parallel::detail {

using execution::detail::chunk_plan;

/// Decide the chunking for `n` iterations under chunker `ck`.
/// Time-based chunkers probe by executing f(0..p-1) inline; the plan's
/// `probed` field reports how many iterations were consumed that way.
template <typename F>
chunk_plan resolve_chunk(execution::chunker const& ck, std::size_t n,
                         std::size_t workers, F& f) {
    namespace ed = execution::detail;
    chunk_plan plan;

    auto probe = [&]() -> std::int64_t {
        std::size_t const p = ed::probe_count(n);
        util::stopwatch sw;
        for (std::size_t i = 0; i < p; ++i) {
            f(i);
        }
        std::int64_t elapsed = sw.elapsed_ns();
        plan.probed = p;
        std::int64_t per_iter = elapsed / static_cast<std::int64_t>(p);
        return per_iter > 0 ? per_iter : 1;
    };

    if (auto const* sc = std::get_if<execution::static_chunk_size>(&ck)) {
        std::size_t chunk = sc->size;
        if (chunk == 0) {
            chunk = n / (4 * workers);
        }
        plan.chunk = ed::clamp_chunk(chunk, n, workers);
    } else if (auto const* dc =
                   std::get_if<execution::dynamic_chunk_size>(&ck)) {
        plan.self_scheduling = true;
        plan.chunk = ed::clamp_chunk(dc->size, n, workers);
    } else if (auto const* ac = std::get_if<execution::auto_chunk_size>(&ck)) {
        plan.per_iter_ns = probe();
        plan.chunk = ed::clamp_chunk(
            static_cast<std::size_t>(ac->target_ns / plan.per_iter_ns), n,
            workers);
    } else {
        auto const& pc = std::get<execution::persistent_auto_chunk_size>(ck);
        auto& domain =
            pc.domain != nullptr ? *pc.domain : execution::global_chunk_domain();
        plan.per_iter_ns = probe();
        if (domain.calibrated()) {
            // Dependent loop: equalise chunk *time* with the first loop.
            plan.chunk = ed::clamp_chunk(
                static_cast<std::size_t>(domain.target_ns() / plan.per_iter_ns),
                n, workers);
        } else {
            // Calibrating loop: pick a chunk like auto_chunk_size would,
            // then persist the achieved chunk execution time.
            plan.chunk = ed::clamp_chunk(
                static_cast<std::size_t>(pc.default_target_ns /
                                         plan.per_iter_ns),
                n, workers);
            domain.record(static_cast<std::int64_t>(plan.chunk) *
                          plan.per_iter_ns);
        }
    }
    return plan;
}

/// Execute f(i) for i in [0, n) under a parallel task policy; completion
/// (or the first thrown exception) is delivered through the returned
/// future.
///
/// One heap allocation for the whole fan-out: the frame owns its chunk
/// task nodes (intrusive in the pool's deques) and deletes itself when
/// the last chunk finishes — no per-chunk allocation on the spawn path.
template <typename F>
lcos::future<void> bulk_async(execution::parallel_task_policy const& pol,
                              std::size_t n, F f) {
    auto& pool = pol.pool != nullptr ? *pol.pool : hpxlite::get_pool();
    if (n == 0) {
        return lcos::make_ready_future();
    }

    chunk_plan const plan = resolve_chunk(pol.chunk, n, pool.size(), f);
    std::size_t const begin = plan.probed;
    if (begin >= n) {
        return lcos::make_ready_future();
    }

    struct frame_t;

    struct chunk_node final : threads::task_node {
        frame_t* frame = nullptr;
        std::size_t b = 0;
        std::size_t e = 0;  // b == e => self-scheduling sweeper
    };

    struct frame_t {
        explicit frame_t(F fn) : f(std::move(fn)) {}
        F f;
        std::atomic<std::size_t> remaining{0};
        std::atomic<std::size_t> next{0};  // self-scheduling cursor
        std::size_t begin = 0;
        std::size_t n = 0;
        std::size_t grain = 0;
        util::spinlock emtx;
        std::exception_ptr error;
        std::vector<chunk_node> nodes;
        lcos::detail::state_ptr<void> st =
            std::make_shared<lcos::detail::shared_state<void>>();

        void run_range(std::size_t b, std::size_t e) {
            try {
                for (std::size_t i = b; i < e; ++i) {
                    f(i);
                }
            } catch (...) {
                std::lock_guard<util::spinlock> lk(emtx);
                if (!error) {
                    error = std::current_exception();
                }
            }
        }

        void sweep() {
            for (;;) {
                std::size_t const i =
                    begin + next.fetch_add(grain, std::memory_order_relaxed);
                if (i >= n) {
                    break;
                }
                run_range(i, std::min(i + grain, n));
            }
        }

        /// Last task standing publishes the result and frees the frame
        /// (and with it every node) — nothing else may touch the frame
        /// after its decrement.
        void finish_one() {
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::exception_ptr e;
                {
                    std::lock_guard<util::spinlock> lk(emtx);
                    e = error;
                }
                auto state = std::move(st);
                delete this;
                if (e) {
                    state->set_exception(std::move(e));
                } else {
                    state->set_value();
                }
            }
        }

        static void node_action(threads::task_node* tn, bool run) {
            auto* cn = static_cast<chunk_node*>(tn);
            frame_t* fr = cn->frame;
            if (run) {
                if (cn->b == cn->e) {
                    fr->sweep();
                } else {
                    fr->run_range(cn->b, cn->e);
                }
            } else {
                // Discarded at pool teardown: the fan-out never ran to
                // completion — fail the future instead of faking success.
                std::lock_guard<util::spinlock> lk(fr->emtx);
                if (!fr->error) {
                    fr->error = std::make_exception_ptr(std::runtime_error(
                        "bulk_async chunk discarded at shutdown"));
                }
            }
            fr->finish_one();
        }
    };

    auto* frame = new frame_t(std::move(f));
    auto result = lcos::future<void>(frame->st);
    frame->begin = begin;
    frame->n = n;
    frame->grain = plan.chunk > 0 ? plan.chunk : 1;

    std::size_t ntasks;
    if (plan.self_scheduling) {
        std::size_t const span = n - begin;
        ntasks = std::min(pool.size(),
                          (span + frame->grain - 1) / frame->grain);
        frame->nodes.resize(ntasks);
        for (auto& node : frame->nodes) {
            node.frame = frame;  // b == e: sweeper draining the cursor
        }
    } else {
        std::size_t const chunk = frame->grain;
        std::size_t const span = n - begin;
        ntasks = (span + chunk - 1) / chunk;
        frame->nodes.resize(ntasks);
        for (std::size_t c = 0; c < ntasks; ++c) {
            auto& node = frame->nodes[c];
            node.frame = frame;
            node.b = begin + c * chunk;
            node.e = std::min(node.b + chunk, n);
        }
    }
    frame->remaining.store(ntasks, std::memory_order_relaxed);
    // The frame self-deletes when the last chunk finishes, which can
    // happen the instant the final submit lands — iterate over a
    // pre-read data pointer and never touch the frame after that call.
    chunk_node* const nodes = frame->nodes.data();
    for (std::size_t c = 0; c < ntasks; ++c) {
        nodes[c].action = &frame_t::node_action;
        pool.submit(static_cast<threads::task_node*>(&nodes[c]));
    }
    return result;
}

/// Synchronous counterpart of bulk_async, used for every fork-join style
/// sweep (op2's per-colour block sweeps in particular). Completion is
/// tracked by an atomic latch on the caller's stack instead of a
/// heap-allocated future/shared-state per sweep: the caller seeds
/// `nsweeps` self-scheduling sweeper tasks (itself being one of them),
/// each drains chunks off an atomic cursor and drops the latch once, and
/// the caller helps the pool until the latch reaches zero. The sweeper
/// task nodes are intrusive and live on this stack frame too, so the
/// whole sweep performs zero heap allocation.
template <typename F>
void bulk_sync(execution::parallel_policy const& pol, std::size_t n, F f) {
    auto& pool = pol.pool != nullptr ? *pol.pool : hpxlite::get_pool();
    if (n == 0) {
        return;
    }

    chunk_plan const plan = resolve_chunk(pol.chunk, n, pool.size(), f);
    std::size_t const begin = plan.probed;
    if (begin >= n) {
        return;
    }
    std::size_t const grain = plan.chunk > 0 ? plan.chunk : 1;
    std::size_t const span = n - begin;
    std::size_t const nchunks = (span + grain - 1) / grain;
    // The caller sweeps too, so it only needs pool.size() helpers at most.
    std::size_t const nsweeps = std::min(pool.size() + 1, nchunks);

    struct latch_frame {
        latch_frame(F& fn, std::size_t b, std::size_t end, std::size_t g,
                    std::size_t sweeps)
          : f(fn), begin(b), n(end), grain(g), remaining(sweeps) {}

        F& f;
        std::size_t const begin;
        std::size_t const n;
        std::size_t const grain;
        std::atomic<std::size_t> next{0};   // self-scheduling chunk cursor
        std::atomic<std::size_t> remaining; // completion latch
        util::spinlock emtx;
        std::exception_ptr error;

        void sweep() noexcept {
            for (;;) {
                std::size_t const i =
                    begin + next.fetch_add(grain, std::memory_order_relaxed);
                if (i >= n) {
                    break;
                }
                std::size_t const e = std::min(i + grain, n);
                try {
                    for (std::size_t k = i; k < e; ++k) {
                        f(k);
                    }
                } catch (...) {
                    std::lock_guard<util::spinlock> lk(emtx);
                    if (!error) {
                        error = std::current_exception();
                    }
                }
            }
            // Must be the last touch of the frame: once the latch hits
            // zero the caller's stack frame may unwind.
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    struct sweep_node final : threads::task_node {
        latch_frame* frame = nullptr;
    };

    latch_frame frame(f, begin, n, grain, nsweeps);

    // Helper task nodes live on this frame (small-pool case) or in one
    // spill array; either way the sweep itself allocates nothing per
    // task. All nodes are drained before the latch releases this scope:
    // a node's action (run or discard) is its final decrement.
    constexpr std::size_t kInlineSweeps = 16;
    sweep_node inline_nodes[kInlineSweeps];
    std::unique_ptr<sweep_node[]> spill;
    std::size_t const nhelpers = nsweeps - 1;
    sweep_node* nodes = inline_nodes;
    if (nhelpers > kInlineSweeps) {
        spill = std::make_unique<sweep_node[]>(nhelpers);
        nodes = spill.get();
    }
    for (std::size_t w = 0; w < nhelpers; ++w) {
        nodes[w].frame = &frame;
        nodes[w].action = [](threads::task_node* tn, bool run) {
            auto* sn = static_cast<sweep_node*>(tn);
            latch_frame* fr = sn->frame;
            if (run) {
                fr->sweep();
            } else {
                // Teardown without running: record the failure (the
                // caller rethrows it), then drop the latch so the caller
                // is not stranded — mirroring the bulk_async discard.
                {
                    std::lock_guard<util::spinlock> lk(fr->emtx);
                    if (!fr->error) {
                        fr->error = std::make_exception_ptr(std::runtime_error(
                            "bulk_sync sweep discarded at shutdown"));
                    }
                }
                fr->remaining.fetch_sub(1, std::memory_order_acq_rel);
            }
        };
        pool.submit(static_cast<threads::task_node*>(&nodes[w]));
    }
    frame.sweep();
    while (frame.remaining.load(std::memory_order_acquire) != 0) {
        if (!pool.run_one()) {
            std::this_thread::yield();
        }
    }
    if (frame.error) {
        std::rethrow_exception(frame.error);
    }
}

}  // namespace hpxlite::parallel::detail
