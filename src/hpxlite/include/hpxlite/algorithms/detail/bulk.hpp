#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>
#include <thread>
#include <variant>

#include <hpxlite/execution/chunkers.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/lcos/future.hpp>
#include <hpxlite/runtime.hpp>
#include <hpxlite/util/timing.hpp>

namespace hpxlite::parallel::detail {

using execution::detail::chunk_plan;

/// Decide the chunking for `n` iterations under chunker `ck`.
/// Time-based chunkers probe by executing f(0..p-1) inline; the plan's
/// `probed` field reports how many iterations were consumed that way.
template <typename F>
chunk_plan resolve_chunk(execution::chunker const& ck, std::size_t n,
                         std::size_t workers, F& f) {
    namespace ed = execution::detail;
    chunk_plan plan;

    auto probe = [&]() -> std::int64_t {
        std::size_t const p = ed::probe_count(n);
        util::stopwatch sw;
        for (std::size_t i = 0; i < p; ++i) {
            f(i);
        }
        std::int64_t elapsed = sw.elapsed_ns();
        plan.probed = p;
        std::int64_t per_iter = elapsed / static_cast<std::int64_t>(p);
        return per_iter > 0 ? per_iter : 1;
    };

    if (auto const* sc = std::get_if<execution::static_chunk_size>(&ck)) {
        std::size_t chunk = sc->size;
        if (chunk == 0) {
            chunk = n / (4 * workers);
        }
        plan.chunk = ed::clamp_chunk(chunk, n, workers);
    } else if (auto const* dc =
                   std::get_if<execution::dynamic_chunk_size>(&ck)) {
        plan.self_scheduling = true;
        plan.chunk = ed::clamp_chunk(dc->size, n, workers);
    } else if (auto const* ac = std::get_if<execution::auto_chunk_size>(&ck)) {
        plan.per_iter_ns = probe();
        plan.chunk = ed::clamp_chunk(
            static_cast<std::size_t>(ac->target_ns / plan.per_iter_ns), n,
            workers);
    } else {
        auto const& pc = std::get<execution::persistent_auto_chunk_size>(ck);
        auto& domain =
            pc.domain != nullptr ? *pc.domain : execution::global_chunk_domain();
        plan.per_iter_ns = probe();
        if (domain.calibrated()) {
            // Dependent loop: equalise chunk *time* with the first loop.
            plan.chunk = ed::clamp_chunk(
                static_cast<std::size_t>(domain.target_ns() / plan.per_iter_ns),
                n, workers);
        } else {
            // Calibrating loop: pick a chunk like auto_chunk_size would,
            // then persist the achieved chunk execution time.
            plan.chunk = ed::clamp_chunk(
                static_cast<std::size_t>(pc.default_target_ns /
                                         plan.per_iter_ns),
                n, workers);
            domain.record(static_cast<std::int64_t>(plan.chunk) *
                          plan.per_iter_ns);
        }
    }
    return plan;
}

/// Execute f(i) for i in [0, n) under a parallel task policy; completion
/// (or the first thrown exception) is delivered through the returned
/// future.
template <typename F>
lcos::future<void> bulk_async(execution::parallel_task_policy const& pol,
                              std::size_t n, F f) {
    auto& pool = pol.pool != nullptr ? *pol.pool : hpxlite::get_pool();
    if (n == 0) {
        return lcos::make_ready_future();
    }

    chunk_plan const plan = resolve_chunk(pol.chunk, n, pool.size(), f);
    std::size_t const begin = plan.probed;
    if (begin >= n) {
        return lcos::make_ready_future();
    }

    struct frame_t {
        explicit frame_t(F fn) : f(std::move(fn)) {}
        F f;
        std::atomic<std::size_t> remaining{0};
        std::atomic<std::size_t> next{0};  // self-scheduling cursor
        util::spinlock emtx;
        std::exception_ptr error;
        lcos::detail::state_ptr<void> st =
            std::make_shared<lcos::detail::shared_state<void>>();

        void run_range(std::size_t b, std::size_t e) {
            try {
                for (std::size_t i = b; i < e; ++i) {
                    f(i);
                }
            } catch (...) {
                std::lock_guard<util::spinlock> lk(emtx);
                if (!error) {
                    error = std::current_exception();
                }
            }
        }

        void finish_one() {
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::exception_ptr e;
                {
                    std::lock_guard<util::spinlock> lk(emtx);
                    e = error;
                }
                if (e) {
                    st->set_exception(std::move(e));
                } else {
                    st->set_value();
                }
            }
        }
    };

    auto frame = std::make_shared<frame_t>(std::move(f));
    auto result = lcos::future<void>(frame->st);

    if (plan.self_scheduling) {
        std::size_t const grain = plan.chunk;
        std::size_t const span = n - begin;
        std::size_t const nworkers =
            std::min(pool.size(), (span + grain - 1) / grain);
        frame->remaining.store(nworkers, std::memory_order_relaxed);
        for (std::size_t w = 0; w < nworkers; ++w) {
            pool.submit([frame, begin, n, grain] {
                for (;;) {
                    std::size_t const i =
                        begin + frame->next.fetch_add(
                                    grain, std::memory_order_relaxed);
                    if (i >= n) {
                        break;
                    }
                    frame->run_range(i, std::min(i + grain, n));
                }
                frame->finish_one();
            });
        }
    } else {
        std::size_t const chunk = plan.chunk;
        std::size_t const span = n - begin;
        std::size_t const nchunks = (span + chunk - 1) / chunk;
        frame->remaining.store(nchunks, std::memory_order_relaxed);
        for (std::size_t c = 0; c < nchunks; ++c) {
            std::size_t const b = begin + c * chunk;
            std::size_t const e = std::min(b + chunk, n);
            pool.submit([frame, b, e] {
                frame->run_range(b, e);
                frame->finish_one();
            });
        }
    }
    return result;
}

/// Synchronous counterpart of bulk_async, used for every fork-join style
/// sweep (op2's per-colour block sweeps in particular). Completion is
/// tracked by an atomic latch on the caller's stack instead of a
/// heap-allocated future/shared-state per sweep: the caller seeds
/// `nsweeps` self-scheduling sweeper tasks (itself being one of them),
/// each drains chunks off an atomic cursor and drops the latch once, and
/// the caller helps the pool until the latch reaches zero.
template <typename F>
void bulk_sync(execution::parallel_policy const& pol, std::size_t n, F f) {
    auto& pool = pol.pool != nullptr ? *pol.pool : hpxlite::get_pool();
    if (n == 0) {
        return;
    }

    chunk_plan const plan = resolve_chunk(pol.chunk, n, pool.size(), f);
    std::size_t const begin = plan.probed;
    if (begin >= n) {
        return;
    }
    std::size_t const grain = plan.chunk > 0 ? plan.chunk : 1;
    std::size_t const span = n - begin;
    std::size_t const nchunks = (span + grain - 1) / grain;
    // The caller sweeps too, so it only needs pool.size() helpers at most.
    std::size_t const nsweeps = std::min(pool.size() + 1, nchunks);

    struct latch_frame {
        latch_frame(F& fn, std::size_t b, std::size_t end, std::size_t g,
                    std::size_t sweeps)
          : f(fn), begin(b), n(end), grain(g), remaining(sweeps) {}

        F& f;
        std::size_t const begin;
        std::size_t const n;
        std::size_t const grain;
        std::atomic<std::size_t> next{0};   // self-scheduling chunk cursor
        std::atomic<std::size_t> remaining; // completion latch
        util::spinlock emtx;
        std::exception_ptr error;

        void sweep() noexcept {
            for (;;) {
                std::size_t const i =
                    begin + next.fetch_add(grain, std::memory_order_relaxed);
                if (i >= n) {
                    break;
                }
                std::size_t const e = std::min(i + grain, n);
                try {
                    for (std::size_t k = i; k < e; ++k) {
                        f(k);
                    }
                } catch (...) {
                    std::lock_guard<util::spinlock> lk(emtx);
                    if (!error) {
                        error = std::current_exception();
                    }
                }
            }
            // Must be the last touch of the frame: once the latch hits
            // zero the caller's stack frame may unwind.
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    latch_frame frame(f, begin, n, grain, nsweeps);
    for (std::size_t w = 1; w < nsweeps; ++w) {
        pool.submit([&frame] { frame.sweep(); });
    }
    frame.sweep();
    while (frame.remaining.load(std::memory_order_acquire) != 0) {
        if (!pool.run_one()) {
            std::this_thread::yield();
        }
    }
    if (frame.error) {
        std::rethrow_exception(frame.error);
    }
}

}  // namespace hpxlite::parallel::detail
