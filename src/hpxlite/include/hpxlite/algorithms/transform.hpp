#pragma once

#include <iterator>
#include <utility>

#include <hpxlite/algorithms/detail/bulk.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/lcos/future.hpp>

namespace hpxlite::parallel {

/// dest[i] = op(first[i]) for the whole range.
template <typename It, typename Out, typename Op>
Out transform(execution::sequenced_policy const&, It first, It last, Out dest,
              Op op) {
    for (; first != last; ++first, ++dest) {
        *dest = op(*first);
    }
    return dest;
}

template <typename It, typename Out, typename Op>
Out transform(execution::parallel_policy const& pol, It first, It last,
              Out dest, Op op) {
    auto const n = static_cast<std::size_t>(last - first);
    detail::bulk_sync(pol, n,
                      [first, dest, op = std::move(op)](std::size_t i) mutable {
                          auto const k = static_cast<std::ptrdiff_t>(i);
                          dest[k] = op(first[k]);
                      });
    return dest + static_cast<std::ptrdiff_t>(n);
}

template <typename It, typename Out, typename Op>
lcos::future<Out> transform(execution::parallel_task_policy const& pol,
                            It first, It last, Out dest, Op op) {
    auto const n = static_cast<std::size_t>(last - first);
    auto done = detail::bulk_async(
        pol, n, [first, dest, op = std::move(op)](std::size_t i) mutable {
            auto const k = static_cast<std::ptrdiff_t>(i);
            dest[k] = op(first[k]);
        });
    return done.then([dest, n](lcos::future<void>&& d) {
        d.get();
        return dest + static_cast<std::ptrdiff_t>(n);
    });
}

/// Binary transform: dest[i] = op(a[i], b[i]).
template <typename ItA, typename ItB, typename Out, typename Op>
Out transform(execution::parallel_policy const& pol, ItA a_first, ItA a_last,
              ItB b_first, Out dest, Op op) {
    auto const n = static_cast<std::size_t>(a_last - a_first);
    detail::bulk_sync(
        pol, n,
        [a_first, b_first, dest, op = std::move(op)](std::size_t i) mutable {
            auto const k = static_cast<std::ptrdiff_t>(i);
            dest[k] = op(a_first[k], b_first[k]);
        });
    return dest + static_cast<std::ptrdiff_t>(n);
}

}  // namespace hpxlite::parallel
