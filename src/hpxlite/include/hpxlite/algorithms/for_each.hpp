#pragma once

#include <iterator>
#include <type_traits>
#include <utility>

#include <hpxlite/algorithms/detail/bulk.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/lcos/future.hpp>

namespace hpxlite::parallel {

/// hpx::parallel::for_each over a random-access range.
///
/// Synchronous policies (`seq`, `par`) return `last`; task policies
/// (`seq(task)`, `par(task)`) return a future<Iterator>. The parallel
/// variants honour the policy's chunk-size parameter (static / dynamic /
/// auto / persistent_auto).
template <typename It, typename F>
It for_each(execution::sequenced_policy const&, It first, It last, F f) {
    for (It it = first; it != last; ++it) {
        f(*it);
    }
    return last;
}

template <typename It, typename F>
lcos::future<It> for_each(execution::sequenced_task_policy const&, It first,
                          It last, F f) {
    return lcos::async([first, last, f = std::move(f)]() mutable {
        for (It it = first; it != last; ++it) {
            f(*it);
        }
        return last;
    });
}

template <typename It, typename F>
It for_each(execution::parallel_policy const& pol, It first, It last, F f) {
    static_assert(
        std::is_base_of_v<std::random_access_iterator_tag,
                          typename std::iterator_traits<It>::iterator_category>,
        "parallel for_each requires random-access iterators");
    auto const n = static_cast<std::size_t>(last - first);
    detail::bulk_sync(pol, n,
                      [first, f = std::move(f)](std::size_t i) mutable {
                          f(first[static_cast<std::ptrdiff_t>(i)]);
                      });
    return last;
}

template <typename It, typename F>
lcos::future<It> for_each(execution::parallel_task_policy const& pol, It first,
                          It last, F f) {
    static_assert(
        std::is_base_of_v<std::random_access_iterator_tag,
                          typename std::iterator_traits<It>::iterator_category>,
        "parallel for_each requires random-access iterators");
    auto const n = static_cast<std::size_t>(last - first);
    auto done = detail::bulk_async(
        pol, n, [first, f = std::move(f)](std::size_t i) mutable {
            f(first[static_cast<std::ptrdiff_t>(i)]);
        });
    return done.then([last](lcos::future<void>&& d) {
        d.get();  // propagate exceptions
        return last;
    });
}

}  // namespace hpxlite::parallel
