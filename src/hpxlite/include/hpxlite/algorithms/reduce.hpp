#pragma once

#include <algorithm>
#include <iterator>
#include <numeric>
#include <utility>
#include <vector>

#include <hpxlite/algorithms/detail/bulk.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/lcos/future.hpp>

namespace hpxlite::parallel {

namespace detail {

/// Split [0, n) into K near-equal subranges, compute per-subrange
/// partials with `partial_of(b, e)`, then fold them with `combine`.
template <typename T, typename PartialOf, typename Combine>
T partitioned_reduce(execution::parallel_policy const& pol, std::size_t n,
                     T init, PartialOf partial_of, Combine combine) {
    if (n == 0) {
        return init;
    }
    auto& pool = pol.pool != nullptr ? *pol.pool : hpxlite::get_pool();
    std::size_t const k =
        std::min<std::size_t>(n, std::max<std::size_t>(1, 4 * pool.size()));
    std::vector<T> partials(k, init);
    std::size_t const base = n / k;
    std::size_t const rem = n % k;
    execution::parallel_policy part_pol = pol;
    part_pol.chunk = execution::static_chunk_size{1};
    bulk_sync(part_pol, k, [&](std::size_t j) {
        std::size_t const b = j * base + std::min(j, rem);
        std::size_t const e = b + base + (j < rem ? 1 : 0);
        partials[j] = partial_of(b, e);
    });
    T acc = init;
    for (auto& p : partials) {
        acc = combine(std::move(acc), std::move(p));
    }
    return acc;
}

}  // namespace detail

/// transform_reduce: init ⊕ conv(x0) ⊕ conv(x1) ⊕ ... with ⊕ = reduce_op.
/// reduce_op must be associative & commutative for the parallel overloads.
template <typename It, typename T, typename Reduce, typename Convert>
T transform_reduce(execution::sequenced_policy const&, It first, It last,
                   T init, Reduce reduce_op, Convert conv) {
    T acc = std::move(init);
    for (; first != last; ++first) {
        acc = reduce_op(std::move(acc), conv(*first));
    }
    return acc;
}

template <typename It, typename T, typename Reduce, typename Convert>
T transform_reduce(execution::parallel_policy const& pol, It first, It last,
                   T init, Reduce reduce_op, Convert conv) {
    auto const n = static_cast<std::size_t>(last - first);
    if (n == 0) {
        return init;
    }
    return detail::partitioned_reduce<T>(
        pol, n, init,
        [first, &reduce_op, &conv](std::size_t b, std::size_t e) {
            auto const pb = static_cast<std::ptrdiff_t>(b);
            T acc = conv(first[pb]);
            for (std::size_t i = b + 1; i < e; ++i) {
                acc = reduce_op(std::move(acc),
                                conv(first[static_cast<std::ptrdiff_t>(i)]));
            }
            return acc;
        },
        reduce_op);
}

/// Plain reduce with a binary op (default std::plus-like usage).
template <typename It, typename T, typename Op>
T reduce(execution::sequenced_policy const& pol, It first, It last, T init,
         Op op) {
    return transform_reduce(pol, first, last, std::move(init), std::move(op),
                            [](auto const& x) { return x; });
}

template <typename It, typename T, typename Op>
T reduce(execution::parallel_policy const& pol, It first, It last, T init,
         Op op) {
    return transform_reduce(pol, first, last, std::move(init), std::move(op),
                            [](auto const& x) { return x; });
}

template <typename It, typename T>
T reduce(execution::parallel_policy const& pol, It first, It last, T init) {
    return reduce(pol, first, last, std::move(init),
                  [](auto a, auto b) { return a + b; });
}

}  // namespace hpxlite::parallel
