#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include <hpxlite/algorithms/detail/bulk.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/lcos/future.hpp>

namespace hpxlite::parallel {

/// Index-based parallel loop: f(i) for i in [lo, hi).
/// Synchronous policies return void; task policies return future<void>.
template <typename Int, typename F>
void for_loop(execution::sequenced_policy const&, Int lo, Int hi, F f) {
    for (Int i = lo; i < hi; ++i) {
        f(i);
    }
}

template <typename Int, typename F>
lcos::future<void> for_loop(execution::sequenced_task_policy const&, Int lo,
                            Int hi, F f) {
    return lcos::async([lo, hi, f = std::move(f)]() mutable {
        for (Int i = lo; i < hi; ++i) {
            f(i);
        }
    });
}

template <typename Int, typename F>
void for_loop(execution::parallel_policy const& pol, Int lo, Int hi, F f) {
    if (hi <= lo) {
        return;
    }
    auto const n = static_cast<std::size_t>(hi - lo);
    detail::bulk_sync(pol, n, [lo, f = std::move(f)](std::size_t i) mutable {
        f(static_cast<Int>(lo + static_cast<Int>(i)));
    });
}

template <typename Int, typename F>
lcos::future<void> for_loop(execution::parallel_task_policy const& pol, Int lo,
                            Int hi, F f) {
    if (hi <= lo) {
        return lcos::make_ready_future();
    }
    auto const n = static_cast<std::size_t>(hi - lo);
    return detail::bulk_async(pol, n,
                              [lo, f = std::move(f)](std::size_t i) mutable {
                                  f(static_cast<Int>(lo + static_cast<Int>(i)));
                              });
}

}  // namespace hpxlite::parallel
