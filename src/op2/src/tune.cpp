#include <op2/tune.hpp>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include <hpxlite/util/env.hpp>
#include <hpxlite/util/spinlock.hpp>
#include <op2/context.hpp>
#include <psim/machine.hpp>

namespace op2::tune {

namespace {

/// Deterministic prior penalty of `any` placement over `affinity` at
/// the same partition count: unpinned sub-nodes drift to whichever
/// worker steals them, so a chain's partitions keep changing cores and
/// pay cold caches. Only the ordering matters (affinity is probed
/// first); measurements replace the prior after one run each.
constexpr double kAnyPlacementPrior = 1.05;

struct site_key {
    std::uint64_t ctx = 0;
    std::string name;
    std::size_t set_size = 0;
    std::size_t pool_size = 0;

    bool operator==(site_key const& o) const noexcept {
        return ctx == o.ctx && set_size == o.set_size &&
               pool_size == o.pool_size && name == o.name;
    }
};

struct site_key_hash {
    std::size_t operator()(site_key const& k) const noexcept {
        std::size_t h = std::hash<std::string>{}(k.name);
        auto mix = [&h](std::size_t v) {
            h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        };
        mix(static_cast<std::size_t>(k.ctx));
        mix(k.set_size);
        mix(k.pool_size);
        return h;
    }
};

/// One (site, config) measurement cell. The totals accumulate
/// lock-free: report() runs on whichever worker executes the loop's
/// join node — the point where mark_start/wall_seconds has already
/// merged the per-worker sub-node spans into one wall time — and does
/// two relaxed atomic adds. Readers (the exploit decision) tolerate
/// tearing between the two counters: a run counted before its total
/// lands momentarily reads a low mean, which the next issue corrects.
struct cell {
    std::atomic<std::int64_t> total_ns{0};
    std::atomic<std::uint32_t> runs{0};
};

struct site {
    site_key key;
    std::vector<config> configs;      // the ladder (immutable)
    std::vector<double> prior_s;      // psim prior per config (immutable)
    std::vector<std::uint32_t> order; // exploration order (immutable)
    std::unique_ptr<cell[]> cells;

    hpxlite::util::spinlock mtx;      // guards the choose-side counters
    std::vector<std::uint64_t> issues;  // choose() picks per config
    std::size_t explored = 0;           // next index into `order`

    [[nodiscard]] double cost_s(std::size_t c) const noexcept {
        std::uint32_t const r = cells[c].runs.load(std::memory_order_relaxed);
        if (r == 0) {
            return prior_s[c];
        }
        std::int64_t const t =
            cells[c].total_ns.load(std::memory_order_relaxed);
        return static_cast<double>(t) * 1e-9 / static_cast<double>(r);
    }

    /// Argmin of the measured means (prior where unmeasured); ties go
    /// to the lowest ladder index, so the choice is a pure function of
    /// the accumulated measurements.
    [[nodiscard]] std::size_t argmin() const noexcept {
        std::size_t best = 0;
        double best_s = cost_s(0);
        for (std::size_t c = 1; c < configs.size(); ++c) {
            double const s = cost_s(c);
            if (s < best_s) {
                best = c;
                best_s = s;
            }
        }
        return best;
    }
};

/// Sharded owning store + thread-local pointer cache, mirroring the
/// plan cache: repeat lookups from one worker hit the local map with no
/// locking; the version counter invalidates every local map wholesale
/// on purge()/clear() (coarse, but purges happen at job retirement).
constexpr std::size_t kShards = 8;

struct shard {
    hpxlite::util::spinlock mtx;
    // shared_ptr: choose() hands each issued token an owning reference,
    // so a site purged at job retirement outlives any probe still
    // waiting to report (the join node is not covered by the fence).
    std::unordered_map<site_key, std::shared_ptr<site>, site_key_hash> m;
};

shard g_shards[kShards];
std::atomic<std::uint64_t> g_version{1};

std::size_t shard_of(site_key const& k) noexcept {
    return site_key_hash{}(k) % kShards;
}

std::shared_ptr<site> resolve(site_key&& key) {
    struct local_cache {
        std::uint64_t version = 0;
        std::unordered_map<site_key, std::shared_ptr<site>, site_key_hash> m;
    };
    thread_local local_cache cache;
    auto const v = g_version.load(std::memory_order_acquire);
    if (cache.version != v) {
        cache.m.clear();
        cache.version = v;
    }
    if (auto it = cache.m.find(key); it != cache.m.end()) {
        return it->second;
    }
    shard& sh = g_shards[shard_of(key)];
    std::shared_ptr<site> s;
    {
        std::lock_guard<hpxlite::util::spinlock> lk(sh.mtx);
        auto it = sh.m.find(key);
        if (it == sh.m.end()) {
            auto fresh = std::make_shared<site>();
            fresh->key = key;
            fresh->configs = ladder(key.pool_size);
            fresh->cells = std::make_unique<cell[]>(fresh->configs.size());
            fresh->issues.assign(fresh->configs.size(), 0);
            psim::machine_model m;
            fresh->prior_s.reserve(fresh->configs.size());
            for (config const& c : fresh->configs) {
                double us = m.partition_prior_us(
                    key.set_size, c.partitions,
                    static_cast<int>(key.pool_size));
                if (c.placement == placement_kind::any &&
                    c.partitions > 1) {
                    us *= kAnyPlacementPrior;
                }
                fresh->prior_s.push_back(us * 1e-6);
            }
            // Exploration order: ascending prior, ties by ladder index
            // (stable sort) — the first issue is the prior's argmin.
            fresh->order.resize(fresh->configs.size());
            for (std::uint32_t c = 0; c < fresh->order.size(); ++c) {
                fresh->order[c] = c;
            }
            std::stable_sort(fresh->order.begin(), fresh->order.end(),
                             [&](std::uint32_t a, std::uint32_t b) {
                                 return fresh->prior_s[a] <
                                        fresh->prior_s[b];
                             });
            it = sh.m.emplace(std::move(key), std::move(fresh)).first;
        }
        s = it->second;
    }
    cache.m.emplace(s->key, s);
    return s;
}

site_key make_key(char const* name, std::size_t set_size,
                  std::size_t pool_size) {
    return {current_context()->id(), name == nullptr ? "" : name, set_size,
            pool_size == 0 ? 1 : pool_size};
}

}  // namespace

std::vector<config> ladder(std::size_t pool_size) {
    std::size_t const pool = pool_size == 0 ? 1 : pool_size;
    std::size_t counts[4] = {1, pool / 2, pool, 2 * pool};
    std::sort(std::begin(counts), std::end(counts));
    std::vector<config> out;
    std::size_t prev = 0;
    for (std::size_t c : counts) {
        if (c == 0 || c == prev) {
            continue;
        }
        prev = c;
        out.push_back({c, placement_kind::affinity});
        if (c > 1) {
            out.push_back({c, placement_kind::any});
        }
    }
    return out;
}

bool autotune_default() noexcept {
    static bool const on = hpxlite::util::env_flag("OP2HPX_AUTOTUNE", false);
    return on;
}

decision choose(char const* name, std::size_t set_size,
                std::size_t pool_size) {
    std::shared_ptr<site> s = resolve(make_key(name, set_size, pool_size));
    decision d;
    std::size_t pick;
    bool first = false;
    {
        std::lock_guard<hpxlite::util::spinlock> lk(s->mtx);
        if (s->explored < s->order.size()) {
            first = s->explored == 0;
            pick = s->order[s->explored++];
            d.exploring = true;
        } else {
            pick = s->argmin();
        }
        ++s->issues[pick];
    }
    d.chosen = s->configs[pick];
    d.token = {s, static_cast<std::uint32_t>(pick)};
    if (first) {
        // Distinct candidate partition counts for the issue path's plan
        // prewarm, emitted once per site.
        for (config const& c : s->configs) {
            if (d.prewarm.empty() || d.prewarm.back() != c.partitions) {
                d.prewarm.push_back(c.partitions);
            }
        }
    }
    return d;
}

void report(probe const& p, double wall_s) noexcept {
    if (!p.active() || wall_s <= 0.0) {
        return;
    }
    auto* s = static_cast<site*>(p.site.get());
    auto const ns = static_cast<std::int64_t>(wall_s * 1e9);
    s->cells[p.cfg].total_ns.fetch_add(ns, std::memory_order_relaxed);
    s->cells[p.cfg].runs.fetch_add(1, std::memory_order_relaxed);
}

site_stats stats(char const* name, std::size_t set_size,
                 std::size_t pool_size) {
    std::shared_ptr<site> s = resolve(make_key(name, set_size, pool_size));
    site_stats out;
    out.configs = s->configs;
    out.prior_s = s->prior_s;
    {
        std::lock_guard<hpxlite::util::spinlock> lk(s->mtx);
        out.issues = s->issues;
        out.exploring = s->explored < s->order.size();
        out.chosen = s->argmin();
    }
    out.runs.reserve(s->configs.size());
    out.mean_s.reserve(s->configs.size());
    for (std::size_t c = 0; c < s->configs.size(); ++c) {
        std::uint32_t const r =
            s->cells[c].runs.load(std::memory_order_relaxed);
        out.runs.push_back(r);
        out.mean_s.push_back(r == 0 ? 0.0 : s->cost_s(c));
    }
    return out;
}

std::string describe(config const& c) {
    return "parts=" + std::to_string(c.partitions) +
           (c.partitions <= 1
                ? std::string{}
                : c.placement == placement_kind::affinity ? " affinity"
                                                          : " any");
}

void purge(std::uint64_t ctx_id) {
    for (shard& sh : g_shards) {
        std::lock_guard<hpxlite::util::spinlock> lk(sh.mtx);
        std::erase_if(sh.m,
                      [&](auto const& e) { return e.first.ctx == ctx_id; });
    }
    g_version.fetch_add(1, std::memory_order_acq_rel);
}

void clear() {
    for (shard& sh : g_shards) {
        std::lock_guard<hpxlite::util::spinlock> lk(sh.mtx);
        sh.m.clear();
    }
    g_version.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace op2::tune
