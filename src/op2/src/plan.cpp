#include <op2/plan.hpp>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

namespace op2 {

namespace {

using conflict_ref = std::pair<op_map, int>;  // (map, slot)

/// Distinct (map, slot) pairs of mutating indirect args.
std::vector<conflict_ref> conflict_refs(std::span<op_arg const> args) {
    std::vector<conflict_ref> refs;
    for (auto const& a : args) {
        if (!a.needs_coloring()) {
            continue;
        }
        bool dup = false;
        for (auto const& r : refs) {
            if (r.first == a.map && r.second == a.idx) {
                dup = true;
                break;
            }
        }
        if (!dup) {
            refs.emplace_back(a.map, a.idx);
        }
    }
    return refs;
}

struct plan_key {
    std::uint64_t set_id;
    std::size_t part_size;
    std::vector<std::pair<std::uint64_t, int>> refs;  // (map id, slot)

    bool operator<(plan_key const& o) const {
        return std::tie(set_id, part_size, refs) <
               std::tie(o.set_id, o.part_size, o.refs);
    }
};

std::mutex g_cache_mtx;
std::map<plan_key, std::unique_ptr<op_plan>> g_cache;

}  // namespace

op_plan plan_build(op_set const& set, std::span<op_arg const> args,
                   std::size_t part_size) {
    if (!set.valid()) {
        throw std::invalid_argument("plan_build: invalid set");
    }
    if (part_size == 0) {
        part_size = 128;
    }

    op_plan plan;
    plan.set_size = set.size();
    plan.part_size = part_size;
    std::size_t const n = set.size();
    plan.nblocks = (n + part_size - 1) / part_size;
    plan.offset.resize(plan.nblocks);
    plan.nelems.resize(plan.nblocks);
    for (std::size_t b = 0; b < plan.nblocks; ++b) {
        plan.offset[b] = b * part_size;
        plan.nelems[b] = std::min(part_size, n - plan.offset[b]);
    }

    auto refs = conflict_refs(args);
    if (refs.empty() || plan.nblocks <= 1) {
        plan.colored = false;
        plan.ncolors = plan.nblocks == 0 ? 0 : 1;
        plan.blkmap.resize(plan.nblocks);
        for (std::size_t b = 0; b < plan.nblocks; ++b) {
            plan.blkmap[b] = b;
        }
        plan.color_offset = {0, plan.nblocks};
        if (plan.nblocks == 0) {
            plan.color_offset = {0};
        }
        return plan;
    }

    // Iterative greedy colouring (OP2-style): per round, a block joins the
    // current colour iff none of its indirect targets was claimed by an
    // earlier block in the same round.
    plan.colored = true;

    // One mark array per distinct target set.
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> marks;
    for (auto const& [mp, idx] : refs) {
        (void)idx;
        marks.try_emplace(mp.to().id(),
                          std::vector<std::uint8_t>(mp.to().size(), 0));
    }

    std::vector<int> block_color(plan.nblocks, -1);
    std::size_t remaining = plan.nblocks;
    int color = 0;
    while (remaining > 0) {
        for (auto& [id, m] : marks) {
            std::fill(m.begin(), m.end(), std::uint8_t{0});
        }
        for (std::size_t b = 0; b < plan.nblocks; ++b) {
            if (block_color[b] != -1) {
                continue;
            }
            bool conflict = false;
            for (auto const& [mp, idx] : refs) {
                auto const& m = marks.at(mp.to().id());
                for (std::size_t e = plan.offset[b];
                     e < plan.offset[b] + plan.nelems[b]; ++e) {
                    if (m[static_cast<std::size_t>(mp(e, idx))] != 0) {
                        conflict = true;
                        break;
                    }
                }
                if (conflict) {
                    break;
                }
            }
            if (conflict) {
                continue;
            }
            block_color[b] = color;
            --remaining;
            for (auto const& [mp, idx] : refs) {
                auto& m = marks.at(mp.to().id());
                for (std::size_t e = plan.offset[b];
                     e < plan.offset[b] + plan.nelems[b]; ++e) {
                    m[static_cast<std::size_t>(mp(e, idx))] = 1;
                }
            }
        }
        ++color;
    }

    plan.ncolors = static_cast<std::size_t>(color);
    plan.color_offset.assign(plan.ncolors + 1, 0);
    for (std::size_t b = 0; b < plan.nblocks; ++b) {
        ++plan.color_offset[static_cast<std::size_t>(block_color[b]) + 1];
    }
    for (std::size_t c = 0; c < plan.ncolors; ++c) {
        plan.color_offset[c + 1] += plan.color_offset[c];
    }
    plan.blkmap.resize(plan.nblocks);
    std::vector<std::size_t> cursor(plan.color_offset.begin(),
                                    plan.color_offset.end() - 1);
    for (std::size_t b = 0; b < plan.nblocks; ++b) {
        plan.blkmap[cursor[static_cast<std::size_t>(block_color[b])]++] = b;
    }
    return plan;
}

op_plan const& plan_get(op_set const& set, std::span<op_arg const> args,
                        std::size_t part_size) {
    plan_key key;
    key.set_id = set.id();
    key.part_size = part_size;
    for (auto const& [mp, idx] : conflict_refs(args)) {
        key.refs.emplace_back(mp.id(), idx);
    }
    std::sort(key.refs.begin(), key.refs.end());

    {
        std::lock_guard<std::mutex> lk(g_cache_mtx);
        auto it = g_cache.find(key);
        if (it != g_cache.end()) {
            return *it->second;
        }
    }
    auto plan = std::make_unique<op_plan>(plan_build(set, args, part_size));
    std::lock_guard<std::mutex> lk(g_cache_mtx);
    auto [it, inserted] = g_cache.try_emplace(std::move(key), std::move(plan));
    return *it->second;
}

void plan_cache_clear() {
    std::lock_guard<std::mutex> lk(g_cache_mtx);
    g_cache.clear();
}

std::size_t plan_cache_size() {
    std::lock_guard<std::mutex> lk(g_cache_mtx);
    return g_cache.size();
}

}  // namespace op2
