#include <op2/plan.hpp>

#include <op2/context.hpp>
#include <op2/memory.hpp>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

namespace op2 {

namespace {

/// One indirect argument class of a loop: the (map, slot, stride) triple
/// that identifies a staged gather table, plus whether any use of it
/// mutates (OP_INC/OP_RW/OP_WRITE), which is what forces colouring.
struct stage_ref {
    op_map map;
    int idx = 0;
    std::size_t stride = 0;
    bool mutating = false;
};

/// Distinct indirect argument classes of `args`, sorted by
/// (map id, slot, stride) with mutating flags merged. One sort + linear
/// merge instead of the old O(n^2) dedup scan, and computed exactly once
/// per plan_get lookup.
std::vector<stage_ref> collect_stage_refs(std::span<op_arg const> args) {
    std::vector<stage_ref> refs;
    refs.reserve(args.size());
    for (auto const& a : args) {
        if (!a.is_indirect()) {
            continue;
        }
        std::size_t const stride =
            a.dat.elem_bytes() * static_cast<std::size_t>(a.dat.dim());
        refs.push_back({a.map, a.idx, stride, is_mutating(a.acc)});
    }
    std::sort(refs.begin(), refs.end(),
              [](stage_ref const& x, stage_ref const& y) {
                  return std::make_tuple(x.map.id(), x.idx, x.stride) <
                         std::make_tuple(y.map.id(), y.idx, y.stride);
              });
    std::size_t out = 0;
    for (std::size_t i = 0; i < refs.size(); ++i) {
        if (out > 0 && refs[out - 1].map == refs[i].map &&
            refs[out - 1].idx == refs[i].idx &&
            refs[out - 1].stride == refs[i].stride) {
            refs[out - 1].mutating |= refs[i].mutating;
        } else {
            refs[out++] = refs[i];
        }
    }
    refs.resize(out);
    return refs;
}

/// Every plan-affecting input is part of the key: the set, every
/// plan_desc field (part_size, staged_gather, partition granularity and
/// index) and the indirect argument classes. See the key-collision
/// regression tests in test_plan.cpp.
///
/// The issuing runtime_context's id is part of the key too. Entity ids
/// are process-unique, so two jobs' same-shaped sets already hash apart
/// — the ctx field exists so a retired job's entries can be *found* and
/// purged (plan_cache_purge) without touching other jobs' plans, and as
/// defense in depth should entity ids ever be recycled.
struct plan_key {
    std::uint64_t set_id = 0;
    std::uint64_t ctx = 0;
    std::size_t part_size = 0;
    bool staged_gather = true;
    std::size_t npartitions = 1;
    std::size_t partition = 0;
    // (map id, slot, stride, mutating) per indirect argument class.
    std::vector<std::tuple<std::uint64_t, int, std::size_t, bool>> refs;

    bool operator==(plan_key const& o) const {
        return set_id == o.set_id && ctx == o.ctx &&
               part_size == o.part_size &&
               staged_gather == o.staged_gather &&
               npartitions == o.npartitions && partition == o.partition &&
               refs == o.refs;
    }
};

struct plan_key_hash {
    std::size_t operator()(plan_key const& k) const noexcept {
        std::uint64_t h = 0x9e3779b97f4a7c15ull;
        auto mix = [&h](std::uint64_t v) {
            h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        };
        mix(k.set_id);
        mix(k.ctx);
        mix(k.part_size);
        mix(k.staged_gather ? 1 : 0);
        mix(k.npartitions);
        mix(k.partition);
        for (auto const& [id, idx, stride, mut] : k.refs) {
            mix(id);
            mix(static_cast<std::uint64_t>(idx));
            mix(stride);
            mix(mut ? 1 : 0);
        }
        return static_cast<std::size_t>(h);
    }
};

plan_key make_key(op_set const& set, plan_desc const& desc,
                  std::vector<stage_ref> const& refs) {
    plan_key key;
    key.set_id = set.id();
    key.ctx = current_context()->id();
    key.part_size = desc.part_size;
    key.staged_gather = desc.staged_gather;
    key.npartitions = desc.npartitions;
    key.partition = desc.partition;
    key.refs.reserve(refs.size());
    for (auto const& r : refs) {
        key.refs.emplace_back(r.map.id(), r.idx, r.stride, r.mutating);
    }
    return key;
}

/// The shared plan store: an unordered map sharded over independently
/// locked stripes; it owns the plans (stable addresses for the lifetime
/// of the cache). Workers rarely reach it — see local_cache below.
constexpr std::size_t kCacheShards = 16;

struct cache_shard {
    std::shared_mutex mtx;
    std::unordered_map<plan_key, std::unique_ptr<op_plan>, plan_key_hash> map;
};

cache_shard g_shards[kCacheShards];

/// Version counter bumped by plan_cache_clear(): per-worker caches hold
/// raw plan pointers into the shared store, so a clear must invalidate
/// them before the store frees the plans.
std::atomic<std::uint64_t> g_cache_version{1};

cache_shard& shard_for(std::size_t hash) {
    return g_shards[hash & (kCacheShards - 1)];
}

/// The per-worker plan shard: a thread-local key -> plan pointer map.
/// Steady-state lookups (every loop issue after warm-up) resolve here
/// with no lock and no shared cache line touched beyond one relaxed
/// version load, which is what removes cross-worker plan-cache
/// contention when many workers issue loops concurrently. All threads
/// still share one plan per configuration through the backing store.
struct local_cache {
    std::uint64_t version = 0;
    std::unordered_map<plan_key, op_plan const*, plan_key_hash> map;
};

local_cache& local_shard() {
    thread_local local_cache cache;
    auto const v = g_cache_version.load(std::memory_order_acquire);
    if (cache.version != v) {
        cache.map.clear();
        cache.version = v;
    }
    return cache;
}

/// One block to colour: an absolute element range [lo, hi) of the
/// iteration set, plus the owning plan's block id when the block belongs
/// to the partition being built (SIZE_MAX for other partitions' blocks,
/// which participate in conflict detection but whose colours are not
/// recorded).
struct color_span {
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::size_t mine = SIZE_MAX;
};

/// The greedy mask sweep at the heart of the colouring (see
/// color_blocks): for every target element a 64-bit mask of the colours
/// already claimed by spans touching it; each span ORs its targets'
/// masks and takes the lowest free colour. One sweep handles 64
/// colours; the pathological >64-colour case takes another sweep for
/// the next 64.
std::vector<int> sweep_colors(std::vector<color_span> const& spans,
                              std::vector<stage_ref> const& color_refs) {
    // One mask array per distinct target set (conflicts are per target
    // element, regardless of which map reached it).
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> masks;
    for (auto const& r : color_refs) {
        masks.try_emplace(r.map.to().id(),
                          std::vector<std::uint64_t>(r.map.to().size(), 0));
    }

    std::vector<int> span_color(spans.size(), -1);
    std::size_t remaining = spans.size();
    int base = 0;
    while (remaining > 0) {
        for (auto& [id, m] : masks) {
            std::fill(m.begin(), m.end(), std::uint64_t{0});
        }
        for (std::size_t s = 0; s < spans.size(); ++s) {
            if (span_color[s] != -1) {
                continue;
            }
            std::uint64_t used = 0;
            for (auto const& r : color_refs) {
                auto const& m = masks.at(r.map.to().id());
                for (std::size_t e = spans[s].lo; e < spans[s].hi; ++e) {
                    used |= m[static_cast<std::size_t>(r.map(e, r.idx))];
                }
            }
            if (used == ~std::uint64_t{0}) {
                continue;  // all 64 colours of this sweep taken: next sweep
            }
            int const c = std::countr_one(used);
            span_color[s] = base + c;
            std::uint64_t const bit = std::uint64_t{1} << c;
            for (auto const& r : color_refs) {
                auto& m = masks.at(r.map.to().id());
                for (std::size_t e = spans[s].lo; e < spans[s].hi; ++e) {
                    m[static_cast<std::size_t>(r.map(e, r.idx))] |= bit;
                }
            }
            --remaining;
        }
        base += 64;
    }
    return span_color;
}

/// Memo of the global sweep shared by the partition plans of one
/// configuration. The sweep's input is fully determined by (set,
/// part_size, npartitions, mutating indirect classes) — partition index
/// and staged_gather do not affect colouring — so the first partition
/// plan built computes it once and the other P-1 reuse the result
/// instead of each re-walking the whole set. Entries are dropped by
/// plan_cache_clear() along with the plans that reference them.
struct color_memo {
    std::mutex mtx;
    std::unordered_map<plan_key, std::shared_ptr<std::vector<int> const>,
                       plan_key_hash>
        map;
};
color_memo g_color_memo;

std::shared_ptr<std::vector<int> const> sweep_colors_cached(
    op_plan const& plan, op_set const& set,
    std::vector<color_span> const& spans,
    std::vector<stage_ref> const& color_refs) {
    // Key normalised to the memo's granularity — partition 0,
    // staged_gather fixed, mutating classes only — so there is one
    // entry per configuration whose colouring actually differs.
    plan_key key = make_key(
        set, plan_desc{plan.part_size, true, plan.npartitions, 0},
        color_refs);
    {
        std::lock_guard<std::mutex> lk(g_color_memo.mtx);
        if (auto it = g_color_memo.map.find(key);
            it != g_color_memo.map.end()) {
            return it->second;
        }
    }
    // Compute outside the lock: the sweep is deterministic, so two
    // racing builders produce identical vectors and the first insert
    // wins.
    auto computed = std::make_shared<std::vector<int> const>(
        sweep_colors(spans, color_refs));
    std::lock_guard<std::mutex> lk(g_color_memo.mtx);
    auto [it, inserted] =
        g_color_memo.map.try_emplace(std::move(key), std::move(computed));
    return it->second;
}

/// Single-pass block-conflict colouring. For every target element we keep
/// a 64-bit mask of the colours already claimed by blocks touching it;
/// a block ORs the masks of all its targets and takes the lowest free
/// colour. One sweep over the set colours up to 64 colours (the old
/// greedy scheme re-scanned the whole set once per colour); in the
/// pathological >64-colour case another sweep handles the next 64.
///
/// Whole-set plans colour their own blocks. Partition plans colour the
/// *whole loop* — every partition's blocks, walked in deterministic
/// (partition, block) order — and record only their own partition's
/// colours. Every partition plan of one configuration therefore derives
/// the same global assignment, which gives the colour labels a
/// cross-partition guarantee: two same-coloured blocks never mutate the
/// same target element, *no matter which partitions they belong to*.
/// That invariant is what makes the dataflow backend's loop-local
/// same-colour non-conflict exemption sound (per-partition colouring
/// would let the single blocks of two boundary-straddling partitions
/// both claim colour 0 while INC-ing the same boundary element).
void color_blocks(op_plan& plan, std::vector<stage_ref> const& color_refs,
                  op_set const& set) {
    plan.colored = true;

    // The spans to colour, in the deterministic global walk order.
    std::vector<color_span> spans;
    if (plan.npartitions > 1) {
        auto const part = set.partition(plan.npartitions);
        for (std::size_t p = 0; p < plan.npartitions; ++p) {
            std::size_t const base = part->begin(p);
            std::size_t const n = part->size_of(p);
            std::size_t const nb =
                n == 0 ? 0 : (n + plan.part_size - 1) / plan.part_size;
            for (std::size_t b = 0; b < nb; ++b) {
                std::size_t const off = b * plan.part_size;
                spans.push_back({base + off,
                                 base + off + std::min(plan.part_size, n - off),
                                 p == plan.partition ? b : SIZE_MAX});
            }
        }
    } else {
        spans.reserve(plan.nblocks);
        for (std::size_t b = 0; b < plan.nblocks; ++b) {
            spans.push_back({plan.offset[b], plan.offset[b] + plan.nelems[b],
                             b});
        }
    }

    std::vector<int> local_colors;
    std::shared_ptr<std::vector<int> const> shared_colors;
    if (plan.npartitions > 1) {
        shared_colors = sweep_colors_cached(plan, set, spans, color_refs);
    } else {
        local_colors = sweep_colors(spans, color_refs);
    }
    std::vector<int> const& span_color =
        shared_colors ? *shared_colors : local_colors;

    std::vector<int> block_color(plan.nblocks, -1);
    int max_color = -1;  // max colour among *this plan's* blocks
    for (std::size_t s = 0; s < spans.size(); ++s) {
        if (spans[s].mine != SIZE_MAX) {
            block_color[spans[s].mine] = span_color[s];
            max_color = std::max(max_color, span_color[s]);
        }
    }

    // Partition plans may own a sparse subset of the global colours
    // (colour classes with no block here stay empty in color_offset);
    // the issue path skips empty colours when creating sub-nodes.
    plan.ncolors = static_cast<std::size_t>(max_color + 1);
    plan.color_offset.assign(plan.ncolors + 1, 0);
    for (std::size_t b = 0; b < plan.nblocks; ++b) {
        ++plan.color_offset[static_cast<std::size_t>(block_color[b]) + 1];
    }
    for (std::size_t c = 0; c < plan.ncolors; ++c) {
        plan.color_offset[c + 1] += plan.color_offset[c];
    }
    plan.blkmap.resize(plan.nblocks);
    std::vector<std::size_t> cursor(plan.color_offset.begin(),
                                    plan.color_offset.end() - 1);
    for (std::size_t b = 0; b < plan.nblocks; ++b) {
        plan.blkmap[cursor[static_cast<std::size_t>(block_color[b])]++] = b;
    }
}

/// Build the staged gather tables: off[e] = map[(base+e)*dim+idx] *
/// stride, the per-element byte offset the executor's inner loop reads
/// directly. Tables are indexed relative to the plan's elem_base; the
/// offsets themselves are absolute bytes into the target dat.
void build_stages(op_plan& plan, std::vector<stage_ref> const& refs) {
    plan.stages.reserve(refs.size());
    for (auto const& r : refs) {
        // 32-bit offsets halve the table's cache footprint; dats beyond
        // 4 GiB simply fall back to per-element map resolution.
        if (r.map.to().size() * r.stride >
            std::numeric_limits<std::uint32_t>::max()) {
            continue;
        }
        plan_stage st;
        st.map_id = r.map.id();
        st.idx = r.idx;
        st.stride = r.stride;
        st.simd = memory::simd_stride(r.stride) ? r.stride : 0;
        st.off.resize(plan.set_size);
        int const* table = r.map.table().data() +
                           plan.elem_base * static_cast<std::size_t>(
                                                r.map.dim());
        auto const mapdim = static_cast<std::size_t>(r.map.dim());
        auto const idx = static_cast<std::size_t>(r.idx);
        for (std::size_t e = 0; e < plan.set_size; ++e) {
            st.off[e] = static_cast<std::uint32_t>(
                static_cast<std::size_t>(table[e * mapdim + idx]) * r.stride);
        }
        plan.stages.push_back(std::move(st));
    }
}

/// Compute the map-derived partition footprints: which partitions of
/// each indirect target set the plan's element range reaches. One entry
/// per distinct (map, slot); strides are irrelevant to reachability.
void build_footprints(op_plan& plan, std::vector<stage_ref> const& refs) {
    for (auto const& r : refs) {
        if (plan.find_footprint(r.map.id(), r.idx) != nullptr) {
            continue;
        }
        auto const tpart = r.map.to().partition(plan.npartitions);
        std::vector<bool> touched(plan.npartitions, false);
        for (std::size_t e = 0; e < plan.set_size; ++e) {
            auto const t = static_cast<std::size_t>(
                r.map(plan.elem_base + e, r.idx));
            touched[tpart->find(t)] = true;
        }
        plan_footprint fp;
        fp.map_id = r.map.id();
        fp.idx = r.idx;
        for (std::size_t p = 0; p < plan.npartitions; ++p) {
            if (touched[p]) {
                fp.parts.push_back(static_cast<std::uint32_t>(p));
            }
        }
        plan.footprints.push_back(std::move(fp));
    }
}

op_plan plan_build_impl(op_set const& set, plan_desc const& desc,
                        std::vector<stage_ref> const& refs) {
    op_plan plan;
    plan.part_size = desc.part_size;
    plan.npartitions = desc.npartitions;
    plan.partition = desc.partition;
    if (desc.npartitions > 1) {
        auto const part = set.partition(desc.npartitions);
        plan.elem_base = part->begin(desc.partition);
        plan.set_size = part->size_of(desc.partition);
    } else {
        plan.elem_base = 0;
        plan.set_size = set.size();
    }
    std::size_t const part_size = desc.part_size;
    std::size_t const n = plan.set_size;
    plan.nblocks = (n + part_size - 1) / part_size;
    plan.offset.resize(plan.nblocks);
    plan.nelems.resize(plan.nblocks);
    for (std::size_t b = 0; b < plan.nblocks; ++b) {
        plan.offset[b] = b * part_size;
        plan.nelems[b] = std::min(part_size, n - plan.offset[b]);
    }

    if (desc.staged_gather) {
        build_stages(plan, refs);
    }
    if (desc.npartitions > 1) {
        build_footprints(plan, refs);
    }

    std::vector<stage_ref> color_refs;
    for (auto const& r : refs) {
        if (r.mutating) {
            color_refs.push_back(r);
        }
    }
    // Partition plans with mutating indirect args always take the
    // colouring path, even with a single block: the block's colour must
    // come from the *global* sweep so it stays comparable with the other
    // partitions' colours (a lone block is trivially colour 0 locally,
    // but may conflict with another partition's colour-0 block).
    bool const trivial =
        color_refs.empty() || plan.nblocks == 0 ||
        (plan.nblocks <= 1 && desc.npartitions == 1);
    if (trivial) {
        plan.colored = false;
        plan.ncolors = plan.nblocks == 0 ? 0 : 1;
        plan.blkmap.resize(plan.nblocks);
        for (std::size_t b = 0; b < plan.nblocks; ++b) {
            plan.blkmap[b] = b;
        }
        plan.color_offset = {0, plan.nblocks};
        if (plan.nblocks == 0) {
            plan.color_offset = {0};
        }
        return plan;
    }

    color_blocks(plan, color_refs, set);
    return plan;
}

/// Validate + normalise a caller-supplied desc (part_size 0 and
/// default_part_size are the same configuration and must share one
/// cache entry; partition bounds must be sane).
plan_desc normalise(plan_desc desc) {
    if (desc.part_size == 0) {
        desc.part_size = default_part_size;
    }
    if (desc.npartitions == 0) {
        desc.npartitions = 1;
    }
    if (desc.partition >= desc.npartitions) {
        throw std::invalid_argument("plan: partition index out of range");
    }
    return desc;
}

}  // namespace

op_plan plan_build(op_set const& set, std::span<op_arg const> args,
                   plan_desc const& desc) {
    if (!set.valid()) {
        throw std::invalid_argument("plan_build: invalid set");
    }
    return plan_build_impl(set, normalise(desc), collect_stage_refs(args));
}

op_plan plan_build(op_set const& set, std::span<op_arg const> args,
                   std::size_t part_size) {
    return plan_build(set, args, plan_desc{part_size});
}

op_plan const& plan_get(op_set const& set, std::span<op_arg const> args,
                        plan_desc const& desc0) {
    if (!set.valid()) {
        throw std::invalid_argument("plan_get: invalid set");
    }
    plan_desc const desc = normalise(desc0);
    auto const refs = collect_stage_refs(args);
    plan_key key = make_key(set, desc, refs);

    // Per-worker shard first: no locks, no shared state.
    local_cache& local = local_shard();
    if (auto it = local.map.find(key); it != local.map.end()) {
        return *it->second;
    }

    std::size_t const hash = plan_key_hash{}(key);
    cache_shard& shard = shard_for(hash);
    {
        std::shared_lock<std::shared_mutex> rd(shard.mtx);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            local.map.emplace(std::move(key), it->second.get());
            return *it->second;
        }
    }
    auto plan = std::make_unique<op_plan>(plan_build_impl(set, desc, refs));
    op_plan const* stored = nullptr;
    {
        std::unique_lock<std::shared_mutex> wr(shard.mtx);
        // try_emplace keeps the first insertion if another thread raced us.
        auto [it, inserted] = shard.map.try_emplace(key, std::move(plan));
        stored = it->second.get();
    }
    local.map.emplace(std::move(key), stored);
    return *stored;
}

op_plan const& plan_get(op_set const& set, std::span<op_arg const> args,
                        std::size_t part_size) {
    return plan_get(set, args, plan_desc{part_size});
}

void plan_prewarm(op_set const& set, std::span<op_arg const> args,
                  std::size_t part_size, bool staged_gather,
                  std::span<std::size_t const> candidates) {
    for (std::size_t nparts : candidates) {
        if (nparts <= 1) {
            (void)plan_get(set, args, plan_desc{part_size, staged_gather});
            continue;
        }
        for (std::size_t p = 0; p < nparts; ++p) {
            (void)plan_get(set, args,
                           plan_desc{part_size, staged_gather, nparts, p});
        }
    }
}

bool plan_colors_equal(op_plan const& a, op_plan const& b) {
    if (a.nblocks != b.nblocks || a.offset != b.offset ||
        a.nelems != b.nelems) {
        return false;
    }
    // Invert blkmap into colour-per-block for each plan, then compare.
    // Cheap (one pass over the blocks, which number set_size/part_size)
    // and runs once per fusion attempt per partition — the plans
    // themselves come from the cache.
    std::vector<std::size_t> ca(a.nblocks), cb(b.nblocks);
    for (std::size_t c = 0; c < a.ncolors; ++c) {
        for (std::size_t blk : a.blocks_of_color(c)) {
            ca[blk] = c;
        }
    }
    for (std::size_t c = 0; c < b.ncolors; ++c) {
        for (std::size_t blk : b.blocks_of_color(c)) {
            cb[blk] = c;
        }
    }
    return ca == cb;
}

void plan_cache_clear() {
    // Invalidate the per-worker pointer maps *before* freeing the plans
    // they point into; each thread flushes its map on its next lookup.
    g_cache_version.fetch_add(1, std::memory_order_acq_rel);
    for (auto& shard : g_shards) {
        std::unique_lock<std::shared_mutex> wr(shard.mtx);
        shard.map.clear();
    }
    {
        std::lock_guard<std::mutex> lk(g_color_memo.mtx);
        g_color_memo.map.clear();
    }
}

std::size_t plan_cache_size() {
    std::size_t n = 0;
    for (auto& shard : g_shards) {
        std::shared_lock<std::shared_mutex> rd(shard.mtx);
        n += shard.map.size();
    }
    return n;
}

std::size_t plan_cache_size(std::uint64_t ctx_id) {
    std::size_t n = 0;
    for (auto& shard : g_shards) {
        std::shared_lock<std::shared_mutex> rd(shard.mtx);
        for (auto const& [key, plan] : shard.map) {
            if (key.ctx == ctx_id) {
                ++n;
            }
        }
    }
    return n;
}

void plan_cache_purge(std::uint64_t ctx_id) {
    // Same ordering discipline as plan_cache_clear: invalidate the
    // per-worker pointer maps before freeing any plan they may point
    // into. A purge drops *every* thread's local map, not just entries
    // of the purged context — coarse, but purges happen at job
    // retirement, not on the issue path.
    g_cache_version.fetch_add(1, std::memory_order_acq_rel);
    for (auto& shard : g_shards) {
        std::unique_lock<std::shared_mutex> wr(shard.mtx);
        std::erase_if(shard.map,
                      [&](auto const& kv) { return kv.first.ctx == ctx_id; });
    }
    {
        std::lock_guard<std::mutex> lk(g_color_memo.mtx);
        std::erase_if(g_color_memo.map,
                      [&](auto const& kv) { return kv.first.ctx == ctx_id; });
    }
}

}  // namespace op2
