#include <op2/fault.hpp>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <hpxlite/threads/thread_pool.hpp>

namespace op2::fault {

namespace {

/// One armed kernel site: loop name x partition x colour, firing once
/// on the K-th matching hit.
struct kernel_site {
    std::string loop;
    bool any_partition = false;
    std::size_t partition = 0;
    bool any_color = false;
    std::size_t color = 0;
    std::size_t nth = 1;  // 1-based matching-hit count to fire on
    std::atomic<std::size_t> hits{0};
    std::atomic<bool> fired{false};
};

struct plan_impl {
    std::string spec;
    std::uint64_t seed = 1;

    std::vector<std::unique_ptr<kernel_site>> kernels;

    std::size_t alloc_nth = 0;  // 0 = off
    std::atomic<std::size_t> alloc_count{0};

    std::size_t delay_nth = 0;
    std::size_t delay_us = 0;
    std::size_t drop_nth = 0;
    double jitter_rate = 0.0;
    std::size_t jitter_max_us = 0;
    std::atomic<std::size_t> task_count{0};
    std::atomic<std::uint64_t> rng{1};

    [[nodiscard]] bool wants_task_hook() const noexcept {
        return delay_nth != 0 || drop_nth != 0 || jitter_rate > 0.0;
    }
};

/// The active plan. Retired plans are kept alive in g_retired for the
/// life of the process: a hook may hold the raw pointer across a
/// concurrent re-arm, and leaking a handful of small plan objects is
/// cheaper than refcounting on the injection path.
std::atomic<plan_impl*> g_plan{nullptr};
std::mutex g_arm_mtx;
std::vector<std::unique_ptr<plan_impl>>& retired() {
    static auto* r = new std::vector<std::unique_ptr<plan_impl>>();
    return *r;
}

[[noreturn]] void bad_spec(std::string_view spec, std::string const& why) {
    throw std::invalid_argument("op2.fault: malformed plan '" +
                                std::string(spec) + "': " + why);
}

std::size_t parse_size(std::string_view tok, std::string_view spec,
                       char const* what) {
    std::size_t v = 0;
    auto const* end = tok.data() + tok.size();
    auto const res = std::from_chars(tok.data(), end, v);
    if (res.ec != std::errc{} || res.ptr != end) {
        bad_spec(spec, std::string(what) + " expects a number, got '" +
                           std::string(tok) + "'");
    }
    return v;
}

double parse_rate(std::string_view tok, std::string_view spec) {
    double v = std::strtod(std::string(tok).c_str(), nullptr);
    if (!(v >= 0.0) || v > 1.0) {
        bad_spec(spec, "jitter rate must be in [0, 1], got '" +
                           std::string(tok) + "'");
    }
    return v;
}

/// kernel=NAME@P.C[#K] — P and C may be '*'.
void parse_kernel_site(plan_impl& plan, std::string_view val,
                       std::string_view spec) {
    auto site = std::make_unique<kernel_site>();
    std::size_t const at = val.rfind('@');
    if (at == std::string_view::npos || at == 0) {
        bad_spec(spec, "kernel site needs NAME@P.C, got '" +
                           std::string(val) + "'");
    }
    site->loop = std::string(val.substr(0, at));
    std::string_view addr = val.substr(at + 1);
    if (std::size_t const hash = addr.rfind('#');
        hash != std::string_view::npos) {
        site->nth = parse_size(addr.substr(hash + 1), spec, "kernel #K");
        if (site->nth == 0) {
            bad_spec(spec, "kernel #K is 1-based");
        }
        addr = addr.substr(0, hash);
    }
    std::size_t const dot = addr.find('.');
    if (dot == std::string_view::npos) {
        bad_spec(spec, "kernel site needs P.C after '@', got '" +
                           std::string(addr) + "'");
    }
    std::string_view const p = addr.substr(0, dot);
    std::string_view const c = addr.substr(dot + 1);
    if (p == "*") {
        site->any_partition = true;
    } else {
        site->partition = parse_size(p, spec, "kernel partition");
    }
    if (c == "*") {
        site->any_color = true;
    } else {
        site->color = parse_size(c, spec, "kernel colour");
    }
    plan.kernels.push_back(std::move(site));
}

std::unique_ptr<plan_impl> parse(std::string_view spec) {
    auto plan = std::make_unique<plan_impl>();
    plan->spec = std::string(spec);
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t const semi = spec.find(';', pos);
        std::string_view const item =
            spec.substr(pos, semi == std::string_view::npos ? std::string_view::npos
                                                            : semi - pos);
        pos = semi == std::string_view::npos ? spec.size() : semi + 1;
        if (item.empty()) {
            continue;
        }
        std::size_t const eq = item.find('=');
        if (eq == std::string_view::npos) {
            bad_spec(spec, "directive without '=': '" + std::string(item) +
                               "'");
        }
        std::string_view const key = item.substr(0, eq);
        std::string_view const val = item.substr(eq + 1);
        if (key == "seed") {
            plan->seed = parse_size(val, spec, "seed");
        } else if (key == "kernel") {
            parse_kernel_site(*plan, val, spec);
        } else if (key == "alloc") {
            plan->alloc_nth = parse_size(val, spec, "alloc");
            if (plan->alloc_nth == 0) {
                bad_spec(spec, "alloc=K is 1-based");
            }
        } else if (key == "delay") {
            std::size_t const colon = val.find(':');
            if (colon == std::string_view::npos) {
                bad_spec(spec, "delay expects K:US");
            }
            plan->delay_nth =
                parse_size(val.substr(0, colon), spec, "delay K");
            plan->delay_us =
                parse_size(val.substr(colon + 1), spec, "delay US");
            if (plan->delay_nth == 0) {
                bad_spec(spec, "delay=K:US is 1-based");
            }
        } else if (key == "drop") {
            plan->drop_nth = parse_size(val, spec, "drop");
            if (plan->drop_nth == 0) {
                bad_spec(spec, "drop=K is 1-based");
            }
        } else if (key == "jitter") {
            std::size_t const colon = val.find(':');
            if (colon == std::string_view::npos) {
                bad_spec(spec, "jitter expects RATE:MAXUS");
            }
            plan->jitter_rate = parse_rate(val.substr(0, colon), spec);
            plan->jitter_max_us =
                parse_size(val.substr(colon + 1), spec, "jitter MAXUS");
        } else {
            bad_spec(spec, "unknown directive '" + std::string(key) + "'");
        }
    }
    plan->rng.store(plan->seed == 0 ? 0x9e3779b97f4a7c15ull : plan->seed,
                    std::memory_order_relaxed);
    return plan;
}

/// splitmix64 step on the plan's RNG state: seeded, lock-free, and
/// deterministic given one consumer order (jitter is a fuzz mode, not a
/// replay mode — the *sites* printed on arm are what make a red run
/// reproducible).
std::uint64_t next_rand(plan_impl& plan) {
    std::uint64_t z =
        plan.rng.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed) +
        0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

hpxlite::threads::task_fault task_hook() {
    plan_impl* const plan = g_plan.load(std::memory_order_acquire);
    if (plan == nullptr) {
        return hpxlite::threads::task_fault::none;
    }
    std::size_t const n =
        plan->task_count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (plan->delay_nth != 0 && n == plan->delay_nth) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(plan->delay_us));
    }
    if (plan->jitter_rate > 0.0 && plan->jitter_max_us != 0) {
        std::uint64_t const r = next_rand(*plan);
        double const u =
            static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
        if (u < plan->jitter_rate) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                next_rand(*plan) % (plan->jitter_max_us + 1)));
        }
    }
    if (plan->drop_nth != 0 && n == plan->drop_nth) {
        return hpxlite::threads::task_fault::drop;
    }
    return hpxlite::threads::task_fault::none;
}

/// Arm the OP2HPX_FAULT_PLAN environment plan when libop2 loads, so a
/// whole test binary can be fuzzed without touching any test.
struct env_armer {
    env_armer() {
        if (char const* spec = std::getenv("OP2HPX_FAULT_PLAN");
            spec != nullptr && *spec != '\0') {
            try {
                arm(spec);
            } catch (std::exception const& e) {
                std::fprintf(stderr, "op2.fault: ignoring %s: %s\n",
                             "OP2HPX_FAULT_PLAN", e.what());
            }
        }
    }
};
env_armer const g_env_armer;

}  // namespace

void arm(std::string_view spec) {
    if (spec.empty()) {
        disarm();
        return;
    }
    auto plan = parse(spec);  // throws before anything is installed
    std::lock_guard<std::mutex> lk(g_arm_mtx);
    plan_impl* const raw = plan.get();
    retired().push_back(std::move(plan));
    g_plan.store(raw, std::memory_order_release);
    detail::g_armed.store(true, std::memory_order_release);
    hpxlite::threads::set_task_fault_hook(
        raw->wants_task_hook() ? &task_hook : nullptr);
    std::fprintf(stderr, "op2.fault: armed plan '%s' (seed %llu)\n",
                 raw->spec.c_str(),
                 static_cast<unsigned long long>(raw->seed));
}

void disarm() noexcept {
    std::lock_guard<std::mutex> lk(g_arm_mtx);
    detail::g_armed.store(false, std::memory_order_release);
    g_plan.store(nullptr, std::memory_order_release);
    hpxlite::threads::set_task_fault_hook(nullptr);
}

std::string active_plan() {
    plan_impl* const plan = g_plan.load(std::memory_order_acquire);
    return plan != nullptr ? plan->spec : std::string{};
}

namespace detail {

void on_kernel_slow(char const* loop, std::size_t partition,
                    std::size_t color) {
    plan_impl* const plan = g_plan.load(std::memory_order_acquire);
    if (plan == nullptr) {
        return;
    }
    for (auto const& site : plan->kernels) {
        if (site->loop != loop) {
            continue;
        }
        if (!site->any_partition && site->partition != partition) {
            continue;
        }
        if (!site->any_color && site->color != color) {
            continue;
        }
        std::size_t const hit =
            site->hits.fetch_add(1, std::memory_order_relaxed) + 1;
        if (hit == site->nth &&
            !site->fired.exchange(true, std::memory_order_relaxed)) {
            throw injected_fault(
                "injected fault: kernel site " + site->loop + "@" +
                std::to_string(partition) + "." + std::to_string(color) +
                " (hit " + std::to_string(hit) + ")");
        }
    }
}

void on_alloc_slow(std::size_t bytes) {
    plan_impl* const plan = g_plan.load(std::memory_order_acquire);
    if (plan == nullptr || plan->alloc_nth == 0) {
        return;
    }
    std::size_t const n =
        plan->alloc_count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == plan->alloc_nth) {
        throw injected_fault("injected fault: allocation #" +
                             std::to_string(n) + " (" +
                             std::to_string(bytes) + " bytes)");
    }
}

}  // namespace detail

}  // namespace op2::fault
