#include <op2/exec/watchdog.hpp>

#include <algorithm>
#include <iostream>
#include <vector>

#include <hpxlite/runtime.hpp>
#include <op2/dat.hpp>
#include <op2/exec/dataflow.hpp>

namespace op2::exec {

void dump_graph(std::ostream& os) {
    auto const dats = op2::detail::all_dats();

    // Pending sub-nodes, deduplicated across records (a node sits in
    // one record per dat partition it touches).
    std::vector<node_ref> pending;
    std::vector<node_ref> scratch;
    for (auto const& di : dats) {
        auto const [recs, count] = di->dep.table();
        for (std::size_t p = 0; p < count; ++p) {
            recs[p].snapshot(scratch);
            for (auto& n : scratch) {
                if (n->done()) {
                    continue;
                }
                if (std::find_if(pending.begin(), pending.end(),
                                 [&](node_ref const& q) {
                                     return &*q == &*n;
                                 }) == pending.end()) {
                    pending.push_back(n);
                }
            }
        }
    }

    os << "op2.watchdog: epoch graph dump: " << pending.size()
       << " pending sub-node(s)\n";
    for (auto const& n : pending) {
        os << "  pending: loop '"
           << (n->site_loop() != nullptr ? n->site_loop() : "?") << "'";
        if (n->site_job() != nullptr) {
            // Service-mode node: name the owning job so a stall in a
            // multi-tenant process attributes itself.
            os << " [job " << n->site_job() << "]";
        }
        if (n->site_kind() != nullptr) {
            // Comm sub-node: its site is a (dat, loop) halo label plus
            // the region's locality pair — a stuck halo wait names
            // itself instead of masquerading as a compute partition.
            os << " [" << n->site_kind() << "] localities L"
               << n->site_partition() << "->L" << n->site_color();
        } else if (n->site_partition() == dataflow_node::kJoin) {
            os << " join";
        } else {
            os << " partition " << n->site_partition() << " colour "
               << n->site_color();
        }
        if (n->worker_hint() != dataflow_node::kJoin) {
            os << " (worker hint " << n->worker_hint() << ")";
        }
        os << "\n";
    }

    os << "op2.watchdog: dat record tables\n";
    for (auto const& di : dats) {
        auto const [recs, count] = di->dep.table();
        std::size_t tracked = 0;
        for (std::size_t p = 0; p < count; ++p) {
            recs[p].snapshot(scratch);
            tracked += scratch.size();
        }
        os << "  dat '" << di->name << "'";
        if (di->ctx && di->ctx->label() != nullptr) {
            os << " [job " << di->ctx->label() << "]";
        }
        os << ": " << count << " record partition(s), " << tracked
           << " tracked node(s), " << di->dep.poison_count()
           << " poison span(s)\n";
    }
    os.flush();
}

watchdog::watchdog(std::chrono::milliseconds stall, std::ostream* out)
  : out_(out != nullptr ? out : &std::cerr),
    thread_([this, stall] { run(stall); }) {}

watchdog::~watchdog() {
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void watchdog::run(std::chrono::milliseconds stall) {
    auto& pool = hpxlite::get_pool();
    auto const tick =
        std::max<std::chrono::milliseconds>(stall / 4,
                                            std::chrono::milliseconds(1));
    std::uint64_t last_executed = pool.tasks_executed();
    auto last_progress = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lk(mtx_);
    while (!cv_.wait_for(lk, tick, [this] { return stop_; })) {
        std::uint64_t const executed = pool.tasks_executed();
        std::size_t const pend = pool.tasks_pending();
        auto const now = std::chrono::steady_clock::now();
        if (executed != last_executed || pend == 0) {
            last_executed = executed;
            last_progress = now;
            continue;
        }
        if (now - last_progress >= stall) {
            *out_ << "op2.watchdog: no progress for "
                  << std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - last_progress)
                         .count()
                  << " ms with " << pend << " task(s) pending\n";
            dump_graph(*out_);
            reports_.fetch_add(1, std::memory_order_relaxed);
            // Re-arm: a still-frozen pool reports again one full stall
            // period later, not every tick.
            last_progress = now;
        }
    }
}

}  // namespace op2::exec
