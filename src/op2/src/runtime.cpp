#include <op2/runtime.hpp>

#include <mutex>

#include <hpxlite/util/env.hpp>
#include <op2/exec/dataflow.hpp>

namespace op2 {

namespace detail {

bool simd_gather_default() noexcept {
    static bool const on =
        hpxlite::util::env_flag("OP2HPX_SIMD_GATHER", true);
    return on;
}

bool simd_scatter_default() noexcept {
    static bool const on =
        hpxlite::util::env_flag("OP2HPX_SIMD_SCATTER", true);
    return on;
}

bool exec_pool_default() noexcept {
    static bool const on =
        hpxlite::util::env_flag("OP2HPX_EXEC_POOL", true);
    return on;
}

bool fuse_default() noexcept {
    static bool const on = hpxlite::util::env_flag("OP2HPX_FUSE", false);
    return on;
}

}  // namespace detail

config& global_config() {
    static config cfg;
    return cfg;
}

void op_set_backend(backend b) { global_config().be = b; }

void op_set_part_size(std::size_t part_size) {
    global_config().opts.part_size = part_size;
}

namespace {

void fence_impl(detail::dat_impl& di) {
    // Snapshot each partition record's nodes under its lock, wait
    // outside it (waiting helps the pool, so holding the lock could
    // deadlock the very loops being waited for). The owning table
    // snapshot keeps the records alive across a concurrent
    // re-partition.
    auto const [recs, count] = di.dep.table();
    std::vector<exec::node_ref> nodes;
    for (std::size_t p = 0; p < count; ++p) {
        recs[p].snapshot(nodes);
        for (auto& n : nodes) {
            n->wait();
        }
    }
}

}  // namespace

void op_fence(op_dat const& d) {
    if (!d.valid()) {
        return;
    }
    // A loop deferred in a fusion window is in no dat record yet; a
    // fence must force it into the graph first or it would be missed.
    exec::fusion_flush_point();
    fence_impl(const_cast<op_dat&>(d).internal());
}

void op_fence_all() {
    exec::fusion_flush_point();
    for (auto const& di : detail::all_dats()) {
        fence_impl(*di);
    }
}

}  // namespace op2
