#include <op2/exec/checkpoint.hpp>

#include <stdexcept>

#include <hpxlite/runtime.hpp>
#include <op2/runtime.hpp>

namespace op2::exec {

void checkpoint::capture(std::vector<op_dat> const& dats) {
    bool same = entries_.size() == dats.size();
    for (std::size_t i = 0; same && i < dats.size(); ++i) {
        same = entries_[i].dat == dats[i];
    }
    if (!same) {
        std::vector<entry> next;
        next.reserve(dats.size());
        for (op_dat const& d : dats) {
            if (!d.valid()) {
                throw std::invalid_argument(
                    "op2.checkpoint: capture of an invalid dat handle");
            }
            // Allocation goes through fault::on_alloc (an armed alloc=K
            // plan can fail a snapshot); throw before touching entries_.
            next.push_back(
                {d, memory::aligned_buffer(d.internal().data.size())});
        }
        entries_ = std::move(next);
    }

    // Fence first, copy second: by the time any byte is copied, every
    // in-flight loop touching any captured dat has completed, so the
    // snapshot is one consistent epoch cut (capture runs on the
    // application thread; nothing is being issued concurrently).
    for (entry const& e : entries_) {
        op_fence(e.dat);
    }
    auto& pool = hpxlite::get_pool();
    for (entry& e : entries_) {
        auto const& di = e.dat.internal();
        if (di.data.empty()) {
            continue;
        }
        std::size_t const stride =
            static_cast<std::size_t>(di.dim) * di.elem_bytes;
        memory::copy_partitions(e.copy.data(), di.data.data(),
                                di.data.size(),
                                *di.set.partition(pool.size()), stride,
                                pool);
    }
}

void checkpoint::rollback() {
    if (entries_.empty()) {
        throw std::logic_error("op2.checkpoint: rollback without capture");
    }
    // Quiesce the whole graph, not just the captured dats: a pending
    // loop elsewhere could still hold edges into these dats' records,
    // and reset() below forgets those records wholesale.
    op_fence_all();
    for (entry& e : entries_) {
        e.dat.internal().dep.reset();
    }
    auto& pool = hpxlite::get_pool();
    for (entry& e : entries_) {
        auto& di = e.dat.internal();
        if (di.data.empty()) {
            continue;
        }
        std::size_t const stride =
            static_cast<std::size_t>(di.dim) * di.elem_bytes;
        memory::copy_partitions(di.data.data(), e.copy.data(),
                                di.data.size(),
                                *di.set.partition(pool.size()), stride,
                                pool);
    }
}

}  // namespace op2::exec
