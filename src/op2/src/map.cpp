#include <op2/map.hpp>

#include <stdexcept>

namespace op2 {

op_set const& op_map::from() const {
    if (!impl_) {
        throw std::logic_error("op_map: OP_ID has no source set");
    }
    return impl_->from;
}

op_set const& op_map::to() const {
    if (!impl_) {
        throw std::logic_error("op_map: OP_ID has no target set");
    }
    return impl_->to;
}

std::string const& op_map::name() const {
    if (!impl_) {
        throw std::logic_error("op_map: OP_ID has no name");
    }
    return impl_->name;
}

std::vector<int> const& op_map::table() const {
    if (!impl_) {
        throw std::logic_error("op_map: OP_ID has no table");
    }
    return impl_->data;
}

op_map op_decl_map(op_set from, op_set to, int dim, std::vector<int> data,
                   std::string name) {
    if (!from.valid() || !to.valid()) {
        throw std::invalid_argument("op_decl_map '" + name +
                                    "': invalid from/to set");
    }
    if (dim <= 0) {
        throw std::invalid_argument("op_decl_map '" + name +
                                    "': dim must be positive");
    }
    if (data.size() != from.size() * static_cast<std::size_t>(dim)) {
        throw std::invalid_argument(
            "op_decl_map '" + name + "': expected " +
            std::to_string(from.size() * static_cast<std::size_t>(dim)) +
            " entries, got " + std::to_string(data.size()));
    }
    for (int v : data) {
        if (v < 0 || static_cast<std::size_t>(v) >= to.size()) {
            throw std::invalid_argument("op_decl_map '" + name +
                                        "': entry out of range of target set");
        }
    }
    auto impl = std::make_shared<detail::map_impl>();
    impl->from = std::move(from);
    impl->to = std::move(to);
    impl->dim = dim;
    impl->data = std::move(data);
    impl->name = std::move(name);
    impl->id = detail::next_entity_id();
    return op_map(std::move(impl));
}

}  // namespace op2
