#include <op2/dat.hpp>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include <hpxlite/runtime.hpp>
#include <op2/context.hpp>
#include <op2/memory.hpp>
#include <op2/set.hpp>

namespace op2 {

namespace {
// Registry of all declared dats: op_fence_all() needs to find every dat
// with outstanding asynchronous work.
std::mutex g_registry_mtx;
std::vector<std::weak_ptr<detail::dat_impl>> g_registry;
}  // namespace

namespace detail {

op_dat make_dat(op_set s, int dim, std::size_t elem_bytes,
                std::string_view type, void const* init, std::string name) {
    auto impl = std::make_shared<dat_impl>();
    impl->set = std::move(s);
    impl->dim = dim;
    impl->elem_bytes = elem_bytes;
    impl->type_name = std::string(type);
    impl->name = std::move(name);
    impl->id = next_entity_id();
    impl->ctx = current_context();
    impl->dep.poison_gate = &impl->ctx->poison_spans;
    std::size_t const stride = static_cast<std::size_t>(dim) * elem_bytes;
    std::size_t const bytes = impl->set.size() * stride;
    impl->data = memory::aligned_buffer(bytes);
    // Context override first (service jobs pick their own placement),
    // process default (OP2HPX_FIRST_TOUCH) otherwise.
    bool const first_touch = impl->ctx->first_touch >= 0
                                 ? impl->ctx->first_touch != 0
                                 : memory::first_touch_enabled();
    if (bytes > 0) {
        if (first_touch) {
            // Partition-affine first touch: one init task per partition
            // (at pool granularity, matching the dataflow placement
            // mapping p % pool_size), fanned through the affinity
            // inboxes so partition p's pages are written first by the
            // worker its loops will be pinned to.
            auto& pool = hpxlite::get_pool();
            memory::first_touch_init(impl->data.data(), init, bytes,
                                     *impl->set.partition(pool.size()),
                                     stride, pool);
            // Keep the partition-affinity warm across dependency-table
            // granularity changes: when a loop re-partitions this dat's
            // records, sweep prefetches over the new partitions on
            // their owners (prefetch-only: cannot race the loops).
            // Damped two ways so an oscillating program (whole-set and
            // partitioned loops alternating on one dat) does not pay a
            // full-dat prefetch fan-out per issue: only the pool-size
            // granularity is warmed (the only one the placement hint
            // p % pool_size targets), and only when it differs from the
            // last granularity warmed.
            std::weak_ptr<dat_impl> wp = impl;
            auto last_warmed = std::make_shared<std::atomic<std::size_t>>(0);
            impl->dep.repartition_hook = [wp, stride,
                                          last_warmed](std::size_t parts) {
                auto p = wp.lock();
                if (!p || p->data.empty()) {
                    return;
                }
                auto& wpool = hpxlite::get_pool();
                if (parts != wpool.size() ||
                    last_warmed->exchange(parts,
                                          std::memory_order_relaxed) ==
                        parts) {
                    return;
                }
                memory::warm_partitions(p->data.data(), p->data.size(),
                                        *p->set.partition(parts), stride,
                                        wpool, p);
            };
        } else if (init != nullptr) {
            std::memcpy(impl->data.data(), init, bytes);
        } else {
            std::memset(impl->data.data(), 0, bytes);
        }
    }
    {
        std::lock_guard<std::mutex> lk(g_registry_mtx);
        g_registry.push_back(impl);
    }
    return detail_make_dat(std::move(impl));
}

std::vector<std::shared_ptr<dat_impl>> all_dats() {
    std::lock_guard<std::mutex> lk(g_registry_mtx);
    std::vector<std::shared_ptr<dat_impl>> out;
    out.reserve(g_registry.size());
    for (auto it = g_registry.begin(); it != g_registry.end();) {
        if (auto p = it->lock()) {
            out.push_back(std::move(p));
            ++it;
        } else {
            it = g_registry.erase(it);  // drop expired entries
        }
    }
    return out;
}

}  // namespace detail

op_dat detail_make_dat(std::shared_ptr<detail::dat_impl> p) {
    return op_dat(std::move(p));
}

void op_dat::clear_quarantine() {
    if (!impl_) {
        return;
    }
    // Per-dat fence (same drain as op_fence): snapshot each record
    // under its lock, wait outside it. prune_failed below only removes
    // *completed* failed nodes, so everything in flight must land
    // first — and waiting helps the pool, so no lock may be held.
    auto const [recs, count] = impl_->dep.table();
    std::vector<exec::node_ref> nodes;
    for (std::size_t p = 0; p < count; ++p) {
        recs[p].snapshot(nodes);
        for (auto& n : nodes) {
            n->wait();
        }
    }
    for (std::size_t p = 0; p < count; ++p) {
        recs[p].prune_failed();
    }
    impl_->dep.clear_poison();
}

}  // namespace op2
