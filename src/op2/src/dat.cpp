#include <op2/dat.hpp>

#include <cstring>
#include <mutex>
#include <vector>

#include <op2/set.hpp>

namespace op2 {

namespace {
// Registry of all declared dats: op_fence_all() needs to find every dat
// with outstanding asynchronous work.
std::mutex g_registry_mtx;
std::vector<std::weak_ptr<detail::dat_impl>> g_registry;
}  // namespace

namespace detail {

op_dat make_dat(op_set s, int dim, std::size_t elem_bytes,
                std::string_view type, void const* init, std::string name) {
    auto impl = std::make_shared<dat_impl>();
    impl->set = std::move(s);
    impl->dim = dim;
    impl->elem_bytes = elem_bytes;
    impl->type_name = std::string(type);
    impl->name = std::move(name);
    impl->id = next_entity_id();
    std::size_t const bytes =
        impl->set.size() * static_cast<std::size_t>(dim) * elem_bytes;
    impl->data.resize(bytes);
    if (init != nullptr && bytes > 0) {
        std::memcpy(impl->data.data(), init, bytes);
    }
    {
        std::lock_guard<std::mutex> lk(g_registry_mtx);
        g_registry.push_back(impl);
    }
    return detail_make_dat(std::move(impl));
}

std::vector<std::shared_ptr<dat_impl>> all_dats() {
    std::lock_guard<std::mutex> lk(g_registry_mtx);
    std::vector<std::shared_ptr<dat_impl>> out;
    out.reserve(g_registry.size());
    for (auto it = g_registry.begin(); it != g_registry.end();) {
        if (auto p = it->lock()) {
            out.push_back(std::move(p));
            ++it;
        } else {
            it = g_registry.erase(it);  // drop expired entries
        }
    }
    return out;
}

}  // namespace detail

op_dat detail_make_dat(std::shared_ptr<detail::dat_impl> p) {
    return op_dat(std::move(p));
}

}  // namespace op2
