#include <op2/set.hpp>

#include <atomic>
#include <stdexcept>

namespace op2 {

namespace detail {
std::uint64_t next_entity_id() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

std::string const& op_set::name() const {
    if (!impl_) {
        throw std::logic_error("op_set: invalid handle");
    }
    return impl_->name;
}

op_set op_decl_set(std::size_t size, std::string name) {
    auto impl = std::make_shared<detail::set_impl>();
    impl->size = size;
    impl->name = std::move(name);
    impl->id = detail::next_entity_id();
    return op_set(std::move(impl));
}

}  // namespace op2
