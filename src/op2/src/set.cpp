#include <op2/set.hpp>

#include <atomic>
#include <stdexcept>

namespace op2 {

namespace detail {
std::uint64_t next_entity_id() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::size_t> partition_bounds(std::size_t size,
                                          std::size_t count) {
    std::vector<std::size_t> bounds(count + 1);
    for (std::size_t p = 0; p <= count; ++p) {
        bounds[p] = p * size / count;
    }
    return bounds;
}
}  // namespace detail

std::string const& op_set::name() const {
    if (!impl_) {
        throw std::logic_error("op_set: invalid handle");
    }
    return impl_->name;
}

std::shared_ptr<set_partition const> op_set::partition(
    std::size_t count) const {
    if (!impl_) {
        throw std::logic_error("op_set: invalid handle");
    }
    if (count == 0) {
        throw std::invalid_argument("op_set::partition: count must be > 0");
    }
    std::lock_guard<std::mutex> lk(impl_->part_mtx);
    for (auto const& p : impl_->part_cache) {
        if (p->count == count) {
            return p;
        }
    }
    auto part = std::make_shared<set_partition>();
    part->count = count;
    part->set_size = impl_->size;
    part->bounds = detail::partition_bounds(impl_->size, count);
    impl_->part_cache.push_back(part);
    return part;
}

op_set op_decl_set(std::size_t size, std::string name) {
    auto impl = std::make_shared<detail::set_impl>();
    impl->size = size;
    impl->name = std::move(name);
    impl->id = detail::next_entity_id();
    return op_set(std::move(impl));
}

}  // namespace op2
