#include <op2/comm.hpp>

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include <hpxlite/util/spinlock.hpp>
#include <op2/fault.hpp>
#include <op2/memory.hpp>

namespace op2::comm {

// --- knobs ----------------------------------------------------------------

std::size_t localities_default() noexcept {
    static std::size_t const n = [] {
        char const* v = std::getenv("OP2HPX_LOCALITIES");
        if (v == nullptr || *v == '\0') {
            return std::size_t{1};
        }
        std::size_t parsed = 0;
        auto const* end = v + std::strlen(v);
        auto const res = std::from_chars(v, end, parsed);
        if (res.ec != std::errc{} || res.ptr != end || parsed == 0) {
            return std::size_t{1};
        }
        return parsed;
    }();
    return n;
}

std::size_t effective_localities(std::size_t opt,
                                 std::size_t nparts) noexcept {
    std::size_t const n = opt != 0 ? opt : localities_default();
    return n < nparts ? n : nparts;
}

// --- stats / trace --------------------------------------------------------

stats_t& stats() noexcept {
    static stats_t s;
    return s;
}

void reset_stats() noexcept {
    auto& s = stats();
    s.packs.store(0, std::memory_order_relaxed);
    s.exchanges.store(0, std::memory_order_relaxed);
    s.unpacks.store(0, std::memory_order_relaxed);
    s.combines.store(0, std::memory_order_relaxed);
    s.bytes.store(0, std::memory_order_relaxed);
}

namespace {
std::atomic<trace*> g_trace{nullptr};
}  // namespace

void set_trace(trace* t) noexcept {
    g_trace.store(t, std::memory_order_release);
}

// --- halo plan (owned/halo classifier) ------------------------------------

namespace {

halo_plan build_halo_plan(op_map const& map, std::size_t nparts,
                          std::size_t nloc) {
    halo_plan hp;
    hp.nparts = nparts;
    hp.nloc = nloc;
    hp.part_regions.resize(nparts);
    if (nloc <= 1 || nparts <= 1) {
        return hp;  // one locality: every edge is owned by construction
    }
    auto const fp = map.from().partition(nparts);
    auto const tp = map.to().partition(nparts);
    auto const dim = static_cast<std::size_t>(map.dim());
    auto const& tbl = map.table();

    // Per ordered (reader, owner) locality pair: which target partitions
    // the pair's halo edges reach, and which source partitions
    // contribute them. nloc^2 * nparts flags — tiny at realistic counts.
    std::vector<std::uint8_t> tgt_hit(nloc * nloc * nparts, 0);
    std::vector<std::uint8_t> src_hit(nloc * nloc * nparts, 0);
    for (std::size_t p = 0; p < nparts; ++p) {
        std::size_t const reader = locality_of(p, nparts, nloc);
        for (std::size_t e = fp->begin(p); e < fp->end(p); ++e) {
            for (std::size_t j = 0; j < dim; ++j) {
                auto const t = static_cast<std::size_t>(tbl[e * dim + j]);
                std::size_t const q = tp->find(t);
                std::size_t const owner = locality_of(q, nparts, nloc);
                if (owner == reader) {
                    ++hp.owned_edges;
                } else {
                    ++hp.halo_edges;
                    std::size_t const pair =
                        (reader * nloc + owner) * nparts;
                    tgt_hit[pair + q] = 1;
                    src_hit[pair + p] = 1;
                }
            }
        }
    }

    // Materialise regions in deterministic (reader, owner) order and
    // hand every source partition the region indices its own edges
    // reach (its import wait set).
    for (std::size_t reader = 0; reader < nloc; ++reader) {
        for (std::size_t owner = 0; owner < nloc; ++owner) {
            if (owner == reader) {
                continue;
            }
            std::size_t const pair = (reader * nloc + owner) * nparts;
            halo_region rg;
            rg.owner = static_cast<std::uint32_t>(owner);
            rg.reader = static_cast<std::uint32_t>(reader);
            for (std::size_t q = 0; q < nparts; ++q) {
                if (tgt_hit[pair + q] != 0) {
                    rg.parts.push_back(static_cast<std::uint32_t>(q));
                    rg.elems += tp->size_of(q);
                }
            }
            if (rg.parts.empty()) {
                continue;
            }
            auto const idx =
                static_cast<std::uint32_t>(hp.regions.size());
            for (std::size_t p = 0; p < nparts; ++p) {
                if (src_hit[pair + p] != 0) {
                    hp.part_regions[p].push_back(idx);
                }
            }
            hp.regions.push_back(std::move(rg));
        }
    }
    return hp;
}

using plan_key = std::tuple<std::uint64_t, std::size_t, std::size_t>;

std::mutex g_plan_mtx;
std::map<plan_key, std::unique_ptr<halo_plan>>& plan_cache() {
    static auto* c = new std::map<plan_key, std::unique_ptr<halo_plan>>();
    return *c;
}

}  // namespace

halo_plan const& halo_plan_get(op_map const& map, std::size_t nparts,
                               std::size_t nloc) {
    plan_key const key{map.id(), nparts, nloc};
    {
        std::lock_guard<std::mutex> lk(g_plan_mtx);
        if (auto const it = plan_cache().find(key);
            it != plan_cache().end()) {
            return *it->second;
        }
    }
    // Build outside the lock (a big map takes a while); last insert
    // wins on a race, both builds are identical.
    auto built = std::make_unique<halo_plan>(
        build_halo_plan(map, nparts, nloc));
    std::lock_guard<std::mutex> lk(g_plan_mtx);
    auto const [it, inserted] =
        plan_cache().emplace(key, std::move(built));
    return *it->second;
}

// --- staging buffers ------------------------------------------------------

namespace {

/// One region's wire: export (packed on the owner-equivalent side) and
/// import (landed on the consumer side) staging buffers, plus the
/// serialisation tail — successive chains through one channel are
/// ordered like messages on a link, so a buffer is never repacked
/// under an in-flight transfer. Layout is partition slice by partition
/// slice in `spans` order: partition-affine, cache-line padded
/// (aligned_buffer) like dat storage.
struct halo_channel {
    std::uint32_t owner = 0;
    std::uint32_t reader = 0;
    struct span {
        std::size_t part = 0;
        std::size_t elem_lo = 0;
        std::size_t elem_hi = 0;
        std::size_t dat_off = 0;  // byte offset into dat storage
        std::size_t bytes = 0;
    };
    std::vector<span> spans;
    std::size_t bytes = 0;
    memory::aligned_buffer exportbuf;
    memory::aligned_buffer importbuf;
    hpxlite::util::spinlock mtx;  // guards `last`
    exec::node_ref last;          // tail of the newest chain issued
};

using channel_key =
    std::tuple<std::uint64_t, std::uint64_t, std::size_t, std::size_t>;

std::mutex g_chan_mtx;
std::map<channel_key, std::vector<std::shared_ptr<halo_channel>>>&
channel_cache() {
    static auto* c = new std::map<
        channel_key, std::vector<std::shared_ptr<halo_channel>>>();
    return *c;
}

/// The per-region channels of (dat, map) at the plan's granularity,
/// created (and sized) on first use, cached for the life of the
/// process like op_plans.
std::vector<std::shared_ptr<halo_channel>>
channels_for(op_dat const& d, op_map const& map, halo_plan const& hp) {
    channel_key const key{d.id(), map.id(), hp.nparts, hp.nloc};
    {
        std::lock_guard<std::mutex> lk(g_chan_mtx);
        if (auto const it = channel_cache().find(key);
            it != channel_cache().end()) {
            return it->second;
        }
    }
    auto const dp = d.set().partition(hp.nparts);
    std::size_t const stride =
        static_cast<std::size_t>(d.dim()) * d.elem_bytes();
    std::vector<std::shared_ptr<halo_channel>> chans;
    chans.reserve(hp.regions.size());
    for (auto const& rg : hp.regions) {
        auto ch = std::make_shared<halo_channel>();
        ch->owner = rg.owner;
        ch->reader = rg.reader;
        std::size_t off = 0;
        for (std::uint32_t q : rg.parts) {
            std::size_t const lo = dp->begin(q);
            std::size_t const hi = dp->end(q);
            std::size_t const nbytes = (hi - lo) * stride;
            ch->spans.push_back({q, lo, hi, lo * stride, nbytes});
            off += nbytes;
        }
        ch->bytes = off;
        ch->exportbuf = memory::aligned_buffer(off);
        ch->importbuf = memory::aligned_buffer(off);
        chans.push_back(std::move(ch));
    }
    std::lock_guard<std::mutex> lk(g_chan_mtx);
    auto const [it, inserted] =
        channel_cache().emplace(key, std::move(chans));
    return it->second;
}

}  // namespace

void halo_cache_clear() {
    {
        std::lock_guard<std::mutex> lk(g_plan_mtx);
        plan_cache().clear();
    }
    std::lock_guard<std::mutex> lk(g_chan_mtx);
    channel_cache().clear();
}

// --- halo chain nodes -----------------------------------------------------

namespace {

/// One stage of a halo chain. pack/export snapshot dat partition
/// slices into the export buffer; exchange moves export -> import (the
/// "wire"; the only stage with a byte counter and the trace hook);
/// unpack/combine land the import buffer and verify it against live
/// storage — localities are logical (storage is shared), so the landed
/// bytes must equal the bytes compute reads, and any pack/transfer/
/// sizing bug surfaces as a halo-divergence failure instead of silent
/// corruption.
class halo_node final : public exec::dataflow_node {
public:
    enum class stage { pack, exchange, unpack, combine };

    halo_node(stage st, op_dat d, std::shared_ptr<halo_channel> ch,
              std::string label)
      : st_(st), d_(std::move(d)), ch_(std::move(ch)),
        label_(std::move(label)) {
        static constexpr char const* kinds[] = {
            "halo-pack", "halo-exchange", "halo-unpack", "halo-combine"};
        set_site_kind(kinds[static_cast<int>(st_)]);
        set_site(label_.c_str(), ch_->owner, ch_->reader);
    }

    /// The chain tail anchors its predecessors: head and wire sit in no
    /// dep_record (only the tail is published as the epoch's
    /// reader/writer), so without this they would be unreferenced while
    /// still waiting on their own predecessors. The tail is always
    /// referenced (records, channel tail, the loop's join) and outlives
    /// both; the refs drop at its completion.
    void retain_predecessors(exec::node_ref a, exec::node_ref b) noexcept {
        keep_a_ = std::move(a);
        keep_b_ = std::move(b);
    }

private:
    void run_body() override {
        // Deterministic injection point, like every compute sub-node:
        // an armed kernel=<label>@OWNER.READER site (wildcards allowed)
        // fails this comm stage as if the transfer had died.
        fault::on_kernel(label_.c_str(), ch_->owner, ch_->reader);
        auto& s = stats();
        std::byte* const dat = d_.raw();
        switch (st_) {
            case stage::pack: {
                std::byte* out = ch_->exportbuf.data();
                for (auto const& sp : ch_->spans) {
                    if (sp.bytes != 0) {
                        std::memcpy(out, dat + sp.dat_off, sp.bytes);
                        out += sp.bytes;
                    }
                }
                s.packs.fetch_add(1, std::memory_order_relaxed);
                break;
            }
            case stage::exchange: {
                if (trace* t = g_trace.load(std::memory_order_acquire)) {
                    if (t->on_exchange) {
                        t->on_exchange(label_.c_str(), ch_->owner,
                                       ch_->reader, ch_->bytes);
                    }
                }
                if (ch_->bytes != 0) {
                    std::memcpy(ch_->importbuf.data(),
                                ch_->exportbuf.data(), ch_->bytes);
                }
                s.exchanges.fetch_add(1, std::memory_order_relaxed);
                s.bytes.fetch_add(ch_->bytes, std::memory_order_relaxed);
                break;
            }
            case stage::unpack:
            case stage::combine: {
                std::byte const* in = ch_->importbuf.data();
                for (auto const& sp : ch_->spans) {
                    if (sp.bytes != 0 &&
                        std::memcmp(in, dat + sp.dat_off, sp.bytes) != 0) {
                        throw std::runtime_error(
                            "op2.comm: halo divergence at '" + label_ +
                            "': landed import bytes differ from owner "
                            "storage (dat partition " +
                            std::to_string(sp.part) + ")");
                    }
                    in += sp.bytes;
                }
                (st_ == stage::unpack ? s.unpacks : s.combines)
                    .fetch_add(1, std::memory_order_relaxed);
                break;
            }
        }
    }

    void on_complete() noexcept override {
        // Only the chain tail quarantines (one failure would otherwise
        // poison the region once per stage): a failed or undelivered
        // halo leaves the region's consumers without trustworthy
        // bytes, so readers must fail fast naming the comm site.
        if (error() &&
            (st_ == stage::unpack || st_ == stage::combine)) {
            try {
                auto info = std::make_shared<exec::poison_info>();
                info->loop = label_;
                info->dat = d_.name();
                info->partition = ch_->owner;
                info->color = ch_->reader;
                info->origin = error();
                auto& dep = d_.internal().dep;
                for (auto const& sp : ch_->spans) {
                    dep.add_poison(sp.elem_lo, sp.elem_hi, info);
                }
            } catch (...) {  // best-effort, like part_node's poisoning
            }
        }
        d_ = {};     // break the dat <-> node cycle through dep records
        ch_.reset();  // and the channel <-> node cycle through `last`
        keep_a_.reset();
        keep_b_.reset();
    }

    stage st_;
    op_dat d_;
    std::shared_ptr<halo_channel> ch_;
    std::string const label_;  // site_loop_ points at this
    exec::node_ref keep_a_;    // tail only: the chain's head ...
    exec::node_ref keep_b_;    // ... and wire (see retain_predecessors)
};

std::string chain_label(char const* stage_name, op_dat const& d,
                        char const* loop) {
    std::string s(stage_name);
    s += ':';
    s += d.name();
    s += ':';
    s += loop != nullptr ? loop : "?";
    return s;
}

}  // namespace

// --- per-loop wiring ------------------------------------------------------

namespace {

/// Issue one region's chain. Import side (export_side = false):
/// pack -> exchange -> unpack, registered as one epoch *reader* of the
/// region's records (stage_read: pack RAW-edges on current writers,
/// unpack is what later writers WAR-edge on). Export side: export ->
/// exchange -> combine, registered as the records' next *writer*
/// (stage_write: export RAW-edges on the loop's own INC sub-nodes,
/// combine closes the epoch — owner-compute). Returns the chain tail.
exec::node_ref issue_chain(op_dat const& d, halo_region const& rg,
                           std::shared_ptr<halo_channel> ch,
                           exec::dep_record* recs, bool export_side,
                           hpxlite::threads::thread_pool& pool,
                           char const* loop, std::size_t nparts,
                           std::size_t nloc) {
    auto* head = new halo_node(
        halo_node::stage::pack, d, ch,
        chain_label(export_side ? "halo.export" : "halo.pack", d, loop));
    exec::node_ref href(head, /*adopt=*/true);
    auto* wire = new halo_node(halo_node::stage::exchange, d, ch,
                               chain_label("halo.exchange", d, loop));
    exec::node_ref wref(wire, /*adopt=*/true);
    auto* tail = new halo_node(export_side ? halo_node::stage::combine
                                           : halo_node::stage::unpack,
                               d, ch,
                               chain_label(export_side ? "halo.combine"
                                                       : "halo.unpack",
                                           d, loop));
    exec::node_ref tref(tail, /*adopt=*/true);

    // Pools and placement before any publication: fences may pick the
    // nodes up from the records the moment they are registered. The
    // head runs where the producing locality's partitions run, the
    // tail where the consuming locality's do (the same p % pool_size
    // anchor as compute placement); the wire is placement-free.
    head->bind_pool(pool);
    wire->bind_pool(pool);
    tail->bind_pool(pool);
    std::size_t const producer = export_side ? rg.reader : rg.owner;
    std::size_t const consumer = export_side ? rg.owner : rg.reader;
    head->set_worker_hint(
        locality_first_partition(producer, nparts, nloc) % pool.size());
    tail->set_worker_hint(
        locality_first_partition(consumer, nparts, nloc) % pool.size());

    // Serialise chains through the channel like messages on a link: a
    // later chain's head waits for the previous chain's tail, so the
    // staging buffers are never repacked under an in-flight transfer.
    {
        std::lock_guard<hpxlite::util::spinlock> lk(ch->mtx);
        if (ch->last && !ch->last->done()) {
            head->depend_on(*ch->last);
        }
        ch->last = tref;
    }

    // One lock hold per region record: the whole chain registers
    // atomically as one reader (import) or writer (export).
    for (std::uint32_t q : rg.parts) {
        if (export_side) {
            exec::stage_write(*head, *tail, recs[q]);
        } else {
            exec::stage_read(*head, *tail, recs[q]);
        }
    }

    wire->depend_on(*head);
    tail->depend_on(*wire);
    tail->retain_predecessors(href, wref);
    head->schedule();
    wire->schedule();
    tail->schedule();
    return tref;
}

}  // namespace

void loop_halos::add_import(op_dat const& d, op_map const& map,
                            exec::dep_record* recs) {
    if (!active()) {
        return;
    }
    auto const* di = &d.internal();
    for (auto const& e : entries_) {
        if (e.dat == di && e.map_id == map.id() && e.import) {
            return;  // several slots of one map share one region family
        }
    }
    halo_plan const& hp = halo_plan_get(map, nparts_, nloc_);
    entry e{di, map.id(), /*import=*/true, &hp, {}};
    if (!hp.regions.empty()) {
        auto const chans = channels_for(d, map, hp);
        e.tail_by_region.reserve(hp.regions.size());
        for (std::size_t r = 0; r < hp.regions.size(); ++r) {
            e.tail_by_region.push_back(
                issue_chain(d, hp.regions[r], chans[r], recs,
                            /*export_side=*/false, *pool_, loop_,
                            nparts_, nloc_));
            tails_.push_back(e.tail_by_region.back());
        }
    }
    entries_.push_back(std::move(e));
}

void loop_halos::depend_imports(exec::dataflow_node& sub, op_dat const& d,
                                op_map const& map, std::size_t p) const {
    auto const* di = &d.internal();
    for (auto const& e : entries_) {
        if (e.dat != di || e.map_id != map.id() || !e.import) {
            continue;
        }
        for (std::uint32_t r : e.plan->part_regions[p]) {
            sub.depend_on(*e.tail_by_region[r]);
        }
        return;
    }
}

void loop_halos::add_export(op_dat const& d, op_map const& map,
                            exec::dep_record* recs) {
    if (!active()) {
        return;
    }
    auto const* di = &d.internal();
    for (auto const& e : entries_) {
        if (e.dat == di && e.map_id == map.id() && !e.import) {
            return;
        }
    }
    halo_plan const& hp = halo_plan_get(map, nparts_, nloc_);
    entry e{di, map.id(), /*import=*/false, &hp, {}};
    if (!hp.regions.empty()) {
        auto const chans = channels_for(d, map, hp);
        e.tail_by_region.reserve(hp.regions.size());
        for (std::size_t r = 0; r < hp.regions.size(); ++r) {
            e.tail_by_region.push_back(
                issue_chain(d, hp.regions[r], chans[r], recs,
                            /*export_side=*/true, *pool_, loop_,
                            nparts_, nloc_));
            tails_.push_back(e.tail_by_region.back());
        }
    }
    entries_.push_back(std::move(e));
}

}  // namespace op2::comm
