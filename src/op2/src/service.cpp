#include <op2/service.hpp>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <hpxlite/runtime.hpp>
#include <op2/dat.hpp>
#include <op2/exec/dataflow.hpp>
#include <op2/plan.hpp>
#include <op2/tune.hpp>
#include <psim/scheduler.hpp>

namespace op2::service {

namespace detail {

struct job_impl {
    job_desc desc;
    std::shared_ptr<runtime_context> ctx;
    double est_cost_s = 0.0;
    std::uint64_t seq = 0;
    std::chrono::steady_clock::time_point t_submit{};
    std::chrono::steady_clock::time_point t_admit{};

    mutable std::mutex mtx;
    mutable std::condition_variable cv;
    job_state state = job_state::waiting;
    std::exception_ptr error;
    job_metrics metrics;
};

}  // namespace detail

namespace {

using clock = std::chrono::steady_clock;

double secs(clock::duration d) {
    return std::chrono::duration_cast<std::chrono::duration<double>>(d)
        .count();
}

/// Price a job through the simulator: its declared workload as a
/// dependent chain of est_loops identical loops (the pessimistic shape
/// — nothing overlaps across instances, the "chain" in
/// shortest_chain_first). Simulated once at submission with iterations
/// capped, then scaled linearly to the declared length; an ordering
/// heuristic, not a prediction.
double price_job(job_desc const& d, std::size_t pool_threads) {
    if (d.est_loops == 0) {
        return 0.0;
    }
    psim::machine_model m;
    m.cores = static_cast<int>(pool_threads == 0 ? 1 : pool_threads);
    m.smt = 1;

    psim::loop_class lc;
    lc.name = d.name;
    lc.blocks = d.est_bytes == 0
                    ? 8
                    : std::max<std::size_t>(1, d.est_bytes / (128 * 1024));
    lc.bytes_per_block =
        static_cast<double>(d.est_bytes) / static_cast<double>(lc.blocks);

    psim::workload w;
    w.loops.push_back(std::move(lc));
    w.issue_order = {0};
    w.cross_deps = {{0, 0}};  // instance i+1 depends on instance i

    psim::sim_options o;
    o.threads = m.cores;
    auto const iters = static_cast<int>(std::min<std::uint64_t>(
        d.est_loops, 64));
    o.iterations = iters;

    auto const r = psim::simulate_dataflow(m, w, o);
    return r.total_s * (static_cast<double>(d.est_loops) /
                        static_cast<double>(iters));
}

/// Drain every live dat declared under `ctx`: the per-context
/// equivalent of op_fence_all (same snapshot-then-wait discipline as
/// runtime.cpp's fence_impl). Dats the job's program already destroyed
/// were its own responsibility to fence — the standard op2 contract.
void fence_context(runtime_context const& ctx) {
    std::vector<exec::node_ref> nodes;
    for (auto const& di : op2::detail::all_dats()) {
        if (!di->ctx || di->ctx->id() != ctx.id()) {
            continue;
        }
        auto const [recs, count] = di->dep.table();
        for (std::size_t p = 0; p < count; ++p) {
            recs[p].snapshot(nodes);
            for (auto& n : nodes) {
                n->wait();
            }
        }
    }
}

/// Strict submission order: always the head of the queue.
class fifo_policy final : public schedule_policy {
public:
    [[nodiscard]] char const* name() const noexcept override {
        return "fifo";
    }
    std::size_t pick(std::span<job_view const> /*waiting*/) override {
        return 0;
    }
};

/// Tenants take turns: the first waiting job of a tenant other than the
/// last one served; the head when only one tenant is waiting.
class round_robin_policy final : public schedule_policy {
public:
    [[nodiscard]] char const* name() const noexcept override {
        return "round_robin";
    }
    std::size_t pick(std::span<job_view const> waiting) override {
        std::size_t picked = 0;
        for (std::size_t i = 0; i < waiting.size(); ++i) {
            if (last_ != waiting[i].tenant) {
                picked = i;
                break;
            }
        }
        last_ = waiting[picked].tenant;
        return picked;
    }

private:
    std::string last_;
};

/// Cheapest psim-priced job first (ties broken by submission order —
/// est_cost_s is 0 for jobs that declared no estimates, so those run
/// fifo among themselves, ahead of priced work).
class shortest_chain_policy final : public schedule_policy {
public:
    [[nodiscard]] char const* name() const noexcept override {
        return "shortest_chain_first";
    }
    std::size_t pick(std::span<job_view const> waiting) override {
        std::size_t best = 0;
        for (std::size_t i = 1; i < waiting.size(); ++i) {
            if (waiting[i].est_cost_s < waiting[best].est_cost_s) {
                best = i;
            }
        }
        return best;
    }
};

}  // namespace

std::unique_ptr<schedule_policy> make_policy(std::string_view name) {
    if (name == "fifo") {
        return std::make_unique<fifo_policy>();
    }
    if (name == "round_robin") {
        return std::make_unique<round_robin_policy>();
    }
    if (name == "shortest_chain_first") {
        return std::make_unique<shortest_chain_policy>();
    }
    throw std::invalid_argument("op2::service: unknown policy '" +
                                std::string(name) + "'");
}

std::vector<std::string_view> policy_names() {
    return {"fifo", "round_robin", "shortest_chain_first"};
}

// --- job handle -----------------------------------------------------------

std::string const& job::name() const { return impl_->desc.name; }

job_state job::state() const {
    std::lock_guard<std::mutex> lk(impl_->mtx);
    return impl_->state;
}

void job::wait() const {
    std::unique_lock<std::mutex> lk(impl_->mtx);
    impl_->cv.wait(lk, [&] {
        return impl_->state == job_state::completed ||
               impl_->state == job_state::failed;
    });
}

bool job::failed() const { return state() == job_state::failed; }

void job::rethrow() const {
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lk(impl_->mtx);
        err = impl_->error;
    }
    if (err) {
        std::rethrow_exception(err);
    }
}

job_metrics job::metrics() const {
    std::lock_guard<std::mutex> lk(impl_->mtx);
    return impl_->metrics;
}

std::shared_ptr<runtime_context> const& job::context() const {
    return impl_->ctx;
}

// --- scheduler ------------------------------------------------------------

struct scheduler::state {
    scheduler_options opts;
    std::unique_ptr<schedule_policy> policy;
    hpxlite::threads::thread_pool& pool;
    std::size_t max_jobs;

    mutable std::mutex mtx;
    std::condition_variable cv;
    std::deque<std::shared_ptr<detail::job_impl>> waiting;
    std::size_t in_flight = 0;
    std::size_t in_flight_bytes = 0;
    std::uint64_t next_seq = 1;

    // Measured-cost re-pricing (under mtx): EWMA of each tenant's
    // completed jobs' run_s. admit_locked substitutes it for the psim
    // price in the job_views, so shortest_chain_first orders by what
    // the tenant's jobs actually cost once one has retired. Failed
    // jobs don't feed it — a job that died early would advertise the
    // tenant as cheap.
    std::unordered_map<std::string, double> tenant_ewma;

    // Aggregate metrics (under mtx).
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t loops_issued = 0;
    std::vector<double> wait_samples;
    std::vector<double> latency_samples;
    clock::time_point t_first{};
    clock::time_point t_last{};
    bool any_submitted = false;
};

namespace {

double percentile(std::vector<double> samples, double p) {
    if (samples.empty()) {
        return 0.0;
    }
    std::sort(samples.begin(), samples.end());
    double const pos = p * static_cast<double>(samples.size() - 1);
    auto const lo = static_cast<std::size_t>(pos);
    auto const hi = std::min(lo + 1, samples.size() - 1);
    double const frac = pos - static_cast<double>(lo);
    return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace

scheduler::scheduler(scheduler_options opts)
  : st_(new state{std::move(opts), nullptr, hpxlite::get_pool(), 0}) {
    st_->policy = make_policy(st_->opts.policy);
    st_->max_jobs = st_->opts.max_in_flight_jobs != 0
                        ? st_->opts.max_in_flight_jobs
                        : std::max<std::size_t>(1, st_->pool.size());
}

scheduler::~scheduler() { drain(); }

job scheduler::submit(job_desc desc) {
    if (!desc.program) {
        throw std::invalid_argument("op2::service: job '" + desc.name +
                                    "' has no program");
    }
    if (desc.tenant.empty()) {
        desc.tenant = desc.name;
    }
    auto impl = std::make_shared<detail::job_impl>();
    impl->ctx = make_context(desc.name);
    impl->est_cost_s = price_job(desc, st_->pool.size());
    impl->desc = std::move(desc);
    impl->t_submit = clock::now();

    {
        std::lock_guard<std::mutex> lk(st_->mtx);
        impl->seq = st_->next_seq++;
        ++st_->submitted;
        if (!st_->any_submitted) {
            st_->any_submitted = true;
            st_->t_first = impl->t_submit;
        }
        st_->waiting.push_back(impl);
        admit_locked();
    }
    return job(std::move(impl));
}

/// Admit in strict policy order while the picked job fits the limits
/// (caller holds st_->mtx). Head-of-line blocking is deliberate: a job
/// the policy chose is never skipped for a smaller one behind it, so
/// nothing starves. A job bigger than the whole byte budget is admitted
/// once it has the process to itself.
void scheduler::admit_locked() {
    auto& s = *st_;
    while (!s.waiting.empty() && s.in_flight < s.max_jobs) {
        std::vector<job_view> views;
        views.reserve(s.waiting.size());
        for (auto const& w : s.waiting) {
            double cost = w->est_cost_s;
            if (auto it = s.tenant_ewma.find(w->desc.tenant);
                it != s.tenant_ewma.end()) {
                cost = it->second;  // measured beats modelled
            }
            views.push_back({w->desc.name.c_str(), w->desc.tenant.c_str(),
                             cost, w->seq});
        }
        std::size_t idx = s.policy->pick(views);
        if (idx >= s.waiting.size()) {
            idx = 0;
        }
        auto j = s.waiting[idx];
        bool const fits =
            s.opts.max_in_flight_bytes == 0 ||
            s.in_flight_bytes + j->desc.est_bytes <=
                s.opts.max_in_flight_bytes ||
            s.in_flight == 0;
        if (!fits) {
            break;
        }
        s.waiting.erase(s.waiting.begin() +
                        static_cast<std::ptrdiff_t>(idx));
        ++s.in_flight;
        s.in_flight_bytes += j->desc.est_bytes;
        {
            std::lock_guard<std::mutex> lk(j->mtx);
            j->state = job_state::running;
            j->t_admit = clock::now();
        }
        j->cv.notify_all();
        s.pool.submit([this, j] { run_job(j); });
    }
}

void scheduler::run_job(std::shared_ptr<detail::job_impl> const& j) {
    std::exception_ptr err;
    {
        // The job's program and everything it issues inline run under
        // its context; loops the program spawns capture what they need
        // (combine lock, poison gate) at issue, so stolen sub-nodes on
        // other workers never consult this TLS slot.
        context_scope scope(j->ctx);
        try {
            j->desc.program();
        } catch (...) {
            err = std::current_exception();
        }
        // A loop the program left parked in this worker's fusion window
        // must enter the graph before the fence below can see it.
        exec::fusion_flush_point();
    }
    fence_context(*j->ctx);
    if (!err &&
        j->ctx->poison_spans.load(std::memory_order_acquire) != 0) {
        err = std::make_exception_ptr(std::runtime_error(
            "op2::service: job '" + j->desc.name +
            "' retired with quarantined spans (a sub-node failed; see "
            "dump_graph)"));
    }
    if (st_->opts.purge_plans) {
        plan_cache_purge(j->ctx->id());
        // The tuner's measurement sites share the plan cache's
        // per-context namespace discipline; the job is fenced, so no
        // in-flight probe still points at them.
        tune::purge(j->ctx->id());
    }

    auto const t_end = clock::now();
    job_metrics m;
    m.wait_s = secs(j->t_admit - j->t_submit);
    m.run_s = secs(t_end - j->t_admit);
    m.latency_s = secs(t_end - j->t_submit);
    m.loops_issued = j->ctx->loops_issued.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(j->mtx);
        j->error = err;
        j->metrics = m;
        j->state = err ? job_state::failed : job_state::completed;
    }
    j->cv.notify_all();

    {
        std::lock_guard<std::mutex> lk(st_->mtx);
        --st_->in_flight;
        st_->in_flight_bytes -= j->desc.est_bytes;
        if (!err) {
            // Feed the tenant's EWMA with the measured run time. The
            // first sample seeds it outright; later samples blend, so
            // one outlier run does not whipsaw the ordering.
            constexpr double alpha = 0.5;
            auto [it, inserted] =
                st_->tenant_ewma.try_emplace(j->desc.tenant, m.run_s);
            if (!inserted) {
                it->second = alpha * m.run_s + (1.0 - alpha) * it->second;
            }
        }
        ++(err ? st_->failed : st_->completed);
        st_->loops_issued += m.loops_issued;
        st_->wait_samples.push_back(m.wait_s);
        st_->latency_samples.push_back(m.latency_s);
        st_->t_last = t_end;
        admit_locked();
        // Notify while still holding the lock: the moment a waiter in
        // drain() sees in_flight == 0 it may destroy *st_, so this
        // thread must be finished with the cv before the lock drops.
        st_->cv.notify_all();
    }
}

void scheduler::drain() {
    std::unique_lock<std::mutex> lk(st_->mtx);
    st_->cv.wait(lk, [&] {
        return st_->waiting.empty() && st_->in_flight == 0;
    });
}

double scheduler::measured_tenant_cost(std::string_view tenant) const {
    std::lock_guard<std::mutex> lk(st_->mtx);
    auto const it = st_->tenant_ewma.find(std::string(tenant));
    return it == st_->tenant_ewma.end() ? 0.0 : it->second;
}

scheduler_metrics scheduler::metrics() const {
    std::lock_guard<std::mutex> lk(st_->mtx);
    scheduler_metrics m;
    m.policy = st_->policy->name();
    m.submitted = st_->submitted;
    m.completed = st_->completed;
    m.failed = st_->failed;
    m.loops_issued = st_->loops_issued;
    std::uint64_t const finished = st_->completed + st_->failed;
    if (st_->any_submitted && finished > 0) {
        m.wall_s = secs(st_->t_last - st_->t_first);
        if (m.wall_s > 0.0) {
            m.throughput_jobs_s =
                static_cast<double>(finished) / m.wall_s;
        }
    }
    if (!st_->wait_samples.empty()) {
        double sum = 0.0;
        for (double w : st_->wait_samples) {
            sum += w;
        }
        m.mean_wait_s = sum / static_cast<double>(st_->wait_samples.size());
    }
    if (!st_->latency_samples.empty()) {
        double sum = 0.0;
        for (double l : st_->latency_samples) {
            sum += l;
        }
        m.mean_latency_s =
            sum / static_cast<double>(st_->latency_samples.size());
        m.p95_latency_s = percentile(st_->latency_samples, 0.95);
        m.p99_latency_s = percentile(st_->latency_samples, 0.99);
    }
    return m;
}

}  // namespace op2::service
