#include <op2/context.hpp>

#include <utility>

namespace op2 {

namespace {

std::uint64_t next_context_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local context slot. Empty means "the default context" so
/// thread creation pays nothing; current_context() resolves the
/// default lazily.
std::shared_ptr<runtime_context>& tls_context() {
    thread_local std::shared_ptr<runtime_context> ctx;
    return ctx;
}

}  // namespace

runtime_context::runtime_context(std::string name)
  : id_(next_context_id()), name_(std::move(name)) {}

std::shared_ptr<runtime_context> const& runtime_context::default_context() {
    // Intentionally leaked (never destroyed): dats and dep_states
    // reference the default context's poison gate during static
    // teardown, exactly like the inline atomics this replaces.
    static std::shared_ptr<runtime_context> const* const ctx =
        new std::shared_ptr<runtime_context>(
            std::make_shared<runtime_context>());
    return *ctx;
}

std::shared_ptr<runtime_context> make_context(std::string name) {
    return std::make_shared<runtime_context>(std::move(name));
}

std::shared_ptr<runtime_context> const& current_context() {
    auto const& tls = tls_context();
    return tls ? tls : runtime_context::default_context();
}

context_scope::context_scope(std::shared_ptr<runtime_context> ctx) {
    auto& tls = tls_context();
    prev_ = std::exchange(tls, std::move(ctx));
}

context_scope::~context_scope() { tls_context() = std::move(prev_); }

}  // namespace op2
