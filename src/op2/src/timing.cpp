#include <op2/timing.hpp>

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <map>
#include <mutex>
#include <ostream>

namespace op2 {

namespace {

std::atomic<bool> g_enabled{true};
std::mutex g_mtx;
std::map<std::pair<std::string, std::string>, loop_timing> g_records;

}  // namespace

void op_timing_enable(bool enabled) {
    g_enabled.store(enabled, std::memory_order_release);
}

bool op_timing_enabled() {
    return g_enabled.load(std::memory_order_acquire);
}

void op_timing_record(char const* name, char const* backend,
                      double elapsed_s) {
    if (!op_timing_enabled()) {
        return;
    }
    std::lock_guard<std::mutex> lk(g_mtx);
    auto& rec = g_records[{name, backend}];
    if (rec.count == 0) {
        rec.name = name;
        rec.backend = backend;
    }
    ++rec.count;
    rec.total_s += elapsed_s;
    rec.max_s = std::max(rec.max_s, elapsed_s);
}

std::vector<loop_timing> op_timing_snapshot() {
    std::vector<loop_timing> out;
    {
        std::lock_guard<std::mutex> lk(g_mtx);
        out.reserve(g_records.size());
        for (auto const& [key, rec] : g_records) {
            out.push_back(rec);
        }
    }
    std::sort(out.begin(), out.end(),
              [](loop_timing const& a, loop_timing const& b) {
                  return a.total_s > b.total_s;
              });
    return out;
}

void op_timing_reset() {
    std::lock_guard<std::mutex> lk(g_mtx);
    g_records.clear();
}

void op_timing_output(std::ostream& os) {
    auto const snap = op_timing_snapshot();
    os << "  " << std::left << std::setw(18) << "loop" << std::setw(11)
       << "backend" << std::right << std::setw(10) << "count"
       << std::setw(14) << "total(s)" << std::setw(14) << "mean(ms)"
       << std::setw(14) << "max(ms)" << '\n';
    for (auto const& r : snap) {
        os << "  " << std::left << std::setw(18) << r.name << std::setw(11)
           << r.backend << std::right << std::setw(10) << r.count
           << std::setw(14) << std::fixed << std::setprecision(6) << r.total_s
           << std::setw(14) << std::setprecision(4) << r.mean_s() * 1e3
           << std::setw(14) << r.max_s * 1e3 << '\n';
    }
}

}  // namespace op2
