#include <op2/memory.hpp>

#include <atomic>
#include <cstring>
#include <thread>

#include <hpxlite/prefetching/prefetcher.hpp>
#include <hpxlite/util/env.hpp>

namespace op2::memory {

namespace {

/// -1 = follow the environment, 0/1 = set_first_touch override.
std::atomic<int> g_first_touch{-1};
std::atomic<first_touch_trace*> g_trace{nullptr};

}  // namespace

int worker_node(std::size_t worker) noexcept {
    topology_info const& topo = topology();
    if (topo.nodes <= 1 || topo.cpus() == 0) {
        return 0;
    }
    // Same core choice as thread_pool::bind_worker: worker i takes the
    // i-th core in node-major order, wrapping at the cpu count.
    int const cpu = topo.node_major[worker % topo.cpus()];
    return topo.node_of(static_cast<std::size_t>(cpu));
}

touch_range partition_touch_range(set_partition const& part, std::size_t p,
                                  std::size_t stride, std::size_t total) {
    touch_range r;
    r.lo = p == 0 ? 0 : pad_to_line(part.begin(p) * stride);
    r.hi = p + 1 == part.count ? total
                               : pad_to_line(part.end(p) * stride);
    if (r.lo > total) {
        r.lo = total;
    }
    if (r.hi > total) {
        r.hi = total;
    }
    if (r.hi < r.lo) {
        r.hi = r.lo;
    }
    return r;
}

bool first_touch_enabled() noexcept {
    int const o = g_first_touch.load(std::memory_order_relaxed);
    if (o >= 0) {
        return o != 0;
    }
    static bool const env =
        hpxlite::util::env_flag("OP2HPX_FIRST_TOUCH", false);
    return env;
}

void set_first_touch(bool on) noexcept {
    g_first_touch.store(on ? 1 : 0, std::memory_order_relaxed);
}

void reset_first_touch() noexcept {
    g_first_touch.store(-1, std::memory_order_relaxed);
}

void set_first_touch_trace(first_touch_trace* t) noexcept {
    g_trace.store(t, std::memory_order_release);
}

void first_touch_init(std::byte* dst, void const* init, std::size_t total,
                      set_partition const& part, std::size_t stride,
                      hpxlite::threads::thread_pool& pool) {
    auto init_span = [&](std::size_t lo, std::size_t hi) {
        if (hi <= lo) {
            return;
        }
        if (init != nullptr) {
            std::memcpy(dst + lo, static_cast<std::byte const*>(init) + lo,
                        hi - lo);
        } else {
            std::memset(dst + lo, 0, hi - lo);
        }
    };
    // A pool worker cannot wait for tasks parked in its own affinity
    // inbox without popping them itself (wrong-worker touches), so dats
    // declared from inside a kernel/task keep the inline path.
    if (total == 0 || pool.on_worker_thread()) {
        init_span(0, total);
        return;
    }

    first_touch_trace* const trace = g_trace.load(std::memory_order_acquire);
    if (trace != nullptr) {
        trace->worker.assign(part.count, -1);
    }

    std::atomic<std::size_t> remaining{0};
    for (std::size_t p = 0; p < part.count; ++p) {
        touch_range const r = partition_touch_range(part, p, stride, total);
        if (r.size() == 0) {
            continue;
        }
        remaining.fetch_add(1, std::memory_order_relaxed);
        std::size_t const owner = p % pool.size();
        pool.submit_to(owner, [&, p, r, owner] {
            if (trace != nullptr && trace->on_touch) {
                trace->on_touch(p);
            }
            // Multi-node: pin the partition's pages to the owner's node
            // before the first write, so placement holds even if this
            // task got stolen off the owner or binding is disabled.
            if (topology().nodes > 1) {
                hpxlite::threads::bind_range_to_node(dst + r.lo, r.size(),
                                                     worker_node(owner));
            }
            init_span(r.lo, r.hi);
            if (trace != nullptr) {
                trace->worker[p] = static_cast<long>(pool.worker_index());
            }
            remaining.fetch_sub(1, std::memory_order_release);
        });
        if (trace != nullptr) {
            trace->enqueued.fetch_add(1, std::memory_order_release);
        }
    }
    // Spin (not help): helping would run a touch task on this thread and
    // defeat the point. Touch tasks are short memsets/memcpys; dat
    // declaration is a cold path.
    while (remaining.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
    }
}

void copy_partitions(std::byte* dst, std::byte const* src, std::size_t total,
                     set_partition const& part, std::size_t stride,
                     hpxlite::threads::thread_pool& pool) {
    if (total == 0) {
        return;
    }
    if (pool.on_worker_thread()) {
        std::memcpy(dst, src, total);
        return;
    }
    std::atomic<std::size_t> remaining{0};
    for (std::size_t p = 0; p < part.count; ++p) {
        touch_range const r = partition_touch_range(part, p, stride, total);
        if (r.size() == 0) {
            continue;
        }
        remaining.fetch_add(1, std::memory_order_relaxed);
        pool.submit_to(p % pool.size(), [&, r] {
            std::memcpy(dst + r.lo, src + r.lo, r.size());
            remaining.fetch_sub(1, std::memory_order_release);
        });
    }
    // Spin (not help): helping could run a copy task on this thread and
    // undo the owner-affine placement. Snapshot fan-outs are short
    // memcpys on a cold path (a checkpoint fence).
    while (remaining.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
    }
}

void warm_partitions(std::byte const* base, std::size_t total,
                     set_partition const& part, std::size_t stride,
                     hpxlite::threads::thread_pool& pool,
                     std::shared_ptr<void> keepalive) {
    for (std::size_t p = 0; p < part.count; ++p) {
        touch_range const r = partition_touch_range(part, p, stride, total);
        if (r.size() == 0) {
            continue;
        }
        std::size_t const owner = p % pool.size();
        pool.submit_to(owner, [base, r, keepalive, owner] {
            // Re-partitioned ownership: advise the kernel about the new
            // owner's node alongside the cache prefetch. Advisory-only
            // for already-touched pages (no migration), so it cannot
            // race the loops about to run on the data either.
            if (topology().nodes > 1) {
                hpxlite::threads::bind_range_to_node(
                    const_cast<std::byte*>(base) + r.lo, r.size(),
                    worker_node(owner));
            }
            for (std::size_t o = r.lo; o < r.hi; o += cache_line) {
                hpxlite::parallel::detail::prefetch_read(base + o);
            }
        });
    }
}

std::byte* tls_scratch(std::size_t bytes) {
    thread_local aligned_buffer arena;
    if (arena.capacity() < bytes) {
        std::size_t grown = arena.capacity() == 0 ? 4096 : arena.capacity();
        while (grown < bytes) {
            grown *= 2;
        }
        arena = aligned_buffer(grown);
    }
    return arena.data();
}

}  // namespace op2::memory
