#pragma once

// Locality-aware memory layer for dat storage (and executor scratch).
//
// The async OP2-on-HPX design wins by keeping each partition's working
// set hot on one core: the dataflow backend pins partition p's sub-nodes
// to worker p % pool_size (loop_options::placement). Before this layer,
// the *data* undercut the hint — every dat was a bare std::vector whose
// pages were first-touched wholesale by the mesh-loading thread, with no
// alignment guarantee for the staged copy kernels. This layer closes the
// gap:
//
//  * aligned_buffer — the storage every dat allocates through: the base
//    is 64-byte (cache-line) aligned and the capacity is padded to a
//    whole number of cache lines, so fixed-stride copy kernels can be
//    vectorised without edge peeling and two dats never share a line.
//  * partition-affine first touch — on request (OP2HPX_FIRST_TOUCH / ​
//    set_first_touch), a dat's pages are initialised by one task per set
//    partition, fanned through the pool's affinity inboxes
//    (thread_pool::submit_to), so partition p's pages are written first
//    by worker p % pool_size — the worker the placement hint keeps
//    sending partition p's loops to. Touch ranges are padded to cache
//    lines with a boundary-straddling line owned by the lower partition,
//    so no line is written by two touch tasks. Off (the default) keeps
//    the old loader-thread initialisation as the oracle.
//  * tls_scratch — a per-thread cache-line-aligned arena for the staged
//    executor's SIMD gather path (grown geometrically, reused across
//    blocks and loops; no per-run allocation).
//  * gather kernels — unrolled fixed-stride copy loops (16/32 bytes per
//    element: dim-2/dim-4 doubles, dim-4/dim-8 floats) that turn a plan
//    gather table into one contiguous scratch stream.
//  * scatter-add kernels — the write-side counterpart for OP_INC
//    arguments: typed, unrolled fixed-stride accumulation of a block's
//    private contribution buffer back through the same tables, in
//    element order so the result stays bitwise identical to the scalar
//    per-element scatter.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include <hpxlite/config.hpp>
#include <hpxlite/threads/thread_pool.hpp>
#include <hpxlite/threads/topology.hpp>
#include <op2/fault.hpp>
#include <op2/set.hpp>

namespace op2::memory {

// --- machine topology ----------------------------------------------------

/// The probed NUMA topology (re-exported from hpxlite so op2 users and
/// the tuner's placement ladder see the same map the worker binding
/// uses). Single-node machines get the identity map; see
/// hpxlite/threads/topology.hpp for probe order and fallbacks.
using hpxlite::threads::topology;
using hpxlite::threads::topology_info;

/// The NUMA node of the core that pool worker `worker` binds to under
/// node-major binding (pool_options::bind_workers). This is the node a
/// partition owned by `worker` should place its pages on. Always 0 on
/// single-node machines, so callers can use it unconditionally.
[[nodiscard]] int worker_node(std::size_t worker) noexcept;

inline constexpr std::size_t cache_line = hpxlite::cache_line_size;

/// Round `n` up to a whole number of cache lines.
[[nodiscard]] constexpr std::size_t pad_to_line(std::size_t n) noexcept {
    return (n + cache_line - 1) & ~(cache_line - 1);
}

/// Cache-line-aligned byte storage: base aligned to 64, capacity padded
/// to whole lines (size() stays the logical byte count). Move-only owner;
/// the moved-from buffer is empty.
class aligned_buffer {
public:
    aligned_buffer() noexcept = default;
    explicit aligned_buffer(std::size_t bytes) : size_(bytes) {
        if (bytes != 0) {
            // Fault-injection point: an armed alloc=K plan makes the
            // K-th buffer allocation throw (dat declaration, checkpoint
            // snapshots, executor scratch). One relaxed load when off.
            fault::on_alloc(bytes);
            capacity_ = pad_to_line(bytes);
            data_ = static_cast<std::byte*>(
                ::operator new(capacity_, std::align_val_t{cache_line}));
        }
    }
    aligned_buffer(aligned_buffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        capacity_(std::exchange(o.capacity_, 0)) {}
    aligned_buffer& operator=(aligned_buffer&& o) noexcept {
        if (this != &o) {
            destroy();
            data_ = std::exchange(o.data_, nullptr);
            size_ = std::exchange(o.size_, 0);
            capacity_ = std::exchange(o.capacity_, 0);
        }
        return *this;
    }
    aligned_buffer(aligned_buffer const&) = delete;
    aligned_buffer& operator=(aligned_buffer const&) = delete;
    ~aligned_buffer() { destroy(); }

    [[nodiscard]] std::byte* data() noexcept { return data_; }
    [[nodiscard]] std::byte const* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

private:
    void destroy() noexcept {
        if (data_ != nullptr) {
            ::operator delete(data_, std::align_val_t{cache_line});
        }
    }

    std::byte* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

// --- partition-affine first touch ---------------------------------------

/// The byte range of a dat (element stride `stride`) that partition `p`
/// of `part` owns for touching purposes: its element range scaled to
/// bytes, then padded to cache lines. A line straddling the partition
/// boundary belongs to the *lower* partition (lo rounds up, hi rounds
/// up), so across p the ranges are disjoint, line-granular away from the
/// buffer ends, and cover [0, total) exactly. Every non-empty range
/// therefore starts 64-byte aligned except possibly range 0, which
/// starts at the (aligned) buffer base anyway.
struct touch_range {
    std::size_t lo = 0;
    std::size_t hi = 0;
    [[nodiscard]] std::size_t size() const noexcept { return hi - lo; }
};

[[nodiscard]] touch_range partition_touch_range(set_partition const& part,
                                                std::size_t p,
                                                std::size_t stride,
                                                std::size_t total);

/// Whether dats initialise their pages partition-affinely. Default comes
/// from the OP2HPX_FIRST_TOUCH environment variable (off unless set to
/// 1/on/true/yes); set_first_touch overrides it for the process. Off is
/// the seed behaviour (loader thread writes everything) and the oracle
/// the differential suites compare against.
[[nodiscard]] bool first_touch_enabled() noexcept;
void set_first_touch(bool on) noexcept;
/// Drop any set_first_touch override and follow the environment again
/// (tests and scoped toggles must not pin the process-wide policy).
void reset_first_touch() noexcept;

/// Scoped first-touch override: applies `on` for the guard's lifetime,
/// then restores the previous *effective* setting — exception-safe, so
/// a throwing dat declaration cannot leak the override.
class first_touch_scope {
public:
    explicit first_touch_scope(bool on) noexcept
      : prev_(first_touch_enabled()) {
        set_first_touch(on);
    }
    first_touch_scope(first_touch_scope const&) = delete;
    first_touch_scope& operator=(first_touch_scope const&) = delete;
    ~first_touch_scope() { set_first_touch(prev_); }

private:
    bool prev_;
};

/// Test hook: when set, first_touch_init records which pool worker
/// touched each partition (worker[p], -1 = never ran / ran inline) and
/// counts enqueued touch tasks, so a trace test can assert the pages
/// were written by their owners. `on_touch`, when set, is invoked by
/// each touch task (with its partition id) before it writes — the trace
/// test's rendezvous point, same blocker protocol as the placement
/// trace test in test_exec_backend.cpp.
struct first_touch_trace {
    std::atomic<std::size_t> enqueued{0};
    std::vector<long> worker;  // sized by first_touch_init
    std::function<void(std::size_t)> on_touch;
};
void set_first_touch_trace(first_touch_trace* t) noexcept;

/// Initialise `dst[0, total)` from `init` (or zeros when null) with one
/// task per partition of `part`, submitted through the pool's affinity
/// inbox of worker p % pool.size() — the same mapping the dataflow
/// placement hint uses — and wait for all of them. Pages are therefore
/// *written first* by the worker that will keep executing the
/// partition's loops. On multi-node machines each touch task
/// additionally advises the kernel (bind_range_to_node) to place the
/// partition's pages on the owning worker's node *before* writing, so
/// placement holds even when the touching thread migrated or binding is
/// off. Falls back to inline initialisation when called from a pool
/// worker (waiting for own-inbox tasks there would deadlock) or when
/// the set is empty.
void first_touch_init(std::byte* dst, void const* init, std::size_t total,
                      set_partition const& part, std::size_t stride,
                      hpxlite::threads::thread_pool& pool);

/// Copy `total` bytes from `src` to `dst` with one task per partition
/// of `part`, fanned through the pool's affinity inbox of worker
/// p % pool.size() — the mapping the dataflow placement hint uses — and
/// wait for all of them. Checkpoint snapshots and rollback restores go
/// through this, so a partition's snapshot bytes are read/written by
/// the worker that owns the partition's cache lines. Falls back to one
/// inline memcpy when called from a pool worker (waiting on own-inbox
/// tasks would deadlock) or when the set is empty.
void copy_partitions(std::byte* dst, std::byte const* src, std::size_t total,
                     set_partition const& part, std::size_t stride,
                     hpxlite::threads::thread_pool& pool);

/// Fire-and-forget cache re-warm after a dependency-table re-partition:
/// for each partition of the *new* granularity, submit a prefetch sweep
/// over its touch range to its owning worker. Prefetch-only (no C++
/// level loads), so it cannot race the loops about to run on the data.
/// `keepalive` pins the storage for the duration of the sweep.
void warm_partitions(std::byte const* base, std::size_t total,
                     set_partition const& part, std::size_t stride,
                     hpxlite::threads::thread_pool& pool,
                     std::shared_ptr<void> keepalive);

// --- per-thread aligned scratch ------------------------------------------

/// A cache-line-aligned scratch block of at least `bytes` bytes, owned by
/// the calling thread and reused across calls (grown geometrically).
/// Contents are unspecified on entry. The pointer stays valid until the
/// next tls_scratch call on the same thread with a larger request.
[[nodiscard]] std::byte* tls_scratch(std::size_t bytes);

// --- staged gather kernels ------------------------------------------------

/// True when `stride` is one of the fixed-stride classes the vectorised
/// gather kernels handle (16/32 bytes per element: the paper's dim-2 and
/// dim-4 double arguments).
[[nodiscard]] constexpr bool simd_stride(std::size_t stride) noexcept {
    return stride == 16 || stride == 32;
}

namespace detail {

/// Fixed-stride gather: dst[k] = base + off[k], S bytes per element,
/// 4-way unrolled. The compiler turns the fixed-size memcpy into one or
/// two vector moves per element; with a 64-byte-aligned dst (tls_scratch)
/// and a 64-byte-aligned dat base the accesses stay naturally aligned.
template <std::size_t S>
inline void gather_fixed(std::byte* dst, std::byte const* base,
                         std::uint32_t const* off, std::size_t n) {
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        std::memcpy(dst + (k + 0) * S, base + off[k + 0], S);
        std::memcpy(dst + (k + 1) * S, base + off[k + 1], S);
        std::memcpy(dst + (k + 2) * S, base + off[k + 2], S);
        std::memcpy(dst + (k + 3) * S, base + off[k + 3], S);
    }
    for (; k < n; ++k) {
        std::memcpy(dst + k * S, base + off[k], S);
    }
}

/// Fixed-stride scatter-add: base[off[k]] += src[k] componentwise, S
/// bytes (S/8 doubles) per element, 2-way unrolled on the element axis
/// with the component adds fully unrolled. Unlike gather_fixed this is
/// typed — an accumulation needs real adds, not byte copies — which is
/// why the executor's scatter eligibility is pinned to 8-byte (double)
/// components. Element order is preserved: contribution k lands before
/// contribution k+1, exactly the order the scalar per-element scatter
/// accumulates in, so the result is bitwise identical to it.
template <std::size_t S>
inline void scatter_add_fixed(std::byte* base, std::byte const* src,
                              std::uint32_t const* off, std::size_t n) {
    static_assert(S % sizeof(double) == 0);
    constexpr std::size_t D = S / sizeof(double);
    auto const* s = reinterpret_cast<double const*>(src);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        auto* d0 = reinterpret_cast<double*>(base + off[k + 0]);
        for (std::size_t c = 0; c < D; ++c) {
            d0[c] += s[(k + 0) * D + c];
        }
        auto* d1 = reinterpret_cast<double*>(base + off[k + 1]);
        for (std::size_t c = 0; c < D; ++c) {
            d1[c] += s[(k + 1) * D + c];
        }
    }
    for (; k < n; ++k) {
        auto* d = reinterpret_cast<double*>(base + off[k]);
        for (std::size_t c = 0; c < D; ++c) {
            d[c] += s[k * D + c];
        }
    }
}

}  // namespace detail

/// Gather `n` elements of `stride` bytes each from `base` through the
/// plan's byte-offset table `off` into contiguous `dst`. Dispatches to
/// the unrolled fixed-stride kernels for the simd_stride classes and to
/// a generic per-element copy otherwise.
inline void gather(std::byte* dst, std::byte const* base,
                   std::uint32_t const* off, std::size_t n,
                   std::size_t stride) {
    if (stride == 16) {
        detail::gather_fixed<16>(dst, base, off, n);
    } else if (stride == 32) {
        detail::gather_fixed<32>(dst, base, off, n);
    } else {
        for (std::size_t k = 0; k < n; ++k) {
            std::memcpy(dst + k * stride, base + off[k], stride);
        }
    }
}

/// Scatter-add `n` contiguous double-component elements of `stride`
/// bytes each from `src` back through the plan's byte-offset table
/// `off` into `base`, in element order (the scalar accumulation order —
/// the SIMD scatter path's bitwise-oracle property rests on this).
/// Dispatches to the unrolled fixed-stride kernels for the simd_stride
/// classes and to a generic per-element add loop otherwise.
inline void scatter_add(std::byte* base, std::byte const* src,
                        std::uint32_t const* off, std::size_t n,
                        std::size_t stride) {
    if (stride == 16) {
        detail::scatter_add_fixed<16>(base, src, off, n);
    } else if (stride == 32) {
        detail::scatter_add_fixed<32>(base, src, off, n);
    } else {
        std::size_t const dim = stride / sizeof(double);
        auto const* s = reinterpret_cast<double const*>(src);
        for (std::size_t k = 0; k < n; ++k) {
            auto* d = reinterpret_cast<double*>(base + off[k]);
            for (std::size_t c = 0; c < dim; ++c) {
                d[c] += s[k * dim + c];
            }
        }
    }
}

}  // namespace op2::memory
