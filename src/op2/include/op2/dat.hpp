#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <op2/exec/dataflow.hpp>
#include <op2/memory.hpp>
#include <op2/set.hpp>

namespace op2 {

namespace detail {

struct dat_impl {
    op_set set;
    int dim = 0;
    std::size_t elem_bytes = 0;  // sizeof(T), per component
    std::string type_name;       // "double", "float", "int", ...
    std::string name;
    std::uint64_t id = 0;
    // The runtime_context this dat was declared under (the default
    // context for standalone programs). Keeps the context — and with it
    // the poison gate dep.poison_gate points at — alive for the dat's
    // lifetime, and lets the service layer find a job's dats among
    // all_dats() at fence/teardown.
    std::shared_ptr<runtime_context> ctx;
    // set.size() * dim * elem_bytes logical bytes, allocated through the
    // locality-aware layer: 64-byte-aligned base, capacity padded to
    // whole cache lines, and — when memory::first_touch_enabled() —
    // pages first-touched partition-affinely on their owning workers
    // (see op2/memory.hpp).
    memory::aligned_buffer data;

    // --- dataflow dependency tracking (hpx_dataflow backend) --------
    // Partition-granular epoch state instead of future chains: one
    // (last-writer, reader-set) record per partition of the dat's set,
    // plus a dat-level epoch counting issued writer loops. Records are
    // updated under their own locks when a loop is *issued* (issue
    // order defines program order, exactly like the futures threaded
    // through op_par_loop calls in Figures 9-11 of the paper) — see
    // op2/exec/dataflow.hpp for the invariants.
    // (mutable: dependency bookkeeping, orthogonal to the payload's
    // logical constness — loops holding const args still register reads)
    mutable exec::dep_state dep;
};

}  // namespace detail

/// Data associated with a set: `dim` components of a scalar type per set
/// element (paper: op_decl_dat(cells, 4, "double", q, "p_q")).
/// Value-semantic handle; copies alias the same storage.
class op_dat {
public:
    op_dat() = default;

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
    [[nodiscard]] op_set const& set() const { return impl_->set; }
    [[nodiscard]] int dim() const noexcept { return impl_ ? impl_->dim : 0; }
    [[nodiscard]] std::size_t elem_bytes() const noexcept {
        return impl_ ? impl_->elem_bytes : 0;
    }
    [[nodiscard]] std::string const& type_name() const { return impl_->type_name; }
    [[nodiscard]] std::string const& name() const { return impl_->name; }
    [[nodiscard]] std::uint64_t id() const noexcept {
        return impl_ ? impl_->id : 0;
    }

    /// Raw storage base pointer.
    [[nodiscard]] std::byte* raw() noexcept { return impl_->data.data(); }
    [[nodiscard]] std::byte const* raw() const noexcept {
        return impl_->data.data();
    }

    /// Typed view over the whole storage (size = set.size() * dim).
    /// Throws when sizeof(T) does not match the declared element size.
    template <typename T>
    [[nodiscard]] std::span<T> view() {
        check_type<T>();
        return {reinterpret_cast<T*>(impl_->data.data()),
                impl_->data.size() / sizeof(T)};
    }

    template <typename T>
    [[nodiscard]] std::span<T const> view() const {
        check_type<T>();
        return {reinterpret_cast<T const*>(impl_->data.data()),
                impl_->data.size() / sizeof(T)};
    }

    friend bool operator==(op_dat const& a, op_dat const& b) noexcept {
        return a.impl_ == b.impl_;
    }

    /// True while any element range of this dat is quarantined (a loop
    /// writing it failed; readers fail fast until the quarantine lifts).
    [[nodiscard]] bool quarantined() const {
        return impl_ != nullptr && impl_->dep.poison_count() != 0;
    }

    /// Lift this dat's quarantine: drain its in-flight loops, drop the
    /// poison spans, and prune the failed nodes from its dependency
    /// records so later loops neither fail fast nor inherit the old
    /// error. The caller asserts the contents are good again (e.g.
    /// after rewriting them out-of-band); compare exec::checkpoint
    /// rollback, which restores contents too. No-op on invalid handles.
    void clear_quarantine();

    /// Internal: dependency/bookkeeping access for the backends.
    [[nodiscard]] detail::dat_impl& internal() { return *impl_; }
    [[nodiscard]] detail::dat_impl const& internal() const { return *impl_; }

private:
    template <typename T>
    void check_type() const {
        if (!impl_) {
            throw std::logic_error("op_dat: invalid handle");
        }
        if (sizeof(T) != impl_->elem_bytes) {
            throw std::invalid_argument(
                "op_dat '" + impl_->name + "': element size mismatch (dat is " +
                impl_->type_name + ")");
        }
    }

    explicit op_dat(std::shared_ptr<detail::dat_impl> p) noexcept
      : impl_(std::move(p)) {}

    friend op_dat detail_make_dat(std::shared_ptr<detail::dat_impl>);

    std::shared_ptr<detail::dat_impl> impl_;
};

/// Internal factory (friend of op_dat); not part of the public API.
op_dat detail_make_dat(std::shared_ptr<detail::dat_impl> p);

namespace detail {
op_dat make_dat(op_set s, int dim, std::size_t elem_bytes,
                std::string_view type, void const* init, std::string name);

/// Snapshot of every live dat (used by op_fence_all).
std::vector<std::shared_ptr<dat_impl>> all_dats();
}  // namespace detail

/// Declare data on a set. `data` must contain set.size()*dim values.
/// `type` is the OP2 type string ("double", "float", "int"), retained for
/// argument validation and code generation.
template <typename T>
op_dat op_decl_dat(op_set s, int dim, std::string_view type,
                   std::vector<T> const& data, std::string name) {
    if (dim <= 0) {
        throw std::invalid_argument("op_decl_dat '" + name +
                                    "': dim must be positive");
    }
    if (data.size() != s.size() * static_cast<std::size_t>(dim)) {
        throw std::invalid_argument(
            "op_decl_dat '" + name + "': expected " +
            std::to_string(s.size() * static_cast<std::size_t>(dim)) +
            " values, got " + std::to_string(data.size()));
    }
    return detail::make_dat(std::move(s), dim, sizeof(T), type, data.data(),
                            std::move(name));
}

/// Declare uninitialised (zero-filled) data on a set.
template <typename T>
op_dat op_decl_dat_zero(op_set s, int dim, std::string_view type,
                        std::string name) {
    std::vector<T> zeros(s.size() * static_cast<std::size_t>(dim), T{});
    return op_decl_dat<T>(std::move(s), dim, type, zeros, std::move(name));
}

}  // namespace op2
