#pragma once

#include <cstddef>
#include <vector>

#include <op2/dat.hpp>
#include <op2/exec/backend_kind.hpp>
#include <op2/loop_options.hpp>

namespace op2 {

/// Which code path op_par_loop() dispatches to (legacy names; the exec
/// layer's backend_kind is the authoritative selector — see
/// to_exec_backend).
enum class backend {
    seq,        ///< sequential reference
    fork_join,  ///< OpenMP-style: parallel blocks + global barrier per loop
    hpx,        ///< dataflow: loops issued asynchronously, epoch-chained
};

constexpr char const* to_string(backend b) noexcept {
    switch (b) {
        case backend::seq: return "seq";
        case backend::fork_join: return "fork_join";
        case backend::hpx: return "hpx";
    }
    return "?";
}

/// Map the legacy process-wide enum onto the exec backend layer.
constexpr exec::backend_kind to_exec_backend(backend b) noexcept {
    switch (b) {
        case backend::seq: return exec::backend_kind::seq;
        case backend::fork_join: return exec::backend_kind::staged;
        case backend::hpx: return exec::backend_kind::hpx_dataflow;
    }
    return exec::backend_kind::seq;
}

/// Process-wide configuration consumed by the unified op_par_loop().
struct config {
    backend be = backend::seq;
    loop_options opts;
};

config& global_config();

/// Convenience setters mirroring op_init-style configuration.
void op_set_backend(backend b);
void op_set_part_size(std::size_t part_size);

/// Wait until every outstanding asynchronous loop touching `d` (writers
/// and readers) has completed. No-op for data with no pending work.
void op_fence(op_dat const& d);

/// Wait for all asynchronous work on all declared dats. The hpx backend
/// equivalent of the implicit barrier the other backends have after
/// every loop — but called once, where the program actually needs the
/// data.
void op_fence_all();

/// Fence `d` and copy its contents out as a typed vector.
template <typename T>
std::vector<T> op_fetch_data(op_dat d) {
    op_fence(d);
    auto v = d.view<T>();
    return {v.begin(), v.end()};
}

}  // namespace op2
