#pragma once

namespace op2 {

/// How a kernel accesses an argument inside an op_par_loop.
/// Mirrors the OP2 access descriptors (paper Section II-B):
///  * OP_READ  — read only
///  * OP_WRITE — write only (every element fully overwritten)
///  * OP_RW    — read and write
///  * OP_INC   — increment; commutative/associative updates, used for
///               indirect accumulation (needs colouring) and for global
///               reductions
///  * OP_MIN / OP_MAX — global-reduction variants (OP2 extension)
enum class op_access { OP_READ, OP_WRITE, OP_RW, OP_INC, OP_MIN, OP_MAX };

// Namespace-scope aliases so user code reads like stock OP2.
inline constexpr op_access OP_READ = op_access::OP_READ;
inline constexpr op_access OP_WRITE = op_access::OP_WRITE;
inline constexpr op_access OP_RW = op_access::OP_RW;
inline constexpr op_access OP_INC = op_access::OP_INC;
inline constexpr op_access OP_MIN = op_access::OP_MIN;
inline constexpr op_access OP_MAX = op_access::OP_MAX;

/// True when the access can modify data (WRITE/RW/INC/MIN/MAX).
constexpr bool is_mutating(op_access a) noexcept {
    return a != op_access::OP_READ;
}

constexpr char const* to_string(op_access a) noexcept {
    switch (a) {
        case op_access::OP_READ: return "OP_READ";
        case op_access::OP_WRITE: return "OP_WRITE";
        case op_access::OP_RW: return "OP_RW";
        case op_access::OP_INC: return "OP_INC";
        case op_access::OP_MIN: return "OP_MIN";
        case op_access::OP_MAX: return "OP_MAX";
    }
    return "?";
}

}  // namespace op2
