#pragma once

// Per-program runtime context: the state that used to be process-wide
// singletons, factored out so several independent op2 programs (jobs —
// see op2/service.hpp) can share one process and one thread pool
// without sharing bookkeeping.
//
// A runtime_context scopes:
//  * the plan cache namespace — plan keys carry the owning context's
//    id, so a job's cached plans can be purged at teardown without
//    touching any other job's (op2/plan.hpp: plan_cache_purge);
//  * the reduction combine lock — the spinlock serialising reduction
//    scratch seeding/folding across the loops of ONE program
//    (exec/backend.hpp captured it per group; two jobs never share
//    reduction variables, so they need not share the lock either);
//  * the quarantine gate — the count of live poison spans that makes
//    the healthy issue path one relaxed load. Per-context, a fault in
//    one job never makes another job's issue path scan (or fail):
//    per-job fault isolation;
//  * the memory config override — first-touch placement for the dats a
//    job declares, independent of the process default;
//  * issue metrics — loops issued under the context, read by the
//    service layer's per-job metrics.
//
// The *default* context (id 0) is the process-wide one every
// standalone program uses implicitly; all pre-service behaviour is the
// default context's behaviour. current_context() is thread-local and
// consulted at issue time only: a job's program runs with its context
// installed (context_scope), and everything a running sub-node needs
// later — combine lock, poison gate — is captured into the loop group
// at issue, so helping threads executing another job's nodes never
// read the wrong context.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include <hpxlite/util/spinlock.hpp>

namespace op2 {

class runtime_context {
public:
    /// The default (process-wide) context. Named contexts come from
    /// make_context(); ids are process-unique, 0 is the default.
    runtime_context() = default;
    explicit runtime_context(std::string name);

    runtime_context(runtime_context const&) = delete;
    runtime_context& operator=(runtime_context const&) = delete;

    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] std::string const& name() const noexcept { return name_; }

    /// Diagnostic label for graph dumps: null for the default context
    /// (no tag — the pre-service output), the context's name otherwise.
    /// The pointer stays valid for the context's lifetime; dataflow
    /// nodes stamp it at issue like the (static-string) loop name, and
    /// every node's dats hold the context alive through dat_impl::ctx.
    [[nodiscard]] char const* label() const noexcept {
        return id_ == 0 ? nullptr : name_.c_str();
    }

    /// Reduction combine lock (see exec/backend.hpp: partitioned
    /// reduction scratch seeding and folding). One lock per context:
    /// loops of one program reducing into the same user variable
    /// serialise here; independent programs do not contend.
    hpxlite::util::spinlock combine_mtx;

    /// Count of live poison spans across this context's dats — the
    /// issue path's fast quarantine gate (exec/dataflow.hpp
    /// any_poisoned). Zero is the steady state of a healthy program.
    std::atomic<std::size_t> poison_spans{0};

    /// Loops issued under this context (any backend), counted at
    /// run_loop dispatch. The service layer's per-job metric.
    std::atomic<std::uint64_t> loops_issued{0};

    /// Memory-config override: partition-affine first-touch placement
    /// for dats declared under this context. -1 inherits the process
    /// default (memory::first_touch_enabled / OP2HPX_FIRST_TOUCH);
    /// 0/1 force it off/on for this context's dats only. Set before
    /// the context runs anything (plain int, read at op_decl_dat).
    int first_touch = -1;

    /// The process-wide default context (id 0). Never destroyed, like
    /// the inline globals it replaces, so dats finalised during static
    /// teardown can still reach their poison gate.
    static std::shared_ptr<runtime_context> const& default_context();

private:
    std::uint64_t id_ = 0;
    std::string name_;
};

/// Create a named context (fresh process-unique id).
std::shared_ptr<runtime_context> make_context(std::string name);

/// The calling thread's installed context; the default context when no
/// context_scope is active. Never null.
std::shared_ptr<runtime_context> const& current_context();

/// RAII installation of a context on the calling thread. Scopes nest
/// (stack discipline): a pool worker that helps run another job's task
/// mid-wait installs and restores correctly.
class context_scope {
public:
    explicit context_scope(std::shared_ptr<runtime_context> ctx);
    ~context_scope();

    context_scope(context_scope const&) = delete;
    context_scope& operator=(context_scope const&) = delete;

private:
    std::shared_ptr<runtime_context> prev_;
};

}  // namespace op2
