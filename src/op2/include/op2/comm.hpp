#pragma once

// Logical localities with asynchronous halo exchange (op2/comm).
//
// The paper's engine proves communication/computation overlap on one
// shared-memory node; a distributed OP2 backend needs the same loop
// structure plus halo exchange between localities. This layer groups a
// set's partitions into N *logical* localities — processes-within-a-
// process over the existing partition machinery — and runs the full
// distributed-shape protocol against shared storage:
//
//  * every map edge is classified **owned** (source and target
//    partition live in the same locality) or **halo** (they do not),
//    with the same deterministic partition arithmetic the plans and
//    dep records use;
//  * per (dat, map) halo region, import/export staging buffers are
//    materialised in memory::aligned_buffers (cache-line padded like
//    dats, laid out partition-slice by partition-slice);
//  * halo packs, transfers and unpacks are ordinary dataflow sub-nodes
//    edging on the same per-partition dep records as compute
//    (exec::stage_read / stage_write), so exchanges overlap interior
//    compute: interior sub-nodes of a locality never wait on another
//    locality's halo;
//  * OP_INC over halos follows owner-compute semantics: contributions
//    land first (the export chain RAW-edges on every INC sub-node),
//    then transfer, then a combine node *closes* the dat partition's
//    epoch on the owner — later readers see the combined epoch only.
//
// Localities are logical: kernels still address one shared heap, so
// the exchanged bytes are definitionally the bytes compute reads —
// which is exactly what makes localities = 1/2/3/N bitwise differential
// oracles of each other. The unpack/combine nodes exploit the aliasing
// for a built-in end-to-end check: the landed import buffer must equal
// live storage byte-for-byte, so any pack/transfer/sizing bug fails
// loudly instead of silently. Replica (non-aliased) storage per
// locality is the remaining step to a genuinely distributed backend
// and rides on these exact chains.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include <hpxlite/threads/thread_pool.hpp>
#include <op2/dat.hpp>
#include <op2/exec/dataflow.hpp>
#include <op2/map.hpp>

namespace op2::comm {

/// Process default locality count: OP2HPX_LOCALITIES (>= 1; unset,
/// empty or unparsable means 1 — today's shared-everything behaviour,
/// the bitwise differential oracle). Read once, cached.
[[nodiscard]] std::size_t localities_default() noexcept;

/// The locality count a loop actually runs with: `opt` (0 = process
/// default) clamped to the partition count — a locality needs at least
/// one partition, and nparts <= 1 has no graph to shard.
[[nodiscard]] std::size_t effective_localities(std::size_t opt,
                                               std::size_t nparts) noexcept;

/// Locality owning partition `p` when `nparts` partitions are grouped
/// into `nloc` contiguous localities. Same deterministic arithmetic as
/// set_partition's bounds (bounds[p] = p*size/count), so two layers
/// asking about the same partition always agree.
[[nodiscard]] constexpr std::size_t locality_of(std::size_t p,
                                                std::size_t nparts,
                                                std::size_t nloc) noexcept {
    return nloc <= 1 || nparts == 0 ? 0 : p * nloc / nparts;
}

/// First partition of locality `l` (the placement anchor for comm
/// sub-nodes: packs run where the owner's partitions run).
[[nodiscard]] constexpr std::size_t
locality_first_partition(std::size_t l, std::size_t nparts,
                         std::size_t nloc) noexcept {
    return nloc == 0 ? 0 : (l * nparts + nloc - 1) / nloc;
}

/// One halo region of a map at (nparts, nloc): the target partitions of
/// locality `owner` that locality `reader` reaches through the map.
/// For reads, `reader` imports the region; for OP_INC, `reader`
/// exports its contributions and `owner` combines them.
struct halo_region {
    std::uint32_t owner = 0;
    std::uint32_t reader = 0;
    std::vector<std::uint32_t> parts;  // sorted target partitions
    std::size_t elems = 0;             // total target elements staged
};

/// Owned/halo classification of every edge of one map at one
/// (nparts, nloc) granularity — the comm layer's analogue of the plan's
/// per-partition footprints, and derived from the same map table and
/// partition bounds (slot union: an edge is any (element, slot) pair).
struct halo_plan {
    std::size_t nparts = 0;
    std::size_t nloc = 0;
    std::size_t owned_edges = 0;  // edges staying inside a locality
    std::size_t halo_edges = 0;   // edges crossing localities
    std::vector<halo_region> regions;  // sorted by (reader, owner)
    /// Per source partition p: indices into `regions` whose reader is
    /// p's locality and that p's own edges reach — exactly the imports
    /// partition p's compute sub-node must wait for.
    std::vector<std::vector<std::uint32_t>> part_regions;
};

/// The (cached, immutable) halo plan of `map` at (nparts, nloc).
/// nloc <= 1 yields the empty plan: every edge is owned.
halo_plan const& halo_plan_get(op_map const& map, std::size_t nparts,
                               std::size_t nloc);

/// Drop every cached halo plan and staging buffer (tests; mirrors the
/// op_plan cache's lifetime policy of growing with distinct shapes).
void halo_cache_clear();

/// Process counters for benches and tests (relaxed; read after a
/// fence). reset via reset_stats().
struct stats_t {
    std::atomic<std::uint64_t> packs{0};
    std::atomic<std::uint64_t> exchanges{0};
    std::atomic<std::uint64_t> unpacks{0};
    std::atomic<std::uint64_t> combines{0};
    std::atomic<std::uint64_t> bytes{0};  // bytes moved by exchanges
};
[[nodiscard]] stats_t& stats() noexcept;
void reset_stats() noexcept;

/// Test hook (the memory::first_touch_trace idiom): when installed,
/// every exchange node calls `on_exchange` from its body *before*
/// copying, with the node's site label ("halo.exchange:<dat>:<loop>")
/// and the region's locality pair. A blocking callback holds that one
/// exchange in flight — how the overlap trace test proves interior
/// sub-nodes keep running while a halo exchange is pending.
struct trace {
    std::function<void(char const* label, std::uint32_t owner,
                       std::uint32_t reader, std::size_t bytes)>
        on_exchange;
};
void set_trace(trace* t) noexcept;

/// One partitioned loop's halo machinery, alive for the span of the
/// issue (pins held). Import chains are added before the compute
/// sub-nodes are wired — their unpack nodes are what halo-reading
/// sub-nodes edge on; export chains after — their packs RAW-edge on
/// the loop's own INC sub-nodes. All chain tails must be handed to the
/// loop's join node so handle waits and fences cover the exchanges.
class loop_halos {
public:
    loop_halos(std::size_t nparts, std::size_t nloc,
               hpxlite::threads::thread_pool& pool,
               char const* loop_name) noexcept
      : nparts_(nparts), nloc_(nloc), pool_(&pool), loop_(loop_name) {}
    loop_halos(loop_halos const&) = delete;
    loop_halos& operator=(loop_halos const&) = delete;

    /// False at nloc <= 1 (or nparts <= 1): the comm layer is inert and
    /// execution is bit-for-bit today's behaviour.
    [[nodiscard]] bool active() const noexcept {
        return nloc_ > 1 && nparts_ > 1;
    }

    /// Import chains (pack -> exchange -> unpack per halo region) for a
    /// dat read indirectly through `map`. `recs` is the dat's pinned
    /// record table at nparts granularity. Dedupes repeated (dat, map)
    /// pairs (several slots of one map are one region family).
    void add_import(op_dat const& d, op_map const& map,
                    exec::dep_record* recs);

    /// Edge partition p's compute sub-node on every import unpack it
    /// needs for (d, map) — regions p's own halo edges reach. Must run
    /// before the sub-node is scheduled.
    void depend_imports(exec::dataflow_node& sub, op_dat const& d,
                        op_map const& map, std::size_t p) const;

    /// Export chains (export -> exchange -> combine per halo region)
    /// for a dat mutated indirectly through `map`. Must run after every
    /// compute sub-node is wired: the export RAW-edges on the loop's
    /// own writers, and the combine closes the region partitions'
    /// epochs (owner-compute). Dedupes like add_import.
    void add_export(op_dat const& d, op_map const& map,
                    exec::dep_record* recs);

    /// Chain tails (unpack/combine nodes) for the loop's join node.
    [[nodiscard]] std::vector<exec::node_ref> const& tails() const noexcept {
        return tails_;
    }

private:
    struct entry {
        detail::dat_impl const* dat = nullptr;
        std::uint64_t map_id = 0;
        bool import = false;  // direction this entry covers
        halo_plan const* plan = nullptr;
        std::vector<exec::node_ref> tail_by_region;  // unpack nodes
    };

    std::size_t nparts_;
    std::size_t nloc_;
    hpxlite::threads::thread_pool* pool_;
    char const* loop_;
    std::vector<entry> entries_;
    std::vector<exec::node_ref> tails_;
};

}  // namespace op2::comm
