#pragma once

// Epoch-based dependency engine for the hpx_dataflow backend.
//
// The paper's contribution (Section IV) is that OP2 loops scheduled
// through futures/dataflow interleave automatically with no global
// barrier. PR 1's implementation tracked dependencies with one shared
// future chained per dat per loop: every issue allocated a when_all
// vector, a continuation shared-state and a shared_future copy per
// touched dat. This engine replaces all of that with an *intrusive*
// task graph:
//
//  * every dat carries one dep_record — a monotonically increasing
//    last-writer epoch plus the reader set of that epoch — instead of a
//    vector of shared futures;
//  * every issued loop is one refcounted dataflow_node (which embeds
//    the typed staged executor, see backend.hpp) and doubles as the
//    pool's intrusive task_node, so wiring a loop into the graph and
//    scheduling it allocates nothing beyond the node itself;
//  * readers of the same epoch run concurrently (they only edge on the
//    epoch's writer); a writer batch-waits on the previous epoch —
//    writer + reader count — through a single atomic pending counter,
//    the way the per-colour sweep batches block completion on a latch,
//    not through per-dependency future waits.
//
// Program order is issue order: records are updated under their own
// spinlock at issue time, exactly like the futures threaded through
// op_par_loop calls in Figures 9-11 of the paper.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <hpxlite/threads/task_node.hpp>
#include <hpxlite/threads/thread_pool.hpp>
#include <hpxlite/util/spinlock.hpp>
#include <op2/context.hpp>

namespace op2::exec {

class dataflow_node;

namespace detail {

/// Parking spot for external (non-pool) threads waiting on node
/// completion — fences, loop_handle::wait from the application thread.
/// Completions only touch the mutex when a waiter is registered (the
/// same sleeper-counted protocol as the pool's submit/wake_one), so the
/// steady-state cost of the hub is one relaxed-ish atomic load per
/// completed loop. Pool workers never park here: they help run tasks.
class completion_hub {
public:
    static completion_hub& get() {
        static completion_hub hub;
        return hub;
    }

    /// Called after a node published done(): wake parked waiters.
    void notify() {
        if (waiters_.load(std::memory_order_seq_cst) > 0) {
            {
                // Empty critical section: a waiter between its predicate
                // check and wait() holds the mutex, so this cannot
                // notify into the gap.
                std::lock_guard<std::mutex> lk(mtx_);
            }
            cv_.notify_all();
        }
    }

    /// Park until `done()` returns true. Spurious wakeups are absorbed
    /// by the predicate; every node completion notifies.
    template <typename Done>
    void wait(Done&& done) {
        std::unique_lock<std::mutex> lk(mtx_);
        waiters_.fetch_add(1, std::memory_order_seq_cst);
        cv_.wait(lk, std::forward<Done>(done));
        waiters_.fetch_sub(1, std::memory_order_relaxed);
    }

    /// Deadline-bounded wait for loop_handle::wait_for. Returns the
    /// final predicate value (false = timed out with work pending).
    template <typename Done>
    bool wait_until(std::chrono::steady_clock::time_point deadline,
                    Done&& done) {
        std::unique_lock<std::mutex> lk(mtx_);
        waiters_.fetch_add(1, std::memory_order_seq_cst);
        bool const ok = cv_.wait_until(lk, deadline,
                                       std::forward<Done>(done));
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        return ok;
    }

private:
    std::mutex mtx_;
    std::condition_variable cv_;
    std::atomic<std::size_t> waiters_{0};
};

}  // namespace detail

/// Intrusive refcounted handle to a dataflow node.
class node_ref {
public:
    node_ref() noexcept = default;
    /// Wrap `n`; bumps the count unless `adopt` transfers an existing
    /// reference (e.g. the creation reference of a new node).
    explicit node_ref(dataflow_node* n, bool adopt = false) noexcept;
    node_ref(node_ref const& o) noexcept;
    node_ref(node_ref&& o) noexcept : n_(o.n_) { o.n_ = nullptr; }
    node_ref& operator=(node_ref o) noexcept {
        std::swap(n_, o.n_);
        return *this;
    }
    ~node_ref();

    [[nodiscard]] dataflow_node* get() const noexcept { return n_; }
    dataflow_node* operator->() const noexcept { return n_; }
    dataflow_node& operator*() const noexcept { return *n_; }
    explicit operator bool() const noexcept { return n_ != nullptr; }
    void reset() noexcept { node_ref{}.swap(*this); }
    void swap(node_ref& o) noexcept { std::swap(n_, o.n_); }

private:
    dataflow_node* n_ = nullptr;
};

/// One issued loop: a node of the dependency DAG and, verbatim, the
/// intrusive task the pool queues once its dependencies resolve.
///
/// Lifecycle: created with one reference (the creator's, usually handed
/// to the returned loop_handle) and a pending count of one (the issue
/// guard, dropped by schedule()). Additional references are held by dat
/// dep_records (bounded: one writer + the current epoch's readers per
/// dat), by successor edges (released as soon as the successor is
/// notified) and by the pool queue while the node waits for a worker.
class dataflow_node : public hpxlite::threads::task_node {
public:
    dataflow_node() { action = &pool_action; }
    dataflow_node(dataflow_node const&) = delete;
    dataflow_node& operator=(dataflow_node const&) = delete;

    void add_ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }
    void release() noexcept {
        if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            delete this;
        }
    }

    [[nodiscard]] bool done() const noexcept {
        return done_.load(std::memory_order_acquire);
    }

    /// True once the node completed *with* a failure. Only meaningful
    /// after done() (error_ is written before the done_ store).
    [[nodiscard]] bool failed() const noexcept {
        return done() && error_ != nullptr;
    }

    /// Block until the loop has executed. Pool workers help run pending
    /// tasks — including this very node and its predecessors — so
    /// waiting never deadlocks, even on a single hardware thread.
    /// External threads help while there is stealable work and otherwise
    /// park on the completion hub (no spinning on an idle machine, same
    /// as the CV wait the future-based engine had).
    void wait() const {
        if (done()) {
            return;
        }
        auto& pool = *pool_;
        if (pool.on_worker_thread()) {
            while (!done()) {
                if (!pool.run_one()) {
                    std::this_thread::yield();
                }
            }
            return;
        }
        while (!done()) {
            if (!pool.run_one()) {
                detail::completion_hub::get().wait(
                    [this] { return done_seq_cst(); });
            }
        }
    }

    /// Bounded wait: like wait(), but gives up at `timeout`. Helping
    /// still happens while there is runnable work (a helper can run a
    /// long task past the deadline — the bound is best-effort, like any
    /// cooperative wait); once nothing is runnable the caller parks on
    /// the completion hub with the deadline. Returns done().
    [[nodiscard]] bool wait_for(std::chrono::nanoseconds timeout) const {
        if (done()) {
            return true;
        }
        auto const deadline = std::chrono::steady_clock::now() + timeout;
        auto& pool = *pool_;
        while (!done()) {
            if (!pool.run_one()) {
                if (std::chrono::steady_clock::now() >= deadline) {
                    return done();
                }
                if (pool.on_worker_thread()) {
                    // Workers never park on the hub (they must stay
                    // stealable); bounded yield-spin instead.
                    std::this_thread::yield();
                } else {
                    detail::completion_hub::get().wait_until(
                        deadline, [this] { return done_seq_cst(); });
                    if (std::chrono::steady_clock::now() >= deadline) {
                        return done();
                    }
                }
            }
        }
        return true;
    }

    /// wait(), then rethrow the loop's (or an inherited dependency's)
    /// failure, if any.
    void wait_and_rethrow() const {
        wait();
        if (error_) {
            std::rethrow_exception(error_);
        }
    }

    // -- diagnostics (stall watchdog / graph dumps) -------------------

    /// Stamp the node's graph-site identity: issuing loop name (a
    /// static string — loop names are string literals by convention),
    /// partition and colour. kJoin as partition marks a loop's join
    /// node. Written at issue, before publication, like the hint.
    static constexpr std::uint32_t kJoin = ~std::uint32_t{0};
    void set_site(char const* loop, std::size_t partition,
                  std::size_t color) noexcept {
        site_loop_ = loop;
        site_partition_ = static_cast<std::uint32_t>(partition);
        site_color_ = static_cast<std::uint32_t>(color);
        // Job tag: null under the default context (the pre-service
        // output); a service job's name otherwise. The context outlives
        // the node — the loop's dats hold it (dat_impl::ctx).
        site_job_ = current_context()->label();
    }
    [[nodiscard]] char const* site_loop() const noexcept {
        return site_loop_;
    }
    /// Owning job's name when the node was issued under a service
    /// context, null for the default context. Stamped by set_site.
    [[nodiscard]] char const* site_job() const noexcept {
        return site_job_;
    }
    /// Optional site *kind* tag ("halo-pack", "halo-exchange", ...):
    /// comm sub-nodes stamp it so a watchdog stall dump names a stuck
    /// halo wait instead of an anonymous node. Null (the default) marks
    /// an ordinary compute/join node. Static-string convention, like
    /// the loop name.
    void set_site_kind(char const* kind) noexcept { site_kind_ = kind; }
    [[nodiscard]] char const* site_kind() const noexcept {
        return site_kind_;
    }
    [[nodiscard]] std::uint32_t site_partition() const noexcept {
        return site_partition_;
    }
    [[nodiscard]] std::uint32_t site_color() const noexcept {
        return site_color_;
    }
    /// Affinity hint the node was issued with; size() (i.e. no worker)
    /// is reported as kJoin's ~0 pattern.
    [[nodiscard]] std::uint32_t worker_hint() const noexcept {
        return hint_;
    }

    // -- issue-side protocol (used by issue(), below) -----------------

    /// Add the edge pred -> this unless pred already completed (in which
    /// case only its failure, if any, is inherited). Self-edges are
    /// ignored.
    void depend_on(dataflow_node& pred) {
        if (&pred == this) {
            return;
        }
        std::lock_guard<hpxlite::util::spinlock> lk(pred.succ_mtx_);
        if (pred.done_.load(std::memory_order_acquire)) {
            if (pred.error_) {
                inherit_error(pred.error_);
            }
            return;
        }
        pred.succs_.emplace_back(this);
        pending_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Bind the execution pool. Must happen *before* the node is wired
    /// into any dep_record: publication makes the node reachable by
    /// concurrent fences, whose wait() dereferences pool_. (Visibility
    /// rides on the record spinlock the publisher and the fence both
    /// take.)
    void bind_pool(hpxlite::threads::thread_pool& pool) noexcept {
        pool_ = &pool;
    }

    /// Pin the node to a pool worker: once runnable it is submitted
    /// through the pool's affinity path (submit_to) instead of the
    /// issuer's own queue. Best-effort — stealing still rebalances.
    /// Must be set before the node is wired into any dep_record, like
    /// bind_pool.
    void set_worker_hint(std::size_t worker) noexcept {
        hint_ = static_cast<std::uint32_t>(worker);
    }

    /// Drop the issue guard: the node becomes runnable as soon as its
    /// last predecessor finishes (or immediately, if none are pending).
    void schedule() { notify_pred_done(); }

    /// Seed a failure at issue time, before the node is scheduled: the
    /// body is skipped and waiters/successors see `e`, exactly as if a
    /// predecessor had failed. The quarantine layer uses this to fail a
    /// loop that reads poisoned partitions *fast* — asynchronously, at
    /// the same reporting point (handle.get()) as every other failure.
    void seed_error(std::exception_ptr e) noexcept {
        inherit_error(std::move(e));
    }

protected:
    virtual ~dataflow_node() = default;

    /// The node's failure (own or inherited), readable from run_body /
    /// on_complete: predecessors are all complete and successors cannot
    /// write error_ once the node is executing, so no lock is needed
    /// there.
    [[nodiscard]] std::exception_ptr const& error() const noexcept {
        return error_;
    }

    /// The loop body (backend.hpp: the staged executor sweep). Runs on a
    /// pool worker; exceptions are captured and propagated to dependents
    /// and waiters.
    virtual void run_body() = 0;

    /// Invoked once, right before completion is published: the node will
    /// keep existing inside dat dep_records until its epoch is
    /// superseded, so implementations drop any resources that point back
    /// at the dats here (breaking the dat <-> node ownership cycle).
    virtual void on_complete() noexcept {}

private:
    void notify_pred_done() {
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            add_ref();  // the queue's reference, dropped by pool_action
            auto* n = static_cast<hpxlite::threads::task_node*>(this);
            if (hint_ != kNoHint) {
                pool_->submit_to(hint_, n);
            } else {
                pool_->submit(n);
            }
        }
    }

    void inherit_error(std::exception_ptr e) noexcept {
        std::lock_guard<hpxlite::util::spinlock> lk(succ_mtx_);
        if (!error_) {
            error_ = std::move(e);
        }
    }

    void complete() {
        std::vector<node_ref> succs;
        {
            std::lock_guard<hpxlite::util::spinlock> lk(succ_mtx_);
            // seq_cst: pairs with the hub waiter's registration (see
            // done_seq_cst) so notify() cannot read a stale zero waiter
            // count while this store is still buffered.
            done_.store(true, std::memory_order_seq_cst);
            succs.swap(succs_);
        }
        detail::completion_hub::get().notify();
        for (auto& s : succs) {
            if (error_) {
                s->inherit_error(error_);
            }
            s->notify_pred_done();
        }
    }

    /// Dekker-paired read of done_ for the completion-hub protocol: the
    /// waiter registers (seq_cst RMW on the hub's waiter count), then
    /// reads done_ seq_cst; the completer stores done_ seq_cst, then
    /// reads the waiter count seq_cst. The total order guarantees one
    /// side observes the other — no lost wakeup. Casual readers keep the
    /// cheaper acquire load in done().
    [[nodiscard]] bool done_seq_cst() const noexcept {
        return done_.load(std::memory_order_seq_cst);
    }

    static void pool_action(hpxlite::threads::task_node* n, bool run) {
        auto* self = static_cast<dataflow_node*>(n);
        if (run) {
            if (!self->error_) {  // inherited failure => skip the body
                try {
                    self->run_body();
                } catch (...) {
                    self->error_ = std::current_exception();
                }
            }
        } else if (!self->error_) {
            // Pool teardown with the loop still queued: never ran.
            self->error_ = std::make_exception_ptr(
                std::runtime_error("dataflow loop discarded at shutdown"));
        }
        self->on_complete();
        self->complete();
        self->release();  // the queue's reference
    }

    static constexpr std::uint32_t kNoHint = ~std::uint32_t{0};

    std::atomic<std::uint32_t> refs_{1};
    std::atomic<std::uint32_t> pending_{1};  // +1 issue guard
    std::uint32_t hint_ = kNoHint;  // affinity worker, written at issue
    // Graph-site identity for watchdog dumps, written at issue.
    char const* site_loop_ = nullptr;
    char const* site_kind_ = nullptr;  // non-null: comm sub-node kind
    char const* site_job_ = nullptr;   // non-null: service job's name
    std::uint32_t site_partition_ = 0;
    std::uint32_t site_color_ = 0;
    std::atomic<bool> done_{false};
    hpxlite::util::spinlock succ_mtx_;  // guards succs_ / error_ updates
    std::vector<node_ref> succs_;
    std::exception_ptr error_;
    hpxlite::threads::thread_pool* pool_ = nullptr;
};

inline node_ref::node_ref(dataflow_node* n, bool adopt) noexcept : n_(n) {
    if (n_ != nullptr && !adopt) {
        n_->add_ref();
    }
}
inline node_ref::node_ref(node_ref const& o) noexcept : n_(o.n_) {
    if (n_ != nullptr) {
        n_->add_ref();
    }
}
inline node_ref::~node_ref() {
    if (n_ != nullptr) {
        n_->release();
    }
}

/// One writer tracked by a dep_record: the node plus the colour tag it
/// was issued under (meaningful only while the record's same-loop write
/// burst is open — see dep_record).
struct dep_writer {
    node_ref node;
    std::uint32_t color = 0;
};

/// Per-dat dependency record. `epoch` increases by one per writing
/// *loop*; `writers` holds the node(s) that produce the current epoch
/// and `readers` the loops reading it. Invariant (same as PR 1's future
/// chains, minus the futures): a writer depends on the current writers
/// and every current reader (WAW + WAR), a reader depends on the
/// current writers only (RAW) — so readers of one epoch run
/// concurrently.
///
/// `writers` is plural because of the loop-local same-colour
/// non-conflict exemption: the sub-nodes of ONE partitioned loop write a
/// record as an open "burst" (`burst_loop` holds the loop's id while it
/// lasts). Partition plans are coloured globally, so two same-coloured
/// sub-nodes of one loop provably never mutate the same target element;
/// a burst member therefore skips the WAW edge to same-colour members
/// already in `writers` — that is what lets boundary-straddling INC
/// partitions of a single loop run concurrently — while still edging on
/// different-colour members (those may genuinely conflict) and on
/// `prev`, the epoch the burst displaced. `prev` stays alive until the
/// next loop's write closes the burst, so late-arriving members inherit
/// the displaced epoch's WAW/WAR (and error) edges exactly like the
/// first member did.
struct dep_record {
    hpxlite::util::spinlock mtx;
    std::uint64_t epoch = 0;
    std::uint64_t burst_loop = 0;  // open same-loop write burst (0 = none)
    std::vector<dep_writer> writers;
    std::vector<node_ref> readers;
    std::vector<node_ref> prev;  // displaced epoch, kept while burst open

    /// Snapshot for fences/tests: every node the record still tracks
    /// (current writers, the displaced epoch of an open burst, readers).
    void snapshot(std::vector<node_ref>& nodes) const {
        auto& self = const_cast<dep_record&>(*this);
        std::lock_guard<hpxlite::util::spinlock> lk(self.mtx);
        nodes.clear();
        nodes.reserve(self.writers.size() + self.prev.size() +
                      self.readers.size());
        for (auto const& w : self.writers) {
            nodes.push_back(w.node);
        }
        nodes.insert(nodes.end(), self.prev.begin(), self.prev.end());
        nodes.insert(nodes.end(), self.readers.begin(), self.readers.end());
    }

    /// Drop completed *failed* nodes from the record: the quarantine
    /// lift (dat::clear_quarantine). Failed history normally stays so
    /// later writers inherit the error; after an explicit lift, they
    /// must not. In-flight nodes are untouched — callers drain first.
    void prune_failed() {
        std::lock_guard<hpxlite::util::spinlock> lk(mtx);
        std::erase_if(writers, [](dep_writer const& w) {
            return w.node->done() && w.node->failed();
        });
        auto const dead = [](node_ref const& n) {
            return n->done() && n->failed();
        };
        std::erase_if(prev, dead);
        std::erase_if(readers, dead);
    }
};

// --- partition-granular quarantine ---------------------------------------

/// Why a byte range of a dat is poisoned: the sub-node that failed
/// while (potentially) writing it. Shared by every diagnostic derived
/// from the same failure.
struct poison_info {
    std::string loop;        // origin loop name
    std::string dat;         // written dat's name
    std::size_t partition = 0;  // failing sub-node's partition
    std::size_t color = 0;      // failing sub-node's colour
    std::exception_ptr origin;  // the original failure
};

/// One quarantined element range [lo, hi) of a dat's set. Spans are
/// *element*-granular, not record-granular, so a dependency-table
/// re-partition (any granularity change) carries them unmodified.
struct poison_span {
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::shared_ptr<poison_info const> info;
};

/// Thrown (asynchronously, through the issued node — or synchronously
/// by the seq/staged backends) when a loop reads a poisoned partition:
/// the structured fail-fast diagnostic naming the origin loop,
/// partition and colour, with the original exception reachable through
/// info().origin.
class quarantine_error : public std::runtime_error {
public:
    quarantine_error(std::string const& msg,
                     std::shared_ptr<poison_info const> info)
      : std::runtime_error(msg), info_(std::move(info)) {}

    [[nodiscard]] poison_info const& info() const noexcept {
        return *info_;
    }

private:
    std::shared_ptr<poison_info const> info_;
};

/// True when any dat of the *calling thread's context* holds a poison
/// span (relaxed; callers re-check under the dat's lock). Per-context:
/// one job's fault never makes another job's issue path scan — or
/// fail — which is the service layer's fault-isolation guarantee
/// (runtime_context::poison_spans).
[[nodiscard]] inline bool any_poisoned() noexcept {
    return current_context()->poison_spans.load(
               std::memory_order_relaxed) != 0;
}

/// Render an exception_ptr's message for diagnostics.
[[nodiscard]] inline std::string describe_exception(std::exception_ptr e) {
    if (!e) {
        return "(no exception)";
    }
    try {
        std::rethrow_exception(std::move(e));
    } catch (std::exception const& ex) {
        return ex.what();
    } catch (...) {
        return "(non-std exception)";
    }
}

/// Partition-granular dependency state of one dat: a table of
/// dep_records, one per partition of the dat's set, plus a dat-level
/// epoch counting issued writer *loops* (any granularity). Loops touch
/// only the records of the partitions their sub-nodes can reach (direct
/// args: the iteration partition itself; indirect args: the plan's
/// map-derived footprint), which is what lets independent partitions of
/// dependent loops overlap in the epoch graph.
///
/// The table is sized lazily to the granularity of the first loop that
/// touches the dat and re-partitioned when a loop arrives at a
/// different granularity. Re-partitioning drains the dat first (waits
/// for every tracked node — a per-dat fence) *and* waits out loops
/// mid-issue on the current table (the inflight pin below), so a
/// concurrent issuer can never wire nodes into an orphaned table.
/// Completed-but-failed nodes are carried into the new table so a later
/// writer still inherits their error through its WAR/WAW edges.
struct dep_state {
    hpxlite::util::spinlock mtx;  // guards count/recs (swap) and epoch
    std::uint64_t epoch = 0;      // writer loops issued against this dat
    std::size_t count = 0;        // partition granularity of `recs`
    std::size_t inflight = 0;     // loops pinned mid-issue on `recs`
    std::shared_ptr<dep_record[]> recs;
    /// Locality hook invoked (outside the state lock, with the new
    /// granularity) after a *re*-partition — a granularity change, not
    /// the initial table — so the memory layer can re-warm the dat's
    /// partitions on their owning workers (see memory::warm_partitions).
    /// Set once at dat creation, before any concurrent issue.
    std::function<void(std::size_t)> repartition_hook;

    /// Pin the record table at granularity `p` for the duration of one
    /// loop's issue (re-partitioning first if needed). The returned
    /// snapshot is owning *and* pinned: until the matching unpin(), no
    /// other thread can swap the table, so every record the caller
    /// wires into stays the table every later loop will consult.
    std::shared_ptr<dep_record[]> pin(std::size_t p) {
        for (;;) {
            std::vector<node_ref> pending;
            std::vector<node_ref> failed;
            {
                std::unique_lock<hpxlite::util::spinlock> lk(mtx);
                if (count == p && recs) {
                    ++inflight;
                    return recs;
                }
                if (inflight == 0) {
                    bool const repartition = count != 0;
                    for (std::size_t i = 0; i < count; ++i) {
                        dep_record& r = recs[i];
                        std::lock_guard<hpxlite::util::spinlock> rlk(r.mtx);
                        auto track = [&](node_ref const& n) {
                            if (!n) {
                                return;
                            }
                            if (!n->done()) {
                                pending.push_back(n);
                            } else if (n->failed()) {
                                failed.push_back(n);
                            }
                        };
                        for (auto const& w : r.writers) {
                            track(w.node);
                        }
                        for (auto const& p0 : r.prev) {
                            track(p0);
                        }
                        for (auto const& rd : r.readers) {
                            track(rd);
                        }
                    }
                    // Dedupe before seeding: a carried-failed node sits
                    // in *every* record's readers, so the per-record
                    // scan collects it `count` times. Seeding the
                    // duplicates back would multiply the carried set by
                    // the partition count on every re-partition —
                    // exponential once granularity changes repeat (the
                    // auto-tuner's exploration does exactly that).
                    auto dedupe = [](std::vector<node_ref>& v) {
                        std::sort(v.begin(), v.end(),
                                  [](node_ref const& a, node_ref const& b) {
                                      return a.get() < b.get();
                                  });
                        v.erase(std::unique(
                                    v.begin(), v.end(),
                                    [](node_ref const& a, node_ref const& b) {
                                        return a.get() == b.get();
                                    }),
                                v.end());
                    };
                    dedupe(failed);
                    if (pending.empty()) {
                        auto next = std::shared_ptr<dep_record[]>(
                            new dep_record[p]);
                        for (std::size_t i = 0; i < p; ++i) {
                            // Failed history rides along as (completed)
                            // readers: the next writer of any partition
                            // inherits the error, like the future
                            // chains rethrowing a dependency's
                            // exception.
                            next[i].readers = failed;
                        }
                        recs = std::move(next);
                        count = p;
                        ++inflight;
                        auto pinned = recs;
                        if (repartition && repartition_hook) {
                            lk.unlock();  // hook submits pool tasks
                            repartition_hook(p);
                        }
                        return pinned;
                    }
                }
            }
            // Drain outside the locks: waiting helps the pool, and the
            // nodes being waited for may need these very records. When
            // blocked on another loop's issue window instead (inflight
            // pin, microseconds), just yield and retry.
            for (auto& n : pending) {
                n->wait();
            }
            if (pending.empty()) {
                std::this_thread::yield();
            }
        }
    }

    /// Release a pin() once the loop's nodes are wired in.
    void unpin() {
        std::lock_guard<hpxlite::util::spinlock> lk(mtx);
        --inflight;
    }

    /// Owning snapshot of the current table (fences, tests).
    std::pair<std::shared_ptr<dep_record[]>, std::size_t> table() const {
        auto& self = const_cast<dep_state&>(*this);
        std::lock_guard<hpxlite::util::spinlock> lk(self.mtx);
        return {self.recs, self.count};
    }

    /// Count one issued writer loop (called once per written dat per
    /// loop, at issue time on the issuing thread).
    void bump_epoch() {
        std::lock_guard<hpxlite::util::spinlock> lk(mtx);
        ++epoch;
    }

    // --- quarantine --------------------------------------------------------

    /// Quarantined element spans of this dat (guarded by `mtx`).
    /// Element-granular, so granularity changes leave them valid; the
    /// issue path only consults them behind the any_poisoned() gate.
    std::vector<poison_span> poison;

    /// Where this dat's live poison spans are counted: the owning
    /// context's gate (runtime_context::poison_spans), stamped at dat
    /// creation before any concurrent issue. Null falls back to the
    /// default context — a bare dep_state (tests) behaves exactly like
    /// a pre-context one.
    std::atomic<std::size_t>* poison_gate = nullptr;

    [[nodiscard]] std::atomic<std::size_t>& gate() noexcept {
        return poison_gate != nullptr
                   ? *poison_gate
                   : runtime_context::default_context()->poison_spans;
    }

    /// Quarantine elements [lo, hi): later loops reading them fail fast
    /// with a diagnostic built from `info`. Called from a failing
    /// sub-node's completion (best-effort; allocation failure there is
    /// swallowed by the caller, never worse than pre-quarantine
    /// behaviour).
    void add_poison(std::size_t lo, std::size_t hi,
                    std::shared_ptr<poison_info const> info) {
        std::lock_guard<hpxlite::util::spinlock> lk(mtx);
        poison.push_back({lo, hi, std::move(info)});
        gate().fetch_add(1, std::memory_order_relaxed);
    }

    /// First poison span overlapping [lo, hi), or null when the range is
    /// clean.
    [[nodiscard]] std::shared_ptr<poison_info const>
    find_poison(std::size_t lo, std::size_t hi) {
        std::lock_guard<hpxlite::util::spinlock> lk(mtx);
        for (auto const& s : poison) {
            if (s.lo < hi && lo < s.hi) {
                return s.info;
            }
        }
        return nullptr;
    }

    /// Lift this dat's quarantine (a direct full overwrite heals, and
    /// dat::clear_quarantine drains + calls this).
    void clear_poison() {
        std::lock_guard<hpxlite::util::spinlock> lk(mtx);
        if (!poison.empty()) {
            gate().fetch_sub(poison.size(), std::memory_order_relaxed);
            poison.clear();
        }
    }

    [[nodiscard]] std::size_t poison_count() const {
        auto& self = const_cast<dep_state&>(*this);
        std::lock_guard<hpxlite::util::spinlock> lk(self.mtx);
        return self.poison.size();
    }

    /// Forget all dependency history *and* quarantine: the checkpoint
    /// rollback path, called after a full fence (no tracked node can be
    /// live). Spins out loops mid-issue on the current table first.
    void reset() {
        for (;;) {
            {
                std::lock_guard<hpxlite::util::spinlock> lk(mtx);
                if (inflight == 0) {
                    recs.reset();
                    count = 0;
                    if (!poison.empty()) {
                        gate().fetch_sub(poison.size(),
                                         std::memory_order_relaxed);
                        poison.clear();
                    }
                    return;
                }
            }
            std::this_thread::yield();
        }
    }

    ~dep_state() {
        if (!poison.empty()) {
            gate().fetch_sub(poison.size(), std::memory_order_relaxed);
        }
    }
};

/// RAII pin on one dat's record table for the span of a loop issue
/// (dep_state::pin / unpin).
class issue_pin {
public:
    issue_pin() noexcept = default;
    issue_pin(dep_state& s, std::size_t p) : s_(&s), recs_(s.pin(p)) {}
    issue_pin(issue_pin&& o) noexcept
      : s_(o.s_), recs_(std::move(o.recs_)) {
        o.s_ = nullptr;
    }
    issue_pin& operator=(issue_pin&& o) noexcept {
        if (this != &o) {
            release();
            s_ = o.s_;
            recs_ = std::move(o.recs_);
            o.s_ = nullptr;
        }
        return *this;
    }
    issue_pin(issue_pin const&) = delete;
    issue_pin& operator=(issue_pin const&) = delete;
    ~issue_pin() { release(); }

    [[nodiscard]] dep_record* records() const noexcept {
        return recs_.get();
    }

private:
    void release() noexcept {
        if (s_ != nullptr) {
            s_->unpin();
            s_ = nullptr;
        }
        recs_.reset();
    }

    dep_state* s_ = nullptr;
    std::shared_ptr<dep_record[]> recs_;
};

/// One (record, access) pair of a loop being issued. The backend merges
/// duplicate dats before issuing (write dominates), so each record
/// appears at most once per sub-node. `loop`/`color` carry the
/// same-colour exemption tag: nonzero `loop` marks a sub-node of a
/// partitioned loop issued with the exemption enabled, and `color` its
/// globally-consistent plan colour.
struct dep_request {
    dep_record* rec = nullptr;
    bool write = false;
    std::uint64_t loop = 0;
    std::uint32_t color = 0;
};

/// Wire `n` into the graph under each record's lock (issue order defines
/// program order), then drop the issue guard so it runs as soon as its
/// dependencies allow — possibly immediately, possibly never touching a
/// future or allocating anything.
inline void issue(dataflow_node& n, std::span<dep_request const> reqs,
                  hpxlite::threads::thread_pool& pool) {
    // The pool must be bound before the first record publishes the node:
    // a fence on another thread may pick the ref up and wait() on it
    // while this loop is still running.
    n.bind_pool(pool);
    for (auto const& rq : reqs) {
        dep_record& r = *rq.rec;
        std::lock_guard<hpxlite::util::spinlock> lk(r.mtx);
        if (rq.write) {
            if (rq.loop != 0 && r.burst_loop == rq.loop) {
                // Same-loop burst member: inherit the displaced epoch's
                // WAW/WAR edges, order after readers that slipped in
                // mid-burst (a concurrent issuer), and after
                // different-colour members — but NOT after same-colour
                // members, which the global colouring proves
                // conflict-free. This missing edge is the exemption.
                for (auto const& p : r.prev) {
                    n.depend_on(*p);
                }
                for (auto const& rd : r.readers) {
                    n.depend_on(*rd);
                }
                for (auto const& w : r.writers) {
                    if (w.color != rq.color) {
                        n.depend_on(*w.node);
                    }
                }
                r.writers.push_back({node_ref(&n), rq.color});
            } else {
                for (auto const& w : r.writers) {
                    n.depend_on(*w.node);  // WAW
                }
                for (auto const& rd : r.readers) {
                    n.depend_on(*rd);  // WAR
                }
                r.prev.clear();
                if (rq.loop != 0) {
                    // Opening a burst: keep the displaced epoch (its
                    // writers AND readers) alive, so later members
                    // inherit the same WAW/WAR edges and errors this
                    // opener just took.
                    r.prev.reserve(r.writers.size() + r.readers.size());
                    for (auto& w : r.writers) {
                        r.prev.push_back(std::move(w.node));
                    }
                    for (auto& rd : r.readers) {
                        r.prev.push_back(std::move(rd));
                    }
                }
                r.readers.clear();
                r.writers.clear();
                r.writers.push_back({node_ref(&n), rq.color});
                r.burst_loop = rq.loop;
                ++r.epoch;
            }
        } else {
            for (auto const& w : r.writers) {
                n.depend_on(*w.node);  // RAW
            }
            // Readers of a never-rewritten dat would otherwise pile up
            // for the life of the program (read-only dats like airfoil's
            // coordinates are read by every iteration): drop completed
            // readers while we hold the lock anyway. In-flight readers
            // stay (WAR correctness), and *failed* readers stay too — a
            // future writer must still inherit their error through its
            // WAR edge, exactly as the future chains rethrew it.
            std::erase_if(r.readers, [](node_ref const& rd) {
                return rd->done() && !rd->failed();
            });
            // Same hygiene for the write side: a dat written once by an
            // exempt loop and then only read would pin the burst's
            // writers and the displaced epoch (`prev`) for the rest of
            // the program. Completed healthy entries create no edges
            // anyway (depend_on is a no-op on done predecessors);
            // failed ones stay for error inheritance.
            std::erase_if(r.writers, [](dep_writer const& w) {
                return w.node->done() && !w.node->failed();
            });
            std::erase_if(r.prev, [](node_ref const& p) {
                return p->done() && !p->failed();
            });
            r.readers.emplace_back(&n);
        }
    }
    n.schedule();
}

// --- staging-chain registration (op2/comm halo chains) --------------------
//
// A halo chain is several nodes long (pack -> exchange -> unpack), but a
// record must see the whole chain as ONE reader or writer: registering
// the head and the tail in separate lock holds would let a concurrent
// issuer's writer slip between them and race the in-flight transfer.
// These helpers are issue()'s read/write branches generalised to a
// (head, tail) pair, wired under a single lock hold per record. Both
// nodes must have their pool bound (and any worker hint set) before the
// first call — registration publishes them to fences — and the caller
// schedules the chain only after every record is wired.

/// Read-staging registration: `head` takes RAW edges on the record's
/// current epoch (it snapshots the epoch's bytes), and `tail` is
/// published as a reader of that epoch — a later writer WAR-edges on
/// the tail, so the epoch's bytes stay frozen until the whole chain has
/// landed. Same reader/writer hygiene as issue()'s read branch.
inline void stage_read(dataflow_node& head, dataflow_node& tail,
                       dep_record& r) {
    std::lock_guard<hpxlite::util::spinlock> lk(r.mtx);
    std::erase_if(r.readers, [](node_ref const& rd) {
        return rd->done() && !rd->failed();
    });
    std::erase_if(r.writers, [](dep_writer const& w) {
        return w.node->done() && !w.node->failed();
    });
    std::erase_if(r.prev, [](node_ref const& p) {
        return p->done() && !p->failed();
    });
    for (auto const& w : r.writers) {
        head.depend_on(*w.node);  // RAW
    }
    for (auto const& p : r.prev) {
        head.depend_on(*p);  // open-burst displaced epoch
    }
    r.readers.emplace_back(&tail);
}

/// Write-staging (owner-combine) registration: `head` takes RAW edges
/// on every current writer — for an open same-loop burst that is every
/// INC sub-node, any colour, so all contributions have landed before
/// the head snapshots them — and `tail` *closes* the epoch as its new
/// sole writer (WAW + WAR), so later readers observe the combined epoch
/// only: owner-compute semantics for OP_INC over halos.
inline void stage_write(dataflow_node& head, dataflow_node& tail,
                        dep_record& r) {
    std::lock_guard<hpxlite::util::spinlock> lk(r.mtx);
    for (auto const& w : r.writers) {
        head.depend_on(*w.node);
        tail.depend_on(*w.node);  // WAW
    }
    for (auto const& p : r.prev) {
        head.depend_on(*p);
        tail.depend_on(*p);
    }
    for (auto const& rd : r.readers) {
        tail.depend_on(*rd);  // WAR
    }
    r.prev.clear();
    r.readers.clear();
    r.writers.clear();
    r.writers.push_back({node_ref(&tail), 0});
    r.burst_loop = 0;  // the combine closes any open burst
    ++r.epoch;
}

namespace detail {

/// Global gate for the backend's chain-fusion windows (backend.hpp):
/// nonzero while any thread holds a deferred loop. The flush hook is a
/// function pointer (registered on first defer) so this low-level
/// header never depends on the fusion machinery above it.
inline std::atomic<std::size_t> g_fusion_deferred{0};
inline std::atomic<void (*)()> g_fusion_flush_all{nullptr};

}  // namespace detail

/// Force every thread's deferred (fusion-window) loop into the graph.
/// Synchronisation points — fences, handle waits, checkpoint capture —
/// call this before snapshotting records: a deferred loop is in no dat
/// record yet, so it would otherwise be invisible to them. Costs one
/// relaxed load when no window is armed.
inline void fusion_flush_point() {
    if (detail::g_fusion_deferred.load(std::memory_order_acquire) != 0) {
        if (auto* flush =
                detail::g_fusion_flush_all.load(std::memory_order_acquire)) {
            flush();
        }
    }
}

}  // namespace op2::exec
