#pragma once

// Epoch checkpoint/rollback for fault-tolerant execution.
//
// A checkpoint snapshots the contents of a chosen dat set at a fence
// and can later restore them wholesale: rollback() re-establishes the
// captured bytes, forgets the dats' dependency history, and lifts their
// quarantine, so a program that caught a failed epoch (an injected
// fault, a throwing kernel) can re-issue the epoch's loops against
// known-good state. The airfoil driver's --checkpoint-every N /
// --retries K recovery demo is built on exactly this:
//
//   ckpt.capture({p_q, p_qold, p_adt, p_res});
//   try { issue epoch; handles.get(); }
//   catch (...) { op_fence_all(); ckpt.rollback(); retry; }
//
// Snapshot and restore copies are fanned per partition through the
// pool's affinity inboxes (memory::copy_partitions), so a partition's
// bytes move through the worker that owns its cache lines.

#include <cstddef>
#include <vector>

#include <op2/dat.hpp>
#include <op2/memory.hpp>

namespace op2::exec {

class checkpoint {
public:
    checkpoint() = default;
    checkpoint(checkpoint const&) = delete;
    checkpoint& operator=(checkpoint const&) = delete;
    checkpoint(checkpoint&&) = default;
    checkpoint& operator=(checkpoint&&) = default;

    /// Snapshot `dats`: fence each one (drain its in-flight loops),
    /// then copy its contents into checkpoint-owned aligned buffers.
    /// Capturing the same dat list again reuses the buffers (the
    /// steady-state epoch advance allocates nothing); a different list
    /// rebuilds them. Buffer allocation goes through the fault layer's
    /// alloc injection point, so a capture itself can be made to fail —
    /// the previous snapshot is discarded only after its replacement
    /// exists per dat (a failed capture leaves a mixed-age snapshot;
    /// callers should treat a capture failure as fatal for this
    /// checkpoint and re-capture).
    void capture(std::vector<op_dat> const& dats);

    /// Restore every captured dat: quiesce the graph (op_fence_all),
    /// forget the dats' dependency records *and* poison spans
    /// (dep_state::reset), then copy the snapshot bytes back. Throws
    /// std::logic_error when nothing was captured.
    void rollback();

    /// True once capture() succeeded at least once.
    [[nodiscard]] bool valid() const noexcept { return !entries_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept {
        return entries_.size();
    }

private:
    struct entry {
        op_dat dat;
        memory::aligned_buffer copy;
    };
    std::vector<entry> entries_;
};

}  // namespace op2::exec
