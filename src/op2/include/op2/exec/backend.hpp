#pragma once

// The unified executor backend layer: one templated entry point
// (run_loop) dispatching a loop onto the backend selected by
// loop_options::backend. All three backends share the plan (block
// colouring + staged gather tables) and the staged loop_executor — the
// backends differ only in *when* the sweep runs (inline, fork-join, or
// asynchronously out of the epoch dataflow graph) and in how blocks are
// distributed over workers.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <hpxlite/algorithms/for_loop.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/runtime.hpp>
#include <hpxlite/util/timing.hpp>
#include <op2/comm.hpp>
#include <op2/detail/executor.hpp>
#include <op2/exec/backend_kind.hpp>
#include <op2/exec/dataflow.hpp>
#include <op2/fault.hpp>
#include <op2/loop_options.hpp>
#include <op2/plan.hpp>
#include <op2/timing.hpp>
#include <op2/tune.hpp>

namespace op2::exec {

/// Completion handle of an issued loop. Synchronous backends return a
/// ready handle (no node); the dataflow backend returns a handle on the
/// loop's graph node. Copyable, cheap (one intrusive ref).
class loop_handle {
public:
    loop_handle() noexcept = default;
    explicit loop_handle(node_ref n) noexcept : node_(std::move(n)) {}

    /// True when the handle refers to an asynchronously issued loop.
    [[nodiscard]] bool valid() const noexcept {
        return static_cast<bool>(node_);
    }

    /// Note: a loop deferred in a fusion window (loop_options::fuse)
    /// reports not-ready until a flush point runs it; polling is_ready
    /// alone never triggers one (this accessor stays noexcept), the
    /// blocking waits below do.
    [[nodiscard]] bool is_ready() const noexcept {
        return !node_ || node_->done();
    }

    /// Block (cooperatively: helps the pool) until the loop completed.
    /// No-op for handles of synchronous backends. Flushes any pending
    /// fusion window first — the waited-on loop may still be deferred
    /// in one, and a deferred loop can only run once flushed.
    void wait() const {
        if (node_) {
            fusion_flush_point();
            node_->wait();
        }
    }

    /// wait(), then rethrow the loop's failure, if any.
    void get() const {
        if (node_) {
            fusion_flush_point();
            node_->wait_and_rethrow();
        }
    }

    /// Bounded wait: true when the loop completed within `timeout`
    /// (immediately true for the ready handles of synchronous
    /// backends). On false the graph is stalled or still running — the
    /// handle stays waitable, and exec::dump_graph names the pending
    /// sub-nodes.
    template <typename Rep, typename Period>
    [[nodiscard]] bool wait_for(
        std::chrono::duration<Rep, Period> timeout) const {
        if (node_) {
            fusion_flush_point();
        }
        return !node_ ||
               node_->wait_for(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       timeout));
    }

    /// The underlying graph node (empty for synchronous backends).
    /// The fusion layer uses this to chain a deferred loop's promise
    /// node onto the real completion node at flush time.
    [[nodiscard]] node_ref const& node() const noexcept { return node_; }

private:
    node_ref node_;
};

namespace detail {

// Guard for partitioned reduction scratch seeding and combining: the
// issuing context's combine lock (runtime_context::combine_mtx),
// captured into each loop group at issue. One lock across all loops
// *of one program*, not one per loop: two partitioned loops reducing
// into the same user variable can have their sub-nodes in flight
// concurrently (gbl args create no graph edges), and the variable's
// read-modify-write must not tear between them. Order under the lock
// is irrelevant to the result: OP_INC partials seed from zero and add,
// OP_MIN/OP_MAX combines are monotone folds, so any interleaving of
// seeds and combines produces the sequential value. Combines are rare
// (one per partition per loop) and short, so one spinlock per context
// costs nothing — and independent service jobs (which never share
// reduction variables) never contend on it.

// --- partition-granular quarantine (issue-side) ---------------------------

/// One dat element span a failing sub-node may have half-written:
/// registered at issue time, turned into a poison span if the node
/// completes with an error. Points at the dat's impl (alive as long as
/// the group/executor holds the arg) so the failure path can reach both
/// the dep_state and the dat's name without per-issue string copies.
struct quarantine_target {
    op2::detail::dat_impl const* dat = nullptr;
    std::size_t lo = 0;
    std::size_t hi = 0;
};

/// Issue-time quarantine gate shared by every backend. Two passes:
/// first fail fast when any dat the loop *consumes* (any access but
/// OP_WRITE — OP_RW and OP_INC read their targets) holds a poison
/// span, composing the structured diagnostic naming the origin loop,
/// partition and colour; then, for a clean loop, heal dats it fully
/// overwrites (direct OP_WRITE args), since no stale byte survives a
/// full overwrite. Behind the any_poisoned() gate the healthy-path
/// cost is one relaxed load.
template <typename Args>
[[nodiscard]] std::exception_ptr check_quarantine(Args const& args,
                                                  char const* name) {
    if (!any_poisoned()) {
        return nullptr;
    }
    for (op_arg const& a : args) {
        if (!a.dat.valid() || a.acc == op_access::OP_WRITE) {
            continue;
        }
        if (auto info =
                a.dat.internal().dep.find_poison(0, a.dat.set().size())) {
            std::string msg =
                "op2.quarantine: loop '" + std::string(name) +
                "' reads poisoned dat '" + a.dat.name() + "': partition " +
                std::to_string(info->partition) + " colour " +
                std::to_string(info->color) + " of loop '" + info->loop +
                "' failed: " + describe_exception(info->origin);
            return std::make_exception_ptr(
                quarantine_error(msg, std::move(info)));
        }
    }
    for (op_arg const& a : args) {
        if (a.dat.valid() && a.acc == op_access::OP_WRITE &&
            a.is_direct()) {
            a.dat.internal().dep.clear_poison();
        }
    }
    return nullptr;
}

/// Quarantine the written dats of a synchronously failed loop
/// (seq/staged backends: the kernel threw mid-sweep, so any written
/// range may be half-updated). Whole-dat spans — synchronous sweeps
/// have no partition attribution. Best-effort, called from a catch
/// block (std::current_exception() is the origin).
template <typename Args>
void poison_sync_failure(Args const& args, char const* name) noexcept {
    try {
        auto const origin = std::current_exception();
        for (op_arg const& a : args) {
            if (!a.dat.valid() || a.acc == op_access::OP_READ) {
                continue;
            }
            auto info = std::make_shared<poison_info>();
            info->loop = name;
            info->dat = a.dat.name();
            info->origin = origin;
            a.dat.internal().dep.add_poison(0, a.dat.set().size(),
                                            std::move(info));
        }
    } catch (...) {
        // Out of memory while reporting: the original error still
        // propagates, exactly the pre-quarantine behaviour.
    }
}

/// The plan-driven sweep every parallel backend shares: per colour, a
/// fork-join for_loop over the colour's blocks through the staged
/// executor, timed under the backend's name. The staged backend runs it
/// inline; the dataflow backend runs it from its graph node.
template <typename Kernel, std::size_t N>
void staged_sweep(op2::detail::loop_executor<Kernel, N>& ex,
                  op_plan const& plan, backend_kind kind, char const* name) {
    loop_options const& opts = ex.options();
    auto policy = hpxlite::execution::par.with(opts.chunk);
    if (opts.pool != nullptr) {
        policy = policy.on(*opts.pool);
    }
    hpxlite::util::stopwatch sw;
    ex.execute(plan, [&](std::span<std::size_t const> blocks) {
        hpxlite::parallel::for_loop(
            policy, std::size_t{0}, blocks.size(),
            [&](std::size_t k) { ex.run_block(plan, blocks[k]); });
    });
    op_timing_record(name, to_string(kind), sw.elapsed_s());
}

/// Graph node of one dataflow-issued loop at whole-set granularity
/// (loop_options::partitions == 1 — the differential oracle): embeds
/// the typed staged executor, so issuing a loop is exactly one
/// allocation (this node) — no futures, no when_all vectors, no
/// continuation shared states.
template <typename Kernel, std::size_t N>
class loop_node final : public dataflow_node {
public:
    loop_node(op_set set, std::array<op_arg, N> args, Kernel kernel,
              loop_options const& opts, char const* name)
      : ex_(std::move(set), std::move(args), std::move(kernel), opts),
        name_(name) {}

    [[nodiscard]] op2::detail::loop_executor<Kernel, N>& executor() {
        return ex_;
    }

    void bind_plan(op_plan const& p) noexcept { plan_ = &p; }

    /// Attach the tuner's measurement token (issue time). The default
    /// token is inactive, so untuned loops skip the report.
    void set_probe(tune::probe p) noexcept { probe_ = p; }

    /// Register a written dat span to quarantine should this node fail
    /// (issue time, before the node can run).
    void add_quarantine_target(quarantine_target t) {
        qtargets_.push_back(t);
    }

private:
    void run_body() override {
        // Deterministic injection point: an armed kernel=NAME@0.0 site
        // throws here, as if the loop's kernel had failed.
        fault::on_kernel(name_, 0, 0);
        hpxlite::util::stopwatch sw;
        staged_sweep(ex_, *plan_, backend_kind::hpx_dataflow, name_);
        // Whole-set granularity has no join to merge sub-node spans;
        // the sweep time *is* the loop's wall span.
        tune::report(probe_, sw.elapsed_s());
    }

    void on_complete() noexcept override {
        if (error()) {
            // Whatever this loop was going to write is now stale or
            // half-written: quarantine it (best-effort — an allocation
            // failure here leaves plain error propagation, the
            // pre-quarantine behaviour).
            try {
                for (auto const& t : qtargets_) {
                    auto info = std::make_shared<poison_info>();
                    info->loop = name_;
                    info->dat = t.dat->name;
                    info->origin = error();
                    t.dat->dep.add_poison(t.lo, t.hi, std::move(info));
                }
            } catch (...) {
            }
        }
        ex_.release_handles();
    }

    op2::detail::loop_executor<Kernel, N> ex_;
    op_plan const* plan_ = nullptr;
    char const* name_;
    tune::probe probe_{};
    std::vector<quarantine_target> qtargets_;
};

template <typename Kernel, std::size_t N>
class partitioned_loop;

/// Park a retired group in the cross-issue pool (defined with
/// group_pool below; forward-declared so partitioned_loop::release can
/// name it).
template <typename Kernel, std::size_t N>
void pool_put(partitioned_loop<Kernel, N>* g) noexcept;

/// Shared state of one partition-granular dataflow loop: one executor
/// (and one cached partition plan) per partition, each with its own
/// staged-table bindings and reduction scratch. Sub-nodes and the join
/// node share it through group_ref (an embedded intrusive count — no
/// shared_ptr control-block allocation per issue) and drop their
/// references in on_complete(), which is what breaks the dat -> record
/// -> node -> group -> dat cycle once the loop has run. The last drop
/// parks the group in the per-instantiation cross-issue pool
/// (loop_options::exec_pool), so a steady-state chain re-issues a loop
/// without reconstructing its executors or reallocating their staging
/// and reduction scratch.
template <typename Kernel, std::size_t N>
class partitioned_loop {
public:
    partitioned_loop(op_set const& set, std::array<op_arg, N> const& args,
                     Kernel const& kernel, loop_options const& opts,
                     char const* name, std::size_t nparts)
      : ctx_(current_context()), name_(name), pooled_(opts.exec_pool) {
        execs_.reserve(nparts);
        plans_.reserve(nparts);
        for (std::size_t p = 0; p < nparts; ++p) {
            execs_.emplace_back(set, args, kernel, opts);
        }
        colors_left_ =
            std::make_unique<std::atomic<std::size_t>[]>(nparts);
        color_cap_ = nparts;
        qtargets_.resize(nparts);
    }

    /// Re-arm a pool-recycled group for a new issue of the same call
    /// site. Grown capacity is retained everywhere it matters: the
    /// executors keep their staging/reduction scratch blocks (contents
    /// are re-seeded per run by prepare_scratch), the per-partition
    /// quarantine vectors keep their buffers, and the colour-countdown
    /// array only reallocates when the partition count grew.
    void reset(op_set const& set, std::array<op_arg, N> const& args,
               Kernel const& kernel, loop_options const& opts,
               char const* name, std::size_t nparts) {
        // Pooled groups cross issue sites, and under the service layer
        // cross jobs: re-capture the issuing context (combine lock,
        // kept alive for the nodes' lifetime).
        ctx_ = current_context();
        name_ = name;
        pooled_ = opts.exec_pool;
        probe_ = {};
        start_ns_.store(-1, std::memory_order_relaxed);
        plans_.clear();
        plans_.reserve(nparts);
        std::size_t const keep = std::min(execs_.size(), nparts);
        for (std::size_t p = 0; p < keep; ++p) {
            execs_[p].rebind(set, args, kernel, opts);
        }
        while (execs_.size() > nparts) {
            execs_.pop_back();
        }
        while (execs_.size() < nparts) {
            execs_.emplace_back(set, args, kernel, opts);
        }
        if (color_cap_ < nparts) {
            colors_left_ =
                std::make_unique<std::atomic<std::size_t>[]>(nparts);
            color_cap_ = nparts;
        }
        for (auto& q : qtargets_) {
            q.clear();
        }
        qtargets_.resize(nparts);
    }

    /// Intrusive reference count (see group_ref). The last release
    /// runs well after release_handles() — join and sub-nodes drop
    /// their references in on_complete — so a parked group holds no
    /// dat references.
    void add_ref() noexcept {
        refs_.fetch_add(1, std::memory_order_relaxed);
    }
    void release() noexcept {
        if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            if (pooled_) {
                pool_put(this);
            } else {
                delete this;
            }
        }
    }

    [[nodiscard]] std::size_t nparts() const noexcept {
        return execs_.size();
    }
    [[nodiscard]] op2::detail::loop_executor<Kernel, N>& executor(
        std::size_t p) {
        return execs_[p];
    }
    [[nodiscard]] op_plan const& plan(std::size_t p) const {
        return *plans_[p];
    }
    void bind_plan(op_plan const& pl) { plans_.push_back(&pl); }
    [[nodiscard]] char const* name() const noexcept { return name_; }

    /// Tuner measurement token (issue time; inactive by default). The
    /// join node reports the loop's wall span against it.
    void set_probe(tune::probe p) noexcept { probe_ = p; }
    [[nodiscard]] tune::probe probe() const noexcept { return probe_; }

    /// First sub-node to run stamps the loop's execution start; the
    /// join reads the span. This keeps the hpx_dataflow timing row a
    /// *wall* time (first block to last combine), comparable with the
    /// seq/staged rows and with the whole-set node's sweep time — not a
    /// sum of concurrent sub-node CPU times.
    void mark_start() noexcept {
        std::int64_t expected = -1;
        (void)start_ns_.compare_exchange_strong(expected, now_ns(),
                                                std::memory_order_relaxed);
    }
    [[nodiscard]] double wall_seconds() const noexcept {
        std::int64_t const s = start_ns_.load(std::memory_order_relaxed);
        return s < 0 ? 0.0 : static_cast<double>(now_ns() - s) * 1e-9;
    }

    /// Arm partition p's colour countdown (issue time).
    void init_colors(std::size_t p, std::size_t ncolors) noexcept {
        colors_left_[p].store(ncolors, std::memory_order_relaxed);
    }

    /// Count one finished colour of partition p; true for the last.
    [[nodiscard]] bool finish_color(std::size_t p) noexcept {
        return colors_left_[p].fetch_sub(1, std::memory_order_acq_rel) == 1;
    }

    /// Seed partition p's reduction scratch (the partition's colour-0
    /// sub-node). Under the context's combine lock: MIN/MAX partials
    /// *read* the user's variable, which another partition's — or
    /// another loop's — combine may be writing at that moment.
    void prepare_partition(std::size_t p) {
        std::lock_guard<hpxlite::util::spinlock> lk(ctx_->combine_mtx);
        execs_[p].prepare_scratch();
    }

    /// Fold partition p's reduction partials into the user's globals.
    /// Runs on the partition's last sub-node — with the sub-nodes, not
    /// after them, so a fence that drains the dat records also covers
    /// the reductions. The context's lock serialises the
    /// read-modify-write of the user's variable across partitions *and*
    /// across loops of the issuing program (see the combine-lock note
    /// above for why ordering doesn't matter).
    void combine_partition(std::size_t p) {
        std::lock_guard<hpxlite::util::spinlock> lk(ctx_->combine_mtx);
        execs_[p].combine();
    }

    void release_handles() noexcept {
        for (auto& ex : execs_) {
            ex.release_handles();
        }
    }

    /// Register a dat element span partition p's failure would taint.
    /// Issue-side only, and all of partition p's targets land before
    /// p's first sub-node is issued — the only writer racing a
    /// potential reader (poison_partition) is pushing to a *different*
    /// partition's inner vector of the pre-sized outer one.
    void add_quarantine_target(std::size_t p, quarantine_target t) {
        qtargets_[p].push_back(t);
    }

    /// Quarantine every span partition p could have half-written,
    /// attributed to (this loop, p, `color`) with `origin` chained into
    /// the diagnostic. Called from a failed sub-node's on_complete
    /// (noexcept there, so best-effort: an allocation failure leaves
    /// plain error propagation).
    void poison_partition(std::size_t p, std::size_t color,
                          std::exception_ptr origin) noexcept {
        try {
            for (auto const& t : qtargets_[p]) {
                auto info = std::make_shared<poison_info>();
                info->loop = name_;
                info->dat = t.dat->name;
                info->partition = p;
                info->color = color;
                info->origin = origin;
                t.dat->dep.add_poison(t.lo, t.hi, std::move(info));
            }
        } catch (...) {
        }
    }

private:
    [[nodiscard]] static std::int64_t now_ns() noexcept {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    template <typename K, std::size_t M>
    friend class group_pool;

    std::vector<op2::detail::loop_executor<Kernel, N>> execs_;
    std::vector<op_plan const*> plans_;
    std::unique_ptr<std::atomic<std::size_t>[]> colors_left_;
    std::size_t color_cap_ = 0;
    std::vector<std::vector<quarantine_target>> qtargets_;  // [partition]
    tune::probe probe_{};
    std::atomic<std::int64_t> start_ns_{-1};
    // Issuing context, captured at construction/reset: holds the
    // combine lock alive for the sub-nodes' lifetime even if the
    // owning job retires while the loop drains.
    std::shared_ptr<runtime_context> ctx_;
    char const* name_;
    std::atomic<std::size_t> refs_{0};
    partitioned_loop* pool_next_ = nullptr;  // free-list link while parked
    bool pooled_;
};

/// Cross-issue pool of retired partitioned-loop groups, one pool per
/// (kernel type, arity) template instantiation — i.e. per issue site,
/// which is exactly the population whose groups are interchangeable.
/// Mirrors the plan cache's shard discipline: a thread-local one-group
/// slot answers the common issue/retire cadence with no locking or
/// atomics at all, backed by spinlocked sharded free lists for the
/// cross-thread case (groups retire on whichever worker completes the
/// loop's last node, but are re-acquired on the issuing thread).
/// Parked groups hold no dat handles (released at join completion) and
/// stay reachable from the static shard heads for the process
/// lifetime, so the pool leaks nothing.
template <typename Kernel, std::size_t N>
class group_pool {
public:
    /// A parked group, or nullptr. Thread-local slot first, then the
    /// shards starting at this thread's own.
    [[nodiscard]] static partitioned_loop<Kernel, N>* take() noexcept {
        tls_cache& c = tls();
        if (c.g != nullptr) {
            return std::exchange(c.g, nullptr);
        }
        std::size_t const base = thread_shard();
        for (std::size_t i = 0; i < kShards; ++i) {
            shard& s = shards_[(base + i) % kShards];
            std::lock_guard<hpxlite::util::spinlock> lk(s.mtx);
            if (s.head != nullptr) {
                auto* g = s.head;
                s.head = g->pool_next_;
                g->pool_next_ = nullptr;
                return g;
            }
        }
        return nullptr;
    }

    static void put(partitioned_loop<Kernel, N>* g) noexcept {
        tls_cache& c = tls();
        if (c.g == nullptr) {
            c.g = g;
            return;
        }
        push_shared(g);
    }

private:
    struct shard {
        hpxlite::util::spinlock mtx;
        partitioned_loop<Kernel, N>* head = nullptr;
    };
    /// Thread-local one-group cache; re-parked into the shared shards
    /// at thread exit so nothing is stranded on short-lived threads.
    struct tls_cache {
        partitioned_loop<Kernel, N>* g = nullptr;
        ~tls_cache() {
            if (g != nullptr) {
                push_shared(g);
            }
        }
    };
    static constexpr std::size_t kShards = 8;

    static void push_shared(partitioned_loop<Kernel, N>* g) noexcept {
        shard& s = shards_[thread_shard()];
        std::lock_guard<hpxlite::util::spinlock> lk(s.mtx);
        g->pool_next_ = s.head;
        s.head = g;
    }
    [[nodiscard]] static std::size_t thread_shard() noexcept {
        static std::atomic<std::size_t> next{0};
        thread_local std::size_t const slot =
            next.fetch_add(1, std::memory_order_relaxed) % kShards;
        return slot;
    }
    [[nodiscard]] static tls_cache& tls() noexcept {
        thread_local tls_cache c;
        return c;
    }

    inline static shard shards_[kShards]{};
};

template <typename Kernel, std::size_t N>
void pool_put(partitioned_loop<Kernel, N>* g) noexcept {
    group_pool<Kernel, N>::put(g);
}

/// Intrusive smart reference to a partitioned_loop group. Replaces
/// shared_ptr so group ownership costs one embedded counter instead of
/// a control-block allocation per issue (and so the terminal release
/// can recycle into group_pool instead of deleting).
template <typename Kernel, std::size_t N>
class group_ref {
public:
    group_ref() noexcept = default;
    explicit group_ref(partitioned_loop<Kernel, N>* g) noexcept : g_(g) {
        if (g_ != nullptr) {
            g_->add_ref();
        }
    }
    group_ref(group_ref const& o) noexcept : g_(o.g_) {
        if (g_ != nullptr) {
            g_->add_ref();
        }
    }
    group_ref(group_ref&& o) noexcept
      : g_(std::exchange(o.g_, nullptr)) {}
    group_ref& operator=(group_ref o) noexcept {
        std::swap(g_, o.g_);
        return *this;
    }
    ~group_ref() { reset(); }

    void reset() noexcept {
        if (g_ != nullptr) {
            std::exchange(g_, nullptr)->release();
        }
    }
    [[nodiscard]] partitioned_loop<Kernel, N>* operator->() const noexcept {
        return g_;
    }
    explicit operator bool() const noexcept { return g_ != nullptr; }

private:
    partitioned_loop<Kernel, N>* g_ = nullptr;
};

/// One (partition, colour) sub-node of a partitioned loop: the unit of
/// both scheduling and dependency tracking. Its blocks run inline — the
/// sub-node *is* the parallelism grain, one per worker by default.
template <typename Kernel, std::size_t N>
class part_node final : public dataflow_node {
public:
    part_node(group_ref<Kernel, N> grp, std::size_t partition,
              std::size_t color, bool first) noexcept
      : grp_(std::move(grp)), partition_(partition), color_(color),
        first_(first) {}

private:
    void run_body() override {
        grp_->mark_start();
        // Deterministic injection point: an armed kernel=NAME@P.C site
        // throws here, as if this (partition, colour) kernel had failed.
        fault::on_kernel(grp_->name(), partition_, color_);
        auto& ex = grp_->executor(partition_);
        op_plan const& plan = grp_->plan(partition_);
        if (first_) {
            // The partition's first (lowest non-empty colour) sub-node
            // runs first — the issue path chains a partition's sub-nodes
            // in colour order — so it owns the run-time scratch
            // initialisation.
            grp_->prepare_partition(partition_);
        }
        ex.run_color(plan, color_);
        if (grp_->finish_color(partition_)) {
            grp_->combine_partition(partition_);
        }
    }

    void on_complete() noexcept override {
        if (error()) {
            // Own failure, inherited failure, or a shutdown discard:
            // either way the partition's writes never (fully) happened,
            // so its target spans are stale — quarantine them.
            grp_->poison_partition(partition_, color_, error());
        }
        grp_.reset();
    }

    group_ref<Kernel, N> grp_;
    std::size_t partition_;
    std::size_t color_;
    bool first_;
};

/// The loop's completion node: depends on every sub-node and is what
/// the returned loop_handle waits on; it also owns the timing record
/// and the final release of the group's dat handles.
template <typename Kernel, std::size_t N>
class join_node final : public dataflow_node {
public:
    explicit join_node(group_ref<Kernel, N> grp) noexcept
      : grp_(std::move(grp)) {}

private:
    void run_body() override {
        double const wall = grp_->wall_seconds();
        op_timing_record(grp_->name(), to_string(backend_kind::hpx_dataflow),
                         wall);
        // The tuner's measurement tap: the join is where the per-worker
        // sub-node spans have been merged into one wall time
        // (mark_start CAS / wall_seconds), so the report itself is two
        // lock-free atomic adds on the site's cell.
        tune::report(grp_->probe(), wall);
    }

    void on_complete() noexcept override {
        grp_->release_handles();
        grp_.reset();
    }

    group_ref<Kernel, N> grp_;
};

/// Whole-set issue (partitions == 1): one node per loop, one dep_request
/// per distinct dat — the PR 2 shape, kept verbatim as the differential
/// oracle for partition-granular execution.
template <typename Kernel, std::size_t N>
loop_handle issue_whole_set(loop_options const& opts, char const* name,
                            op_set set, std::array<op_arg, N> args,
                            Kernel kernel,
                            hpxlite::threads::thread_pool& pool,
                            tune::probe probe = {}) {
    auto* node = new loop_node<Kernel, N>(std::move(set), std::move(args),
                                          std::move(kernel), opts, name);
    node_ref ref(node, /*adopt=*/true);
    auto& ex = node->executor();
    ex.validate(name);  // throws before publication; ref cleans up
    node->set_site(name, 0, 0);
    node->set_probe(probe);
    node->bind_plan(plan_get(
        ex.set(), ex.args(),
        plan_desc{opts.part_size, opts.staged_gather}));

    // Quarantine: register the spans a failure would taint (whole dat —
    // a whole-set node has no partition attribution), and fail fast if
    // the loop consumes a poisoned dat. The failure is *seeded* into
    // the node, not thrown: the loop still enters the graph born-failed
    // and reports at handle.get(), the same point as every other
    // asynchronous failure.
    for (op_arg const& a : ex.args()) {
        if (a.dat.valid() && a.acc != op_access::OP_READ) {
            node->add_quarantine_target(
                {&a.dat.internal(), 0, a.dat.set().size()});
        }
    }
    if (std::exception_ptr qerr = check_quarantine(ex.args(), name)) {
        node->seed_error(std::move(qerr));
    }

    // One dep_request per distinct dat; write dominates, so a loop
    // touching a dat through several args never self-edges. Pins are
    // taken in canonical (address) order — concurrent issuers at mixed
    // granularities then never hold-and-wait on each other's pins — and
    // stay held until the wiring below completes.
    struct dat_ref {
        dep_state* state = nullptr;
        bool write = false;
    };
    std::array<dat_ref, N == 0 ? 1 : N> ents;
    std::array<issue_pin, N == 0 ? 1 : N> pins;
    std::array<dep_request, N == 0 ? 1 : N> reqs;
    std::size_t nreq = 0;
    for (op_arg const& a : ex.args()) {
        if (!a.dat.valid()) {
            continue;
        }
        dep_state& st = a.dat.internal().dep;
        bool const write = a.acc != op_access::OP_READ;
        bool merged = false;
        for (std::size_t i = 0; i < nreq; ++i) {
            if (ents[i].state == &st) {
                ents[i].write = ents[i].write || write;
                merged = true;
                break;
            }
        }
        if (!merged) {
            ents[nreq++] = {&st, write};
        }
    }
    std::sort(ents.begin(), ents.begin() + static_cast<std::ptrdiff_t>(nreq),
              [](dat_ref const& x, dat_ref const& y) {
                  return x.state < y.state;
              });
    for (std::size_t i = 0; i < nreq; ++i) {
        pins[i] = issue_pin(*ents[i].state, 1);
        reqs[i] = {&pins[i].records()[0], ents[i].write};
        if (ents[i].write) {
            ents[i].state->bump_epoch();
        }
    }
    issue(*node, std::span<dep_request const>{reqs.data(), nreq}, pool);
    return loop_handle(std::move(ref));
}

/// Monotone id handed to each partitioned-loop issue: the dependency
/// layer uses it to recognise sub-nodes of one loop (the same-colour
/// non-conflict exemption applies only within a loop). Shared across
/// every kernel instantiation, so ids never repeat between loops.
inline std::atomic<std::uint64_t> g_exemption_loop_seq{1};

/// Partition-granular issue: the loop becomes one sub-node per
/// (partition, colour) plus a join node. Each sub-node edges on exactly
/// the dat partitions it can reach — the iteration partition itself for
/// direct args, the plan's map-derived footprint for indirect ones — so
/// independent partitions of dependent loops, and independent colours
/// of different loops, overlap in the epoch graph. Sub-nodes are issued
/// in (partition, colour) order; conflicting sub-nodes always share at
/// least one dat-partition record (a conflict is a shared target
/// element, and the element's partition record orders its writers by
/// issue order), so program order is preserved wherever it matters.
///
/// Two per-loop refinements ride on that structure:
///  * placement (opts.placement == affinity): partition p's sub-nodes
///    carry the worker hint p % pool_size, so a partition's working set
///    keeps landing on the same worker across the loops of a chain;
///  * the same-colour non-conflict exemption (opts.color_exemption):
///    partition plans are coloured globally, so same-coloured sub-nodes
///    of THIS loop provably never mutate the same target element and
///    skip the conservative WAW record edges between each other —
///    boundary-straddling INC partitions of a single loop overlap. A
///    partition's own sub-nodes are still chained in colour order
///    (deterministic scratch prepare, single-threaded per-partition
///    executor), so the won concurrency is across partitions.
///
/// With nloc > 1 the partitions are grouped into logical localities
/// (op2/comm.hpp) and every indirect argument's halo regions travel
/// through pack -> exchange -> unpack/combine comm sub-nodes wired into
/// the same per-partition records: import chains are issued *before*
/// the compute sub-nodes (a halo-reading sub-node edges on its regions'
/// unpack nodes; interior sub-nodes never do), export chains *after*
/// them (the export RAW-edges on the loop's own INC sub-nodes and the
/// combine closes the written partitions' epochs — owner-compute).
/// nloc <= 1 leaves this function bit-for-bit the shape above.
template <typename Kernel, std::size_t N>
loop_handle issue_partitioned(loop_options const& opts, char const* name,
                              op_set set, std::array<op_arg, N> args,
                              Kernel kernel,
                              hpxlite::threads::thread_pool& pool,
                              std::size_t nparts, std::size_t nloc = 1,
                              tune::probe probe = {}) {
    // Acquire the group from the cross-issue pool when possible: a
    // steady-state chain then re-issues each loop with zero executor
    // construction and zero scratch reallocation (the staging and
    // reduction buffers retained in the recycled executors are
    // re-seeded per run, never trusted).
    partitioned_loop<Kernel, N>* graw =
        opts.exec_pool ? group_pool<Kernel, N>::take() : nullptr;
    if (graw != nullptr) {
        graw->reset(set, args, kernel, opts, name, nparts);
    } else {
        graw = new partitioned_loop<Kernel, N>(set, args, kernel, opts,
                                               name, nparts);
    }
    group_ref<Kernel, N> grp(graw);
    grp->set_probe(probe);
    try {
        grp->executor(0).validate(name);
    } catch (...) {
        // The group may park back in the pool on unwind; drop its dat
        // handles first so a parked group never extends dat lifetimes.
        grp->release_handles();
        throw;
    }

    // Resolve every partition plan (and bind the executors) up front, so
    // nothing below the first sub-node issue can throw. The colour
    // countdown counts *live* (non-empty) colours only: global colouring
    // can leave a partition plan with sparse colour classes, and empty
    // ones get no sub-node.
    for (std::size_t p = 0; p < nparts; ++p) {
        op_plan const& plan = plan_get(
            set, grp->executor(0).args(),
            plan_desc{opts.part_size, opts.staged_gather, nparts, p});
        grp->bind_plan(plan);
        grp->executor(p).setup(plan);
        std::size_t live = 0;
        for (std::size_t c = 0; c < plan.ncolors; ++c) {
            if (!plan.blocks_of_color(c).empty()) {
                ++live;
            }
        }
        grp->init_colors(p, live);
    }

    // Distinct dats of the loop, with their record tables pinned at
    // this granularity (until every sub-node is wired) and the
    // dat-level epoch bumped once per writer. Pins are taken in
    // canonical (address) order so concurrent issuers at mixed
    // granularities never hold-and-wait on each other's pins.
    struct dat_entry {
        dep_state* state = nullptr;
        bool write = false;
        issue_pin pin;
    };
    std::array<dat_entry, N == 0 ? 1 : N> dats;
    std::array<std::size_t, N == 0 ? 1 : N> arg_dat{};  // arg -> dats index
    std::size_t ndats = 0;
    {
        std::size_t j = 0;
        for (op_arg const& a : grp->executor(0).args()) {
            if (!a.dat.valid()) {
                arg_dat[j++] = static_cast<std::size_t>(-1);
                continue;
            }
            dep_state& st = a.dat.internal().dep;
            std::size_t i = 0;
            while (i < ndats && dats[i].state != &st) {
                ++i;
            }
            if (i == ndats) {
                dats[i].state = &st;
                ++ndats;
            }
            dats[i].write = dats[i].write || a.acc != op_access::OP_READ;
            ++j;
        }
    }
    std::sort(dats.begin(), dats.begin() + static_cast<std::ptrdiff_t>(ndats),
              [](dat_entry const& x, dat_entry const& y) {
                  return x.state < y.state;
              });
    for (std::size_t i = 0; i < ndats; ++i) {
        dats[i].pin = issue_pin(*dats[i].state, nparts);
        if (dats[i].write) {
            dats[i].state->bump_epoch();
        }
    }
    {
        // Re-derive the arg -> entry mapping against the sorted order.
        std::size_t j = 0;
        for (op_arg const& a : grp->executor(0).args()) {
            if (!a.dat.valid()) {
                arg_dat[j++] = static_cast<std::size_t>(-1);
                continue;
            }
            dep_state& st = a.dat.internal().dep;
            std::size_t i = 0;
            while (dats[i].state != &st) {
                ++i;
            }
            arg_dat[j++] = i;
        }
    }

    // Halo import chains enter the graph before any compute sub-node:
    // their packs read the previous epoch (RAW through stage_read), and
    // the per-region unpack nodes are what halo-reading sub-nodes edge
    // on below. Pins are held, so the records the chains wire into are
    // the records the sub-nodes wire into.
    comm::loop_halos halos(nparts, nloc, pool, name);
    if (halos.active()) {
        std::size_t j = 0;
        for (op_arg const& a : grp->executor(0).args()) {
            std::size_t const i = arg_dat[j++];
            if (i == static_cast<std::size_t>(-1) || !a.is_indirect()) {
                continue;
            }
            if (a.acc == op_access::OP_READ || a.acc == op_access::OP_RW) {
                halos.add_import(a.dat, a.map, dats[i].pin.records());
            }
        }
    }

    auto* join = new join_node<Kernel, N>(grp);
    node_ref jref(join, /*adopt=*/true);
    join->bind_pool(pool);
    join->set_site(name, dataflow_node::kJoin, 0);

    // Quarantine gate: a loop consuming a poisoned dat is issued
    // *born-failed* — every sub-node carries the diagnostic, skips its
    // body, and the join reports it at handle.get(), the same point as
    // every other asynchronous failure. (The sub-nodes still enter the
    // graph, so dependents inherit the error and the written spans are
    // quarantined in turn.)
    std::exception_ptr const qerr =
        check_quarantine(grp->executor(0).args(), name);
    auto const iter_part = set.partition(nparts);

    bool const affinity = opts.placement == placement_kind::affinity;
    std::uint64_t const loop_tag =
        opts.color_exemption
            ? g_exemption_loop_seq.fetch_add(1, std::memory_order_relaxed)
            : 0;

    // Reused across issues (and across the (partition, colour) loop
    // below): request counts are small and issue() consumes the span
    // synchronously, so one thread-local buffer per thread suffices and
    // the per-issue allocation disappears.
    static thread_local std::vector<dep_request> reqs;
    for (std::size_t p = 0; p < nparts; ++p) {
        op_plan const& plan = grp->plan(p);

        // Partition p's quarantine targets: the dat element spans a
        // failure of any of p's sub-nodes may have half-written —
        // direct args taint the iteration partition's own span,
        // indirect ones the spans of the footprint's dat partitions.
        // Registered before p's first sub-node is issued (a sub-node
        // can fail the instant it is wired).
        {
            std::size_t j = 0;
            for (op_arg const& a : grp->executor(0).args()) {
                std::size_t const i = arg_dat[j++];
                if (i == static_cast<std::size_t>(-1) ||
                    a.acc == op_access::OP_READ) {
                    continue;
                }
                auto const* impl = &a.dat.internal();
                if (a.is_direct()) {
                    grp->add_quarantine_target(
                        p, {impl, iter_part->begin(p), iter_part->end(p)});
                } else if (plan_footprint const* fp =
                               plan.find_footprint(a.map.id(), a.idx)) {
                    auto const dp = a.dat.set().partition(nparts);
                    for (std::uint32_t q : fp->parts) {
                        grp->add_quarantine_target(
                            p, {impl, dp->begin(q), dp->end(q)});
                    }
                } else {
                    grp->add_quarantine_target(
                        p, {impl, 0, a.dat.set().size()});
                }
            }
        }

        node_ref chain_prev;
        for (std::size_t c = 0; c < plan.ncolors; ++c) {
            if (plan.blocks_of_color(c).empty()) {
                continue;  // sparse global colour class: nothing to run
            }
            auto* sub =
                new part_node<Kernel, N>(grp, p, c, /*first=*/!chain_prev);
            node_ref sref(sub, /*adopt=*/true);
            sub->set_site(name, p, c);
            if (qerr) {
                sub->seed_error(qerr);
            }
            join->depend_on(*sub);
            if (affinity) {
                sub->set_worker_hint(p % pool.size());
            }
            if (chain_prev) {
                // Chain the partition's own sub-nodes in colour order:
                // global colouring no longer guarantees that a
                // partition's colours conflict pairwise, and the
                // per-partition executor (scratch prepare, per-block
                // reduction partials) expects one sub-node at a time.
                sub->depend_on(*chain_prev);
            }

            reqs.clear();
            // reqs has thread-local storage, so the lambda names it
            // directly (non-automatic variables cannot be captured).
            auto add = [loop_tag, c](dep_record* rec, bool write) {
                for (auto& r : reqs) {
                    if (r.rec == rec) {
                        r.write = r.write || write;
                        return;
                    }
                }
                reqs.push_back({rec, write, loop_tag,
                                static_cast<std::uint32_t>(c)});
            };
            std::size_t j = 0;
            for (op_arg const& a : grp->executor(0).args()) {
                std::size_t const i = arg_dat[j++];
                if (i == static_cast<std::size_t>(-1)) {
                    continue;
                }
                bool const write = a.acc != op_access::OP_READ;
                if (a.is_direct()) {
                    add(&dats[i].pin.records()[p], write);
                } else if (plan_footprint const* fp =
                               plan.find_footprint(a.map.id(), a.idx)) {
                    for (std::uint32_t q : fp->parts) {
                        add(&dats[i].pin.records()[q], write);
                    }
                } else {
                    // No footprint (should not happen): conservatively
                    // edge on every partition of the dat.
                    for (std::size_t q = 0; q < nparts; ++q) {
                        add(&dats[i].pin.records()[q], write);
                    }
                }
            }
            if (halos.active()) {
                // Halo-reading sub-node: wait for the landed imports of
                // exactly the regions this partition's edges reach.
                // Interior sub-nodes (no cross-locality edge) take no
                // comm dependency — that is the overlap property.
                std::size_t j2 = 0;
                for (op_arg const& a : grp->executor(0).args()) {
                    std::size_t const i = arg_dat[j2++];
                    if (i == static_cast<std::size_t>(-1) ||
                        !a.is_indirect()) {
                        continue;
                    }
                    if (a.acc == op_access::OP_READ ||
                        a.acc == op_access::OP_RW) {
                        halos.depend_imports(*sub, a.dat, a.map, p);
                    }
                }
            }
            issue(*sub, std::span<dep_request const>{reqs.data(),
                                                     reqs.size()},
                  pool);
            chain_prev = std::move(sref);
        }
    }
    if (halos.active()) {
        // Export chains enter after every compute sub-node: their packs
        // RAW-edge on this loop's own INC sub-nodes (all colours — the
        // contributions must have landed) and the owner-side combine
        // closes the written partitions' epochs, so later readers order
        // after the combine: owner-compute semantics for OP_INC halos.
        std::size_t j = 0;
        for (op_arg const& a : grp->executor(0).args()) {
            std::size_t const i = arg_dat[j++];
            if (i == static_cast<std::size_t>(-1) || !a.is_indirect()) {
                continue;
            }
            if (a.acc != op_access::OP_READ) {
                halos.add_export(a.dat, a.map, dats[i].pin.records());
            }
        }
        // The join covers the exchanges: handle waits and fences drain
        // in-flight halos exactly like compute.
        for (auto const& t : halos.tails()) {
            join->depend_on(*t);
        }
    }
    join->schedule();
    return loop_handle(std::move(jref));
}

// --- chain fusion (loop_options::fuse) ------------------------------------
//
// Two adjacent hpx_dataflow loops over the same iteration set can often
// run as ONE staged pass: per (partition, colour) sub-node, loop A's
// blocks of the colour run first, then loop B's — one graph node, one
// dependency-wiring pass, one scheduling round-trip for two kernels,
// and B's gathers run while A's working set is still cache-hot. Issuing
// with opts.fuse opens a one-loop *fusion window* on the issuing
// thread: the loop is deferred (its handle wraps a promise node) until
// the next issue either fuses with it, or any flush point — a
// non-fusing issue, a handle wait, a fence — forces it into the graph
// solo. Legality is proven from issue-time metadata and cached plans
// (see fusion_compatible and the colour check in fuse_or_defer), which
// is what keeps fused execution bitwise-identical to unfused.

/// Type-erased constituent of a (potential) fused pass. One virtual
/// hop per (partition, colour, member) — noise against the kernel
/// sweep it wraps — in exchange for a non-template window/group layer
/// that can pair loops of different kernel types and arities.
class fused_member {
public:
    virtual ~fused_member() = default;
    [[nodiscard]] virtual char const* name() const noexcept = 0;
    [[nodiscard]] virtual op_set const& iter_set() const noexcept = 0;
    [[nodiscard]] virtual loop_options const& options() const noexcept = 0;
    [[nodiscard]] virtual std::span<op_arg const> args() const noexcept = 0;
    virtual void validate() = 0;
    /// Bind one executor per partition against the fused pass's
    /// *union* plans (legal only after the colour-compatibility proof).
    virtual void bind(std::vector<op_plan const*> const& plans) = 0;
    virtual void prepare(std::size_t p) = 0;  // caller holds the combine lock
    virtual void run_color(std::size_t p, std::size_t c) = 0;
    virtual void combine(std::size_t p) = 0;  // caller holds the combine lock
    virtual void release_handles() noexcept = 0;
    /// Issue this member alone through the normal backend path (the
    /// window flushed without a fusion partner).
    virtual loop_handle issue_solo(hpxlite::threads::thread_pool& pool,
                                   std::size_t nparts) = 0;
};

template <typename Kernel, std::size_t N>
class fused_member_impl final : public fused_member {
public:
    fused_member_impl(loop_options const& opts, char const* name, op_set set,
                      std::array<op_arg, N> args, Kernel kernel,
                      std::size_t nparts)
      : set_(std::move(set)), args_(std::move(args)),
        kernel_(std::move(kernel)), opts_(opts), name_(name) {
        execs_.reserve(nparts);
        // One executor up front (validation); the rest only if the
        // pass actually fuses (bind) — a solo flush never needs them.
        execs_.emplace_back(set_, args_, kernel_, opts_);
    }

    [[nodiscard]] char const* name() const noexcept override {
        return name_;
    }
    [[nodiscard]] op_set const& iter_set() const noexcept override {
        return set_;
    }
    [[nodiscard]] loop_options const& options() const noexcept override {
        return opts_;
    }
    [[nodiscard]] std::span<op_arg const> args() const noexcept override {
        return {args_.data(), args_.size()};
    }
    void validate() override { execs_[0].validate(name_); }
    void bind(std::vector<op_plan const*> const& plans) override {
        while (execs_.size() < plans.size()) {
            execs_.emplace_back(set_, args_, kernel_, opts_);
        }
        for (std::size_t p = 0; p < plans.size(); ++p) {
            execs_[p].setup(*plans[p]);
        }
        plans_ = plans;
    }
    void prepare(std::size_t p) override { execs_[p].prepare_scratch(); }
    void run_color(std::size_t p, std::size_t c) override {
        execs_[p].run_color(*plans_[p], c);
    }
    void combine(std::size_t p) override { execs_[p].combine(); }
    void release_handles() noexcept override {
        for (auto& ex : execs_) {
            ex.release_handles();
        }
    }
    loop_handle issue_solo(hpxlite::threads::thread_pool& pool,
                           std::size_t nparts) override {
        if (nparts <= 1) {
            return issue_whole_set<Kernel, N>(opts_, name_, set_, args_,
                                              kernel_, pool);
        }
        return issue_partitioned<Kernel, N>(opts_, name_, set_, args_,
                                            kernel_, pool, nparts);
    }

private:
    op_set set_;
    std::array<op_arg, N> args_;
    Kernel kernel_;
    loop_options opts_;
    char const* name_;
    std::vector<op2::detail::loop_executor<Kernel, N>> execs_;
    std::vector<op_plan const*> plans_;
};

/// Shared state of one fused pass: both constituents bound to the
/// union plans, plus the same colour-countdown / quarantine / timing
/// bookkeeping as partitioned_loop. Fused groups are rare enough (one
/// per fused pair) that plain shared_ptr management is fine — they do
/// not go through the executor pool.
class fused_loop {
public:
    fused_loop(std::unique_ptr<fused_member> a,
               std::unique_ptr<fused_member> b,
               std::vector<op_plan const*> plans, std::size_t nparts)
      : a_(std::move(a)), b_(std::move(b)), plans_(std::move(plans)),
        fused_name_(std::string(a_->name()) + "+" + b_->name()) {
        a_->bind(plans_);
        b_->bind(plans_);
        colors_left_ =
            std::make_unique<std::atomic<std::size_t>[]>(nparts);
        qtargets_.resize(nparts);
    }

    [[nodiscard]] char const* name() const noexcept {
        return fused_name_.c_str();
    }
    [[nodiscard]] char const* a_name() const noexcept { return a_->name(); }
    [[nodiscard]] char const* b_name() const noexcept { return b_->name(); }
    [[nodiscard]] std::span<op_arg const> a_args() const noexcept {
        return a_->args();
    }
    [[nodiscard]] std::span<op_arg const> b_args() const noexcept {
        return b_->args();
    }
    [[nodiscard]] op_plan const& plan(std::size_t p) const {
        return *plans_[p];
    }

    void mark_start() noexcept {
        std::int64_t expected = -1;
        (void)start_ns_.compare_exchange_strong(expected, now_ns(),
                                                std::memory_order_relaxed);
    }
    [[nodiscard]] double wall_seconds() const noexcept {
        std::int64_t const s = start_ns_.load(std::memory_order_relaxed);
        return s < 0 ? 0.0 : static_cast<double>(now_ns() - s) * 1e-9;
    }

    void init_colors(std::size_t p, std::size_t ncolors) noexcept {
        colors_left_[p].store(ncolors, std::memory_order_relaxed);
    }
    [[nodiscard]] bool finish_color(std::size_t p) noexcept {
        return colors_left_[p].fetch_sub(1, std::memory_order_acq_rel) == 1;
    }

    void prepare_partition(std::size_t p) {
        std::lock_guard<hpxlite::util::spinlock> lk(ctx_->combine_mtx);
        a_->prepare(p);
        b_->prepare(p);
    }
    /// The fused sub-node body: A's blocks of the colour, then B's.
    /// Same blocks, same order as the two solo passes (the colour
    /// proof guarantees it), so B's direct reads of A's direct writes
    /// land after A wrote them, element for element.
    void run_color(std::size_t p, std::size_t c) {
        a_->run_color(p, c);
        b_->run_color(p, c);
    }
    void combine_partition(std::size_t p) {
        std::lock_guard<hpxlite::util::spinlock> lk(ctx_->combine_mtx);
        a_->combine(p);
        b_->combine(p);
    }
    void release_handles() noexcept {
        a_->release_handles();
        b_->release_handles();
    }

    void add_quarantine_target(std::size_t p, quarantine_target t) {
        qtargets_[p].push_back(t);
    }
    /// A failed fused sub-node taints the written spans of BOTH
    /// constituents (qtargets_ holds the union): either kernel may
    /// have half-run when the node died, and A completing "its" part
    /// is worthless once B's poisoning rolls the pass back anyway.
    void poison_partition(std::size_t p, std::size_t color,
                          std::exception_ptr origin) noexcept {
        try {
            for (auto const& t : qtargets_[p]) {
                auto info = std::make_shared<poison_info>();
                info->loop = fused_name_;
                info->dat = t.dat->name;
                info->partition = p;
                info->color = color;
                info->origin = origin;
                t.dat->dep.add_poison(t.lo, t.hi, std::move(info));
            }
        } catch (...) {
        }
    }

private:
    [[nodiscard]] static std::int64_t now_ns() noexcept {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    std::unique_ptr<fused_member> a_;
    std::unique_ptr<fused_member> b_;
    std::vector<op_plan const*> plans_;
    std::unique_ptr<std::atomic<std::size_t>[]> colors_left_;
    std::vector<std::vector<quarantine_target>> qtargets_;  // [partition]
    std::atomic<std::int64_t> start_ns_{-1};
    // Issuing context (fusion windows are per-thread, so both members
    // were issued under it): owns the combine lock the pass uses.
    std::shared_ptr<runtime_context> ctx_ = current_context();
    std::string fused_name_;
};

/// One (partition, colour) sub-node of a fused pass. Mirrors part_node;
/// the one semantic addition is the double injection point — a fault
/// site armed on EITHER constituent's kernel name fires here, and the
/// resulting poison covers both loops' written spans.
class fused_part_node final : public dataflow_node {
public:
    fused_part_node(std::shared_ptr<fused_loop> grp, std::size_t partition,
                    std::size_t color, bool first) noexcept
      : grp_(std::move(grp)), partition_(partition), color_(color),
        first_(first) {}

private:
    void run_body() override {
        grp_->mark_start();
        fault::on_kernel(grp_->a_name(), partition_, color_);
        fault::on_kernel(grp_->b_name(), partition_, color_);
        if (first_) {
            grp_->prepare_partition(partition_);
        }
        grp_->run_color(partition_, color_);
        if (grp_->finish_color(partition_)) {
            grp_->combine_partition(partition_);
        }
    }

    void on_complete() noexcept override {
        if (error()) {
            grp_->poison_partition(partition_, color_, error());
        }
        grp_.reset();
    }

    std::shared_ptr<fused_loop> grp_;
    std::size_t partition_;
    std::size_t color_;
    bool first_;
};

class fused_join_node final : public dataflow_node {
public:
    explicit fused_join_node(std::shared_ptr<fused_loop> grp) noexcept
      : grp_(std::move(grp)) {}

private:
    void run_body() override {
        op_timing_record(grp_->name(), to_string(backend_kind::hpx_dataflow),
                         grp_->wall_seconds());
    }

    void on_complete() noexcept override {
        grp_->release_handles();
        grp_.reset();
    }

    std::shared_ptr<fused_loop> grp_;
};

/// Placeholder completion node handed out for a *deferred* loop: its
/// loop_handle exists before the loop has entered the graph. At flush
/// time the promise is chained onto the real completion node (fused
/// join or solo issue) and scheduled, inheriting that node's error —
/// handle.get() then reports failures exactly as for a directly issued
/// loop.
class promise_node final : public dataflow_node {
    void run_body() override {}
};

/// A loop parked in a fusion window, with everything needed to issue
/// it later (fused or solo).
struct deferred_issue {
    std::unique_ptr<fused_member> loop;
    hpxlite::threads::thread_pool* pool = nullptr;
    std::size_t nparts = 1;
    node_ref promise;
};

/// One issuing thread's fusion window: at most one deferred loop
/// awaiting a partner. The spinlock serialises the owner thread
/// against cross-thread flushes (fences flush every window).
struct fusion_window {
    hpxlite::util::spinlock mtx;
    std::unique_ptr<deferred_issue> pending;
};

inline hpxlite::util::spinlock g_fusion_windows_mtx;
inline std::vector<fusion_window*>& fusion_windows() {
    static std::vector<fusion_window*> v;
    return v;
}

/// Issue a deferred loop solo and resolve its promise. On an issue
/// failure the promise is failed (waiters must not hang) and the error
/// still propagates to the flushing caller.
inline void flush_solo(std::unique_ptr<deferred_issue> d) {
    loop_handle h;
    try {
        h = d->loop->issue_solo(*d->pool, d->nparts);
    } catch (...) {
        d->promise->seed_error(std::current_exception());
        d->promise->schedule();
        throw;
    }
    if (h.node()) {
        d->promise->depend_on(*h.node());
    }
    d->promise->schedule();
}

inline void flush_window(fusion_window& w) {
    std::unique_ptr<deferred_issue> d;
    {
        std::lock_guard<hpxlite::util::spinlock> lk(w.mtx);
        d = std::move(w.pending);
    }
    if (!d) {
        return;
    }
    g_fusion_deferred.fetch_sub(1, std::memory_order_release);
    flush_solo(std::move(d));
}

/// Global flush (installed as exec::detail::g_fusion_flush_all):
/// fences and handle waits must force EVERY thread's deferred loop
/// into the graph, not just the calling thread's. The pending loops
/// are *popped* under the registry lock (so an exiting thread's
/// window — erased by its registration destructor, below — cannot
/// vanish mid-walk) but *issued* after it is released: an issue can
/// drain a dat's records, and a draining thread helps the pool, so it
/// may execute a task that itself reaches for a fusion window — with
/// the registry lock still held that task would spin on a lock its
/// own stack transitively owns.
inline void flush_all_fusion_windows() {
    std::vector<std::unique_ptr<deferred_issue>> popped;
    {
        std::lock_guard<hpxlite::util::spinlock> lk(g_fusion_windows_mtx);
        for (fusion_window* w : fusion_windows()) {
            std::lock_guard<hpxlite::util::spinlock> wlk(w->mtx);
            if (w->pending) {
                popped.push_back(std::move(w->pending));
                g_fusion_deferred.fetch_sub(1, std::memory_order_release);
            }
        }
    }
    // Every loop is flushed even if one throws (flush_solo fails the
    // thrower's promise before rethrowing, so nobody hangs); the first
    // error propagates to the fencing caller, like a solo flush's.
    std::exception_ptr first;
    for (auto& d : popped) {
        try {
            flush_solo(std::move(d));
        } catch (...) {
            if (!first) {
                first = std::current_exception();
            }
        }
    }
    if (first) {
        std::rethrow_exception(first);
    }
}

inline fusion_window& tls_fusion_window() {
    struct registration {
        fusion_window w;
        registration() {
            std::lock_guard<hpxlite::util::spinlock> lk(
                g_fusion_windows_mtx);
            fusion_windows().push_back(&w);
        }
        ~registration() {
            // A loop still deferred at thread exit is flushed into the
            // graph rather than dropped (best-effort: past the point
            // of rethrowing to anyone).
            try {
                flush_window(w);
            } catch (...) {
            }
            std::lock_guard<hpxlite::util::spinlock> lk(
                g_fusion_windows_mtx);
            std::erase(fusion_windows(), &w);
        }
    };
    thread_local registration r;
    return r.w;
}

/// Chain-fusion legality, provable from issue-time metadata plus
/// already-cached plans:
///  (1) same iteration set and identical execution shape (pool,
///      partition count, block size, staged gather, placement) — the
///      fused pass runs one shape;
///  (2) every dat through which the two loops are *ordered* (written
///      by one, touched by the other) is accessed only directly
///      (OP_ID) by both loops: within a fused (partition, colour)
///      sub-node, A's blocks of the colour run before B's same blocks
///      over the same element range, so B's direct accesses of A's
///      direct writes land after A wrote them, element for element. An
///      indirect access to a conflict dat could cross colour classes
///      and observe pre-A values — not fusable;
///  (3) per-partition colour compatibility with the union plan
///      (plan_colors_equal, checked by the caller once the union plans
///      resolve): each constituent must execute under exactly its solo
///      colouring, or its indirect INC accumulation order — and hence
///      its bitwise result — would change.
/// This function checks (1) and (2).
inline bool fusion_compatible(deferred_issue const& d,
                              fused_member const& b, loop_options const& ob,
                              hpxlite::threads::thread_pool& pool,
                              std::size_t nparts) {
    fused_member const& a = *d.loop;
    loop_options const& oa = a.options();
    if (!(a.iter_set() == b.iter_set()) || d.pool != &pool ||
        d.nparts != nparts) {
        return false;
    }
    if (oa.part_size != ob.part_size || !oa.staged_gather ||
        !ob.staged_gather || oa.placement != ob.placement) {
        return false;
    }
    auto ordered_indirect = [](std::span<op_arg const> xs,
                               std::span<op_arg const> ys) {
        for (op_arg const& x : xs) {
            if (!x.dat.valid() || x.acc == op_access::OP_READ) {
                continue;
            }
            for (op_arg const& y : ys) {
                if (y.dat.valid() && y.dat == x.dat &&
                    !(x.is_direct() && y.is_direct())) {
                    return true;
                }
            }
        }
        return false;
    };
    return !ordered_indirect(a.args(), b.args()) &&
           !ordered_indirect(b.args(), a.args());
}

/// Wire and issue one fused pass (legality already proven). The shape
/// is issue_partitioned's — distinct-dat pins in canonical order, one
/// sub-node per live (partition, colour) edging on exactly the dat
/// partitions it reaches through the UNION plan's footprints, colour
/// chaining per partition, one join — over the concatenated argument
/// lists of both constituents. The deferred constituent's promise node
/// is chained onto the fused join, so both loops' handles complete
/// (and fail) together.
inline loop_handle issue_fused(std::unique_ptr<fused_member> a,
                               std::unique_ptr<fused_member> b,
                               node_ref a_promise,
                               std::vector<op_plan const*> uplans,
                               hpxlite::threads::thread_pool& pool,
                               std::size_t nparts) {
    loop_options const oa = a->options();
    loop_options const ob = b->options();
    op_set const set = a->iter_set();
    auto grp = std::make_shared<fused_loop>(std::move(a), std::move(b),
                                            std::move(uplans), nparts);
    for (std::size_t p = 0; p < nparts; ++p) {
        op_plan const& plan = grp->plan(p);
        std::size_t live = 0;
        for (std::size_t c = 0; c < plan.ncolors; ++c) {
            if (!plan.blocks_of_color(c).empty()) {
                ++live;
            }
        }
        grp->init_colors(p, live);
    }

    // Combined argument list; same distinct-dat / pin / epoch protocol
    // as issue_partitioned, over both constituents at once (a dat both
    // loops touch yields ONE pin and, per sub-node, one merged
    // request — which is precisely how fusion removes redundant graph
    // edges).
    std::span<op_arg const> const aargs = grp->a_args();
    std::span<op_arg const> const bargs = grp->b_args();
    std::vector<op_arg const*> all;
    all.reserve(aargs.size() + bargs.size());
    for (op_arg const& x : aargs) {
        all.push_back(&x);
    }
    for (op_arg const& x : bargs) {
        all.push_back(&x);
    }

    struct dat_entry {
        dep_state* state = nullptr;
        bool write = false;
        issue_pin pin;
    };
    std::vector<dat_entry> dats;
    std::vector<std::size_t> arg_dat(all.size(),
                                     static_cast<std::size_t>(-1));
    for (op_arg const* x : all) {
        if (!x->dat.valid()) {
            continue;
        }
        dep_state& st = x->dat.internal().dep;
        std::size_t i = 0;
        while (i < dats.size() && dats[i].state != &st) {
            ++i;
        }
        if (i == dats.size()) {
            dats.emplace_back();
            dats[i].state = &st;
        }
        dats[i].write = dats[i].write || x->acc != op_access::OP_READ;
    }
    std::sort(dats.begin(), dats.end(),
              [](dat_entry const& x, dat_entry const& y) {
                  return x.state < y.state;
              });
    for (auto& e : dats) {
        e.pin = issue_pin(*e.state, nparts);
        if (e.write) {
            e.state->bump_epoch();
        }
    }
    for (std::size_t j = 0; j < all.size(); ++j) {
        if (!all[j]->dat.valid()) {
            continue;
        }
        dep_state& st = all[j]->dat.internal().dep;
        std::size_t i = 0;
        while (dats[i].state != &st) {
            ++i;
        }
        arg_dat[j] = i;
    }

    auto* join = new fused_join_node(grp);
    node_ref jref(join, /*adopt=*/true);
    join->bind_pool(pool);
    join->set_site(grp->name(), dataflow_node::kJoin, 0);

    std::exception_ptr qerr = check_quarantine(aargs, grp->a_name());
    if (!qerr) {
        qerr = check_quarantine(bargs, grp->b_name());
    }
    auto const iter_part = set.partition(nparts);
    bool const affinity = oa.placement == placement_kind::affinity;
    // The same-colour exemption stays sound for the union: the union
    // plan's colouring proves non-conflict over BOTH loops' indirect
    // args at once. Honour an opt-out from either constituent.
    std::uint64_t const loop_tag =
        oa.color_exemption && ob.color_exemption
            ? g_exemption_loop_seq.fetch_add(1, std::memory_order_relaxed)
            : 0;

    static thread_local std::vector<dep_request> reqs;
    for (std::size_t p = 0; p < nparts; ++p) {
        op_plan const& plan = grp->plan(p);
        for (std::size_t j = 0; j < all.size(); ++j) {
            op_arg const& x = *all[j];
            if (arg_dat[j] == static_cast<std::size_t>(-1) ||
                x.acc == op_access::OP_READ) {
                continue;
            }
            auto const* impl = &x.dat.internal();
            if (x.is_direct()) {
                grp->add_quarantine_target(
                    p, {impl, iter_part->begin(p), iter_part->end(p)});
            } else if (plan_footprint const* fp =
                           plan.find_footprint(x.map.id(), x.idx)) {
                auto const dp = x.dat.set().partition(nparts);
                for (std::uint32_t q : fp->parts) {
                    grp->add_quarantine_target(
                        p, {impl, dp->begin(q), dp->end(q)});
                }
            } else {
                grp->add_quarantine_target(p,
                                           {impl, 0, x.dat.set().size()});
            }
        }

        node_ref chain_prev;
        for (std::size_t c = 0; c < plan.ncolors; ++c) {
            if (plan.blocks_of_color(c).empty()) {
                continue;
            }
            auto* sub =
                new fused_part_node(grp, p, c, /*first=*/!chain_prev);
            node_ref sref(sub, /*adopt=*/true);
            sub->set_site(grp->name(), p, c);
            if (qerr) {
                sub->seed_error(qerr);
            }
            join->depend_on(*sub);
            if (affinity) {
                sub->set_worker_hint(p % pool.size());
            }
            if (chain_prev) {
                sub->depend_on(*chain_prev);
            }

            reqs.clear();
            auto add = [loop_tag, c](dep_record* rec, bool write) {
                for (auto& r : reqs) {
                    if (r.rec == rec) {
                        r.write = r.write || write;
                        return;
                    }
                }
                reqs.push_back({rec, write, loop_tag,
                                static_cast<std::uint32_t>(c)});
            };
            for (std::size_t j = 0; j < all.size(); ++j) {
                op_arg const& x = *all[j];
                std::size_t const i = arg_dat[j];
                if (i == static_cast<std::size_t>(-1)) {
                    continue;
                }
                bool const write = x.acc != op_access::OP_READ;
                if (x.is_direct()) {
                    add(&dats[i].pin.records()[p], write);
                } else if (plan_footprint const* fp =
                               plan.find_footprint(x.map.id(), x.idx)) {
                    for (std::uint32_t q : fp->parts) {
                        add(&dats[i].pin.records()[q], write);
                    }
                } else {
                    for (std::size_t q = 0; q < nparts; ++q) {
                        add(&dats[i].pin.records()[q], write);
                    }
                }
            }
            issue(*sub,
                  std::span<dep_request const>{reqs.data(), reqs.size()},
                  pool);
            chain_prev = std::move(sref);
        }
    }
    join->schedule();
    // Resolve the deferred constituent's handle against the fused join.
    a_promise->depend_on(*join);
    a_promise->schedule();
    return loop_handle(std::move(jref));
}

/// The opts.fuse issue path: fuse with the window's pending loop when
/// legal, otherwise flush it solo (it issued first — program order)
/// and park the new loop in the window.
template <typename Kernel, std::size_t N>
loop_handle fuse_or_defer(loop_options const& opts, char const* name,
                          op_set set, std::array<op_arg, N> args,
                          Kernel kernel, hpxlite::threads::thread_pool& pool,
                          std::size_t nparts) {
    auto member = std::make_unique<fused_member_impl<Kernel, N>>(
        opts, name, std::move(set), std::move(args), std::move(kernel),
        nparts);
    member->validate();  // throws at the call site, like every backend

    fusion_window& w = tls_fusion_window();
    std::unique_ptr<deferred_issue> prev;
    {
        std::lock_guard<hpxlite::util::spinlock> lk(w.mtx);
        prev = std::move(w.pending);
    }
    if (prev) {
        g_fusion_deferred.fetch_sub(1, std::memory_order_release);
        if (fusion_compatible(*prev, *member, opts, pool, nparts)) {
            // Legality step (3): resolve union + solo plans (cached)
            // and require colour compatibility on every partition.
            op_set const& iset = member->iter_set();
            auto const pa = prev->loop->args();
            auto const pb = member->args();
            std::vector<op_arg> uargs;
            uargs.reserve(pa.size() + pb.size());
            uargs.insert(uargs.end(), pa.begin(), pa.end());
            uargs.insert(uargs.end(), pb.begin(), pb.end());
            std::vector<op_plan const*> uplans(nparts);
            bool colors_ok = true;
            for (std::size_t p = 0; p < nparts && colors_ok; ++p) {
                plan_desc const desc{opts.part_size, true, nparts, p};
                op_plan const& up = plan_get(iset, uargs, desc);
                colors_ok = plan_colors_equal(up, plan_get(iset, pa, desc)) &&
                            plan_colors_equal(up, plan_get(iset, pb, desc));
                uplans[p] = &up;
            }
            if (colors_ok) {
                node_ref apromise = std::move(prev->promise);
                return issue_fused(std::move(prev->loop), std::move(member),
                                   std::move(apromise), std::move(uplans),
                                   pool, nparts);
            }
        }
        flush_solo(std::move(prev));
    }

    auto d = std::make_unique<deferred_issue>();
    auto* pn = new promise_node();
    node_ref pref(pn, /*adopt=*/true);
    pn->bind_pool(pool);
    pn->set_site(name, dataflow_node::kJoin, 0);
    d->loop = std::move(member);
    d->pool = &pool;
    d->nparts = nparts;
    d->promise = pref;
    {
        std::lock_guard<hpxlite::util::spinlock> lk(w.mtx);
        w.pending = std::move(d);
    }
    g_fusion_deferred.fetch_add(1, std::memory_order_release);
    g_fusion_flush_all.store(&flush_all_fusion_windows,
                             std::memory_order_release);
    return loop_handle(std::move(pref));
}

}  // namespace detail

/// Issue `kernel` over `set` on the backend selected by opts.backend.
///
///  * seq: plain element loop on the calling thread; returns ready.
///  * staged: plan-driven fork-join sweep (colour by colour, implicit
///    barrier at the end — the stock-OP2 OpenMP shape); returns ready.
///  * hpx_dataflow: the loop is *issued*, not executed — it enters the
///    epoch graph at partition granularity (loop_options::partitions
///    sub-ranges of the set, one sub-node per (partition, colour), one
///    per pool worker by default) and runs as its per-partition
///    dependencies resolve; independent partitions of dependent loops
///    overlap, and there is no global barrier. partitions = 1 keeps the
///    whole-set single-node shape. Reduction results (op_arg_gbl) are
///    valid only once the returned handle is ready.
template <typename Kernel, typename... Args>
loop_handle run_loop(loop_options const& opts, char const* name, op_set set,
                     Kernel kernel, Args... args) {
    constexpr std::size_t n = sizeof...(Args);

    current_context()->loops_issued.fetch_add(1, std::memory_order_relaxed);

    // Program order: a loop parked in a fusion window must enter the
    // graph before any later loop that will not itself join the window
    // (the fusing hpx path below handles its own window instead).
    if (opts.backend != backend_kind::hpx_dataflow || !opts.fuse) {
        fusion_flush_point();
    }

    switch (opts.backend) {
        case backend_kind::seq: {
            op2::detail::loop_executor<Kernel, n> ex(
                std::move(set), std::array<op_arg, n>{std::move(args)...},
                std::move(kernel), opts);
            ex.validate(name);
            // Synchronous backends fail fast at the call site: reading
            // a poisoned dat throws the quarantine diagnostic here.
            if (auto qerr = detail::check_quarantine(ex.args(), name)) {
                std::rethrow_exception(qerr);
            }
            hpxlite::util::stopwatch sw;
            try {
                fault::on_kernel(name, 0, 0);
                ex.run_sequential();
            } catch (...) {
                detail::poison_sync_failure(ex.args(), name);
                throw;
            }
            op_timing_record(name, to_string(backend_kind::seq),
                             sw.elapsed_s());
            return {};
        }

        case backend_kind::staged: {
            op2::detail::loop_executor<Kernel, n> ex(
                std::move(set), std::array<op_arg, n>{std::move(args)...},
                std::move(kernel), opts);
            ex.validate(name);
            if (auto qerr = detail::check_quarantine(ex.args(), name)) {
                std::rethrow_exception(qerr);
            }
            op_plan const& plan = plan_get(
                ex.set(), ex.args(),
                plan_desc{opts.part_size, opts.staged_gather});
            try {
                fault::on_kernel(name, 0, 0);
                detail::staged_sweep(ex, plan, backend_kind::staged, name);
            } catch (...) {
                detail::poison_sync_failure(ex.args(), name);
                throw;
            }
            return {};
        }

        case backend_kind::hpx_dataflow: {
            auto& pool =
                opts.pool != nullptr ? *opts.pool : hpxlite::get_pool();
            std::array<op_arg, n> argv{std::move(args)...};
            // Tuner consult: an explicit op2::auto_tune opts this loop
            // in; OP2HPX_AUTOTUNE re-routes every *defaulted* loop
            // (explicit partition counts stay pinned — they are the
            // differential oracles). The resolved count and placement
            // flow through the unchanged issue paths below, so a tuned
            // issue is bit-for-bit an ordinary issue of that
            // configuration plus one measurement token.
            loop_options eff = opts;
            tune::probe probe{};
            if (opts.partitions == auto_tune ||
                (opts.partitions == 0 && tune::autotune_default())) {
                auto d = tune::choose(name, set.size(), pool.size());
                eff.partitions = d.chosen.partitions;
                eff.placement = d.chosen.placement;
                probe = d.token;
                if (!d.prewarm.empty()) {
                    // First consult of this site: warm the ladder's
                    // candidate plans so exploration never measures a
                    // cold plan build (plans are cached per context).
                    plan_prewarm(set, argv, eff.part_size,
                                 eff.staged_gather, d.prewarm);
                }
            }
            std::size_t const nparts =
                eff.partitions != 0 ? eff.partitions : pool.size();
            if (eff.fuse) {
                // Fusion takes precedence over localities: a fused pass
                // spans two loops' footprints, which the halo
                // classifier does not model, so a fusing issue runs
                // unsharded (loop_options::localities documents this).
                // A fused pass spans two loops, so its wall span is
                // unattributable to either site — the probe is dropped
                // and the tuner's unmeasured candidates keep their
                // psim prior.
                return detail::fuse_or_defer<Kernel, n>(
                    eff, name, std::move(set), std::move(argv),
                    std::move(kernel), pool, nparts);
            }
            std::size_t const nloc =
                comm::effective_localities(eff.localities, nparts);
            if (nparts <= 1) {
                return detail::issue_whole_set<Kernel, n>(
                    eff, name, std::move(set), std::move(argv),
                    std::move(kernel), pool, probe);
            }
            return detail::issue_partitioned<Kernel, n>(
                eff, name, std::move(set), std::move(argv),
                std::move(kernel), pool, nparts, nloc, probe);
        }
    }
    return {};
}

}  // namespace op2::exec
