#pragma once

// The unified executor backend layer: one templated entry point
// (run_loop) dispatching a loop onto the backend selected by
// loop_options::backend. All three backends share the plan (block
// colouring + staged gather tables) and the staged loop_executor — the
// backends differ only in *when* the sweep runs (inline, fork-join, or
// asynchronously out of the epoch dataflow graph) and in how blocks are
// distributed over workers.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include <hpxlite/algorithms/for_loop.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/runtime.hpp>
#include <hpxlite/util/timing.hpp>
#include <op2/detail/executor.hpp>
#include <op2/exec/backend_kind.hpp>
#include <op2/exec/dataflow.hpp>
#include <op2/fault.hpp>
#include <op2/loop_options.hpp>
#include <op2/plan.hpp>
#include <op2/timing.hpp>

namespace op2::exec {

/// Completion handle of an issued loop. Synchronous backends return a
/// ready handle (no node); the dataflow backend returns a handle on the
/// loop's graph node. Copyable, cheap (one intrusive ref).
class loop_handle {
public:
    loop_handle() noexcept = default;
    explicit loop_handle(node_ref n) noexcept : node_(std::move(n)) {}

    /// True when the handle refers to an asynchronously issued loop.
    [[nodiscard]] bool valid() const noexcept {
        return static_cast<bool>(node_);
    }

    [[nodiscard]] bool is_ready() const noexcept {
        return !node_ || node_->done();
    }

    /// Block (cooperatively: helps the pool) until the loop completed.
    /// No-op for handles of synchronous backends.
    void wait() const {
        if (node_) {
            node_->wait();
        }
    }

    /// wait(), then rethrow the loop's failure, if any.
    void get() const {
        if (node_) {
            node_->wait_and_rethrow();
        }
    }

    /// Bounded wait: true when the loop completed within `timeout`
    /// (immediately true for the ready handles of synchronous
    /// backends). On false the graph is stalled or still running — the
    /// handle stays waitable, and exec::dump_graph names the pending
    /// sub-nodes.
    template <typename Rep, typename Period>
    [[nodiscard]] bool wait_for(
        std::chrono::duration<Rep, Period> timeout) const {
        return !node_ ||
               node_->wait_for(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       timeout));
    }

private:
    node_ref node_;
};

namespace detail {

/// Process-wide guard for partitioned reduction scratch seeding and
/// combining. One lock across *all* loops, not one per loop: two
/// partitioned loops reducing into the same user variable can have
/// their sub-nodes in flight concurrently (gbl args create no graph
/// edges), and the variable's read-modify-write must not tear between
/// them. Order under the lock is irrelevant to the result: OP_INC
/// partials seed from zero and add, OP_MIN/OP_MAX combines are
/// monotone folds, so any interleaving of seeds and combines produces
/// the sequential value. Combines are rare (one per partition per
/// loop) and short, so a single global spinlock costs nothing.
inline hpxlite::util::spinlock g_combine_mtx;

// --- partition-granular quarantine (issue-side) ---------------------------

/// One dat element span a failing sub-node may have half-written:
/// registered at issue time, turned into a poison span if the node
/// completes with an error. Points at the dat's impl (alive as long as
/// the group/executor holds the arg) so the failure path can reach both
/// the dep_state and the dat's name without per-issue string copies.
struct quarantine_target {
    op2::detail::dat_impl const* dat = nullptr;
    std::size_t lo = 0;
    std::size_t hi = 0;
};

/// Issue-time quarantine gate shared by every backend. Two passes:
/// first fail fast when any dat the loop *consumes* (any access but
/// OP_WRITE — OP_RW and OP_INC read their targets) holds a poison
/// span, composing the structured diagnostic naming the origin loop,
/// partition and colour; then, for a clean loop, heal dats it fully
/// overwrites (direct OP_WRITE args), since no stale byte survives a
/// full overwrite. Behind the any_poisoned() gate the healthy-path
/// cost is one relaxed load.
template <typename Args>
[[nodiscard]] std::exception_ptr check_quarantine(Args const& args,
                                                  char const* name) {
    if (!any_poisoned()) {
        return nullptr;
    }
    for (op_arg const& a : args) {
        if (!a.dat.valid() || a.acc == op_access::OP_WRITE) {
            continue;
        }
        if (auto info =
                a.dat.internal().dep.find_poison(0, a.dat.set().size())) {
            std::string msg =
                "op2.quarantine: loop '" + std::string(name) +
                "' reads poisoned dat '" + a.dat.name() + "': partition " +
                std::to_string(info->partition) + " colour " +
                std::to_string(info->color) + " of loop '" + info->loop +
                "' failed: " + describe_exception(info->origin);
            return std::make_exception_ptr(
                quarantine_error(msg, std::move(info)));
        }
    }
    for (op_arg const& a : args) {
        if (a.dat.valid() && a.acc == op_access::OP_WRITE &&
            a.is_direct()) {
            a.dat.internal().dep.clear_poison();
        }
    }
    return nullptr;
}

/// Quarantine the written dats of a synchronously failed loop
/// (seq/staged backends: the kernel threw mid-sweep, so any written
/// range may be half-updated). Whole-dat spans — synchronous sweeps
/// have no partition attribution. Best-effort, called from a catch
/// block (std::current_exception() is the origin).
template <typename Args>
void poison_sync_failure(Args const& args, char const* name) noexcept {
    try {
        auto const origin = std::current_exception();
        for (op_arg const& a : args) {
            if (!a.dat.valid() || a.acc == op_access::OP_READ) {
                continue;
            }
            auto info = std::make_shared<poison_info>();
            info->loop = name;
            info->dat = a.dat.name();
            info->origin = origin;
            a.dat.internal().dep.add_poison(0, a.dat.set().size(),
                                            std::move(info));
        }
    } catch (...) {
        // Out of memory while reporting: the original error still
        // propagates, exactly the pre-quarantine behaviour.
    }
}

/// The plan-driven sweep every parallel backend shares: per colour, a
/// fork-join for_loop over the colour's blocks through the staged
/// executor, timed under the backend's name. The staged backend runs it
/// inline; the dataflow backend runs it from its graph node.
template <typename Kernel, std::size_t N>
void staged_sweep(op2::detail::loop_executor<Kernel, N>& ex,
                  op_plan const& plan, backend_kind kind, char const* name) {
    loop_options const& opts = ex.options();
    auto policy = hpxlite::execution::par.with(opts.chunk);
    if (opts.pool != nullptr) {
        policy = policy.on(*opts.pool);
    }
    hpxlite::util::stopwatch sw;
    ex.execute(plan, [&](std::span<std::size_t const> blocks) {
        hpxlite::parallel::for_loop(
            policy, std::size_t{0}, blocks.size(),
            [&](std::size_t k) { ex.run_block(plan, blocks[k]); });
    });
    op_timing_record(name, to_string(kind), sw.elapsed_s());
}

/// Graph node of one dataflow-issued loop at whole-set granularity
/// (loop_options::partitions == 1 — the differential oracle): embeds
/// the typed staged executor, so issuing a loop is exactly one
/// allocation (this node) — no futures, no when_all vectors, no
/// continuation shared states.
template <typename Kernel, std::size_t N>
class loop_node final : public dataflow_node {
public:
    loop_node(op_set set, std::array<op_arg, N> args, Kernel kernel,
              loop_options const& opts, char const* name)
      : ex_(std::move(set), std::move(args), std::move(kernel), opts),
        name_(name) {}

    [[nodiscard]] op2::detail::loop_executor<Kernel, N>& executor() {
        return ex_;
    }

    void bind_plan(op_plan const& p) noexcept { plan_ = &p; }

    /// Register a written dat span to quarantine should this node fail
    /// (issue time, before the node can run).
    void add_quarantine_target(quarantine_target t) {
        qtargets_.push_back(t);
    }

private:
    void run_body() override {
        // Deterministic injection point: an armed kernel=NAME@0.0 site
        // throws here, as if the loop's kernel had failed.
        fault::on_kernel(name_, 0, 0);
        staged_sweep(ex_, *plan_, backend_kind::hpx_dataflow, name_);
    }

    void on_complete() noexcept override {
        if (error()) {
            // Whatever this loop was going to write is now stale or
            // half-written: quarantine it (best-effort — an allocation
            // failure here leaves plain error propagation, the
            // pre-quarantine behaviour).
            try {
                for (auto const& t : qtargets_) {
                    auto info = std::make_shared<poison_info>();
                    info->loop = name_;
                    info->dat = t.dat->name;
                    info->origin = error();
                    t.dat->dep.add_poison(t.lo, t.hi, std::move(info));
                }
            } catch (...) {
            }
        }
        ex_.release_handles();
    }

    op2::detail::loop_executor<Kernel, N> ex_;
    op_plan const* plan_ = nullptr;
    char const* name_;
    std::vector<quarantine_target> qtargets_;
};

/// Shared state of one partition-granular dataflow loop: one executor
/// (and one cached partition plan) per partition, each with its own
/// staged-table bindings and reduction scratch. Sub-nodes and the join
/// node share it through shared_ptr and drop their references in
/// on_complete(), which is what breaks the dat -> record -> node ->
/// group -> dat cycle once the loop has run.
template <typename Kernel, std::size_t N>
class partitioned_loop {
public:
    partitioned_loop(op_set const& set, std::array<op_arg, N> const& args,
                     Kernel const& kernel, loop_options const& opts,
                     char const* name, std::size_t nparts)
      : name_(name) {
        execs_.reserve(nparts);
        plans_.reserve(nparts);
        for (std::size_t p = 0; p < nparts; ++p) {
            execs_.emplace_back(set, args, kernel, opts);
        }
        colors_left_ =
            std::make_unique<std::atomic<std::size_t>[]>(nparts);
        qtargets_.resize(nparts);
    }

    [[nodiscard]] std::size_t nparts() const noexcept {
        return execs_.size();
    }
    [[nodiscard]] op2::detail::loop_executor<Kernel, N>& executor(
        std::size_t p) {
        return execs_[p];
    }
    [[nodiscard]] op_plan const& plan(std::size_t p) const {
        return *plans_[p];
    }
    void bind_plan(op_plan const& pl) { plans_.push_back(&pl); }
    [[nodiscard]] char const* name() const noexcept { return name_; }

    /// First sub-node to run stamps the loop's execution start; the
    /// join reads the span. This keeps the hpx_dataflow timing row a
    /// *wall* time (first block to last combine), comparable with the
    /// seq/staged rows and with the whole-set node's sweep time — not a
    /// sum of concurrent sub-node CPU times.
    void mark_start() noexcept {
        std::int64_t expected = -1;
        (void)start_ns_.compare_exchange_strong(expected, now_ns(),
                                                std::memory_order_relaxed);
    }
    [[nodiscard]] double wall_seconds() const noexcept {
        std::int64_t const s = start_ns_.load(std::memory_order_relaxed);
        return s < 0 ? 0.0 : static_cast<double>(now_ns() - s) * 1e-9;
    }

    /// Arm partition p's colour countdown (issue time).
    void init_colors(std::size_t p, std::size_t ncolors) noexcept {
        colors_left_[p].store(ncolors, std::memory_order_relaxed);
    }

    /// Count one finished colour of partition p; true for the last.
    [[nodiscard]] bool finish_color(std::size_t p) noexcept {
        return colors_left_[p].fetch_sub(1, std::memory_order_acq_rel) == 1;
    }

    /// Seed partition p's reduction scratch (the partition's colour-0
    /// sub-node). Under the global combine lock: MIN/MAX partials
    /// *read* the user's variable, which another partition's — or
    /// another loop's — combine may be writing at that moment.
    void prepare_partition(std::size_t p) {
        std::lock_guard<hpxlite::util::spinlock> lk(g_combine_mtx);
        execs_[p].prepare_scratch();
    }

    /// Fold partition p's reduction partials into the user's globals.
    /// Runs on the partition's last sub-node — with the sub-nodes, not
    /// after them, so a fence that drains the dat records also covers
    /// the reductions. The global lock serialises the read-modify-write
    /// of the user's variable across partitions *and* across loops (see
    /// g_combine_mtx for why ordering doesn't matter).
    void combine_partition(std::size_t p) {
        std::lock_guard<hpxlite::util::spinlock> lk(g_combine_mtx);
        execs_[p].combine();
    }

    void release_handles() noexcept {
        for (auto& ex : execs_) {
            ex.release_handles();
        }
    }

    /// Register a dat element span partition p's failure would taint.
    /// Issue-side only, and all of partition p's targets land before
    /// p's first sub-node is issued — the only writer racing a
    /// potential reader (poison_partition) is pushing to a *different*
    /// partition's inner vector of the pre-sized outer one.
    void add_quarantine_target(std::size_t p, quarantine_target t) {
        qtargets_[p].push_back(t);
    }

    /// Quarantine every span partition p could have half-written,
    /// attributed to (this loop, p, `color`) with `origin` chained into
    /// the diagnostic. Called from a failed sub-node's on_complete
    /// (noexcept there, so best-effort: an allocation failure leaves
    /// plain error propagation).
    void poison_partition(std::size_t p, std::size_t color,
                          std::exception_ptr origin) noexcept {
        try {
            for (auto const& t : qtargets_[p]) {
                auto info = std::make_shared<poison_info>();
                info->loop = name_;
                info->dat = t.dat->name;
                info->partition = p;
                info->color = color;
                info->origin = origin;
                t.dat->dep.add_poison(t.lo, t.hi, std::move(info));
            }
        } catch (...) {
        }
    }

private:
    [[nodiscard]] static std::int64_t now_ns() noexcept {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    std::vector<op2::detail::loop_executor<Kernel, N>> execs_;
    std::vector<op_plan const*> plans_;
    std::unique_ptr<std::atomic<std::size_t>[]> colors_left_;
    std::vector<std::vector<quarantine_target>> qtargets_;  // [partition]
    std::atomic<std::int64_t> start_ns_{-1};
    char const* name_;
};

/// One (partition, colour) sub-node of a partitioned loop: the unit of
/// both scheduling and dependency tracking. Its blocks run inline — the
/// sub-node *is* the parallelism grain, one per worker by default.
template <typename Kernel, std::size_t N>
class part_node final : public dataflow_node {
public:
    part_node(std::shared_ptr<partitioned_loop<Kernel, N>> grp,
              std::size_t partition, std::size_t color,
              bool first) noexcept
      : grp_(std::move(grp)), partition_(partition), color_(color),
        first_(first) {}

private:
    void run_body() override {
        grp_->mark_start();
        // Deterministic injection point: an armed kernel=NAME@P.C site
        // throws here, as if this (partition, colour) kernel had failed.
        fault::on_kernel(grp_->name(), partition_, color_);
        auto& ex = grp_->executor(partition_);
        op_plan const& plan = grp_->plan(partition_);
        if (first_) {
            // The partition's first (lowest non-empty colour) sub-node
            // runs first — the issue path chains a partition's sub-nodes
            // in colour order — so it owns the run-time scratch
            // initialisation.
            grp_->prepare_partition(partition_);
        }
        ex.run_color(plan, color_);
        if (grp_->finish_color(partition_)) {
            grp_->combine_partition(partition_);
        }
    }

    void on_complete() noexcept override {
        if (error()) {
            // Own failure, inherited failure, or a shutdown discard:
            // either way the partition's writes never (fully) happened,
            // so its target spans are stale — quarantine them.
            grp_->poison_partition(partition_, color_, error());
        }
        grp_.reset();
    }

    std::shared_ptr<partitioned_loop<Kernel, N>> grp_;
    std::size_t partition_;
    std::size_t color_;
    bool first_;
};

/// The loop's completion node: depends on every sub-node and is what
/// the returned loop_handle waits on; it also owns the timing record
/// and the final release of the group's dat handles.
template <typename Kernel, std::size_t N>
class join_node final : public dataflow_node {
public:
    explicit join_node(
        std::shared_ptr<partitioned_loop<Kernel, N>> grp) noexcept
      : grp_(std::move(grp)) {}

private:
    void run_body() override {
        op_timing_record(grp_->name(), to_string(backend_kind::hpx_dataflow),
                         grp_->wall_seconds());
    }

    void on_complete() noexcept override {
        grp_->release_handles();
        grp_.reset();
    }

    std::shared_ptr<partitioned_loop<Kernel, N>> grp_;
};

/// Whole-set issue (partitions == 1): one node per loop, one dep_request
/// per distinct dat — the PR 2 shape, kept verbatim as the differential
/// oracle for partition-granular execution.
template <typename Kernel, std::size_t N>
loop_handle issue_whole_set(loop_options const& opts, char const* name,
                            op_set set, std::array<op_arg, N> args,
                            Kernel kernel,
                            hpxlite::threads::thread_pool& pool) {
    auto* node = new loop_node<Kernel, N>(std::move(set), std::move(args),
                                          std::move(kernel), opts, name);
    node_ref ref(node, /*adopt=*/true);
    auto& ex = node->executor();
    ex.validate(name);  // throws before publication; ref cleans up
    node->set_site(name, 0, 0);
    node->bind_plan(plan_get(
        ex.set(), ex.args(),
        plan_desc{opts.part_size, opts.staged_gather}));

    // Quarantine: register the spans a failure would taint (whole dat —
    // a whole-set node has no partition attribution), and fail fast if
    // the loop consumes a poisoned dat. The failure is *seeded* into
    // the node, not thrown: the loop still enters the graph born-failed
    // and reports at handle.get(), the same point as every other
    // asynchronous failure.
    for (op_arg const& a : ex.args()) {
        if (a.dat.valid() && a.acc != op_access::OP_READ) {
            node->add_quarantine_target(
                {&a.dat.internal(), 0, a.dat.set().size()});
        }
    }
    if (std::exception_ptr qerr = check_quarantine(ex.args(), name)) {
        node->seed_error(std::move(qerr));
    }

    // One dep_request per distinct dat; write dominates, so a loop
    // touching a dat through several args never self-edges. Pins are
    // taken in canonical (address) order — concurrent issuers at mixed
    // granularities then never hold-and-wait on each other's pins — and
    // stay held until the wiring below completes.
    struct dat_ref {
        dep_state* state = nullptr;
        bool write = false;
    };
    std::array<dat_ref, N == 0 ? 1 : N> ents;
    std::array<issue_pin, N == 0 ? 1 : N> pins;
    std::array<dep_request, N == 0 ? 1 : N> reqs;
    std::size_t nreq = 0;
    for (op_arg const& a : ex.args()) {
        if (!a.dat.valid()) {
            continue;
        }
        dep_state& st = a.dat.internal().dep;
        bool const write = a.acc != op_access::OP_READ;
        bool merged = false;
        for (std::size_t i = 0; i < nreq; ++i) {
            if (ents[i].state == &st) {
                ents[i].write = ents[i].write || write;
                merged = true;
                break;
            }
        }
        if (!merged) {
            ents[nreq++] = {&st, write};
        }
    }
    std::sort(ents.begin(), ents.begin() + static_cast<std::ptrdiff_t>(nreq),
              [](dat_ref const& x, dat_ref const& y) {
                  return x.state < y.state;
              });
    for (std::size_t i = 0; i < nreq; ++i) {
        pins[i] = issue_pin(*ents[i].state, 1);
        reqs[i] = {&pins[i].records()[0], ents[i].write};
        if (ents[i].write) {
            ents[i].state->bump_epoch();
        }
    }
    issue(*node, std::span<dep_request const>{reqs.data(), nreq}, pool);
    return loop_handle(std::move(ref));
}

/// Monotone id handed to each partitioned-loop issue: the dependency
/// layer uses it to recognise sub-nodes of one loop (the same-colour
/// non-conflict exemption applies only within a loop). Shared across
/// every kernel instantiation, so ids never repeat between loops.
inline std::atomic<std::uint64_t> g_exemption_loop_seq{1};

/// Partition-granular issue: the loop becomes one sub-node per
/// (partition, colour) plus a join node. Each sub-node edges on exactly
/// the dat partitions it can reach — the iteration partition itself for
/// direct args, the plan's map-derived footprint for indirect ones — so
/// independent partitions of dependent loops, and independent colours
/// of different loops, overlap in the epoch graph. Sub-nodes are issued
/// in (partition, colour) order; conflicting sub-nodes always share at
/// least one dat-partition record (a conflict is a shared target
/// element, and the element's partition record orders its writers by
/// issue order), so program order is preserved wherever it matters.
///
/// Two per-loop refinements ride on that structure:
///  * placement (opts.placement == affinity): partition p's sub-nodes
///    carry the worker hint p % pool_size, so a partition's working set
///    keeps landing on the same worker across the loops of a chain;
///  * the same-colour non-conflict exemption (opts.color_exemption):
///    partition plans are coloured globally, so same-coloured sub-nodes
///    of THIS loop provably never mutate the same target element and
///    skip the conservative WAW record edges between each other —
///    boundary-straddling INC partitions of a single loop overlap. A
///    partition's own sub-nodes are still chained in colour order
///    (deterministic scratch prepare, single-threaded per-partition
///    executor), so the won concurrency is across partitions.
template <typename Kernel, std::size_t N>
loop_handle issue_partitioned(loop_options const& opts, char const* name,
                              op_set set, std::array<op_arg, N> args,
                              Kernel kernel,
                              hpxlite::threads::thread_pool& pool,
                              std::size_t nparts) {
    auto grp = std::make_shared<partitioned_loop<Kernel, N>>(
        set, args, kernel, opts, name, nparts);
    grp->executor(0).validate(name);

    // Resolve every partition plan (and bind the executors) up front, so
    // nothing below the first sub-node issue can throw. The colour
    // countdown counts *live* (non-empty) colours only: global colouring
    // can leave a partition plan with sparse colour classes, and empty
    // ones get no sub-node.
    for (std::size_t p = 0; p < nparts; ++p) {
        op_plan const& plan = plan_get(
            set, grp->executor(0).args(),
            plan_desc{opts.part_size, opts.staged_gather, nparts, p});
        grp->bind_plan(plan);
        grp->executor(p).setup(plan);
        std::size_t live = 0;
        for (std::size_t c = 0; c < plan.ncolors; ++c) {
            if (!plan.blocks_of_color(c).empty()) {
                ++live;
            }
        }
        grp->init_colors(p, live);
    }

    // Distinct dats of the loop, with their record tables pinned at
    // this granularity (until every sub-node is wired) and the
    // dat-level epoch bumped once per writer. Pins are taken in
    // canonical (address) order so concurrent issuers at mixed
    // granularities never hold-and-wait on each other's pins.
    struct dat_entry {
        dep_state* state = nullptr;
        bool write = false;
        issue_pin pin;
    };
    std::array<dat_entry, N == 0 ? 1 : N> dats;
    std::array<std::size_t, N == 0 ? 1 : N> arg_dat{};  // arg -> dats index
    std::size_t ndats = 0;
    {
        std::size_t j = 0;
        for (op_arg const& a : grp->executor(0).args()) {
            if (!a.dat.valid()) {
                arg_dat[j++] = static_cast<std::size_t>(-1);
                continue;
            }
            dep_state& st = a.dat.internal().dep;
            std::size_t i = 0;
            while (i < ndats && dats[i].state != &st) {
                ++i;
            }
            if (i == ndats) {
                dats[i].state = &st;
                ++ndats;
            }
            dats[i].write = dats[i].write || a.acc != op_access::OP_READ;
            ++j;
        }
    }
    std::sort(dats.begin(), dats.begin() + static_cast<std::ptrdiff_t>(ndats),
              [](dat_entry const& x, dat_entry const& y) {
                  return x.state < y.state;
              });
    for (std::size_t i = 0; i < ndats; ++i) {
        dats[i].pin = issue_pin(*dats[i].state, nparts);
        if (dats[i].write) {
            dats[i].state->bump_epoch();
        }
    }
    {
        // Re-derive the arg -> entry mapping against the sorted order.
        std::size_t j = 0;
        for (op_arg const& a : grp->executor(0).args()) {
            if (!a.dat.valid()) {
                arg_dat[j++] = static_cast<std::size_t>(-1);
                continue;
            }
            dep_state& st = a.dat.internal().dep;
            std::size_t i = 0;
            while (dats[i].state != &st) {
                ++i;
            }
            arg_dat[j++] = i;
        }
    }

    auto* join = new join_node<Kernel, N>(grp);
    node_ref jref(join, /*adopt=*/true);
    join->bind_pool(pool);
    join->set_site(name, dataflow_node::kJoin, 0);

    // Quarantine gate: a loop consuming a poisoned dat is issued
    // *born-failed* — every sub-node carries the diagnostic, skips its
    // body, and the join reports it at handle.get(), the same point as
    // every other asynchronous failure. (The sub-nodes still enter the
    // graph, so dependents inherit the error and the written spans are
    // quarantined in turn.)
    std::exception_ptr const qerr =
        check_quarantine(grp->executor(0).args(), name);
    auto const iter_part = set.partition(nparts);

    bool const affinity = opts.placement == placement_kind::affinity;
    std::uint64_t const loop_tag =
        opts.color_exemption
            ? g_exemption_loop_seq.fetch_add(1, std::memory_order_relaxed)
            : 0;

    std::vector<dep_request> reqs;
    for (std::size_t p = 0; p < nparts; ++p) {
        op_plan const& plan = grp->plan(p);

        // Partition p's quarantine targets: the dat element spans a
        // failure of any of p's sub-nodes may have half-written —
        // direct args taint the iteration partition's own span,
        // indirect ones the spans of the footprint's dat partitions.
        // Registered before p's first sub-node is issued (a sub-node
        // can fail the instant it is wired).
        {
            std::size_t j = 0;
            for (op_arg const& a : grp->executor(0).args()) {
                std::size_t const i = arg_dat[j++];
                if (i == static_cast<std::size_t>(-1) ||
                    a.acc == op_access::OP_READ) {
                    continue;
                }
                auto const* impl = &a.dat.internal();
                if (a.is_direct()) {
                    grp->add_quarantine_target(
                        p, {impl, iter_part->begin(p), iter_part->end(p)});
                } else if (plan_footprint const* fp =
                               plan.find_footprint(a.map.id(), a.idx)) {
                    auto const dp = a.dat.set().partition(nparts);
                    for (std::uint32_t q : fp->parts) {
                        grp->add_quarantine_target(
                            p, {impl, dp->begin(q), dp->end(q)});
                    }
                } else {
                    grp->add_quarantine_target(
                        p, {impl, 0, a.dat.set().size()});
                }
            }
        }

        node_ref chain_prev;
        for (std::size_t c = 0; c < plan.ncolors; ++c) {
            if (plan.blocks_of_color(c).empty()) {
                continue;  // sparse global colour class: nothing to run
            }
            auto* sub =
                new part_node<Kernel, N>(grp, p, c, /*first=*/!chain_prev);
            node_ref sref(sub, /*adopt=*/true);
            sub->set_site(name, p, c);
            if (qerr) {
                sub->seed_error(qerr);
            }
            join->depend_on(*sub);
            if (affinity) {
                sub->set_worker_hint(p % pool.size());
            }
            if (chain_prev) {
                // Chain the partition's own sub-nodes in colour order:
                // global colouring no longer guarantees that a
                // partition's colours conflict pairwise, and the
                // per-partition executor (scratch prepare, per-block
                // reduction partials) expects one sub-node at a time.
                sub->depend_on(*chain_prev);
            }

            reqs.clear();
            auto add = [&reqs, loop_tag, c](dep_record* rec, bool write) {
                for (auto& r : reqs) {
                    if (r.rec == rec) {
                        r.write = r.write || write;
                        return;
                    }
                }
                reqs.push_back({rec, write, loop_tag,
                                static_cast<std::uint32_t>(c)});
            };
            std::size_t j = 0;
            for (op_arg const& a : grp->executor(0).args()) {
                std::size_t const i = arg_dat[j++];
                if (i == static_cast<std::size_t>(-1)) {
                    continue;
                }
                bool const write = a.acc != op_access::OP_READ;
                if (a.is_direct()) {
                    add(&dats[i].pin.records()[p], write);
                } else if (plan_footprint const* fp =
                               plan.find_footprint(a.map.id(), a.idx)) {
                    for (std::uint32_t q : fp->parts) {
                        add(&dats[i].pin.records()[q], write);
                    }
                } else {
                    // No footprint (should not happen): conservatively
                    // edge on every partition of the dat.
                    for (std::size_t q = 0; q < nparts; ++q) {
                        add(&dats[i].pin.records()[q], write);
                    }
                }
            }
            issue(*sub, std::span<dep_request const>{reqs.data(),
                                                     reqs.size()},
                  pool);
            chain_prev = std::move(sref);
        }
    }
    join->schedule();
    return loop_handle(std::move(jref));
}

}  // namespace detail

/// Issue `kernel` over `set` on the backend selected by opts.backend.
///
///  * seq: plain element loop on the calling thread; returns ready.
///  * staged: plan-driven fork-join sweep (colour by colour, implicit
///    barrier at the end — the stock-OP2 OpenMP shape); returns ready.
///  * hpx_dataflow: the loop is *issued*, not executed — it enters the
///    epoch graph at partition granularity (loop_options::partitions
///    sub-ranges of the set, one sub-node per (partition, colour), one
///    per pool worker by default) and runs as its per-partition
///    dependencies resolve; independent partitions of dependent loops
///    overlap, and there is no global barrier. partitions = 1 keeps the
///    whole-set single-node shape. Reduction results (op_arg_gbl) are
///    valid only once the returned handle is ready.
template <typename Kernel, typename... Args>
loop_handle run_loop(loop_options const& opts, char const* name, op_set set,
                     Kernel kernel, Args... args) {
    constexpr std::size_t n = sizeof...(Args);

    switch (opts.backend) {
        case backend_kind::seq: {
            op2::detail::loop_executor<Kernel, n> ex(
                std::move(set), std::array<op_arg, n>{std::move(args)...},
                std::move(kernel), opts);
            ex.validate(name);
            // Synchronous backends fail fast at the call site: reading
            // a poisoned dat throws the quarantine diagnostic here.
            if (auto qerr = detail::check_quarantine(ex.args(), name)) {
                std::rethrow_exception(qerr);
            }
            hpxlite::util::stopwatch sw;
            try {
                fault::on_kernel(name, 0, 0);
                ex.run_sequential();
            } catch (...) {
                detail::poison_sync_failure(ex.args(), name);
                throw;
            }
            op_timing_record(name, to_string(backend_kind::seq),
                             sw.elapsed_s());
            return {};
        }

        case backend_kind::staged: {
            op2::detail::loop_executor<Kernel, n> ex(
                std::move(set), std::array<op_arg, n>{std::move(args)...},
                std::move(kernel), opts);
            ex.validate(name);
            if (auto qerr = detail::check_quarantine(ex.args(), name)) {
                std::rethrow_exception(qerr);
            }
            op_plan const& plan = plan_get(
                ex.set(), ex.args(),
                plan_desc{opts.part_size, opts.staged_gather});
            try {
                fault::on_kernel(name, 0, 0);
                detail::staged_sweep(ex, plan, backend_kind::staged, name);
            } catch (...) {
                detail::poison_sync_failure(ex.args(), name);
                throw;
            }
            return {};
        }

        case backend_kind::hpx_dataflow: {
            auto& pool =
                opts.pool != nullptr ? *opts.pool : hpxlite::get_pool();
            std::size_t const nparts =
                opts.partitions != 0 ? opts.partitions : pool.size();
            if (nparts <= 1) {
                return detail::issue_whole_set<Kernel, n>(
                    opts, name, std::move(set),
                    std::array<op_arg, n>{std::move(args)...},
                    std::move(kernel), pool);
            }
            return detail::issue_partitioned<Kernel, n>(
                opts, name, std::move(set),
                std::array<op_arg, n>{std::move(args)...}, std::move(kernel),
                pool, nparts);
        }
    }
    return {};
}

}  // namespace op2::exec
