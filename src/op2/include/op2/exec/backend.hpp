#pragma once

// The unified executor backend layer: one templated entry point
// (run_loop) dispatching a loop onto the backend selected by
// loop_options::backend. All three backends share the plan (block
// colouring + staged gather tables) and the staged loop_executor — the
// backends differ only in *when* the sweep runs (inline, fork-join, or
// asynchronously out of the epoch dataflow graph) and in how blocks are
// distributed over workers.

#include <array>
#include <cstddef>
#include <span>
#include <utility>

#include <hpxlite/algorithms/for_loop.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/runtime.hpp>
#include <hpxlite/util/timing.hpp>
#include <op2/detail/executor.hpp>
#include <op2/exec/backend_kind.hpp>
#include <op2/exec/dataflow.hpp>
#include <op2/loop_options.hpp>
#include <op2/plan.hpp>
#include <op2/timing.hpp>

namespace op2::exec {

/// Completion handle of an issued loop. Synchronous backends return a
/// ready handle (no node); the dataflow backend returns a handle on the
/// loop's graph node. Copyable, cheap (one intrusive ref).
class loop_handle {
public:
    loop_handle() noexcept = default;
    explicit loop_handle(node_ref n) noexcept : node_(std::move(n)) {}

    /// True when the handle refers to an asynchronously issued loop.
    [[nodiscard]] bool valid() const noexcept {
        return static_cast<bool>(node_);
    }

    [[nodiscard]] bool is_ready() const noexcept {
        return !node_ || node_->done();
    }

    /// Block (cooperatively: helps the pool) until the loop completed.
    /// No-op for handles of synchronous backends.
    void wait() const {
        if (node_) {
            node_->wait();
        }
    }

    /// wait(), then rethrow the loop's failure, if any.
    void get() const {
        if (node_) {
            node_->wait_and_rethrow();
        }
    }

private:
    node_ref node_;
};

namespace detail {

/// The plan-driven sweep every parallel backend shares: per colour, a
/// fork-join for_loop over the colour's blocks through the staged
/// executor, timed under the backend's name. The staged backend runs it
/// inline; the dataflow backend runs it from its graph node.
template <typename Kernel, std::size_t N>
void staged_sweep(op2::detail::loop_executor<Kernel, N>& ex,
                  op_plan const& plan, backend_kind kind, char const* name) {
    loop_options const& opts = ex.options();
    auto policy = hpxlite::execution::par.with(opts.chunk);
    if (opts.pool != nullptr) {
        policy = policy.on(*opts.pool);
    }
    hpxlite::util::stopwatch sw;
    ex.execute(plan, [&](std::span<std::size_t const> blocks) {
        hpxlite::parallel::for_loop(
            policy, std::size_t{0}, blocks.size(),
            [&](std::size_t k) { ex.run_block(plan, blocks[k]); });
    });
    op_timing_record(name, to_string(kind), sw.elapsed_s());
}

/// Graph node of one dataflow-issued loop: embeds the typed staged
/// executor, so issuing a loop is exactly one allocation (this node) —
/// no futures, no when_all vectors, no continuation shared states.
template <typename Kernel, std::size_t N>
class loop_node final : public dataflow_node {
public:
    loop_node(op_set set, std::array<op_arg, N> args, Kernel kernel,
              loop_options const& opts, char const* name)
      : ex_(std::move(set), std::move(args), std::move(kernel), opts),
        name_(name) {}

    [[nodiscard]] op2::detail::loop_executor<Kernel, N>& executor() {
        return ex_;
    }

    void bind_plan(op_plan const& p) noexcept { plan_ = &p; }

private:
    void run_body() override {
        staged_sweep(ex_, *plan_, backend_kind::hpx_dataflow, name_);
    }

    void on_complete() noexcept override { ex_.release_handles(); }

    op2::detail::loop_executor<Kernel, N> ex_;
    op_plan const* plan_ = nullptr;
    char const* name_;
};

}  // namespace detail

/// Issue `kernel` over `set` on the backend selected by opts.backend.
///
///  * seq: plain element loop on the calling thread; returns ready.
///  * staged: plan-driven fork-join sweep (colour by colour, implicit
///    barrier at the end — the stock-OP2 OpenMP shape); returns ready.
///  * hpx_dataflow: the loop is *issued*, not executed — it runs as soon
///    as the loops it depends on (through its dats' epoch records) have
///    finished; independent loops interleave with no global barrier.
///    Reduction results (op_arg_gbl) are valid only once the returned
///    handle is ready.
template <typename Kernel, typename... Args>
loop_handle run_loop(loop_options const& opts, char const* name, op_set set,
                     Kernel kernel, Args... args) {
    constexpr std::size_t n = sizeof...(Args);

    switch (opts.backend) {
        case backend_kind::seq: {
            op2::detail::loop_executor<Kernel, n> ex(
                std::move(set), std::array<op_arg, n>{std::move(args)...},
                std::move(kernel), opts);
            ex.validate(name);
            hpxlite::util::stopwatch sw;
            ex.run_sequential();
            op_timing_record(name, to_string(backend_kind::seq),
                             sw.elapsed_s());
            return {};
        }

        case backend_kind::staged: {
            op2::detail::loop_executor<Kernel, n> ex(
                std::move(set), std::array<op_arg, n>{std::move(args)...},
                std::move(kernel), opts);
            ex.validate(name);
            op_plan const& plan = plan_get(ex.set(), ex.args(), opts.part_size);
            detail::staged_sweep(ex, plan, backend_kind::staged, name);
            return {};
        }

        case backend_kind::hpx_dataflow: {
            auto* node = new detail::loop_node<Kernel, n>(
                std::move(set), std::array<op_arg, n>{std::move(args)...},
                std::move(kernel), opts, name);
            node_ref ref(node, /*adopt=*/true);
            auto& ex = node->executor();
            ex.validate(name);  // throws before publication; ref cleans up
            node->bind_plan(plan_get(ex.set(), ex.args(), opts.part_size));

            // One dep_request per distinct dat; write dominates, so a
            // loop touching a dat through several args never self-edges.
            std::array<dep_request, n> reqs;
            std::size_t nreq = 0;
            for (op_arg const& a : ex.args()) {
                if (!a.dat.valid()) {
                    continue;
                }
                dep_record* rec = &a.dat.internal().dep;
                bool const write = a.acc != op_access::OP_READ;
                bool merged = false;
                for (std::size_t i = 0; i < nreq; ++i) {
                    if (reqs[i].rec == rec) {
                        reqs[i].write = reqs[i].write || write;
                        merged = true;
                        break;
                    }
                }
                if (!merged) {
                    reqs[nreq++] = {rec, write};
                }
            }
            auto& pool =
                opts.pool != nullptr ? *opts.pool : hpxlite::get_pool();
            issue(*node, std::span<dep_request const>{reqs.data(), nreq},
                  pool);
            return loop_handle(std::move(ref));
        }
    }
    return {};
}

}  // namespace op2::exec
