#pragma once

namespace op2::exec {

/// Which backend of the execution layer a loop runs on. Selected per
/// loop through loop_options::backend; the legacy op_par_loop_* entry
/// points are thin wrappers that pin this field.
enum class backend_kind {
    seq,           ///< sequential reference: plain element loop, no plan
    staged,        ///< fork-join staged-gather sweep (barrier per loop)
    hpx_dataflow,  ///< asynchronous: issued into the epoch dataflow graph
};

constexpr char const* to_string(backend_kind k) noexcept {
    switch (k) {
        case backend_kind::seq: return "seq";
        case backend_kind::staged: return "staged";
        case backend_kind::hpx_dataflow: return "hpx_dataflow";
    }
    return "?";
}

}  // namespace op2::exec
