#pragma once

// Stall watchdog and epoch-graph dumps for fault-tolerant execution.
//
// A dataflow program that deadlocks (a dropped task, a kernel stuck on
// a lock, a dependency wired against a node that will never run) shows
// up as a frozen pool: tasks_pending() > 0 while tasks_executed() stops
// moving. The watchdog samples both counters from a helper thread and,
// after `stall` without progress, writes a dump of the live epoch graph
// — every pending sub-node with its loop name, partition, colour and
// worker hint, plus each dat's dependency-record table and quarantine
// state — so a hung run leaves the evidence needed to find the stuck
// site. Pairs with loop_handle::wait_for: the caller bounds its wait,
// the watchdog names what it timed out on.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <thread>

namespace op2::exec {

/// Write a human-readable snapshot of the live epoch graph to `os`:
/// pending (issued, not yet completed) sub-nodes deduplicated across
/// every dat's dependency records, then the per-dat record tables with
/// their quarantine span counts. Safe to call from any thread at any
/// time; the snapshot is advisory (taken under the per-record locks,
/// but the graph keeps moving).
void dump_graph(std::ostream& os);

/// No-progress watchdog on the global pool. Construction starts the
/// sampling thread; destruction stops and joins it. Each report is one
/// dump_graph() to the configured stream (default std::cerr).
class watchdog {
public:
    /// Report when the pool makes no progress for `stall` while work is
    /// pending. `out` overrides the report stream (tests).
    explicit watchdog(std::chrono::milliseconds stall,
                      std::ostream* out = nullptr);
    watchdog(watchdog const&) = delete;
    watchdog& operator=(watchdog const&) = delete;
    ~watchdog();

    /// Number of stall reports written so far.
    [[nodiscard]] std::size_t reports() const noexcept {
        return reports_.load(std::memory_order_relaxed);
    }

private:
    void run(std::chrono::milliseconds stall);

    std::ostream* out_;
    std::atomic<std::size_t> reports_{0};
    std::mutex mtx_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

}  // namespace op2::exec
