#pragma once

#include <cstddef>
#include <tuple>
#include <type_traits>

namespace op2::detail {

/// Deduce the parameter pack of a user kernel (free function, function
/// pointer, or lambda/functor with a non-overloaded operator()). OP2
/// kernels take one pointer per op_arg, e.g.
///     void save_soln(double const* q, double* qold);
/// The backends use these types to cast the per-element gather pointers.
template <typename K, typename = void>
struct kernel_traits : kernel_traits<decltype(&K::operator())> {};

template <typename R, typename... As>
struct kernel_traits<R (*)(As...)> {
    using args = std::tuple<As...>;
    static constexpr std::size_t arity = sizeof...(As);
};

template <typename R, typename... As>
struct kernel_traits<R (&)(As...)> : kernel_traits<R (*)(As...)> {};

template <typename R, typename... As>
struct kernel_traits<R(As...)> : kernel_traits<R (*)(As...)> {};

template <typename C, typename R, typename... As>
struct kernel_traits<R (C::*)(As...)> : kernel_traits<R (*)(As...)> {};

template <typename C, typename R, typename... As>
struct kernel_traits<R (C::*)(As...) const> : kernel_traits<R (*)(As...)> {};

template <typename K>
using kernel_args_t = typename kernel_traits<std::decay_t<K>>::args;

template <typename K>
inline constexpr std::size_t kernel_arity_v =
    kernel_traits<std::decay_t<K>>::arity;

/// Invoke `k` with `ptrs[i]` cast to the kernel's i-th parameter type.
template <typename K, std::size_t N, std::size_t... I>
inline void invoke_kernel_impl(K& k, std::byte* const (&ptrs)[N],
                               std::index_sequence<I...>) {
    k(reinterpret_cast<std::tuple_element_t<I, kernel_args_t<K>>>(
        ptrs[I])...);
}

template <typename K, std::size_t N>
inline void invoke_kernel(K& k, std::byte* const (&ptrs)[N]) {
    static_assert(N == kernel_arity_v<K>,
                  "op_par_loop: number of op_args does not match the "
                  "kernel's parameter count");
    invoke_kernel_impl(k, ptrs, std::make_index_sequence<N>{});
}

}  // namespace op2::detail
