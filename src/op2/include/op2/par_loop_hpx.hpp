#pragma once

#include <utility>

#include <op2/exec/backend.hpp>
#include <op2/loop_options.hpp>

namespace op2 {

/// HPX dataflow backend (the paper's contribution, Section IV): the loop
/// is *issued*, not executed — it enters the epoch graph at partition
/// granularity (opts.partitions contiguous sub-ranges of the iteration
/// set, one per pool worker by default; one intrusive sub-node per
/// (partition, colour)) and each sub-node runs as soon as the dat
/// *partitions* it touches are ready. Independent loops — and
/// independent partitions of *dependent* loops — interleave
/// automatically; there is no global barrier, and — unlike PR 1's
/// future chains — no future/shared-state allocation per dat per loop.
/// Thin wrapper over the exec layer (opts.backend = hpx_dataflow).
///
/// Reduction results (op_arg_gbl) are only valid after the returned
/// handle becomes ready.
template <typename Kernel, typename... Args>
exec::loop_handle op_par_loop_hpx(loop_options const& opts, char const* name,
                                  op_set set, Kernel kernel, Args... args) {
    loop_options o = opts;
    o.backend = exec::backend_kind::hpx_dataflow;
    return exec::run_loop(o, name, std::move(set), std::move(kernel),
                          std::move(args)...);
}

}  // namespace op2
