#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include <hpxlite/algorithms/for_loop.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/lcos/future.hpp>
#include <hpxlite/lcos/when_all.hpp>
#include <hpxlite/util/timing.hpp>
#include <op2/detail/executor.hpp>
#include <op2/loop_options.hpp>
#include <op2/plan.hpp>
#include <op2/timing.hpp>

namespace op2 {

namespace detail {

/// RAW/WAR/WAW dependencies of a loop, derived from its args' access
/// modes and the dats' outstanding futures (paper Figs. 9-11: the loop
/// "waits until the previous loops complete their processes" only when
/// it actually depends on their outputs).
inline std::vector<hpxlite::shared_future<void>> collect_dependencies(
    std::span<op_arg const> args) {
    std::vector<hpxlite::shared_future<void>> deps;
    for (auto const& a : args) {
        if (!a.dat.valid()) {
            continue;
        }
        auto& di = a.dat.internal();
        std::lock_guard<hpxlite::util::spinlock> lk(di.dep_mtx);
        if (a.acc == op_access::OP_READ) {
            if (di.last_write.valid()) {
                deps.push_back(di.last_write);  // RAW
            }
        } else {
            if (di.last_write.valid()) {
                deps.push_back(di.last_write);  // WAW
            }
            for (auto const& r : di.readers) {
                deps.push_back(r);  // WAR
            }
        }
    }
    return deps;
}

/// Record this loop's completion future on every dat it touches, so
/// later loops can chain on it. Issue order defines program order.
inline void publish_dependencies(std::span<op_arg const> args,
                                 hpxlite::shared_future<void> const& done) {
    for (auto const& a : args) {
        if (!a.dat.valid()) {
            continue;
        }
        auto& di = a.dat.internal();
        std::lock_guard<hpxlite::util::spinlock> lk(di.dep_mtx);
        if (a.acc == op_access::OP_READ) {
            di.readers.push_back(done);
        } else {
            di.last_write = done;
            di.readers.clear();
        }
    }
}

}  // namespace detail

/// HPX dataflow backend (the paper's contribution, Section IV):
/// the loop is *issued*, not executed — it runs as soon as all loops it
/// depends on (through its dats) have finished, and its own completion is
/// returned as a future and threaded onto its dats. Independent loops
/// interleave automatically; there is no global barrier.
///
/// Reduction results (op_arg_gbl) are only valid after the returned
/// future becomes ready.
template <typename Kernel, typename... Args>
hpxlite::shared_future<void> op_par_loop_hpx(loop_options const& opts,
                                             char const* name, op_set set,
                                             Kernel kernel, Args... args) {
    constexpr std::size_t n = sizeof...(Args);
    auto ex = std::make_shared<detail::loop_executor<Kernel, n>>(
        std::move(set), std::array<op_arg, n>{std::move(args)...},
        std::move(kernel), opts);
    ex->validate(name);
    op_plan const& plan = plan_get(ex->set(), ex->args(), opts.part_size);

    auto deps = detail::collect_dependencies(ex->args());

    auto policy = hpxlite::execution::par.with(opts.chunk);
    if (opts.pool != nullptr) {
        policy = policy.on(*opts.pool);
    }

    auto body = hpxlite::when_all(std::move(deps))
                    .then([ex, policy, plan_ptr = &plan, name](
                              hpxlite::future<std::vector<
                                  hpxlite::shared_future<void>>>&& ready) {
                        // Propagate failures from any dependency loop.
                        for (auto& dep : ready.get()) {
                            dep.get();
                        }
                        hpxlite::util::stopwatch sw;
                        ex->execute(*plan_ptr,
                                    [&](std::span<std::size_t const> blocks) {
                                        hpxlite::parallel::for_loop(
                                            policy, std::size_t{0},
                                            blocks.size(), [&](std::size_t k) {
                                                ex->run_block(*plan_ptr,
                                                              blocks[k]);
                                            });
                                    });
                        op_timing_record(name, "hpx", sw.elapsed_s());
                    });

    hpxlite::shared_future<void> done = body.share();
    detail::publish_dependencies(ex->args(), done);
    return done;
}

}  // namespace op2
