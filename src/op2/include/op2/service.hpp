#pragma once

// Multi-tenant simulation service: many independent op2 programs (jobs)
// sharing one process and one thread pool.
//
// PRs 1-8 made ONE program's loops overlap as aggressively as legality
// allows; the service layer is the next scale out — the ROADMAP's
// "heavy traffic" item. An op2::service::job encapsulates one op2
// program: its own sets/dats/maps (declared inside the job body), its
// own plan-cache namespace, dependency tables, reduction combine lock
// and fault/quarantine scope, all carried by a runtime_context
// (op2/context.hpp). A service::scheduler admits and runs many jobs
// concurrently on the shared pool under a pluggable fairness policy.
//
// Lifecycle of a job:
//   submitted -> waiting (policy queue) -> admitted (admission control)
//   -> running (body on a pool worker, context installed) -> fenced
//   (every dat the job declared drained, fusion window flushed)
//   -> completed | failed (body threw, or quarantine spans remain)
//   -> plans purged (scheduler_options::purge_plans)
//
// Isolation guarantees (see docs/service.md):
//  * plan cache: plan keys carry the context id — jobs never share or
//    evict each other's plans, and a retired job's plans are purged;
//  * dependency tracking: dep records live in the job's own dats, so
//    same-shaped meshes in two jobs share nothing;
//  * reductions: the combine lock is per-context — two jobs' reductions
//    never contend (and never mix, since the variables are job-local);
//  * faults: the quarantine gate is per-context — a poisoned span in
//    job A never makes job B's issue path scan or fail.
//
// Concurrency-correctness claim, tested (test_service_isolation.cpp):
// N jobs run concurrently produce bitwise-identical results to the same
// N jobs run sequentially, per job.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <op2/context.hpp>

namespace hpxlite::threads {
class thread_pool;
}

namespace op2::service {

/// Everything the scheduler knows about a job before running it.
struct job_desc {
    std::string name;
    /// The op2 program: declares its sets/maps/dats, issues loops,
    /// reads back results. Runs on a pool worker with the job's
    /// runtime_context installed; loops it issues fan out across the
    /// shared pool as usual. Must not wait on *other* jobs.
    std::function<void()> program;
    /// Workload estimates, used by admission control (bytes) and by
    /// cost-aware policies (shortest_chain_first prices the job through
    /// psim). Zero means unknown.
    std::uint64_t est_loops = 0;
    std::size_t est_bytes = 0;
    /// Fairness grouping for round_robin: jobs of one tenant take
    /// turns against other tenants'. Empty = the job's name.
    std::string tenant;
};

enum class job_state { waiting, running, completed, failed };

/// Per-job timings and counters, valid once the job left running state.
struct job_metrics {
    double wait_s = 0.0;          ///< submit -> admitted
    double run_s = 0.0;           ///< admitted -> fenced
    double latency_s = 0.0;       ///< submit -> fenced (wait + run)
    std::uint64_t loops_issued = 0;  ///< op_par_loop calls under the job
};

namespace detail {
struct job_impl;
}

/// Value-semantic handle to a submitted job; copies alias one job.
class job {
public:
    job() = default;

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
    [[nodiscard]] std::string const& name() const;
    [[nodiscard]] job_state state() const;

    /// Block until the job completed or failed. Safe from the
    /// submitting (non-pool) thread; do not call from inside another
    /// job's program.
    void wait() const;

    [[nodiscard]] bool failed() const;
    /// Rethrow the job body's exception (or the quarantine diagnostic);
    /// no-op if the job succeeded.
    void rethrow() const;

    [[nodiscard]] job_metrics metrics() const;

    /// The job's runtime context (id keys its plan-cache namespace).
    [[nodiscard]] std::shared_ptr<runtime_context> const& context() const;

private:
    friend class scheduler;
    explicit job(std::shared_ptr<detail::job_impl> impl)
      : impl_(std::move(impl)) {}
    std::shared_ptr<detail::job_impl> impl_;
};

/// What a policy sees of one waiting job. est_cost_s starts as the
/// psim price computed at submission; once the job's tenant has
/// retired a job, the scheduler re-prices with the tenant's measured
/// run-time EWMA instead (measured beats modelled — the same principle
/// as the loop tuner's explore-then-exploit, applied at job
/// granularity).
struct job_view {
    char const* name = "";
    char const* tenant = "";
    double est_cost_s = 0.0;  ///< EWMA of measured runs, else psim price
    std::uint64_t seq = 0;    ///< submission order, monotone
};

/// A named, swappable fairness policy: given the waiting queue (in
/// submission order), pick the index to admit next. The scheduler
/// admits in strict policy order — if the picked job does not fit the
/// admission limits, nothing is admitted until it does (head-of-line
/// blocking by design: no starvation). See docs/service.md for how to
/// add a policy.
class schedule_policy {
public:
    virtual ~schedule_policy() = default;
    [[nodiscard]] virtual char const* name() const noexcept = 0;
    /// `waiting` is never empty; return an index < waiting.size().
    virtual std::size_t pick(std::span<job_view const> waiting) = 0;
};

/// Construct a policy by name: "fifo" (submission order),
/// "round_robin" (tenants take turns), "shortest_chain_first"
/// (cheapest psim-priced job first). Throws std::invalid_argument for
/// unknown names.
std::unique_ptr<schedule_policy> make_policy(std::string_view name);

/// The names make_policy accepts, for --help text and benches.
std::vector<std::string_view> policy_names();

struct scheduler_options {
    /// Admission limits: at most this many jobs in flight (0 = the
    /// pool's worker count) and at most this many estimated bytes
    /// (sum of admitted jobs' est_bytes; 0 = unlimited). A job whose
    /// est_bytes alone exceed the byte limit is admitted only when
    /// nothing else is in flight — oversized jobs run alone rather
    /// than never.
    std::size_t max_in_flight_jobs = 0;
    std::size_t max_in_flight_bytes = 0;
    /// Fairness policy name (see make_policy).
    std::string policy = "fifo";
    /// Purge the job's plan-cache namespace at retirement. Keep it on
    /// for long-lived services; off only if jobs resubmit identical
    /// meshes and want warm plans.
    bool purge_plans = true;
};

/// Aggregate, per-policy service metrics (the bench row family
/// service_* in bench_table1_policies derives from these).
struct scheduler_metrics {
    std::string policy;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t loops_issued = 0;   ///< across all finished jobs
    double wall_s = 0.0;              ///< first submit -> last retirement
    double throughput_jobs_s = 0.0;   ///< finished / wall
    double mean_wait_s = 0.0;
    double mean_latency_s = 0.0;
    double p95_latency_s = 0.0;
    double p99_latency_s = 0.0;
};

/// Admits and runs jobs on the shared thread pool. Thread-safe;
/// submit from any non-pool thread. The destructor drains.
class scheduler {
public:
    explicit scheduler(scheduler_options opts = {});
    ~scheduler();

    scheduler(scheduler const&) = delete;
    scheduler& operator=(scheduler const&) = delete;

    /// Queue a job; the policy decides when it runs.
    job submit(job_desc desc);

    /// Block until every submitted job retired.
    void drain();

    [[nodiscard]] scheduler_metrics metrics() const;

    /// The tenant's measured run-time EWMA (what re-prices its waiting
    /// jobs' est_cost_s), or 0.0 while the tenant has not completed a
    /// job yet — the psim price still applies then. Exposed so tests
    /// can pin the psim -> measured switch-over.
    [[nodiscard]] double measured_tenant_cost(std::string_view tenant) const;

private:
    struct state;
    void run_job(std::shared_ptr<detail::job_impl> const& j);
    void admit_locked();

    std::unique_ptr<state> st_;
};

}  // namespace op2::service
