#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <op2/set.hpp>

namespace op2 {

namespace detail {
struct map_impl {
    op_set from;
    op_set to;
    int dim = 0;
    std::vector<int> data;  // from.size() * dim entries, values < to.size()
    std::string name;
    std::uint64_t id = 0;
};
}  // namespace detail

/// Connectivity between two sets: `dim` entries of the target set per
/// element of the source set (paper: op_decl_map(edges, nodes, 2, ...)).
/// A default-constructed op_map is the identity map OP_ID used for
/// direct arguments.
class op_map {
public:
    op_map() = default;

    [[nodiscard]] bool is_identity() const noexcept { return impl_ == nullptr; }
    [[nodiscard]] op_set const& from() const;
    [[nodiscard]] op_set const& to() const;
    [[nodiscard]] int dim() const noexcept { return impl_ ? impl_->dim : 1; }
    [[nodiscard]] std::string const& name() const;
    [[nodiscard]] std::uint64_t id() const noexcept {
        return impl_ ? impl_->id : 0;
    }

    /// Target index of slot `j` of source element `e`.
    [[nodiscard]] int operator()(std::size_t e, int j) const noexcept {
        return impl_->data[e * static_cast<std::size_t>(impl_->dim) +
                           static_cast<std::size_t>(j)];
    }

    [[nodiscard]] std::vector<int> const& table() const;

    friend bool operator==(op_map const& a, op_map const& b) noexcept {
        return a.impl_ == b.impl_;
    }

private:
    explicit op_map(std::shared_ptr<detail::map_impl> p) noexcept
      : impl_(std::move(p)) {}

    friend op_map op_decl_map(op_set, op_set, int, std::vector<int>,
                              std::string);

    std::shared_ptr<detail::map_impl> impl_;
};

/// The identity map: direct access, element i maps to itself.
inline const op_map OP_ID{};

/// Declare a mapping table. Throws std::invalid_argument when the table
/// size is not from.size()*dim or any entry is out of range for `to`.
op_map op_decl_map(op_set from, op_set to, int dim, std::vector<int> data,
                   std::string name);

}  // namespace op2
