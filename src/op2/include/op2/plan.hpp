#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include <op2/arg.hpp>
#include <op2/set.hpp>

namespace op2 {

/// An execution plan for one (set, args, part_size) combination:
/// the iteration set partitioned into contiguous blocks, and the blocks
/// greedily coloured so that no two blocks of the same colour touch the
/// same target element through any mutating indirect argument. Blocks of
/// one colour can run concurrently without atomics; colours execute in
/// sequence. This reproduces the blockId/offset_b/nelem structure of the
/// OP2-generated loop in Fig. 4 of the paper.
struct op_plan {
    std::size_t set_size = 0;
    std::size_t part_size = 0;
    std::size_t nblocks = 0;

    std::vector<std::size_t> offset;  // [nblocks] first element of block
    std::vector<std::size_t> nelems;  // [nblocks] elements in block

    std::size_t ncolors = 0;
    std::vector<std::size_t> color_offset;  // [ncolors+1] ranges into blkmap
    std::vector<std::size_t> blkmap;        // [nblocks] block ids, by colour

    /// True when any argument required conflict colouring.
    bool colored = false;

    /// Blocks of colour c (ids into offset/nelems).
    [[nodiscard]] std::span<std::size_t const> blocks_of_color(
        std::size_t c) const {
        return {blkmap.data() + color_offset[c],
                color_offset[c + 1] - color_offset[c]};
    }
};

/// Build (or fetch from the process-wide cache) the plan for executing
/// `args` over `set` with the given block size. Plans are cached by
/// (set, part_size, conflict-relevant maps), like op_plan_get in OP2.
op_plan const& plan_get(op_set const& set, std::span<op_arg const> args,
                        std::size_t part_size);

/// Build a plan without consulting the cache (exposed for tests).
op_plan plan_build(op_set const& set, std::span<op_arg const> args,
                   std::size_t part_size);

/// Drop all cached plans (tests / reinitialisation).
void plan_cache_clear();

/// Number of plans currently cached.
std::size_t plan_cache_size();

}  // namespace op2
