#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include <op2/arg.hpp>
#include <op2/set.hpp>

namespace op2 {

/// Block size used when the caller passes part_size == 0 ("pick for me").
/// plan_get normalises before keying the cache, so 0 and this value hit
/// the same cached plan.
inline constexpr std::size_t default_part_size = 128;

/// Pre-resolved gather table for one indirect argument class of a loop:
/// for every element of the iteration set, the byte offset of its target
/// datum inside the dat's storage. The executor's inner loop reads
/// `base + off[i]` instead of `base + map[i*mapdim+idx]*stride`, which
/// removes one indexed load and one multiply per argument per element and
/// turns the map traversal into a stream the hardware prefetcher likes.
/// Tables are identified by (map, slot, stride); several op_args of one
/// loop may share a table.
struct plan_stage {
    std::uint64_t map_id = 0;
    int idx = 0;
    std::size_t stride = 0;          // bytes per target-set element
    /// Nonzero when the class is uniformly strided at one of the widths
    /// the vectorised gather kernels handle (16/32 bytes per element —
    /// dim-2/dim-4 doubles; every table entry is then a multiple of this
    /// value by construction). The executor's SIMD gather path
    /// (loop_options::simd_gather) stages such read-only arguments into
    /// aligned contiguous scratch with unrolled copy kernels instead of
    /// resolving them per element.
    std::size_t simd = 0;
    std::vector<std::uint32_t> off;  // [set_size] byte offsets into the dat
};

/// Which partitions of an indirect argument's *target* set this plan's
/// element range reaches through (map, slot) — the map-derived partition
/// footprint. The dataflow backend turns these into per-partition
/// dependency requests: a sub-node executing this plan edges on exactly
/// the dat partitions it can touch, nothing more. Only present on plans
/// built at partition granularity (npartitions > 1).
struct plan_footprint {
    std::uint64_t map_id = 0;
    int idx = 0;
    std::vector<std::uint32_t> parts;  // sorted target-partition ids
};

/// Identifies one plan configuration. Everything in here affects the
/// built plan's contents, so everything in here is part of the cache
/// key (see the key-collision regression tests in test_plan.cpp).
struct plan_desc {
    /// Block (mini-partition) size; 0 normalises to default_part_size.
    std::size_t part_size = default_part_size;
    /// Whether staged gather tables are built. Plans for
    /// staged_gather == false carry no tables (the legacy executor
    /// resolves per element), so the two configurations must not share
    /// a cache slot.
    bool staged_gather = true;
    /// Partition granularity of the iteration set and every indirect
    /// target set (1 = whole-set plan).
    std::size_t npartitions = 1;
    /// Which partition this plan covers (< npartitions).
    std::size_t partition = 0;
};

/// An execution plan for one (set, args, part_size) combination:
/// the iteration set partitioned into contiguous blocks, the blocks
/// coloured so that no two blocks of the same colour touch the same
/// target element through any mutating indirect argument, and one staged
/// gather table per indirect argument class. Blocks of one colour can run
/// concurrently without atomics; colours execute in sequence. This
/// reproduces the blockId/offset_b/nelem structure of the OP2-generated
/// loop in Fig. 4 of the paper, plus OP2's staging (loc-map) tables.
struct op_plan {
    /// Elements covered by this plan. Whole-set plans cover [0, set
    /// size); partition plans cover [elem_base, elem_base + set_size) of
    /// the set, with every block offset and gather table indexed
    /// *relative* to elem_base (the executor re-bases its direct
    /// pointers and map rows once per loop, so the hot path is
    /// unchanged).
    std::size_t set_size = 0;   // elements covered (partition size)
    std::size_t elem_base = 0;  // absolute index of the first element
    std::size_t part_size = 0;
    std::size_t nblocks = 0;

    /// Partition context the plan was built for.
    std::size_t npartitions = 1;
    std::size_t partition = 0;

    std::vector<std::size_t> offset;  // [nblocks] first element of block
    std::vector<std::size_t> nelems;  // [nblocks] elements in block

    std::size_t ncolors = 0;
    std::vector<std::size_t> color_offset;  // [ncolors+1] ranges into blkmap
    std::vector<std::size_t> blkmap;        // [nblocks] block ids, by colour

    /// True when any argument required conflict colouring.
    bool colored = false;

    /// Staged gather tables, one per distinct (map, slot, stride) among
    /// the loop's indirect args. A table can be absent when the target
    /// dat is too large for 32-bit byte offsets; the executor then falls
    /// back to per-element map resolution for that argument.
    std::vector<plan_stage> stages;

    /// Map-derived partition footprints, one per distinct (map, slot)
    /// among the loop's indirect args. Empty on whole-set plans.
    std::vector<plan_footprint> footprints;

    /// Blocks of colour c (ids into offset/nelems).
    [[nodiscard]] std::span<std::size_t const> blocks_of_color(
        std::size_t c) const {
        return {blkmap.data() + color_offset[c],
                color_offset[c + 1] - color_offset[c]};
    }

    /// The staged table for (map, slot, stride), or nullptr when absent.
    [[nodiscard]] plan_stage const* find_stage(std::uint64_t map_id, int idx,
                                               std::size_t stride) const
        noexcept {
        for (auto const& s : stages) {
            if (s.map_id == map_id && s.idx == idx && s.stride == stride) {
                return &s;
            }
        }
        return nullptr;
    }

    /// The target-partition footprint of (map, slot), or nullptr when
    /// absent (whole-set plans carry none).
    [[nodiscard]] plan_footprint const* find_footprint(std::uint64_t map_id,
                                                       int idx) const
        noexcept {
        for (auto const& f : footprints) {
            if (f.map_id == map_id && f.idx == idx) {
                return &f;
            }
        }
        return nullptr;
    }
};

/// Fusion compatibility of two plans over the same element range: true
/// when both partition the range into identical blocks AND assign every
/// block the same colour id. The chain-fusion legality check
/// (exec/backend.hpp) runs a loop pair through the *union* plan of
/// their concatenated arguments; executing a loop under a different
/// colouring than its solo plan would reorder its indirect INC
/// accumulation (floating-point sums are order-sensitive), so fusion is
/// only legal when this predicate holds for each constituent against
/// the union — which makes "fused is bitwise-identical to unfused"
/// provable from the already-cached per-partition plans. Block
/// geometry is position-independent (same set, part_size, partition
/// ⇒ same offsets), so in practice this compares the colour maps.
[[nodiscard]] bool plan_colors_equal(op_plan const& a, op_plan const& b);

/// Build (or fetch from the process-wide cache) the plan for executing
/// `args` over `set` (or over one partition of it) under `desc`. Plans
/// are cached by (set, every plan_desc field, indirect argument
/// classes), like op_plan_get in OP2. The cache is two-level: a
/// per-worker (thread-local) pointer map answers repeat lookups with no
/// locking or atomics at all — concurrent loops on different workers
/// never contend — backed by a sharded shared store that owns the plans,
/// so every worker resolves one configuration to the same op_plan.
op_plan const& plan_get(op_set const& set, std::span<op_arg const> args,
                        plan_desc const& desc);

/// Whole-set convenience overload (partition granularity 1).
op_plan const& plan_get(op_set const& set, std::span<op_arg const> args,
                        std::size_t part_size);

/// Warm the cache for every partition plan of each candidate partition
/// count (the online tuner's ladder): called once per tuned site,
/// before exploration starts, so no explored configuration's first
/// measurement rides on a cold plan build the exploited configuration
/// would never pay. A count <= 1 warms the whole-set plan.
void plan_prewarm(op_set const& set, std::span<op_arg const> args,
                  std::size_t part_size, bool staged_gather,
                  std::span<std::size_t const> candidates);

/// Build a plan without consulting the cache (exposed for tests).
op_plan plan_build(op_set const& set, std::span<op_arg const> args,
                   plan_desc const& desc);

op_plan plan_build(op_set const& set, std::span<op_arg const> args,
                   std::size_t part_size);

/// Drop all cached plans (tests / reinitialisation).
void plan_cache_clear();

/// Number of plans currently cached.
std::size_t plan_cache_size();

/// Number of plans cached under one runtime_context (plan keys carry
/// the issuing context's id — see op2/context.hpp).
std::size_t plan_cache_size(std::uint64_t ctx_id);

/// Drop the plans cached under one runtime_context, leaving every other
/// context's plans in place. The service layer calls this at job
/// retirement so a long-lived process doesn't accumulate dead jobs'
/// plans.
void plan_cache_purge(std::uint64_t ctx_id);

}  // namespace op2
