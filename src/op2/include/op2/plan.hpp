#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include <op2/arg.hpp>
#include <op2/set.hpp>

namespace op2 {

/// Block size used when the caller passes part_size == 0 ("pick for me").
/// plan_get normalises before keying the cache, so 0 and this value hit
/// the same cached plan.
inline constexpr std::size_t default_part_size = 128;

/// Pre-resolved gather table for one indirect argument class of a loop:
/// for every element of the iteration set, the byte offset of its target
/// datum inside the dat's storage. The executor's inner loop reads
/// `base + off[i]` instead of `base + map[i*mapdim+idx]*stride`, which
/// removes one indexed load and one multiply per argument per element and
/// turns the map traversal into a stream the hardware prefetcher likes.
/// Tables are identified by (map, slot, stride); several op_args of one
/// loop may share a table.
struct plan_stage {
    std::uint64_t map_id = 0;
    int idx = 0;
    std::size_t stride = 0;          // bytes per target-set element
    std::vector<std::uint32_t> off;  // [set_size] byte offsets into the dat
};

/// An execution plan for one (set, args, part_size) combination:
/// the iteration set partitioned into contiguous blocks, the blocks
/// coloured so that no two blocks of the same colour touch the same
/// target element through any mutating indirect argument, and one staged
/// gather table per indirect argument class. Blocks of one colour can run
/// concurrently without atomics; colours execute in sequence. This
/// reproduces the blockId/offset_b/nelem structure of the OP2-generated
/// loop in Fig. 4 of the paper, plus OP2's staging (loc-map) tables.
struct op_plan {
    std::size_t set_size = 0;
    std::size_t part_size = 0;
    std::size_t nblocks = 0;

    std::vector<std::size_t> offset;  // [nblocks] first element of block
    std::vector<std::size_t> nelems;  // [nblocks] elements in block

    std::size_t ncolors = 0;
    std::vector<std::size_t> color_offset;  // [ncolors+1] ranges into blkmap
    std::vector<std::size_t> blkmap;        // [nblocks] block ids, by colour

    /// True when any argument required conflict colouring.
    bool colored = false;

    /// Staged gather tables, one per distinct (map, slot, stride) among
    /// the loop's indirect args. A table can be absent when the target
    /// dat is too large for 32-bit byte offsets; the executor then falls
    /// back to per-element map resolution for that argument.
    std::vector<plan_stage> stages;

    /// Blocks of colour c (ids into offset/nelems).
    [[nodiscard]] std::span<std::size_t const> blocks_of_color(
        std::size_t c) const {
        return {blkmap.data() + color_offset[c],
                color_offset[c + 1] - color_offset[c]};
    }

    /// The staged table for (map, slot, stride), or nullptr when absent.
    [[nodiscard]] plan_stage const* find_stage(std::uint64_t map_id, int idx,
                                               std::size_t stride) const
        noexcept {
        for (auto const& s : stages) {
            if (s.map_id == map_id && s.idx == idx && s.stride == stride) {
                return &s;
            }
        }
        return nullptr;
    }
};

/// Build (or fetch from the process-wide cache) the plan for executing
/// `args` over `set` with the given block size. Plans are cached by
/// (set, normalised part_size, indirect argument classes), like
/// op_plan_get in OP2. The cache is an unordered map sharded across
/// independently locked stripes; lookups take a shared lock only.
op_plan const& plan_get(op_set const& set, std::span<op_arg const> args,
                        std::size_t part_size);

/// Build a plan without consulting the cache (exposed for tests).
op_plan plan_build(op_set const& set, std::span<op_arg const> args,
                   std::size_t part_size);

/// Drop all cached plans (tests / reinitialisation).
void plan_cache_clear();

/// Number of plans currently cached.
std::size_t plan_cache_size();

}  // namespace op2
