#pragma once

// Online auto-tuner for the hpx_dataflow backend: picks the partition
// count and placement policy of a loop from *measured* wall spans
// instead of the static defaults (partitions = pool size, affinity).
//
// Structure:
//
//  * Measurement store — per-context, per-(loop site, shape) records of
//    the loop's dataflow wall span (first sub-node start to join, the
//    same span op_timing already reports). A site is keyed by
//    (context id, loop name, set size, pool size); lookups go through a
//    thread-local pointer cache backed by a spinlocked sharded store —
//    the plan cache's discipline — and the measurements themselves
//    accumulate lock-free (atomic add from the loop's join node, the
//    point where the per-worker sub-node spans have already been merged
//    into one wall time by mark_start/wall_seconds).
//
//  * Candidate ladder — deterministic, derived from the pool size:
//    {1, pool/2, pool, 2*pool} partitions (deduped, ascending) crossed
//    with {affinity, any} placement (whole-set granularity has nothing
//    to place, so partitions == 1 appears once). Identical pools give
//    identical ladders, which is what makes exploration replayable.
//
//  * Policy — bounded exploration, then exploitation. Each candidate is
//    issued exactly once, in ascending order of its psim prior
//    (machine_model::partition_prior_us — the first issue is the
//    prior's argmin, never blind), after which every issue picks the
//    argmin of the measured means; candidates that never reported (a
//    fused issue, a failed loop) keep their prior. The choice is a pure
//    function of the accumulated measurements, so same measurements =>
//    same choice. Shape and pool size are part of the site key, so a
//    shape or pool change starts a fresh exploration rather than
//    exploiting stale numbers.
//
// Safety: every ladder value is a configuration the differential suite
// already proves bitwise-equivalent (partition count and placement
// never change results, only schedule), so a tuned run is
// memcmp-identical to any fixed configuration by construction.
//
// Enablement: loop_options::partitions = op2::auto_tune opts a single
// loop in; OP2HPX_AUTOTUNE=1 re-routes every defaulted
// (partitions == 0) hpx_dataflow loop through the tuner — how the CI
// leg runs the whole tier-1 suite tuned.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <op2/loop_options.hpp>

namespace op2::tune {

/// One candidate configuration of the ladder.
struct config {
    std::size_t partitions = 0;
    placement_kind placement = placement_kind::affinity;
};

/// The deterministic candidate ladder for a pool of `pool_size`
/// workers: {1, pool/2, pool, 2*pool} partitions (deduped, ascending)
/// x {affinity, any}, with the whole-set entry (partitions == 1)
/// appearing once — placement is meaningless for a single node.
[[nodiscard]] std::vector<config> ladder(std::size_t pool_size);

/// Process default of the tuner: OP2HPX_AUTOTUNE=1/on/true/yes routes
/// every defaulted (partitions == 0) hpx_dataflow loop through
/// choose(). Read once, cached.
[[nodiscard]] bool autotune_default() noexcept;

/// Measurement token carried by an issued loop: identifies the site and
/// ladder index the loop's wall span should accrue to. Default
/// (inactive) tokens make report() a no-op, so untuned loops pay one
/// branch. The token *owns* a reference to the site: a loop's join node
/// is not tracked in the dat records, so a job-retirement purge() can
/// run between the fence and the join's report — the shared_ptr keeps
/// the purged site alive until the last outstanding probe drops it.
struct probe {
    std::shared_ptr<void> site;
    std::uint32_t cfg = 0;
    [[nodiscard]] bool active() const noexcept { return site != nullptr; }
};

/// What choose() resolved for this issue.
struct decision {
    config chosen;
    probe token;
    /// True while the site is still exploring its ladder.
    bool exploring = false;
    /// Distinct candidate partition counts, filled only on the site's
    /// *first* consult — the issue path prewarms these plans
    /// (plan_prewarm) so exploration never measures a cold plan build
    /// the exploited configuration would not pay.
    std::vector<std::size_t> prewarm;
};

/// Resolve the configuration for one issue of loop `name` over
/// `set_size` elements on a `pool_size`-worker pool, under the current
/// context. Thread-safe; concurrent issuers of one site serialise on
/// the site's spinlock and claim successive exploration slots.
[[nodiscard]] decision choose(char const* name, std::size_t set_size,
                              std::size_t pool_size);

/// Accrue a measured wall span to the token's (site, config) cell.
/// Lock-free (two atomic adds); called from the loop's join node.
/// Inactive tokens no-op.
void report(probe const& p, double wall_s) noexcept;

/// Snapshot of one site's accumulated state (tests, bench reporting).
struct site_stats {
    std::vector<config> configs;         ///< the site's ladder
    std::vector<std::uint64_t> issues;   ///< choose() picks per config
    std::vector<std::uint64_t> runs;     ///< report() samples per config
    std::vector<double> mean_s;          ///< measured mean (0 if no runs)
    std::vector<double> prior_s;         ///< psim prior per config
    bool exploring = false;
    std::size_t chosen = 0;  ///< index exploit would pick right now
};

/// Stats of the (current context, name, set_size, pool_size) site.
/// Creates the site if it does not exist yet (issues all zero).
[[nodiscard]] site_stats stats(char const* name, std::size_t set_size,
                               std::size_t pool_size);

/// Human-readable "parts=N placement" for bench rows and logs.
[[nodiscard]] std::string describe(config const& c);

/// Drop every site of one context (service job retirement, next to
/// plan_cache_purge — the job is fenced, so no in-flight probe can
/// still point at the dropped sites).
void purge(std::uint64_t ctx_id);

/// Drop every site (tests). Callers must have fenced all tuned loops.
void clear();

}  // namespace op2::tune
