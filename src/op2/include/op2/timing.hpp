#pragma once

// Per-loop timing diagnostics, mirroring stock OP2's op_timers /
// op_timing_output: every backend records wall time per op_par_loop call
// site (keyed by loop name), so applications can see where time goes and
// how it shifts between the fork-join and dataflow backends.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace op2 {

/// Accumulated statistics of one loop name on one backend.
struct loop_timing {
    std::string name;
    std::string backend;       // exec backend name: "seq" | "staged" | "hpx_dataflow"
    std::uint64_t count = 0;   // invocations
    double total_s = 0.0;      // summed body wall time
    double max_s = 0.0;        // slowest single invocation

    [[nodiscard]] double mean_s() const {
        return count == 0 ? 0.0 : total_s / static_cast<double>(count);
    }
};

/// Enable/disable collection (enabled by default; recording costs one
/// clock read per loop).
void op_timing_enable(bool enabled);
bool op_timing_enabled();

/// Record one invocation (used by the backends; public for custom
/// backends and tests).
void op_timing_record(char const* name, char const* backend,
                      double elapsed_s);

/// Snapshot of all records, sorted by descending total time.
std::vector<loop_timing> op_timing_snapshot();

/// Reset all counters.
void op_timing_reset();

/// Pretty-print the table (op_timing_output analogue).
void op_timing_output(std::ostream& os);

}  // namespace op2
