#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include <op2/access.hpp>
#include <op2/dat.hpp>
#include <op2/map.hpp>

namespace op2 {

namespace detail {

/// Type-erased init/combine for global-reduction arguments.
struct gbl_ops {
    void (*init)(std::byte* priv, std::byte const* user, int dim) = nullptr;
    void (*combine)(std::byte* user, std::byte const* priv, int dim,
                    op_access acc) = nullptr;
};

template <typename T>
gbl_ops make_gbl_ops() {
    gbl_ops ops;
    ops.init = [](std::byte* priv, std::byte const* user, int dim) {
        auto* p = reinterpret_cast<T*>(priv);
        auto const* u = reinterpret_cast<T const*>(user);
        for (int d = 0; d < dim; ++d) {
            // OP_INC partials start at the additive identity; MIN/MAX
            // partials start at the user's current value so combining is
            // uniform across access kinds.
            p[d] = u[d];
        }
    };
    ops.combine = [](std::byte* user, std::byte const* priv, int dim,
                     op_access acc) {
        auto* u = reinterpret_cast<T*>(user);
        auto const* p = reinterpret_cast<T const*>(priv);
        for (int d = 0; d < dim; ++d) {
            switch (acc) {
                case op_access::OP_INC: u[d] += p[d]; break;
                case op_access::OP_MIN: u[d] = std::min(u[d], p[d]); break;
                case op_access::OP_MAX: u[d] = std::max(u[d], p[d]); break;
                default: break;
            }
        }
    };
    return ops;
}

template <typename T>
void gbl_zero(std::byte* priv, int dim) {
    auto* p = reinterpret_cast<T*>(priv);
    for (int d = 0; d < dim; ++d) {
        p[d] = T{};
    }
}

}  // namespace detail

/// One kernel argument of an op_par_loop: either data on a set (direct or
/// indirect through a map) or a global scalar/array.
struct op_arg {
    // Dat argument ----------------------------------------------------
    op_dat dat;      // invalid for global args
    int idx = -1;    // -1 => direct; >= 0 => slot into map
    op_map map;      // identity for direct args
    int dim = 0;
    op_access acc = op_access::OP_READ;

    // Global argument ---------------------------------------------------
    std::byte* gbl_data = nullptr;
    std::size_t gbl_elem_bytes = 0;
    detail::gbl_ops gbl;
    void (*gbl_zero_fn)(std::byte*, int) = nullptr;

    [[nodiscard]] bool is_gbl() const noexcept { return gbl_data != nullptr; }
    [[nodiscard]] bool is_direct() const noexcept {
        return !is_gbl() && map.is_identity();
    }
    [[nodiscard]] bool is_indirect() const noexcept {
        return !is_gbl() && !map.is_identity();
    }
    /// Indirect accumulation needs conflict-free (coloured) execution.
    [[nodiscard]] bool needs_coloring() const noexcept {
        return is_indirect() && is_mutating(acc);
    }
    [[nodiscard]] std::size_t elem_bytes() const noexcept {
        return is_gbl() ? gbl_elem_bytes : dat.elem_bytes();
    }
};

/// Construct a dat argument (paper: op_arg_dat(p_q, -1, OP_ID, 4,
/// "double", OP_READ)). Validates dimensions, the map target set and the
/// type string against the dat's declaration.
inline op_arg op_arg_dat(op_dat d, int idx, op_map const& m, int dim,
                         std::string_view type, op_access acc) {
    if (!d.valid()) {
        throw std::invalid_argument("op_arg_dat: invalid dat");
    }
    if (dim != d.dim()) {
        throw std::invalid_argument("op_arg_dat '" + d.name() +
                                    "': dim mismatch");
    }
    if (type != d.type_name()) {
        throw std::invalid_argument("op_arg_dat '" + d.name() +
                                    "': type mismatch (dat is " +
                                    d.type_name() + ", arg says " +
                                    std::string(type) + ")");
    }
    if (m.is_identity()) {
        if (idx != -1) {
            throw std::invalid_argument("op_arg_dat '" + d.name() +
                                        "': direct args require idx == -1");
        }
    } else {
        if (idx < 0 || idx >= m.dim()) {
            throw std::invalid_argument("op_arg_dat '" + d.name() +
                                        "': map slot out of range");
        }
        if (!(m.to() == d.set())) {
            throw std::invalid_argument(
                "op_arg_dat '" + d.name() +
                "': map target set does not match dat's set");
        }
        if (acc == op_access::OP_MIN || acc == op_access::OP_MAX) {
            throw std::invalid_argument(
                "op_arg_dat: OP_MIN/OP_MAX are only valid for op_arg_gbl");
        }
    }
    op_arg a;
    a.dat = std::move(d);
    a.idx = idx;
    a.map = m;
    a.dim = dim;
    a.acc = acc;
    return a;
}

/// Construct a global argument (reduction for OP_INC/OP_MIN/OP_MAX,
/// broadcast constant for OP_READ). `data` must stay alive for the
/// duration of the loop (and until its future resolves, for the hpx
/// backend).
template <typename T>
op_arg op_arg_gbl(T* data, int dim, std::string_view /*type*/, op_access acc) {
    if (data == nullptr) {
        throw std::invalid_argument("op_arg_gbl: null pointer");
    }
    if (dim <= 0) {
        throw std::invalid_argument("op_arg_gbl: dim must be positive");
    }
    if (acc == op_access::OP_RW) {
        throw std::invalid_argument("op_arg_gbl: OP_RW not supported");
    }
    op_arg a;
    a.idx = -1;
    a.dim = dim;
    a.acc = acc;
    a.gbl_data = reinterpret_cast<std::byte*>(data);
    a.gbl_elem_bytes = sizeof(T);
    a.gbl = detail::make_gbl_ops<T>();
    a.gbl_zero_fn = &detail::gbl_zero<T>;
    return a;
}

}  // namespace op2
