// Umbrella header for the op2hpx OP2 reimplementation: the unstructured-
// mesh DSL (sets / maps / dats / parallel loops) with a pluggable
// backend layer (op2/exec) — sequential, staged fork-join ("OpenMP-
// style", global barrier per loop) and HPX dataflow (asynchronous,
// epoch-chained). See DESIGN.md.
#pragma once

#include <op2/access.hpp>
#include <op2/arg.hpp>
#include <op2/comm.hpp>
#include <op2/context.hpp>
#include <op2/dat.hpp>
#include <op2/exec/backend.hpp>
#include <op2/exec/checkpoint.hpp>
#include <op2/exec/watchdog.hpp>
#include <op2/fault.hpp>
#include <op2/loop_options.hpp>
#include <op2/map.hpp>
#include <op2/memory.hpp>
#include <op2/par_loop.hpp>
#include <op2/par_loop_hpx.hpp>
#include <op2/plan.hpp>
#include <op2/runtime.hpp>
#include <op2/service.hpp>
#include <op2/set.hpp>
#include <op2/timing.hpp>

namespace op2 {

/// Unified entry point: dispatch on the globally configured backend
/// through the exec layer. With backend::hpx the loop is only *issued*;
/// use op_fence()/op_fence_all() or op_fetch_data() before consuming
/// results.
template <typename Kernel, typename... Args>
void op_par_loop(char const* name, op_set set, Kernel kernel, Args... args) {
    auto const& cfg = global_config();
    loop_options opts = cfg.opts;
    opts.backend = to_exec_backend(cfg.be);
    (void)exec::run_loop(opts, name, std::move(set), std::move(kernel),
                         std::move(args)...);
}

}  // namespace op2
