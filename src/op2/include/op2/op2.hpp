// Umbrella header for the op2hpx OP2 reimplementation: the unstructured-
// mesh DSL (sets / maps / dats / parallel loops) with three backends —
// sequential, fork-join ("OpenMP-style", global barrier per loop) and
// HPX dataflow (asynchronous, future-chained). See DESIGN.md.
#pragma once

#include <op2/access.hpp>
#include <op2/arg.hpp>
#include <op2/dat.hpp>
#include <op2/loop_options.hpp>
#include <op2/map.hpp>
#include <op2/par_loop.hpp>
#include <op2/par_loop_hpx.hpp>
#include <op2/plan.hpp>
#include <op2/runtime.hpp>
#include <op2/set.hpp>
#include <op2/timing.hpp>

namespace op2 {

/// Unified entry point: dispatch on the globally configured backend.
/// With backend::hpx the loop is only *issued*; use the returned future,
/// op_fence()/op_fence_all() or op_fetch_data() before consuming results.
template <typename Kernel, typename... Args>
void op_par_loop(char const* name, op_set set, Kernel kernel, Args... args) {
    auto const& cfg = global_config();
    switch (cfg.be) {
        case backend::seq:
            op_par_loop_seq(name, std::move(set), std::move(kernel),
                            std::move(args)...);
            break;
        case backend::fork_join:
            op_par_loop_fork_join(cfg.opts, name, std::move(set),
                                  std::move(kernel), std::move(args)...);
            break;
        case backend::hpx:
            (void)op_par_loop_hpx(cfg.opts, name, std::move(set),
                                  std::move(kernel), std::move(args)...);
            break;
    }
}

}  // namespace op2
