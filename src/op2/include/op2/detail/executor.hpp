#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <hpxlite/config.hpp>
#include <op2/arg.hpp>
#include <op2/kernel_traits.hpp>
#include <op2/loop_options.hpp>
#include <op2/plan.hpp>
#include <op2/set.hpp>

namespace op2::detail {

inline void prefetch_ro(void const* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0, 3);
#else
    (void)p;
#endif
}

/// Pre-resolved per-argument state for the hot loop.
struct arg_ctx {
    std::byte* base = nullptr;   // dat storage (null for globals)
    std::size_t stride = 0;      // bytes per set element (dim * elem)
    int const* map = nullptr;    // mapping table (null for direct)
    int mapdim = 0;
    int idx = 0;
    bool gbl = false;
    // prefetch geometry (direct args only)
    std::size_t pf_dist_bytes = 0;   // lookahead in bytes
    std::size_t pf_stride_elems = 1; // issue one prefetch per this many elems
};

/// Backend-agnostic loop body: owns the kernel, the resolved argument
/// contexts and the per-block global-reduction scratch. The backends
/// differ only in *how* they distribute blocks over workers, which they
/// inject through the `bulk` callable of execute().
template <typename Kernel, std::size_t N>
class loop_executor {
public:
    loop_executor(op_set set, std::array<op_arg, N> args, Kernel kernel,
                  loop_options opts)
      : set_(std::move(set)),
        args_(std::move(args)),
        kernel_(std::move(kernel)),
        opts_(opts) {
        static_assert(N == kernel_arity_v<Kernel>,
                      "op_par_loop: argument count does not match kernel");
    }

    /// Check every argument against the iteration set. Throws
    /// std::invalid_argument with the loop name on mismatch.
    void validate(char const* name) const {
        for (auto const& a : args_) {
            if (a.is_gbl()) {
                continue;
            }
            if (a.is_direct()) {
                if (!(a.dat.set() == set_)) {
                    throw std::invalid_argument(
                        std::string("op_par_loop '") + name +
                        "': direct dat '" + a.dat.name() +
                        "' not defined on the iteration set");
                }
            } else {
                if (!(a.map.from() == set_)) {
                    throw std::invalid_argument(
                        std::string("op_par_loop '") + name + "': map '" +
                        a.map.name() + "' does not start at the iteration set");
                }
            }
        }
    }

    [[nodiscard]] std::span<op_arg const> args() const { return args_; }
    [[nodiscard]] op_set const& set() const { return set_; }
    [[nodiscard]] loop_options const& options() const { return opts_; }

    /// Run the loop over `plan`, delegating the per-colour block sweep to
    /// `bulk(blocks)` (which must execute run_block(b) for every b in
    /// `blocks` and only return once all finished). Handles reduction
    /// scratch setup and the final combine.
    template <typename Bulk>
    void execute(op_plan const& plan, Bulk&& bulk) {
        setup(plan);
        for (std::size_t c = 0; c < plan.ncolors; ++c) {
            bulk(plan.blocks_of_color(c));
        }
        combine();
    }

    /// Execute one block of the plan (called from bulk).
    void run_block(op_plan const& plan, std::size_t blk) {
        std::byte* ptrs[N];
        std::size_t const b = plan.offset[blk];
        std::size_t const e = b + plan.nelems[blk];

        // Per-block pointers for global args.
        std::byte* gblp[N];
        for (std::size_t j = 0; j < N; ++j) {
            if (ctx_[j].gbl) {
                gblp[j] = scratch_[j].empty()
                              ? args_[j].gbl_data
                              : scratch_[j].data() +
                                    blk * args_[j].gbl_elem_bytes *
                                        static_cast<std::size_t>(args_[j].dim);
            } else {
                gblp[j] = nullptr;
            }
        }

        bool const pf = opts_.prefetch;
        for (std::size_t i = b; i < e; ++i) {
            for (std::size_t j = 0; j < N; ++j) {
                arg_ctx const& c = ctx_[j];
                if (c.gbl) {
                    ptrs[j] = gblp[j];
                } else if (c.map != nullptr) {
                    ptrs[j] =
                        c.base +
                        static_cast<std::size_t>(
                            c.map[i * static_cast<std::size_t>(c.mapdim) +
                                  static_cast<std::size_t>(c.idx)]) *
                            c.stride;
                } else {
                    ptrs[j] = c.base + i * c.stride;
                    if (pf && i % ctx_[j].pf_stride_elems == 0) {
                        std::size_t const t = i * c.stride + c.pf_dist_bytes;
                        if (t < dat_bytes_[j]) {
                            prefetch_ro(c.base + t);
                        }
                    }
                }
            }
            invoke_kernel(kernel_, ptrs);
        }
    }

    /// Sequential reference execution — no plan, no privatisation; global
    /// args use the user's pointer directly, like stock OP2's seq backend.
    void run_sequential() {
        std::byte* ptrs[N];
        prepare_ctx();
        std::size_t const n = set_.size();
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < N; ++j) {
                arg_ctx const& c = ctx_[j];
                if (c.gbl) {
                    ptrs[j] = args_[j].gbl_data;
                } else if (c.map != nullptr) {
                    ptrs[j] =
                        c.base +
                        static_cast<std::size_t>(
                            c.map[i * static_cast<std::size_t>(c.mapdim) +
                                  static_cast<std::size_t>(c.idx)]) *
                            c.stride;
                } else {
                    ptrs[j] = c.base + i * c.stride;
                }
            }
            invoke_kernel(kernel_, ptrs);
        }
    }

private:
    void prepare_ctx() {
        for (std::size_t j = 0; j < N; ++j) {
            op_arg& a = args_[j];
            arg_ctx c;
            if (a.is_gbl()) {
                c.gbl = true;
            } else {
                c.base = a.dat.raw();
                c.stride = a.dat.elem_bytes() *
                           static_cast<std::size_t>(a.dat.dim());
                dat_bytes_[j] = a.dat.set().size() * c.stride;
                if (a.is_indirect()) {
                    c.map = a.map.table().data();
                    c.mapdim = a.map.dim();
                    c.idx = a.idx;
                } else if (opts_.prefetch) {
                    // One prefetch per cache line; lookahead expressed in
                    // cache lines (the paper's distance factor).
                    std::size_t const epl = std::max<std::size_t>(
                        1, hpxlite::cache_line_size / std::max<std::size_t>(
                                                          1, c.stride));
                    c.pf_stride_elems = epl;
                    c.pf_dist_bytes = opts_.prefetch_distance_factor *
                                      hpxlite::cache_line_size;
                }
            }
            ctx_[j] = c;
        }
    }

    void setup(op_plan const& plan) {
        prepare_ctx();
        for (std::size_t j = 0; j < N; ++j) {
            op_arg& a = args_[j];
            scratch_[j].clear();
            if (!a.is_gbl() || a.acc == op_access::OP_READ) {
                continue;
            }
            // Privatise the reduction target per block.
            std::size_t const bytes =
                a.gbl_elem_bytes * static_cast<std::size_t>(a.dim);
            scratch_[j].resize(bytes * plan.nblocks);
            for (std::size_t blk = 0; blk < plan.nblocks; ++blk) {
                std::byte* p = scratch_[j].data() + blk * bytes;
                if (a.acc == op_access::OP_INC) {
                    a.gbl_zero_fn(p, a.dim);
                } else {
                    a.gbl.init(p, a.gbl_data, a.dim);
                }
            }
        }
        nblocks_ = plan.nblocks;
    }

    void combine() {
        for (std::size_t j = 0; j < N; ++j) {
            op_arg& a = args_[j];
            if (scratch_[j].empty()) {
                continue;
            }
            std::size_t const bytes =
                a.gbl_elem_bytes * static_cast<std::size_t>(a.dim);
            for (std::size_t blk = 0; blk < nblocks_; ++blk) {
                a.gbl.combine(a.gbl_data, scratch_[j].data() + blk * bytes,
                              a.dim, a.acc);
            }
        }
    }

    op_set set_;
    std::array<op_arg, N> args_;
    Kernel kernel_;
    loop_options opts_;

    arg_ctx ctx_[N] = {};
    std::size_t dat_bytes_[N] = {};
    std::array<std::vector<std::byte>, N> scratch_;
    std::size_t nblocks_ = 0;
};

}  // namespace op2::detail
