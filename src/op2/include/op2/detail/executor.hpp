#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <hpxlite/config.hpp>
#include <op2/arg.hpp>
#include <op2/kernel_traits.hpp>
#include <op2/loop_options.hpp>
#include <op2/memory.hpp>
#include <op2/plan.hpp>
#include <op2/set.hpp>

namespace op2::detail {

inline void prefetch_ro(void const* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0, 3);
#else
    (void)p;
#endif
}

/// Pre-resolved per-argument state for the hot loop.
struct arg_ctx {
    std::byte* base = nullptr;   // dat storage (null for globals)
    std::size_t stride = 0;      // bytes per set element (dim * elem)
    int const* map = nullptr;    // mapping table (null for direct)
    int mapdim = 0;
    int idx = 0;
    // staged gather table from the plan (indirect args; null -> fall back
    // to per-element map resolution)
    std::uint32_t const* stage = nullptr;
    // nonzero: stage this argument through aligned contiguous scratch
    // with the fixed-stride kernels (the value is the stride class, 16
    // or 32). Direction depends on `scat`: false gathers a read-only
    // argument up front (loop_options::simd_gather); true hands the
    // kernel a zeroed block-private accumulation buffer for an OP_INC
    // argument and scatter-adds it back after the element loop
    // (loop_options::simd_scatter).
    std::size_t simd = 0;
    bool scat = false;
    bool gbl = false;
    // prefetch geometry
    std::size_t pf_dist_bytes = 0;    // direct: lookahead in bytes
    std::size_t pf_stride_elems = 1;  // direct: one prefetch per this many
    std::size_t pf_ahead_elems = 0;   // indirect: map-ahead in elements
};

/// Backend-agnostic loop body: owns the kernel, the resolved argument
/// contexts and the per-block global-reduction scratch. The backends
/// differ only in *how* they distribute blocks over workers, which they
/// inject through the `bulk` callable of execute().
///
/// run_block dispatches between two specialised paths chosen once per
/// loop (not per element):
///  * all-direct: every pointer advances by a constant stride, so the
///    element loop is pure pointer bumps — no per-element, per-argument
///    mode branches and no `base + i*stride` recompute;
///  * staged: indirect pointers come from the plan's pre-resolved byte-
///    offset tables (`base + off[i]`, no map load + multiply), direct
///    pointers bump, and — the paper's headline prefetch technique,
///    extended from direct to indirect operands — while executing element
///    i the loop issues a software prefetch for the *target* of element
///    i + distance through the same table (map-ahead prefetching).
/// The seed's per-element branchy resolution is preserved as
/// run_block_legacy behind loop_options::staged_gather == false; it is
/// the benchmark baseline and a differential-test oracle.
template <typename Kernel, std::size_t N>
class loop_executor {
public:
    loop_executor(op_set set, std::array<op_arg, N> args, Kernel kernel,
                  loop_options opts)
      : set_(std::move(set)),
        args_(std::move(args)),
        kernel_(std::in_place, std::move(kernel)),
        opts_(opts) {
        static_assert(N == kernel_arity_v<Kernel>,
                      "op_par_loop: argument count does not match kernel");
    }

    /// Re-point a pooled executor at a fresh issue (exec::backend.hpp's
    /// cross-issue group pool): new set/arg handles, kernel and options.
    /// The grow-only reduction scratch keeps its capacity — only the
    /// contents are re-seeded, by the next prepare_scratch() — which is
    /// what turns the per-issue scratch allocation into a one-time
    /// warm-up cost. The kernel is re-emplaced because lambdas are
    /// copy-constructible but not assignable.
    void rebind(op_set set, std::array<op_arg, N> args, Kernel const& kernel,
                loop_options const& opts) {
        set_ = std::move(set);
        args_ = std::move(args);
        kernel_.emplace(kernel);
        opts_ = opts;
    }

    /// Check every argument against the iteration set. Throws
    /// std::invalid_argument with the loop name on mismatch.
    void validate(char const* name) const {
        for (auto const& a : args_) {
            if (a.is_gbl()) {
                continue;
            }
            if (a.is_direct()) {
                if (!(a.dat.set() == set_)) {
                    throw std::invalid_argument(
                        std::string("op_par_loop '") + name +
                        "': direct dat '" + a.dat.name() +
                        "' not defined on the iteration set");
                }
            } else {
                if (!(a.map.from() == set_)) {
                    throw std::invalid_argument(
                        std::string("op_par_loop '") + name + "': map '" +
                        a.map.name() + "' does not start at the iteration set");
                }
            }
        }
    }

    [[nodiscard]] std::span<op_arg const> args() const { return args_; }
    [[nodiscard]] op_set const& set() const { return set_; }
    [[nodiscard]] loop_options const& options() const { return opts_; }

    /// Drop the set/arg handles (dat/map shared ownership) once the loop
    /// has executed. The dataflow backend's node outlives its run inside
    /// dat dep_records; keeping the handles there would cycle
    /// dat -> node -> dat and pin both forever.
    void release_handles() noexcept {
        for (auto& a : args_) {
            a = op_arg{};
        }
        set_ = op_set{};
    }

    /// Run the loop over `plan`, delegating the per-colour block sweep to
    /// `bulk(blocks)` (which must execute run_block(b) for every b in
    /// `blocks` and only return once all finished). Handles reduction
    /// scratch setup and the final combine.
    template <typename Bulk>
    void execute(op_plan const& plan, Bulk&& bulk) {
        setup(plan);
        prepare_scratch();
        for (std::size_t c = 0; c < plan.ncolors; ++c) {
            bulk(plan.blocks_of_color(c));
        }
        combine();
    }

    /// Bind argument contexts and stage tables to `plan` without
    /// executing anything. The partition-granular dataflow path calls
    /// this once at issue time and then drives colours individually
    /// through run_color(); execute() remains the one-shot form for the
    /// synchronous backends.
    void setup(op_plan const& plan) {
        prepare_ctx();
        bind_plan(plan);
    }

    /// Initialise the per-block reduction scratch. Must run *after* the
    /// loop's dependencies resolved and before the first block: MIN/MAX
    /// partials seed from the user's current value, which an earlier
    /// loop reducing into the same variable may still be updating at
    /// issue time. setup(plan) must have run. The allocation is cached
    /// per executor instance (grow-only) and only the *contents* are
    /// re-seeded, so repeated runs of one executor over the same plan
    /// allocate nothing.
    void prepare_scratch() {
        for (std::size_t j = 0; j < N; ++j) {
            op_arg& a = args_[j];
            reduction_[j] = a.is_gbl() && a.acc != op_access::OP_READ;
            if (!reduction_[j]) {
                continue;
            }
            // Privatise the reduction target per block.
            std::size_t const bytes =
                a.gbl_elem_bytes * static_cast<std::size_t>(a.dim);
            if (scratch_[j].size() < bytes * nblocks_) {
                scratch_[j].resize(bytes * nblocks_);
            }
            for (std::size_t blk = 0; blk < nblocks_; ++blk) {
                std::byte* p = scratch_[j].data() + blk * bytes;
                if (a.acc == op_access::OP_INC) {
                    a.gbl_zero_fn(p, a.dim);
                } else {
                    a.gbl.init(p, a.gbl_data, a.dim);
                }
            }
        }
    }

    /// Run every block of colour `c` inline on the calling thread. A
    /// (partition, colour) dataflow sub-node *is* the unit of
    /// parallelism, so its blocks need no further fan-out.
    void run_color(op_plan const& plan, std::size_t c) {
        for (std::size_t b : plan.blocks_of_color(c)) {
            run_block(plan, b);
        }
    }

    /// Fold the per-block reduction partials into the user's globals.
    /// Must run exactly once, after every block executed; with
    /// partitioned execution the join node serialises the per-partition
    /// combines, so concurrent partition sweeps never race on the user's
    /// variable.
    void combine() {
        for (std::size_t j = 0; j < N; ++j) {
            op_arg& a = args_[j];
            if (!reduction_[j]) {
                continue;
            }
            std::size_t const bytes =
                a.gbl_elem_bytes * static_cast<std::size_t>(a.dim);
            for (std::size_t blk = 0; blk < nblocks_; ++blk) {
                a.gbl.combine(a.gbl_data, scratch_[j].data() + blk * bytes,
                              a.dim, a.acc);
            }
        }
    }

    /// Execute one block of the plan (called from bulk).
    void run_block(op_plan const& plan, std::size_t blk) {
        if (!opts_.staged_gather) {
            run_block_legacy(plan, blk);
            return;
        }
        if (all_direct_) {
            opts_.prefetch ? run_block_direct<true>(plan, blk)
                           : run_block_direct<false>(plan, blk);
        } else if (all_indirect_staged_ && any_simd_) {
            opts_.prefetch ? run_block_simd<true>(plan, blk)
                           : run_block_simd<false>(plan, blk);
        } else if (all_indirect_staged_) {
            opts_.prefetch ? run_block_staged<true>(plan, blk)
                           : run_block_staged<false>(plan, blk);
        } else {
            run_block_mapped(plan, blk);
        }
    }

    /// Sequential reference execution — no plan, no privatisation; global
    /// args use the user's pointer directly, like stock OP2's seq backend.
    void run_sequential() {
        std::byte* ptrs[N];
        prepare_ctx();
        std::size_t const n = set_.size();
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < N; ++j) {
                arg_ctx const& c = ctx_[j];
                if (c.gbl) {
                    ptrs[j] = args_[j].gbl_data;
                } else if (c.map != nullptr) {
                    ptrs[j] =
                        c.base +
                        static_cast<std::size_t>(
                            c.map[i * static_cast<std::size_t>(c.mapdim) +
                                  static_cast<std::size_t>(c.idx)]) *
                            c.stride;
                } else {
                    ptrs[j] = c.base + i * c.stride;
                }
            }
            invoke_kernel(*kernel_, ptrs);
        }
    }

private:
    /// All-direct fast path: every pointer advances by a constant stride
    /// (0 for globals), so the element loop carries no address arithmetic
    /// beyond the bumps and no branches besides the loop condition.
    template <bool Prefetch>
    void run_block_direct(op_plan const& plan, std::size_t blk) {
        std::byte* ptrs[N];
        std::size_t step[N];
        std::size_t const b = plan.offset[blk];
        std::size_t const e = b + plan.nelems[blk];

        std::byte* gblp[N];
        resolve_gbl_ptrs(blk, gblp);
        for (std::size_t j = 0; j < N; ++j) {
            arg_ctx const& c = ctx_[j];
            if (c.gbl) {
                ptrs[j] = gblp[j];
                step[j] = 0;
            } else {
                ptrs[j] = c.base + b * c.stride;
                step[j] = c.stride;
            }
        }
        for (std::size_t i = b; i < e; ++i) {
            if constexpr (Prefetch) {
                issue_direct_prefetch(i);
            }
            invoke_kernel(*kernel_, ptrs);
            for (std::size_t j = 0; j < N; ++j) {
                ptrs[j] += step[j];
            }
        }
    }

    /// Staged path for loops whose every indirect argument has a gather
    /// table (the overwhelmingly common case). All per-argument state
    /// lives in local arrays whose address never escapes, so the
    /// compiler keeps bases/tables in registers across the (inlined)
    /// kernel call; per element a staged argument costs one 32-bit table
    /// load and an add, and the only branches are on loop-invariant
    /// `stg[j] != nullptr`, unrolled at compile time over j.
    template <bool Prefetch>
    void run_block_staged(op_plan const& plan, std::size_t blk) {
        std::byte* ptrs[N];
        std::byte* base[N];
        std::uint32_t const* stg[N];
        std::size_t step[N];
        std::size_t pf_ahead[N];
        std::size_t const b = plan.offset[blk];
        std::size_t const e = b + plan.nelems[blk];
        std::size_t const n = plan.set_size;

        std::byte* gblp[N];
        resolve_gbl_ptrs(blk, gblp);
        for (std::size_t j = 0; j < N; ++j) {
            arg_ctx const& c = ctx_[j];
            base[j] = c.base;
            stg[j] = c.stage;
            pf_ahead[j] = c.pf_ahead_elems;
            if (c.gbl) {
                ptrs[j] = gblp[j];
                step[j] = 0;
            } else if (c.map == nullptr) {
                ptrs[j] = c.base + b * c.stride;
                step[j] = c.stride;
            } else {
                ptrs[j] = nullptr;  // resolved per element below
                step[j] = 0;
            }
        }
        for (std::size_t i = b; i < e; ++i) {
            for (std::size_t j = 0; j < N; ++j) {
                if (stg[j] != nullptr) {
                    ptrs[j] = base[j] + stg[j][i];
                    if constexpr (Prefetch) {
                        // Map-ahead: prefetch the indirect operand of the
                        // element `pf_ahead` elements on, through the same
                        // staged table (crossing into the next block is
                        // fine — those are valid set elements).
                        std::size_t const a = i + pf_ahead[j];
                        if (a < n) {
                            prefetch_ro(base[j] + stg[j][a]);
                        }
                    }
                }
            }
            if constexpr (Prefetch) {
                issue_direct_prefetch(i);
            }
            invoke_kernel(*kernel_, ptrs);
            for (std::size_t j = 0; j < N; ++j) {
                ptrs[j] += step[j];
            }
        }
    }

    /// SIMD staged path: like run_block_staged, except that arguments
    /// of a fixed 16/32-byte stride class are staged through cache-
    /// line-aligned contiguous scratch (memory::tls_scratch) and the
    /// inner loop advances them as plain pointer bumps:
    ///  * read-only staged arguments (loop_options::simd_gather) are
    ///    copied in up front with the unrolled fixed-stride gather
    ///    kernels — the kernel reads exactly the bytes the scalar path
    ///    would have read (a gather copies, it never reorders
    ///    arithmetic), so this is bitwise-identical by construction;
    ///  * OP_INC staged arguments (loop_options::simd_scatter) get a
    ///    zeroed block-private accumulation buffer instead of live
    ///    per-element target pointers, and after the element loop the
    ///    net contributions are scattered back with the unrolled
    ///    fixed-stride add kernels *in element order* — the order the
    ///    scalar path accumulates in — with arguments targeting the
    ///    same dat scattered jointly element-major to preserve the
    ///    scalar interleaving. Bitwise identity holds as long as the
    ///    kernel accumulates each output component once per element
    ///    (bind_plan already requires every access to a buffered dat
    ///    to be a buffered INC).
    /// What the path buys: vectorised, hardware-prefetcher-friendly
    /// copy/accumulate loops instead of dependent load/store chains
    /// inside the kernel, and aligned unit-stride kernel operands.
    /// Other mutating indirect arguments keep the per-element table
    /// resolution (their writes must land in the dat immediately).
    template <bool Prefetch>
    void run_block_simd(op_plan const& plan, std::size_t blk) {
        std::byte* ptrs[N];
        std::byte* base[N];
        std::uint32_t const* stg[N];  // per-element staged (non-gathered)
        std::size_t step[N];
        std::size_t pf_ahead[N];
        std::byte* scat_seg[N];  // INC accumulation buffer (null: none)
        bool scat_done[N];
        std::size_t const b = plan.offset[blk];
        std::size_t const e = b + plan.nelems[blk];
        std::size_t const nel = e - b;
        std::size_t const n = plan.set_size;

        // Carve one aligned segment per staged-through-scratch argument
        // out of the per-thread arena (a block runs inline on one
        // worker, so the arena cannot be re-entered while the kernel
        // loop is live).
        std::size_t need = 0;
        for (std::size_t j = 0; j < N; ++j) {
            if (ctx_[j].simd != 0) {
                need += memory::pad_to_line(nel * ctx_[j].simd);
            }
        }
        std::byte* const arena = memory::tls_scratch(need);

        std::byte* gblp[N];
        resolve_gbl_ptrs(blk, gblp);
        std::size_t cursor = 0;
        for (std::size_t j = 0; j < N; ++j) {
            arg_ctx const& c = ctx_[j];
            base[j] = c.base;
            stg[j] = nullptr;
            scat_seg[j] = nullptr;
            scat_done[j] = false;
            pf_ahead[j] = c.pf_ahead_elems;
            if (c.gbl) {
                ptrs[j] = gblp[j];
                step[j] = 0;
            } else if (c.map == nullptr) {
                ptrs[j] = c.base + b * c.stride;
                step[j] = c.stride;
            } else if (c.simd != 0) {
                std::byte* const seg = arena + cursor;
                cursor += memory::pad_to_line(nel * c.simd);
                if (c.scat) {
                    std::memset(seg, 0, nel * c.simd);
                    scat_seg[j] = seg;
                } else {
                    memory::gather(seg, c.base, c.stage + b, nel, c.simd);
                }
                ptrs[j] = seg;
                step[j] = c.stride;
            } else {
                ptrs[j] = nullptr;  // resolved per element below
                stg[j] = c.stage;
                step[j] = 0;
            }
        }
        for (std::size_t i = b; i < e; ++i) {
            for (std::size_t j = 0; j < N; ++j) {
                if (stg[j] != nullptr) {
                    ptrs[j] = base[j] + stg[j][i];
                    if constexpr (Prefetch) {
                        std::size_t const a = i + pf_ahead[j];
                        if (a < n) {
                            prefetch_ro(base[j] + stg[j][a]);
                        }
                    }
                }
            }
            if constexpr (Prefetch) {
                issue_direct_prefetch(i);
            }
            invoke_kernel(*kernel_, ptrs);
            for (std::size_t j = 0; j < N; ++j) {
                ptrs[j] += step[j];
            }
        }
        // Scatter the private INC buffers back. A dat targeted by one
        // argument takes the unrolled fixed-stride kernel; a dat
        // targeted by several (res_calc's two edge->cell slots) is
        // scattered jointly element-major across those arguments so the
        // contribution order matches the scalar path exactly even when
        // map slots collide across elements.
        for (std::size_t j = 0; j < N; ++j) {
            if (scat_seg[j] == nullptr || scat_done[j]) {
                continue;
            }
            std::size_t group[N];
            std::size_t gn = 0;
            for (std::size_t k = j; k < N; ++k) {
                if (scat_seg[k] != nullptr && !scat_done[k] &&
                    args_[k].dat == args_[j].dat) {
                    group[gn++] = k;
                    scat_done[k] = true;
                }
            }
            if (gn == 1) {
                memory::scatter_add(base[j], scat_seg[j],
                                    ctx_[j].stage + b, nel, ctx_[j].simd);
                continue;
            }
            std::size_t const dim = ctx_[j].simd / sizeof(double);
            for (std::size_t k = 0; k < nel; ++k) {
                for (std::size_t g = 0; g < gn; ++g) {
                    std::size_t const jj = group[g];
                    auto* d = reinterpret_cast<double*>(
                        base[jj] + ctx_[jj].stage[b + k]);
                    auto const* s = reinterpret_cast<double const*>(
                        scat_seg[jj] + k * ctx_[jj].simd);
                    for (std::size_t c2 = 0; c2 < dim; ++c2) {
                        d[c2] += s[c2];
                    }
                }
            }
        }
    }

    /// Mixed fallback for the rare loop with an un-staged indirect
    /// argument (target dat beyond 32-bit offsets): staged tables where
    /// available, per-element map resolution where not.
    void run_block_mapped(op_plan const& plan, std::size_t blk) {
        std::byte* ptrs[N];
        std::size_t step[N];
        std::size_t const b = plan.offset[blk];
        std::size_t const e = b + plan.nelems[blk];

        std::byte* gblp[N];
        resolve_gbl_ptrs(blk, gblp);
        for (std::size_t j = 0; j < N; ++j) {
            arg_ctx const& c = ctx_[j];
            if (c.gbl) {
                ptrs[j] = gblp[j];
                step[j] = 0;
            } else if (c.map == nullptr) {
                ptrs[j] = c.base + b * c.stride;
                step[j] = c.stride;
            } else {
                ptrs[j] = nullptr;
                step[j] = 0;
            }
        }
        for (std::size_t i = b; i < e; ++i) {
            for (std::size_t j = 0; j < N; ++j) {
                arg_ctx const& c = ctx_[j];
                if (c.stage != nullptr) {
                    ptrs[j] = c.base + c.stage[i];
                } else if (c.map != nullptr) {
                    ptrs[j] =
                        c.base +
                        static_cast<std::size_t>(
                            c.map[i * static_cast<std::size_t>(c.mapdim) +
                                  static_cast<std::size_t>(c.idx)]) *
                            c.stride;
                }
            }
            invoke_kernel(*kernel_, ptrs);
            for (std::size_t j = 0; j < N; ++j) {
                ptrs[j] += step[j];
            }
        }
    }

    /// The seed's per-element resolution (branch per argument per
    /// element, map load + multiply for indirect args). Benchmark
    /// baseline and differential-test oracle; not used when
    /// loop_options::staged_gather is on.
    void run_block_legacy(op_plan const& plan, std::size_t blk) {
        std::byte* ptrs[N];
        std::size_t const b = plan.offset[blk];
        std::size_t const e = b + plan.nelems[blk];

        std::byte* gblp[N];
        resolve_gbl_ptrs(blk, gblp);

        bool const pf = opts_.prefetch;
        for (std::size_t i = b; i < e; ++i) {
            for (std::size_t j = 0; j < N; ++j) {
                arg_ctx const& c = ctx_[j];
                if (c.gbl) {
                    ptrs[j] = gblp[j];
                } else if (c.map != nullptr) {
                    ptrs[j] =
                        c.base +
                        static_cast<std::size_t>(
                            c.map[i * static_cast<std::size_t>(c.mapdim) +
                                  static_cast<std::size_t>(c.idx)]) *
                            c.stride;
                } else {
                    ptrs[j] = c.base + i * c.stride;
                    if (pf && i % c.pf_stride_elems == 0) {
                        std::size_t const t = i * c.stride + c.pf_dist_bytes;
                        if (t < dat_bytes_[j]) {
                            prefetch_ro(c.base + t);
                        }
                    }
                }
            }
            invoke_kernel(*kernel_, ptrs);
        }
    }

    void issue_direct_prefetch(std::size_t i) {
        for (std::size_t j = 0; j < N; ++j) {
            arg_ctx const& c = ctx_[j];
            if (c.pf_dist_bytes != 0 && i % c.pf_stride_elems == 0) {
                std::size_t const t = i * c.stride + c.pf_dist_bytes;
                if (t < dat_bytes_[j]) {
                    prefetch_ro(c.base + t);
                }
            }
        }
    }

    void resolve_gbl_ptrs(std::size_t blk, std::byte* (&gblp)[N]) {
        for (std::size_t j = 0; j < N; ++j) {
            if (ctx_[j].gbl) {
                gblp[j] = reduction_[j]
                              ? scratch_[j].data() +
                                    blk * args_[j].gbl_elem_bytes *
                                        static_cast<std::size_t>(args_[j].dim)
                              : args_[j].gbl_data;
            } else {
                gblp[j] = nullptr;
            }
        }
    }

    /// True when another argument of this loop writes the dat argument j
    /// reads. The scalar paths hand the kernel live dat pointers, so a
    /// read of a written dat can observe the loop's own earlier writes;
    /// a gathered block-start snapshot could not — such arguments stay
    /// on the per-element path to keep the SIMD gather bitwise-faithful
    /// even for aliased programs.
    [[nodiscard]] bool write_aliased(std::size_t j) const {
        for (std::size_t k = 0; k < N; ++k) {
            if (k != j && args_[k].dat.valid() &&
                args_[k].dat == args_[j].dat &&
                args_[k].acc != op_access::OP_READ) {
                return true;
            }
        }
        return false;
    }

    void prepare_ctx() {
        all_direct_ = true;
        for (std::size_t j = 0; j < N; ++j) {
            op_arg& a = args_[j];
            arg_ctx c;
            if (a.is_gbl()) {
                c.gbl = true;
            } else {
                c.base = a.dat.raw();
                c.stride = a.dat.elem_bytes() *
                           static_cast<std::size_t>(a.dat.dim());
                dat_bytes_[j] = a.dat.set().size() * c.stride;
                if (a.is_indirect()) {
                    all_direct_ = false;
                    c.map = a.map.table().data();
                    c.mapdim = a.map.dim();
                    c.idx = a.idx;
                    if (opts_.prefetch) {
                        // Map-ahead distance in elements, derived from the
                        // paper's cache-line distance factor.
                        c.pf_ahead_elems = std::max<std::size_t>(
                            1, opts_.prefetch_distance_factor *
                                   hpxlite::cache_line_size /
                                   std::max<std::size_t>(1, c.stride));
                    }
                } else if (opts_.prefetch) {
                    // One prefetch per cache line; lookahead expressed in
                    // cache lines (the paper's distance factor).
                    std::size_t const epl = std::max<std::size_t>(
                        1, hpxlite::cache_line_size / std::max<std::size_t>(
                                                          1, c.stride));
                    c.pf_stride_elems = epl;
                    c.pf_dist_bytes = opts_.prefetch_distance_factor *
                                      hpxlite::cache_line_size;
                }
            }
            ctx_[j] = c;
        }
    }

    void bind_plan(op_plan const& plan) {
        // Bind each indirect argument to its staged table in the plan.
        all_indirect_staged_ = true;
        any_simd_ = false;
        for (std::size_t j = 0; j < N; ++j) {
            arg_ctx& c = ctx_[j];
            c.simd = 0;
            c.scat = false;
            if (c.map == nullptr) {
                continue;
            }
            plan_stage const* st = nullptr;
            if (opts_.staged_gather) {
                if ((st = plan.find_stage(args_[j].map.id(), c.idx,
                                          c.stride))) {
                    c.stage = st->off.data();
                }
            }
            if (c.stage == nullptr) {
                all_indirect_staged_ = false;
            } else if (opts_.simd_gather && st->simd != 0 &&
                       args_[j].acc == op_access::OP_READ &&
                       !write_aliased(j)) {
                c.simd = st->simd;
                any_simd_ = true;
            }
        }
        // Second pass — SIMD scatter eligibility needs every argument's
        // stage binding resolved first: an OP_INC argument may only be
        // buffered when *every* access to its dat in this loop is a
        // buffered indirect OP_INC. Any other access (a read, a write,
        // an un-staged INC) would observe the dat mid-block, and the
        // buffering hides exactly that state. Components are pinned to
        // doubles because the scatter is a typed accumulation, unlike
        // the type-agnostic byte-copy gather.
        if (opts_.staged_gather && opts_.simd_scatter) {
            for (std::size_t j = 0; j < N; ++j) {
                arg_ctx& c = ctx_[j];
                if (c.map == nullptr || c.stage == nullptr ||
                    args_[j].acc != op_access::OP_INC ||
                    !memory::simd_stride(c.stride) ||
                    args_[j].dat.elem_bytes() != sizeof(double)) {
                    continue;
                }
                bool inc_only = true;
                for (std::size_t k = 0; k < N && inc_only; ++k) {
                    if (k == j || !args_[k].dat.valid() ||
                        !(args_[k].dat == args_[j].dat)) {
                        continue;
                    }
                    inc_only = args_[k].acc == op_access::OP_INC &&
                               ctx_[k].map != nullptr &&
                               ctx_[k].stage != nullptr;
                }
                if (inc_only) {
                    c.simd = c.stride;
                    c.scat = true;
                    any_simd_ = true;
                }
            }
        }
        // Partition plans index elements relative to elem_base: re-base
        // the direct pointers and map rows once here so every inner loop
        // runs unchanged. Indirect bases stay as-is (the gather tables
        // hold absolute byte offsets into the target dat).
        if (plan.elem_base != 0) {
            for (std::size_t j = 0; j < N; ++j) {
                arg_ctx& c = ctx_[j];
                if (c.gbl) {
                    continue;
                }
                if (c.map != nullptr) {
                    c.map += plan.elem_base *
                             static_cast<std::size_t>(c.mapdim);
                } else {
                    c.base += plan.elem_base * c.stride;
                    dat_bytes_[j] -= plan.elem_base * c.stride;
                }
            }
        }
        nblocks_ = plan.nblocks;
    }

    op_set set_;
    std::array<op_arg, N> args_;
    // optional so a pooled executor can re-emplace a (non-assignable)
    // lambda on rebind; engaged for the executor's whole lifetime.
    std::optional<Kernel> kernel_;
    loop_options opts_;

    arg_ctx ctx_[N] = {};
    std::size_t dat_bytes_[N] = {};
    std::array<std::vector<std::byte>, N> scratch_;
    bool reduction_[N] = {};  // arg j reduces through scratch_[j]
    std::size_t nblocks_ = 0;
    bool all_direct_ = true;
    bool all_indirect_staged_ = false;
    bool any_simd_ = false;
};

}  // namespace op2::detail
