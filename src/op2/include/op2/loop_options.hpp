#pragma once

#include <cstddef>

#include <hpxlite/execution/chunkers.hpp>
#include <hpxlite/threads/thread_pool.hpp>
#include <op2/exec/backend_kind.hpp>

namespace op2 {

namespace detail {
/// Process default of loop_options::simd_gather: true unless the
/// OP2HPX_SIMD_GATHER environment variable is set to 0/off/false/no —
/// that is how a CI leg runs the whole tier-1 suite over the scalar
/// oracle path without touching every test. Read once, cached.
[[nodiscard]] bool simd_gather_default() noexcept;

/// Process default of loop_options::simd_scatter: true unless
/// OP2HPX_SIMD_SCATTER is set to 0/off/false/no. The off state is the
/// scalar scatter oracle the CI differential leg runs the whole suite
/// over. Read once, cached.
[[nodiscard]] bool simd_scatter_default() noexcept;

/// Process default of loop_options::exec_pool: true unless
/// OP2HPX_EXEC_POOL is set to 0/off/false/no (the per-issue
/// construct-and-discard baseline, kept for differential testing and
/// as the bench denominator). Read once, cached.
[[nodiscard]] bool exec_pool_default() noexcept;

/// Process default of loop_options::fuse: false unless OP2HPX_FUSE is
/// set to 1/on/true/yes — how a CI leg runs the tier-1 suite with the
/// fusion window forced on without touching every test. Read once,
/// cached.
[[nodiscard]] bool fuse_default() noexcept;
}  // namespace detail

/// Sentinel for loop_options::partitions: resolve the partition count
/// *and* placement through the online tuner (op2/tune.hpp) — explore
/// the candidate ladder once per (loop site, shape), then exploit the
/// measured argmin. OP2HPX_AUTOTUNE=1 applies the same resolution to
/// every defaulted (partitions == 0) hpx_dataflow loop.
inline constexpr std::size_t auto_tune = static_cast<std::size_t>(-1);

/// Where the hpx_dataflow backend places a partition's sub-nodes.
enum class placement_kind {
    /// Pin partition p's (partition, colour) sub-nodes to worker
    /// p % pool_size via the pool's affinity inboxes, so a partition's
    /// working set keeps hitting the same core's cache across the loops
    /// of a chain. Stealing remains the fallback: a busy worker's pinned
    /// work migrates rather than stalling, so skewed partitions cost
    /// locality, never progress.
    affinity,
    /// No hint: sub-nodes land on the issuing thread's queue and drift
    /// to whichever worker pops or steals them first (the pre-placement
    /// behaviour, kept as the bench baseline and differential oracle).
    any,
};

/// Per-loop execution knobs shared by the parallel backends.
struct loop_options {
    /// Backend the exec layer dispatches this loop to (op2/exec/backend.hpp).
    /// The legacy op_par_loop_seq / _fork_join / _hpx entry points pin
    /// this field to seq / staged / hpx_dataflow respectively.
    exec::backend_kind backend = exec::backend_kind::staged;

    /// Block (mini-partition) size used by the plan. OP2 calls this the
    /// partition size; the paper's Fig. 4 `nelem` is at most this.
    std::size_t part_size = 128;

    /// Chunk-size policy applied when distributing *blocks* over worker
    /// threads (static / dynamic / auto / persistent_auto — Section IV-B
    /// of the paper).
    hpxlite::execution::chunker chunk = hpxlite::execution::static_chunk_size{0};

    /// Enable the prefetching iterator behaviour of Section V for the
    /// loop's directly-accessed dats: while executing element i, issue a
    /// software prefetch for element i + distance of every direct dat.
    bool prefetch = false;

    /// Prefetch lookahead in cache lines (the paper's
    /// prefetch_distance_factor; ~15 is the Airfoil sweet spot).
    std::size_t prefetch_distance_factor = 15;

    /// Execution-granularity of the hpx_dataflow backend: the iteration
    /// set is split into this many contiguous partitions and the loop is
    /// issued as one graph sub-node per (partition, colour), so
    /// independent partitions of *dependent* loops overlap in the epoch
    /// graph. 0 means "one per pool worker". 1 pins whole-set
    /// granularity (one node per loop — the PR 2 shape, kept as the
    /// differential oracle). Plans are built and cached per partition.
    /// op2::auto_tune delegates the count (and placement) to the online
    /// tuner. The seq and staged backends ignore this field: they are
    /// synchronous, so there is no graph to scope.
    std::size_t partitions = 0;

    /// Sub-node placement policy of the hpx_dataflow backend (ignored by
    /// the synchronous backends and at whole-set granularity, where
    /// there is one node and nothing to pin).
    placement_kind placement = placement_kind::affinity;

    /// Loop-local same-colour non-conflict exemption of the hpx_dataflow
    /// backend: partition plans are coloured *globally* (one
    /// deterministic sweep over every partition's blocks), so two
    /// same-coloured sub-nodes of one loop provably never mutate the
    /// same target element — the dependency layer skips the conservative
    /// WAW edge between them and boundary-straddling INC partitions of a
    /// single loop run concurrently. Off reinstates the conservative
    /// per-record edges (differential oracle / bench baseline).
    bool color_exemption = true;

    /// Use the plan's staged gather tables (pre-resolved byte offsets)
    /// for indirect arguments and pointer-bumping for direct ones. Off
    /// reproduces the seed's per-element map resolution — kept for
    /// differential testing and as the benchmark baseline.
    bool staged_gather = true;

    /// Vectorised gather for read-only indirect arguments whose class is
    /// uniformly strided at 16/32 bytes per element (dim-2/dim-4
    /// doubles): the staged executor copies a block's operands into
    /// cache-line-aligned contiguous scratch with unrolled fixed-stride
    /// kernels (op2/memory.hpp) and the inner loop reads them as a
    /// pointer bump — no per-element table load, and the kernel streams
    /// aligned contiguous memory. Bitwise-identical to the scalar staged
    /// path (a gather copies, it does not reorder arithmetic); off keeps
    /// the per-element staged resolution as the oracle and bench
    /// baseline. Requires staged_gather. Default from
    /// detail::simd_gather_default() (OP2HPX_SIMD_GATHER env).
    bool simd_gather = detail::simd_gather_default();

    /// Vectorised scatter for OP_INC indirect arguments of the same
    /// 16/32-byte uniform-stride classes: the staged executor gives the
    /// kernel a zeroed block-private accumulation buffer in tls scratch
    /// instead of per-element target pointers, then scatters the net
    /// per-element contributions back with unrolled fixed-stride add
    /// kernels (memory::scatter_add) in element order — the same order
    /// the scalar path accumulates in, so the result is bitwise
    /// identical as long as the kernel accumulates each output
    /// component once per element (every kernel in this repo does; a
    /// kernel that read back its own partial increments within one
    /// element would observe the private buffer instead of the dat).
    /// When several INC arguments of one loop target the *same* dat,
    /// their buffers scatter jointly element-major to preserve the
    /// scalar interleaving. Off keeps per-element scalar scatter as the
    /// bitwise oracle. Requires staged_gather. Default from
    /// detail::simd_scatter_default() (OP2HPX_SIMD_SCATTER env).
    bool simd_scatter = detail::simd_scatter_default();

    /// Cross-issue executor/scratch pooling of the hpx_dataflow
    /// partitioned path: retired loop groups (executors, plan bindings,
    /// grow-only reduction/gather scratch, quarantine target vectors)
    /// park in a sharded, thread-local-first free pool keyed per issue
    /// site and are rebound on the next issue instead of constructed
    /// from scratch — the steady state of a time-marching chain
    /// allocates nothing per loop. Off restores the per-issue
    /// construct-and-discard lifecycle (differential oracle and the
    /// bench_micro_op2 dispatch-overhead denominator). Default from
    /// detail::exec_pool_default() (OP2HPX_EXEC_POOL env).
    bool exec_pool = detail::exec_pool_default();

    /// Chain fusion of the hpx_dataflow backend: hold an issued loop in
    /// a per-thread fusion window; when the next issued loop shares its
    /// iteration set and the two footprints/colourings are provably
    /// compatible (see exec::detail::fusion_legal), run both kernels in
    /// one staged pass per (partition, colour) sub-node — one gather,
    /// two kernels, one scatter, half the graph nodes. Illegal or
    /// non-adjacent pairs fall back to solo issue; the deferred loop's
    /// handle resolves either way, and every synchronisation point
    /// (handle wait/get, op_fence, op_fence_all, checkpoint capture)
    /// flushes the window first. A fused failure poisons the written
    /// spans of *both* constituent loops. Default off
    /// (detail::fuse_default(), OP2HPX_FUSE env) until the differentials
    /// pin a configuration.
    bool fuse = detail::fuse_default();

    /// Logical localities of the hpx_dataflow partitioned path
    /// (op2/comm.hpp): the loop's partitions are grouped into this many
    /// contiguous localities — processes-within-a-process — and every
    /// indirect argument's halo regions are exchanged through
    /// pack/exchange/unpack (and, for OP_INC, owner-side combine)
    /// dataflow sub-nodes edging on the same per-partition dep records
    /// as compute, so exchanges overlap interior compute. 0 means "the
    /// process default" (OP2HPX_LOCALITIES env — how a CI leg runs the
    /// whole tier-1 suite sharded — unset: 1); 1 is today's
    /// shared-everything behaviour, the bitwise differential oracle.
    /// Clamped to the partition count; the synchronous backends and the
    /// whole-set shape ignore it; `fuse` takes precedence (a fused pass
    /// spans two loops' footprints, which the halo classifier does not
    /// model, so a fusing issue runs unsharded — see run_loop).
    std::size_t localities = 0;

    /// Bounded retry budget for checkpoint-recovering drivers (the
    /// fault-tolerance layer): how many times an epoch that failed —
    /// an injected fault, a throwing kernel, a quarantined read — may
    /// be rolled back to the last exec::checkpoint and re-issued
    /// before the failure is allowed to propagate. The loop layers
    /// themselves never retry (a loop is not idempotent mid-flight);
    /// this knob rides here so drivers (airfoil's --retries) share one
    /// configuration surface.
    std::size_t retries = 0;

    /// Pool override; nullptr uses the global hpxlite pool.
    hpxlite::threads::thread_pool* pool = nullptr;
};

}  // namespace op2
