#pragma once

#include <cstddef>

#include <hpxlite/execution/chunkers.hpp>
#include <hpxlite/threads/thread_pool.hpp>
#include <op2/exec/backend_kind.hpp>

namespace op2 {

namespace detail {
/// Process default of loop_options::simd_gather: true unless the
/// OP2HPX_SIMD_GATHER environment variable is set to 0/off/false/no —
/// that is how a CI leg runs the whole tier-1 suite over the scalar
/// oracle path without touching every test. Read once, cached.
[[nodiscard]] bool simd_gather_default() noexcept;
}  // namespace detail

/// Where the hpx_dataflow backend places a partition's sub-nodes.
enum class placement_kind {
    /// Pin partition p's (partition, colour) sub-nodes to worker
    /// p % pool_size via the pool's affinity inboxes, so a partition's
    /// working set keeps hitting the same core's cache across the loops
    /// of a chain. Stealing remains the fallback: a busy worker's pinned
    /// work migrates rather than stalling, so skewed partitions cost
    /// locality, never progress.
    affinity,
    /// No hint: sub-nodes land on the issuing thread's queue and drift
    /// to whichever worker pops or steals them first (the pre-placement
    /// behaviour, kept as the bench baseline and differential oracle).
    any,
};

/// Per-loop execution knobs shared by the parallel backends.
struct loop_options {
    /// Backend the exec layer dispatches this loop to (op2/exec/backend.hpp).
    /// The legacy op_par_loop_seq / _fork_join / _hpx entry points pin
    /// this field to seq / staged / hpx_dataflow respectively.
    exec::backend_kind backend = exec::backend_kind::staged;

    /// Block (mini-partition) size used by the plan. OP2 calls this the
    /// partition size; the paper's Fig. 4 `nelem` is at most this.
    std::size_t part_size = 128;

    /// Chunk-size policy applied when distributing *blocks* over worker
    /// threads (static / dynamic / auto / persistent_auto — Section IV-B
    /// of the paper).
    hpxlite::execution::chunker chunk = hpxlite::execution::static_chunk_size{0};

    /// Enable the prefetching iterator behaviour of Section V for the
    /// loop's directly-accessed dats: while executing element i, issue a
    /// software prefetch for element i + distance of every direct dat.
    bool prefetch = false;

    /// Prefetch lookahead in cache lines (the paper's
    /// prefetch_distance_factor; ~15 is the Airfoil sweet spot).
    std::size_t prefetch_distance_factor = 15;

    /// Execution-granularity of the hpx_dataflow backend: the iteration
    /// set is split into this many contiguous partitions and the loop is
    /// issued as one graph sub-node per (partition, colour), so
    /// independent partitions of *dependent* loops overlap in the epoch
    /// graph. 0 means "one per pool worker". 1 pins whole-set
    /// granularity (one node per loop — the PR 2 shape, kept as the
    /// differential oracle). Plans are built and cached per partition.
    /// The seq and staged backends ignore this field: they are
    /// synchronous, so there is no graph to scope.
    std::size_t partitions = 0;

    /// Sub-node placement policy of the hpx_dataflow backend (ignored by
    /// the synchronous backends and at whole-set granularity, where
    /// there is one node and nothing to pin).
    placement_kind placement = placement_kind::affinity;

    /// Loop-local same-colour non-conflict exemption of the hpx_dataflow
    /// backend: partition plans are coloured *globally* (one
    /// deterministic sweep over every partition's blocks), so two
    /// same-coloured sub-nodes of one loop provably never mutate the
    /// same target element — the dependency layer skips the conservative
    /// WAW edge between them and boundary-straddling INC partitions of a
    /// single loop run concurrently. Off reinstates the conservative
    /// per-record edges (differential oracle / bench baseline).
    bool color_exemption = true;

    /// Use the plan's staged gather tables (pre-resolved byte offsets)
    /// for indirect arguments and pointer-bumping for direct ones. Off
    /// reproduces the seed's per-element map resolution — kept for
    /// differential testing and as the benchmark baseline.
    bool staged_gather = true;

    /// Vectorised gather for read-only indirect arguments whose class is
    /// uniformly strided at 16/32 bytes per element (dim-2/dim-4
    /// doubles): the staged executor copies a block's operands into
    /// cache-line-aligned contiguous scratch with unrolled fixed-stride
    /// kernels (op2/memory.hpp) and the inner loop reads them as a
    /// pointer bump — no per-element table load, and the kernel streams
    /// aligned contiguous memory. Bitwise-identical to the scalar staged
    /// path (a gather copies, it does not reorder arithmetic); off keeps
    /// the per-element staged resolution as the oracle and bench
    /// baseline. Requires staged_gather. Default from
    /// detail::simd_gather_default() (OP2HPX_SIMD_GATHER env).
    bool simd_gather = detail::simd_gather_default();

    /// Bounded retry budget for checkpoint-recovering drivers (the
    /// fault-tolerance layer): how many times an epoch that failed —
    /// an injected fault, a throwing kernel, a quarantined read — may
    /// be rolled back to the last exec::checkpoint and re-issued
    /// before the failure is allowed to propagate. The loop layers
    /// themselves never retry (a loop is not idempotent mid-flight);
    /// this knob rides here so drivers (airfoil's --retries) share one
    /// configuration surface.
    std::size_t retries = 0;

    /// Pool override; nullptr uses the global hpxlite pool.
    hpxlite::threads::thread_pool* pool = nullptr;
};

}  // namespace op2
