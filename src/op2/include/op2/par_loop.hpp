#pragma once

#include <array>
#include <cstddef>
#include <utility>

#include <hpxlite/algorithms/for_loop.hpp>
#include <hpxlite/execution/policy.hpp>
#include <hpxlite/util/timing.hpp>
#include <op2/detail/executor.hpp>
#include <op2/loop_options.hpp>
#include <op2/plan.hpp>
#include <op2/timing.hpp>

namespace op2 {

/// Sequential reference backend: plain element loop, no plan.
template <typename Kernel, typename... Args>
void op_par_loop_seq(char const* name, op_set set, Kernel kernel,
                     Args... args) {
    constexpr std::size_t n = sizeof...(Args);
    detail::loop_executor<Kernel, n> ex(
        std::move(set), std::array<op_arg, n>{std::move(args)...},
        std::move(kernel), loop_options{});
    ex.validate(name);
    hpxlite::util::stopwatch sw;
    ex.run_sequential();
    op_timing_record(name, "seq", sw.elapsed_s());
}

/// Fork-join backend: models the stock OP2 OpenMP code path of Fig. 4 —
/// `#pragma omp parallel for` over blocks, colour by colour, with an
/// implicit global barrier at the end of every colour and every loop.
/// Returns only when all side effects (including reductions) are visible.
template <typename Kernel, typename... Args>
void op_par_loop_fork_join(loop_options const& opts, char const* name,
                           op_set set, Kernel kernel, Args... args) {
    constexpr std::size_t n = sizeof...(Args);
    detail::loop_executor<Kernel, n> ex(
        std::move(set), std::array<op_arg, n>{std::move(args)...},
        std::move(kernel), opts);
    ex.validate(name);
    op_plan const& plan = plan_get(ex.set(), ex.args(), opts.part_size);

    auto policy = hpxlite::execution::par.with(opts.chunk);
    if (opts.pool != nullptr) {
        policy = policy.on(*opts.pool);
    }
    hpxlite::util::stopwatch sw;
    ex.execute(plan, [&](std::span<std::size_t const> blocks) {
        // for_loop with a synchronous policy = fork + join (barrier).
        hpxlite::parallel::for_loop(
            policy, std::size_t{0}, blocks.size(),
            [&](std::size_t k) { ex.run_block(plan, blocks[k]); });
    });
    op_timing_record(name, "fork_join", sw.elapsed_s());
}

}  // namespace op2
