#pragma once

#include <utility>

#include <op2/exec/backend.hpp>
#include <op2/loop_options.hpp>

namespace op2 {

/// Sequential reference backend: plain element loop, no plan.
/// Thin wrapper over the exec layer (opts.backend = seq).
template <typename Kernel, typename... Args>
void op_par_loop_seq(char const* name, op_set set, Kernel kernel,
                     Args... args) {
    loop_options opts;
    opts.backend = exec::backend_kind::seq;
    (void)exec::run_loop(opts, name, std::move(set), std::move(kernel),
                         std::move(args)...);
}

/// Fork-join backend: models the stock OP2 OpenMP code path of Fig. 4 —
/// `#pragma omp parallel for` over blocks, colour by colour, with an
/// implicit global barrier at the end of every colour and every loop.
/// Returns only when all side effects (including reductions) are visible.
/// Thin wrapper over the exec layer (opts.backend = staged).
template <typename Kernel, typename... Args>
void op_par_loop_fork_join(loop_options const& opts, char const* name,
                           op_set set, Kernel kernel, Args... args) {
    loop_options o = opts;
    o.backend = exec::backend_kind::staged;
    (void)exec::run_loop(o, name, std::move(set), std::move(kernel),
                         std::move(args)...);
}

}  // namespace op2
