#pragma once

// Deterministic fault injection for the execution stack.
//
// Robustness claims ("a failed sub-node quarantines exactly the
// partitions it touched", "airfoil recovers from its last checkpoint")
// are untestable without a way to *make* precisely-addressed things
// fail. This layer provides that: a seeded, site-addressed fault plan,
// armed per process through fault::arm() or the OP2HPX_FAULT_PLAN
// environment variable, with injection points at every tier:
//
//  * kernel sites — keyed on loop name x partition x colour: the
//    exec backends call fault::on_kernel(...) right before running a
//    (sub-)node's kernel sweep, and a matching site throws
//    fault::injected_fault exactly once (the engine's quarantine and
//    error-inheritance paths then take over, same as a real kernel
//    exception);
//  * allocation — the K-th memory::aligned_buffer allocation fails
//    (dat declaration, checkpoint snapshots, executor scratch);
//  * scheduler — the K-th thread-pool task is delayed by a fixed
//    amount, dropped (discarded without running — the same path pool
//    teardown uses, surfacing "dataflow loop discarded at shutdown"),
//    or, in jitter mode, probabilistically delayed with a seeded RNG
//    (the benign scheduling-fuzz mode the CI fault leg runs tier-1
//    under).
//
// Plan grammar — ';'-separated directives, all optional:
//
//    seed=N                 RNG seed for jitter (default 1)
//    kernel=NAME@P.C[#K]    throw in loop NAME, partition P, colour C
//                           (P and/or C may be '*'), on the K-th
//                           matching hit (default 1); fires once
//    alloc=K                K-th aligned_buffer allocation throws
//    delay=K:US             K-th pool task sleeps US microseconds first
//    drop=K                 K-th pool task is discarded, never run
//    jitter=RATE:MAXUS      each pool task sleeps a seeded-random
//                           [0, MAXUS] us with probability RATE
//
// Example: OP2HPX_FAULT_PLAN='seed=7;kernel=res_calc@*.*#3;alloc=12'
//
// Cost when disarmed: every hook is a single relaxed atomic load
// (armed() below) — nothing on the hot path allocates, branches
// further, or takes a lock.

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace op2::fault {

/// The exception every armed site throws. Derived from runtime_error so
/// all existing failure-propagation machinery (error inheritance,
/// quarantine, retry policies) treats it like a real kernel failure.
class injected_fault : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

namespace detail {
/// Constant-initialised fast-path flag; set only by arm()/disarm().
inline std::atomic<bool> g_armed{false};

void on_kernel_slow(char const* loop, std::size_t partition,
                    std::size_t color);
void on_alloc_slow(std::size_t bytes);
}  // namespace detail

/// True when a fault plan is installed. Single relaxed load — the whole
/// cost of the layer when injection is off.
[[nodiscard]] inline bool armed() noexcept {
    return detail::g_armed.load(std::memory_order_relaxed);
}

/// Parse `spec` (grammar above) and install it as the active plan,
/// replacing any previous one. Echoes the armed plan (and seed) to
/// stderr so a failing randomized run is reproducible from its log.
/// Throws std::invalid_argument on a malformed spec (nothing armed).
/// An empty spec disarms.
void arm(std::string_view spec);

/// Remove the active plan; every hook returns to the one-load fast path.
void disarm() noexcept;

/// The spec string of the active plan ("" when disarmed).
[[nodiscard]] std::string active_plan();

/// Exec-layer hook: called right before a (sub-)node runs its kernel
/// sweep. `partition`/`color` are 0 for the synchronous and whole-set
/// backends. Throws injected_fault when an armed kernel site matches.
inline void on_kernel(char const* loop, std::size_t partition,
                      std::size_t color) {
    if (armed()) {
        detail::on_kernel_slow(loop, partition, color);
    }
}

/// Memory-layer hook: called by every non-empty aligned_buffer
/// allocation. Throws injected_fault when the armed alloc counter hits.
inline void on_alloc(std::size_t bytes) {
    if (armed()) {
        detail::on_alloc_slow(bytes);
    }
}

}  // namespace op2::fault
