#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace op2 {

/// A contiguous block partitioning of a set's index space [0, size) into
/// `count` near-equal ranges. This is the granularity at which the
/// execution layers scope work: plans are built and cached per
/// partition, dats track one dependency record per partition, and the
/// dataflow backend issues one graph sub-node per (partition, colour).
/// Bounds derive deterministically from (size, count), so two sets of
/// equal size partitioned to the same count agree element-for-element.
struct set_partition {
    std::size_t count = 1;
    std::size_t set_size = 0;
    std::vector<std::size_t> bounds;  // [count + 1], bounds[p] = p*size/count

    [[nodiscard]] std::size_t begin(std::size_t p) const { return bounds[p]; }
    [[nodiscard]] std::size_t end(std::size_t p) const {
        return bounds[p + 1];
    }
    [[nodiscard]] std::size_t size_of(std::size_t p) const {
        return bounds[p + 1] - bounds[p];
    }

    /// Partition holding element `e`. The equal-split bounds make the
    /// arithmetic guess exact up to rounding; the fix-up walks at most
    /// one step.
    [[nodiscard]] std::size_t find(std::size_t e) const {
        std::size_t p = set_size == 0 ? 0 : e * count / set_size;
        if (p >= count) {
            p = count - 1;
        }
        while (e >= bounds[p + 1]) {
            ++p;
        }
        while (e < bounds[p]) {
            --p;
        }
        return p;
    }
};

namespace detail {

/// The deterministic bounds shared by every layer (see set_partition).
std::vector<std::size_t> partition_bounds(std::size_t size,
                                          std::size_t count);

struct set_impl {
    std::size_t size = 0;
    std::string name;
    std::uint64_t id = 0;

    // Cached partition descriptors, one per requested count. Loops reuse
    // the same handful of counts (pool size, an explicit option, 1 for
    // the whole-set oracle), so this stays tiny.
    std::mutex part_mtx;
    std::vector<std::shared_ptr<set_partition const>> part_cache;
};
std::uint64_t next_entity_id() noexcept;
}  // namespace detail

/// A set of mesh entities (nodes, edges, cells, ...). Value-semantic
/// handle; copies refer to the same underlying set.
class op_set {
public:
    op_set() = default;

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
    [[nodiscard]] std::size_t size() const noexcept {
        return impl_ ? impl_->size : 0;
    }
    [[nodiscard]] std::string const& name() const;
    [[nodiscard]] std::uint64_t id() const noexcept {
        return impl_ ? impl_->id : 0;
    }

    /// The set's block partition at `count` granularity (cached on the
    /// set; the returned descriptor is immutable and shared). Throws on
    /// an invalid handle or count == 0.
    [[nodiscard]] std::shared_ptr<set_partition const> partition(
        std::size_t count) const;

    friend bool operator==(op_set const& a, op_set const& b) noexcept {
        return a.impl_ == b.impl_;
    }

private:
    explicit op_set(std::shared_ptr<detail::set_impl> p) noexcept
      : impl_(std::move(p)) {}

    friend op_set op_decl_set(std::size_t, std::string);

    std::shared_ptr<detail::set_impl> impl_;
};

/// Declare a set with `size` elements (paper: op_decl_set(9, nodes, "nodes")).
op_set op_decl_set(std::size_t size, std::string name);

}  // namespace op2
