#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace op2 {

namespace detail {
struct set_impl {
    std::size_t size = 0;
    std::string name;
    std::uint64_t id = 0;
};
std::uint64_t next_entity_id() noexcept;
}  // namespace detail

/// A set of mesh entities (nodes, edges, cells, ...). Value-semantic
/// handle; copies refer to the same underlying set.
class op_set {
public:
    op_set() = default;

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
    [[nodiscard]] std::size_t size() const noexcept {
        return impl_ ? impl_->size : 0;
    }
    [[nodiscard]] std::string const& name() const;
    [[nodiscard]] std::uint64_t id() const noexcept {
        return impl_ ? impl_->id : 0;
    }

    friend bool operator==(op_set const& a, op_set const& b) noexcept {
        return a.impl_ == b.impl_;
    }

private:
    explicit op_set(std::shared_ptr<detail::set_impl> p) noexcept
      : impl_(std::move(p)) {}

    friend op_set op_decl_set(std::size_t, std::string);

    std::shared_ptr<detail::set_impl> impl_;
};

/// Declare a set with `size` elements (paper: op_decl_set(9, nodes, "nodes")).
op_set op_decl_set(std::size_t size, std::string name);

}  // namespace op2
