#include <op2c/lexer.hpp>

#include <cctype>

namespace op2c {

namespace {

bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_cont(char c) {
    return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<token> tokenize(std::string_view src) {
    std::vector<token> out;
    std::size_t i = 0;
    std::size_t line = 1;
    std::size_t const n = src.size();

    auto push = [&](token_kind k, std::size_t begin, std::size_t end) {
        token t;
        t.kind = k;
        t.text = std::string(src.substr(begin, end - begin));
        t.offset = begin;
        t.line = line;
        out.push_back(std::move(t));
    };

    while (i < n) {
        char const c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            ++i;
            continue;
        }
        // comments
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            while (i < n && src[i] != '\n') {
                ++i;
            }
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n') {
                    ++line;
                }
                ++i;
            }
            i = i + 2 <= n ? i + 2 : n;
            continue;
        }
        // preprocessor directives: skip the line (continuations too)
        if (c == '#') {
            while (i < n && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    ++line;
                    ++i;
                }
                ++i;
            }
            continue;
        }
        // string literal
        if (c == '"') {
            std::size_t const begin = i++;
            while (i < n && src[i] != '"' && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < n) {
                    ++i;
                }
                ++i;
            }
            if (i < n && src[i] == '"') {
                ++i;
            }
            push(token_kind::string_lit, begin, i);
            continue;
        }
        // char literal
        if (c == '\'') {
            std::size_t const begin = i++;
            while (i < n && src[i] != '\'' && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < n) {
                    ++i;
                }
                ++i;
            }
            if (i < n && src[i] == '\'') {
                ++i;
            }
            push(token_kind::char_lit, begin, i);
            continue;
        }
        // identifier / keyword
        if (ident_start(c)) {
            std::size_t const begin = i;
            while (i < n && ident_cont(src[i])) {
                ++i;
            }
            push(token_kind::identifier, begin, i);
            continue;
        }
        // number (ints, floats, hex, exponents — scanned loosely)
        if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
            std::size_t const begin = i;
            while (i < n &&
                   (ident_cont(src[i]) || src[i] == '.' ||
                    ((src[i] == '+' || src[i] == '-') && i > begin &&
                     (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                      src[i - 1] == 'p' || src[i - 1] == 'P')))) {
                ++i;
            }
            push(token_kind::number, begin, i);
            continue;
        }
        // multi-char punctuation we care about (::, ->, etc.)
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            push(token_kind::punct, i, i + 2);
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            push(token_kind::punct, i, i + 2);
            i += 2;
            continue;
        }
        push(token_kind::punct, i, i + 1);
        ++i;
    }

    token eof;
    eof.kind = token_kind::end_of_file;
    eof.offset = n;
    eof.line = line;
    out.push_back(std::move(eof));
    return out;
}

std::string unquote(std::string_view s) {
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
        s = s.substr(1, s.size() - 2);
    }
    return std::string(s);
}

}  // namespace op2c
