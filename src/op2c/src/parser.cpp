#include <op2c/parser.hpp>

#include <cstdlib>
#include <optional>

namespace op2c {

namespace {

struct call_args {
    // One entry per top-level argument: [first, last) token indices and
    // the raw source slice.
    struct arg {
        std::size_t first = 0;
        std::size_t last = 0;
        std::string text;
    };
    std::vector<arg> args;
    std::size_t end_index = 0;   // token index just past the ')'
    std::size_t end_offset = 0;  // byte offset just past the ')'
};

/// Parse a balanced call starting at tokens[open] == '('.
call_args split_call(std::vector<token> const& toks, std::size_t open,
                     std::string_view source, std::size_t line) {
    if (!toks[open].is_punct("(")) {
        throw parse_error(line, "expected '(' after OP2 call name");
    }
    call_args out;
    int depth = 1;
    std::size_t i = open + 1;
    std::size_t arg_first = i;

    auto close_arg = [&](std::size_t last_tok, std::size_t end_off) {
        if (last_tok > arg_first) {
            std::size_t const b = toks[arg_first].offset;
            call_args::arg a;
            a.first = arg_first;
            a.last = last_tok;
            a.text = std::string(source.substr(b, end_off - b));
            // trim
            while (!a.text.empty() && (a.text.back() == ' ' ||
                                       a.text.back() == '\n' ||
                                       a.text.back() == '\t')) {
                a.text.pop_back();
            }
            out.args.push_back(std::move(a));
        }
    };

    for (;; ++i) {
        if (toks[i].kind == token_kind::end_of_file) {
            throw parse_error(line, "unterminated OP2 call");
        }
        if (toks[i].is_punct("(") || toks[i].is_punct("[") ||
            toks[i].is_punct("{")) {
            ++depth;
        } else if (toks[i].is_punct(")") || toks[i].is_punct("]") ||
                   toks[i].is_punct("}")) {
            --depth;
            if (depth == 0) {
                close_arg(i, toks[i].offset);
                out.end_index = i + 1;
                out.end_offset = toks[i].offset + 1;
                return out;
            }
        } else if (depth == 1 && toks[i].is_punct(",")) {
            close_arg(i, toks[i].offset);
            arg_first = i + 1;
        }
    }
}

std::optional<int> parse_int(std::vector<token> const& toks,
                             call_args::arg const& a) {
    // Accept `N` or `-N`.
    if (a.last - a.first == 1 && toks[a.first].kind == token_kind::number) {
        return std::atoi(toks[a.first].text.c_str());
    }
    if (a.last - a.first == 2 && toks[a.first].is_punct("-") &&
        toks[a.first + 1].kind == token_kind::number) {
        return -std::atoi(toks[a.first + 1].text.c_str());
    }
    return std::nullopt;
}

std::string string_payload(std::vector<token> const& toks,
                           call_args::arg const& a) {
    if (a.last - a.first == 1 &&
        toks[a.first].kind == token_kind::string_lit) {
        return unquote(toks[a.first].text);
    }
    return {};
}

arg_info parse_op_arg(std::vector<token> const& toks, std::size_t name_tok,
                      std::string_view source, std::size_t line) {
    bool const gbl = toks[name_tok].is_ident("op_arg_gbl");
    auto call = split_call(toks, name_tok + 1, source, line);

    arg_info a;
    a.is_gbl = gbl;
    std::size_t const b = toks[name_tok].offset;
    a.raw = std::string(source.substr(b, call.end_offset - b));

    if (gbl) {
        if (call.args.size() != 4) {
            throw parse_error(line, "op_arg_gbl expects 4 arguments, got " +
                                        std::to_string(call.args.size()));
        }
        a.ptr = call.args[0].text;
        auto dim = parse_int(toks, call.args[1]);
        if (!dim) {
            throw parse_error(line, "op_arg_gbl: dim must be an integer literal");
        }
        a.dim = *dim;
        a.type = string_payload(toks, call.args[2]);
        a.access = call.args[3].text;
        return a;
    }

    if (call.args.size() != 6) {
        throw parse_error(line, "op_arg_dat expects 6 arguments, got " +
                                    std::to_string(call.args.size()));
    }
    a.dat = call.args[0].text;
    auto idx = parse_int(toks, call.args[1]);
    if (!idx) {
        throw parse_error(line, "op_arg_dat: idx must be an integer literal");
    }
    a.idx = *idx;
    a.map = call.args[2].text;
    auto dim = parse_int(toks, call.args[3]);
    if (!dim) {
        throw parse_error(line, "op_arg_dat: dim must be an integer literal");
    }
    a.dim = *dim;
    a.type = string_payload(toks, call.args[4]);
    a.access = call.args[5].text;
    if (a.access != "OP_READ" && a.access != "OP_WRITE" && a.access != "OP_RW" &&
        a.access != "OP_INC" && a.access != "OP_MIN" && a.access != "OP_MAX") {
        throw parse_error(line, "unknown access mode '" + a.access + "'");
    }
    return a;
}

/// Best-effort capture of `var =` immediately preceding a decl call.
std::string preceding_var(std::vector<token> const& toks, std::size_t name_tok) {
    if (name_tok >= 2 && toks[name_tok - 1].is_punct("=") &&
        toks[name_tok - 2].kind == token_kind::identifier) {
        return toks[name_tok - 2].text;
    }
    return {};
}

}  // namespace

program_info parse_program(std::string_view source) {
    auto toks = tokenize(source);
    program_info prog;

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        auto const& t = toks[i];
        if (t.kind != token_kind::identifier || !toks[i + 1].is_punct("(")) {
            continue;
        }

        if (t.text == "op_decl_set") {
            auto call = split_call(toks, i + 1, source, t.line);
            if (call.args.size() != 2) {
                throw parse_error(t.line, "op_decl_set expects 2 arguments");
            }
            set_decl d;
            d.var = preceding_var(toks, i);
            d.size = call.args[0].text;
            d.name = string_payload(toks, call.args[1]);
            prog.sets.push_back(std::move(d));
            i = call.end_index - 1;
        } else if (t.text == "op_decl_map") {
            auto call = split_call(toks, i + 1, source, t.line);
            if (call.args.size() != 5) {
                throw parse_error(t.line, "op_decl_map expects 5 arguments");
            }
            map_decl d;
            d.var = preceding_var(toks, i);
            d.from = call.args[0].text;
            d.to = call.args[1].text;
            auto dim = parse_int(toks, call.args[2]);
            d.dim = dim.value_or(0);
            d.data = call.args[3].text;
            d.name = string_payload(toks, call.args[4]);
            prog.maps.push_back(std::move(d));
            i = call.end_index - 1;
        } else if (t.text == "op_decl_dat") {
            auto call = split_call(toks, i + 1, source, t.line);
            if (call.args.size() != 5) {
                throw parse_error(t.line, "op_decl_dat expects 5 arguments");
            }
            dat_decl d;
            d.var = preceding_var(toks, i);
            d.set = call.args[0].text;
            auto dim = parse_int(toks, call.args[1]);
            d.dim = dim.value_or(0);
            d.type = string_payload(toks, call.args[2]);
            d.data = call.args[3].text;
            d.name = string_payload(toks, call.args[4]);
            prog.dats.push_back(std::move(d));
            i = call.end_index - 1;
        } else if (t.text == "op_par_loop" ||
                   t.text.rfind("op_par_loop_", 0) == 0) {
            auto call = split_call(toks, i + 1, source, t.line);
            if (call.args.size() < 4) {
                throw parse_error(t.line,
                                  "op_par_loop expects kernel, name, set and "
                                  "at least one op_arg");
            }
            loop_info lp;
            lp.line = t.line;

            // Leading triple: classic (kernel, "name", set) or op2hpx
            // ("name", set, kernel).
            std::string const s0 = string_payload(toks, call.args[0]);
            std::string const s1 = string_payload(toks, call.args[1]);
            if (!s0.empty()) {
                lp.name = s0;
                lp.set = call.args[1].text;
                lp.kernel = call.args[2].text;
            } else if (!s1.empty()) {
                lp.kernel = call.args[0].text;
                lp.name = s1;
                lp.set = call.args[2].text;
            } else {
                throw parse_error(t.line,
                                  "op_par_loop: could not locate the loop "
                                  "name string literal");
            }

            for (std::size_t k = 3; k < call.args.size(); ++k) {
                auto const& a = call.args[k];
                if (toks[a.first].is_ident("op_arg_dat") ||
                    toks[a.first].is_ident("op_arg_gbl")) {
                    lp.args.push_back(
                        parse_op_arg(toks, a.first, source, toks[a.first].line));
                } else {
                    throw parse_error(toks[a.first].line,
                                      "op_par_loop: argument " +
                                          std::to_string(k) +
                                          " is not an op_arg_dat/op_arg_gbl");
                }
            }
            prog.loops.push_back(std::move(lp));
            i = call.end_index - 1;
        }
    }
    return prog;
}

}  // namespace op2c
