// op2c — the OP2 source-to-source translator, reimplemented in C++ and
// retargeted at the HPX-style dataflow backend (paper Section II: "its
// Python source-to-source code translator is modified to automatically
// generate the parallel loops using HPX library calls").
//
// Usage: op2c [--backend=omp|hpx|exec|both] [-o OUTDIR] INPUT.cpp...

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <op2c/codegen.hpp>
#include <op2c/parser.hpp>

namespace {

int usage(char const* argv0) {
    std::cerr << "usage: " << argv0
              << " [--backend=omp|hpx|exec|both] [-o OUTDIR] INPUT.cpp...\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    op2c::codegen_options opt;
    std::filesystem::path outdir = ".";
    std::vector<std::filesystem::path> inputs;

    for (int i = 1; i < argc; ++i) {
        std::string const a = argv[i];
        if (a.rfind("--backend=", 0) == 0) {
            std::string const b = a.substr(10);
            if (b == "omp") {
                opt.tgt = op2c::target::omp;
            } else if (b == "hpx") {
                opt.tgt = op2c::target::hpx;
            } else if (b == "exec") {
                opt.tgt = op2c::target::exec;
            } else if (b == "both") {
                opt.tgt = op2c::target::both;
            } else {
                return usage(argv[0]);
            }
        } else if (a == "-o") {
            if (++i >= argc) {
                return usage(argv[0]);
            }
            outdir = argv[i];
        } else if (!a.empty() && a[0] == '-') {
            return usage(argv[0]);
        } else {
            inputs.emplace_back(a);
        }
    }
    if (inputs.empty()) {
        return usage(argv[0]);
    }

    std::error_code ec;
    std::filesystem::create_directories(outdir, ec);

    int loops_total = 0;
    for (auto const& in : inputs) {
        std::ifstream f(in);
        if (!f) {
            std::cerr << "op2c: cannot open " << in << "\n";
            return 1;
        }
        std::stringstream ss;
        ss << f.rdbuf();

        op2c::program_info prog;
        try {
            prog = op2c::parse_program(ss.str());
        } catch (op2c::parse_error const& e) {
            std::cerr << "op2c: " << in.string() << ": " << e.what() << "\n";
            return 1;
        }

        for (auto const& gf : op2c::generate(prog, opt)) {
            auto const path = outdir / gf.filename;
            std::ofstream out(path);
            out << gf.contents;
            std::cout << "op2c: wrote " << path.string() << "\n";
        }
        loops_total += static_cast<int>(prog.loops.size());
    }
    std::cout << "op2c: translated " << loops_total << " op_par_loop call(s)\n";
    return 0;
}
