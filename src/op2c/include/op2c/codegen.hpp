#pragma once

#include <string>
#include <vector>

#include <op2c/ast.hpp>

namespace op2c {

/// Which backend wrappers to emit.
enum class target {
    omp,   ///< fork-join wrappers (stock OP2 OpenMP code path)
    hpx,   ///< dataflow wrappers returning loop handles (paper's redesign)
    exec,  ///< struct-of-pointers wrappers on the unified exec backend API
    both,  ///< all of the above
};

struct codegen_options {
    target tgt = target::both;
    /// Pattern for the user-kernel include emitted at the top of each
    /// wrapper; "{kernel}" is replaced by the kernel identifier. OP2
    /// convention: each kernel lives in "<kernel>.h".
    std::string kernel_include = "{kernel}.h";
    /// Namespace the wrappers are generated into.
    std::string gen_namespace = "op2c_gen";
};

struct generated_file {
    std::string filename;
    std::string contents;
};

/// Per-loop wrapper source, OpenMP-style (fork-join, implicit barrier):
/// void op_par_loop_<name>_omp(loop_options, op_set, op_arg...).
std::string generate_loop_wrapper_omp(loop_info const& lp,
                                      codegen_options const& opt = {});

/// Per-loop wrapper source, HPX dataflow style:
/// exec::loop_handle op_par_loop_<name>_hpx(loop_options, op_set, op_arg...)
/// — the loop is issued asynchronously and its completion handle is both
/// returned and threaded onto the dats' epoch records (paper Figs. 7-9).
std::string generate_loop_wrapper_hpx(loop_info const& lp,
                                      codegen_options const& opt = {});

/// Per-loop wrapper source targeting the unified exec backend layer:
/// a staged-friendly struct-of-pointers argument pack (one named op_arg
/// slot per kernel parameter) plus
/// exec::loop_handle op_par_loop_<name>(loop_options, op_set, <name>_loop_args)
/// — the backend (seq / staged / hpx_dataflow) is selected through
/// loop_options::backend, so generated applications switch backends
/// without re-translating.
std::string generate_loop_wrapper_exec(loop_info const& lp,
                                       codegen_options const& opt = {});

/// Master header declaring every generated wrapper.
std::string generate_master_header(program_info const& prog,
                                   codegen_options const& opt = {});

/// All files for a program: one wrapper per loop per backend + master.
std::vector<generated_file> generate(program_info const& prog,
                                     codegen_options const& opt = {});

}  // namespace op2c
