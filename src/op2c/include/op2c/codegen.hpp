#pragma once

#include <string>
#include <vector>

#include <op2c/ast.hpp>

namespace op2c {

/// Which backend wrappers to emit.
enum class target {
    omp,   ///< fork-join wrappers (stock OP2 OpenMP code path)
    hpx,   ///< dataflow wrappers returning futures (the paper's redesign)
    both,
};

struct codegen_options {
    target tgt = target::both;
    /// Pattern for the user-kernel include emitted at the top of each
    /// wrapper; "{kernel}" is replaced by the kernel identifier. OP2
    /// convention: each kernel lives in "<kernel>.h".
    std::string kernel_include = "{kernel}.h";
    /// Namespace the wrappers are generated into.
    std::string gen_namespace = "op2c_gen";
};

struct generated_file {
    std::string filename;
    std::string contents;
};

/// Per-loop wrapper source, OpenMP-style (fork-join, implicit barrier):
/// void op_par_loop_<name>_omp(loop_options, op_set, op_arg...).
std::string generate_loop_wrapper_omp(loop_info const& lp,
                                      codegen_options const& opt = {});

/// Per-loop wrapper source, HPX dataflow style:
/// shared_future<void> op_par_loop_<name>_hpx(loop_options, op_set, op_arg...)
/// — the loop is issued asynchronously and its completion future is both
/// returned and threaded onto the dats (paper Figs. 7-9).
std::string generate_loop_wrapper_hpx(loop_info const& lp,
                                      codegen_options const& opt = {});

/// Master header declaring every generated wrapper.
std::string generate_master_header(program_info const& prog,
                                   codegen_options const& opt = {});

/// All files for a program: one wrapper per loop per backend + master.
std::vector<generated_file> generate(program_info const& prog,
                                     codegen_options const& opt = {});

}  // namespace op2c
