#pragma once

// The translator's intermediate representation: everything op2c needs to
// know about an OP2 application to generate per-loop parallel wrappers,
// mirroring the information the stock Python translator extracts.

#include <cstddef>
#include <string>
#include <vector>

namespace op2c {

/// One op_arg_dat / op_arg_gbl inside an op_par_loop call.
struct arg_info {
    bool is_gbl = false;
    std::string dat;     // dat handle expression (op_arg_dat)
    std::string ptr;     // pointer expression (op_arg_gbl)
    int idx = -1;        // map slot; -1 direct
    std::string map;     // map handle expression or "OP_ID"
    int dim = 0;
    std::string type;    // "double", "float", "int", ...
    std::string access;  // "OP_READ" | "OP_WRITE" | "OP_RW" | "OP_INC" | ...
    std::string raw;     // original source text of the whole op_arg_* call

    [[nodiscard]] bool is_direct() const {
        return !is_gbl && (map == "OP_ID" || map.empty());
    }
    [[nodiscard]] bool is_indirect() const { return !is_gbl && !is_direct(); }
};

/// One op_par_loop call site.
struct loop_info {
    std::string name;    // the loop's string name ("save_soln")
    std::string kernel;  // kernel function expression
    std::string set;     // iteration set expression
    std::vector<arg_info> args;
    std::size_t line = 0;

    [[nodiscard]] bool has_indirection() const {
        for (auto const& a : args) {
            if (a.is_indirect()) {
                return true;
            }
        }
        return false;
    }
};

struct set_decl {
    std::string var;   // receiving variable (best effort)
    std::string size;  // size expression
    std::string name;  // declared name string
};

struct map_decl {
    std::string var, from, to;
    int dim = 0;
    std::string data, name;
};

struct dat_decl {
    std::string var, set;
    int dim = 0;
    std::string type, data, name;
};

/// Everything extracted from one translation unit.
struct program_info {
    std::vector<set_decl> sets;
    std::vector<map_decl> maps;
    std::vector<dat_decl> dats;
    std::vector<loop_info> loops;
};

}  // namespace op2c
