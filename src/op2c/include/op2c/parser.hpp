#pragma once

#include <stdexcept>
#include <string_view>

#include <op2c/ast.hpp>
#include <op2c/lexer.hpp>

namespace op2c {

/// Raised when a recognised OP2 call is malformed (wrong arity, missing
/// name string, unbalanced parentheses inside a call, ...).
class parse_error : public std::runtime_error {
public:
    parse_error(std::size_t line, std::string const& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}

    [[nodiscard]] std::size_t line() const noexcept { return line_; }

private:
    std::size_t line_;
};

/// Scan `source` for op_decl_set/map/dat and op_par_loop calls and build
/// the IR. Unrelated code is ignored, like the stock translator does.
///
/// Both call shapes are recognised:
///  * classic OP2:  op_par_loop(kernel, "name", set, op_arg_dat(...), ...)
///  * op2hpx     :  op_par_loop("name", set, kernel, op_arg_dat(...), ...)
program_info parse_program(std::string_view source);

}  // namespace op2c
