#pragma once

// Minimal C/C++ tokenizer for the op2c source-to-source translator.
// The stock OP2 translator is a Python/Matlab script scanning for
// op_decl_* and op_par_loop calls (paper Section II); op2c performs the
// same scan natively. It does not need a full C++ grammar — only
// identifiers, literals, punctuation and balanced parentheses.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace op2c {

enum class token_kind {
    identifier,
    number,
    string_lit,
    char_lit,
    punct,
    end_of_file,
};

struct token {
    token_kind kind = token_kind::end_of_file;
    std::string text;        // literal text (string_lit keeps its quotes)
    std::size_t offset = 0;  // byte offset in the source
    std::size_t line = 1;    // 1-based source line

    [[nodiscard]] bool is(token_kind k, std::string_view t = {}) const {
        return kind == k && (t.empty() || text == t);
    }
    [[nodiscard]] bool is_ident(std::string_view t) const {
        return kind == token_kind::identifier && text == t;
    }
    [[nodiscard]] bool is_punct(std::string_view t) const {
        return kind == token_kind::punct && text == t;
    }
};

/// Tokenize `source`. Comments, whitespace and preprocessor directives
/// are skipped. Never throws on malformed input — the translator is a
/// scanner, not a validator; unterminated literals run to end of line.
std::vector<token> tokenize(std::string_view source);

/// Strip the quotes from a string literal token ("name" -> name).
std::string unquote(std::string_view string_literal);

}  // namespace op2c
