// Jacobi relaxation on an unstructured grid — the second canonical OP2
// demo application ("jac"), expressed through this library's API and run
// on the HPX dataflow backend.
//
// Solves the 5-point Laplace problem A u = f on an n x n interior grid:
// the off-diagonal entries live on "edges" (node-pairs), the update loop
// gathers neighbour contributions indirectly (OP_INC) exactly like the
// Airfoil residual loop, and a global reduction tracks convergence.
//
// Demonstrates:
//  * a numerically verifiable app that is NOT Airfoil,
//  * asynchronous iteration issue: all Jacobi sweeps are issued up
//    front, chained only through their true data dependencies,
//  * global reductions under the dataflow backend.

#include <cmath>
#include <cstdio>
#include <vector>

#include <op2/op2.hpp>

namespace {

constexpr std::size_t kN = 48;        // interior grid is kN x kN
constexpr int kIters = 200;

std::size_t node_id(std::size_t i, std::size_t j) { return j * kN + i; }

}  // namespace

int main() {
    hpxlite::init();

    std::size_t const nnode = kN * kN;
    // Horizontal + vertical neighbour pairs.
    std::vector<int> etab;
    for (std::size_t j = 0; j < kN; ++j) {
        for (std::size_t i = 0; i + 1 < kN; ++i) {
            etab.push_back(static_cast<int>(node_id(i, j)));
            etab.push_back(static_cast<int>(node_id(i + 1, j)));
        }
    }
    for (std::size_t j = 0; j + 1 < kN; ++j) {
        for (std::size_t i = 0; i < kN; ++i) {
            etab.push_back(static_cast<int>(node_id(i, j)));
            etab.push_back(static_cast<int>(node_id(i, j + 1)));
        }
    }
    std::size_t const nedge = etab.size() / 2;

    op2::op_set nodes = op2::op_decl_set(nnode, "nodes");
    op2::op_set edges = op2::op_decl_set(nedge, "edges");
    op2::op_map ppedge = op2::op_decl_map(edges, nodes, 2, etab, "ppedge");

    // RHS: point source in the middle; u starts at zero.
    std::vector<double> f(nnode, 0.0);
    f[node_id(kN / 2, kN / 2)] = 1.0;
    op2::op_dat p_f = op2::op_decl_dat(nodes, 1, "double", f, "p_f");
    op2::op_dat p_u = op2::op_decl_dat_zero<double>(nodes, 1, "double", "p_u");
    op2::op_dat p_du = op2::op_decl_dat_zero<double>(nodes, 1, "double", "p_du");

    op2::loop_options opts;
    opts.part_size = 64;

    // Jacobi: du = f + 1/4 * sum(neighbour u); then u <- du, track |du-u|.
    auto res_kernel = [](double const* u1, double const* u2, double* du1,
                         double* du2) {
        *du1 += 0.25 * *u2;
        *du2 += 0.25 * *u1;
    };
    auto update_kernel = [](double const* f_, double* u, double* du,
                            double* delta) {
        double const next = *f_ + *du;
        *delta += (next - *u) * (next - *u);
        *u = next;
        *du = 0.0;
    };

    std::vector<double> deltas(kIters, 0.0);  // stable reduction slots
    for (int it = 0; it < kIters; ++it) {
        (void)op2::op_par_loop_hpx(
            opts, "res", edges, res_kernel,
            op2::op_arg_dat(p_u, 0, ppedge, 1, "double", op2::OP_READ),
            op2::op_arg_dat(p_u, 1, ppedge, 1, "double", op2::OP_READ),
            op2::op_arg_dat(p_du, 0, ppedge, 1, "double", op2::OP_INC),
            op2::op_arg_dat(p_du, 1, ppedge, 1, "double", op2::OP_INC));
        (void)op2::op_par_loop_hpx(
            opts, "update", nodes, update_kernel,
            op2::op_arg_dat(p_f, -1, op2::OP_ID, 1, "double", op2::OP_READ),
            op2::op_arg_dat(p_u, -1, op2::OP_ID, 1, "double", op2::OP_RW),
            op2::op_arg_dat(p_du, -1, op2::OP_ID, 1, "double", op2::OP_RW),
            op2::op_arg_gbl(&deltas[static_cast<std::size_t>(it)], 1,
                            "double", op2::OP_INC));
    }
    op2::op_fence_all();  // the only synchronisation point

    std::printf("Jacobi on %zux%zu grid, %d sweeps (all issued "
                "asynchronously):\n", kN, kN, kIters);
    for (int it = 0; it < kIters; it += 40) {
        std::printf("  sweep %4d   ||u_next - u|| = %.6e\n", it,
                    std::sqrt(deltas[static_cast<std::size_t>(it)]));
    }
    double const first = std::sqrt(deltas[0]);
    double const last = std::sqrt(deltas[kIters - 1]);
    std::printf("  final        ||u_next - u|| = %.6e\n", last);

    double const u_mid = p_u.view<double>()[node_id(kN / 2, kN / 2)];
    std::printf("u at the source: %.6f (expect > 1, finite)\n", u_mid);

    // Jacobi converges linearly with rate ~cos(pi/kN); after kIters
    // sweeps the update norm must have dropped by well over an order of
    // magnitude and be monotonically decreasing at the tail.
    bool monotone_tail = true;
    for (int it = kIters / 2; it + 1 < kIters; ++it) {
        monotone_tail = monotone_tail &&
                        deltas[static_cast<std::size_t>(it + 1)] <=
                            deltas[static_cast<std::size_t>(it)] * 1.0001;
    }
    bool const ok = last < 0.1 * first && monotone_tail &&
                    std::isfinite(u_mid) && u_mid > 1.0;
    std::printf("converged: %s\n", ok ? "yes" : "NO");
    hpxlite::finalize();
    return ok ? 0 : 1;
}
