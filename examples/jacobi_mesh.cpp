// Jacobi relaxation on an unstructured grid — the second canonical OP2
// demo application ("jac"), expressed through this library's API and run
// on the HPX dataflow backend.
//
// Solves the 5-point Laplace problem A u = f on an n x n interior grid:
// the off-diagonal entries live on "edges" (node-pairs), the update loop
// gathers neighbour contributions indirectly (OP_INC) exactly like the
// Airfoil residual loop, and a global reduction tracks convergence.
//
// Demonstrates:
//  * a numerically verifiable app that is NOT Airfoil,
//  * asynchronous iteration issue: all Jacobi sweeps are issued up
//    front, chained only through their true data dependencies,
//  * global reductions under the dataflow backend,
//  * service mode (--service N): N independent Jacobi solves submitted
//    as op2::service jobs and scheduled concurrently on the shared pool
//    under a named fairness policy.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <op2/op2.hpp>

namespace {

constexpr std::size_t kN = 48;        // interior grid is kN x kN
constexpr int kIters = 200;

std::size_t node_id(std::size_t i, std::size_t j, std::size_t n) {
    return j * n + i;
}

struct jacobi_result {
    double first = 0.0;   // ||u_next - u|| after the first sweep
    double last = 0.0;    // ... after the final sweep
    double u_mid = 0.0;   // u at the point source
    bool monotone_tail = true;
};

/// One full Jacobi solve on an n x n grid: declares its own sets, map
/// and dats, issues all sweeps asynchronously, fences once. Safe to run
/// concurrently with other solves inside service jobs — each call's
/// entities are private to it.
jacobi_result run_jacobi(std::size_t n, int iters) {
    std::size_t const nnode = n * n;
    // Horizontal + vertical neighbour pairs.
    std::vector<int> etab;
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i + 1 < n; ++i) {
            etab.push_back(static_cast<int>(node_id(i, j, n)));
            etab.push_back(static_cast<int>(node_id(i + 1, j, n)));
        }
    }
    for (std::size_t j = 0; j + 1 < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            etab.push_back(static_cast<int>(node_id(i, j, n)));
            etab.push_back(static_cast<int>(node_id(i, j + 1, n)));
        }
    }
    std::size_t const nedge = etab.size() / 2;

    op2::op_set nodes = op2::op_decl_set(nnode, "nodes");
    op2::op_set edges = op2::op_decl_set(nedge, "edges");
    op2::op_map ppedge = op2::op_decl_map(edges, nodes, 2, etab, "ppedge");

    // RHS: point source in the middle; u starts at zero.
    std::vector<double> f(nnode, 0.0);
    f[node_id(n / 2, n / 2, n)] = 1.0;
    op2::op_dat p_f = op2::op_decl_dat(nodes, 1, "double", f, "p_f");
    op2::op_dat p_u = op2::op_decl_dat_zero<double>(nodes, 1, "double", "p_u");
    op2::op_dat p_du = op2::op_decl_dat_zero<double>(nodes, 1, "double", "p_du");

    op2::loop_options opts;
    opts.part_size = 64;

    // Jacobi: du = f + 1/4 * sum(neighbour u); then u <- du, track |du-u|.
    auto res_kernel = [](double const* u1, double const* u2, double* du1,
                         double* du2) {
        *du1 += 0.25 * *u2;
        *du2 += 0.25 * *u1;
    };
    auto update_kernel = [](double const* f_, double* u, double* du,
                            double* delta) {
        double const next = *f_ + *du;
        *delta += (next - *u) * (next - *u);
        *u = next;
        *du = 0.0;
    };

    std::vector<double> deltas(static_cast<std::size_t>(iters), 0.0);
    for (int it = 0; it < iters; ++it) {
        (void)op2::op_par_loop_hpx(
            opts, "res", edges, res_kernel,
            op2::op_arg_dat(p_u, 0, ppedge, 1, "double", op2::OP_READ),
            op2::op_arg_dat(p_u, 1, ppedge, 1, "double", op2::OP_READ),
            op2::op_arg_dat(p_du, 0, ppedge, 1, "double", op2::OP_INC),
            op2::op_arg_dat(p_du, 1, ppedge, 1, "double", op2::OP_INC));
        (void)op2::op_par_loop_hpx(
            opts, "update", nodes, update_kernel,
            op2::op_arg_dat(p_f, -1, op2::OP_ID, 1, "double", op2::OP_READ),
            op2::op_arg_dat(p_u, -1, op2::OP_ID, 1, "double", op2::OP_RW),
            op2::op_arg_dat(p_du, -1, op2::OP_ID, 1, "double", op2::OP_RW),
            op2::op_arg_gbl(&deltas[static_cast<std::size_t>(it)], 1,
                            "double", op2::OP_INC));
    }
    op2::op_fence(p_u);  // the only synchronisation point
    op2::op_fence(p_du);

    jacobi_result r;
    r.first = std::sqrt(deltas[0]);
    r.last = std::sqrt(deltas[static_cast<std::size_t>(iters - 1)]);
    r.u_mid = p_u.view<double>()[node_id(n / 2, n / 2, n)];
    // Jacobi converges linearly with rate ~cos(pi/n); the update norm
    // must be monotonically decreasing (modulo noise) at the tail.
    for (int it = iters / 2; it + 1 < iters; ++it) {
        r.monotone_tail = r.monotone_tail &&
                          deltas[static_cast<std::size_t>(it + 1)] <=
                              deltas[static_cast<std::size_t>(it)] * 1.0001;
    }
    return r;
}

bool converged(jacobi_result const& r) {
    return r.last < 0.1 * r.first && r.monotone_tail &&
           std::isfinite(r.u_mid) && r.u_mid > 1.0;
}

void help(char const* argv0, std::FILE* out) {
    std::fprintf(out,
        "usage: %s [options]\n"
        "\n"
        "Jacobi relaxation on a %zux%zu unstructured grid, %d sweeps\n"
        "issued asynchronously on the HPX dataflow backend.\n"
        "\n"
        "options:\n"
        "  --service N     run N independent Jacobi solves as op2::service\n"
        "                  jobs scheduled concurrently on the shared pool\n"
        "                  (grid sizes vary across jobs; default: single\n"
        "                  solve, no service layer)\n"
        "  --policy NAME   service fairness policy: fifo, round_robin,\n"
        "                  shortest_chain_first (default fifo; needs\n"
        "                  --service)\n"
        "  --help          this text\n",
        argv0, kN, kN, kIters);
}

}  // namespace

int main(int argc, char** argv) {
    int service_jobs = 0;
    std::string service_policy = "fifo";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            help(argv[0], stdout);
            return 0;
        } else if (std::strcmp(argv[i], "--service") == 0 && i + 1 < argc) {
            service_jobs = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
            service_policy = argv[++i];
        } else {
            help(argv[0], stderr);
            return 2;
        }
    }

    hpxlite::init();

    if (service_jobs > 0) {
        // Service mode: a fleet of independent solves, mixed grid sizes
        // so the fairness policies actually differ, one tenant per size
        // class. Every job must converge exactly as it does solo.
        op2::service::scheduler_options so;
        so.policy = service_policy;
        op2::service::scheduler sched(so);
        std::vector<jacobi_result> results(
            static_cast<std::size_t>(service_jobs));
        std::vector<op2::service::job> jobs;
        for (int k = 0; k < service_jobs; ++k) {
            int const cls = k % 3;
            std::size_t const n = kN / 2 << cls;  // 24 / 48 / 96
            int const iters = kIters / 2;
            op2::service::job_desc d;
            d.name = "jacobi" + std::to_string(k);
            d.tenant = "grid" + std::to_string(n);
            d.est_loops = static_cast<std::uint64_t>(iters) * 2;
            d.est_bytes = n * n * 3 * sizeof(double);
            auto* out = &results[static_cast<std::size_t>(k)];
            d.program = [n, iters, out] { *out = run_jacobi(n, iters); };
            jobs.push_back(sched.submit(std::move(d)));
        }
        sched.drain();

        bool all_ok = true;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            auto const& j = jobs[k];
            auto const m = j.metrics();
            bool const ok =
                j.state() == op2::service::job_state::completed &&
                converged(results[k]);
            all_ok = all_ok && ok;
            std::printf("  %-10s %-8s wait %7.2f ms  run %7.2f ms  "
                        "%4llu loops  ||du|| %.3e  %s\n",
                        j.name().c_str(),
                        j.failed() ? "FAILED" : "completed", m.wait_s * 1e3,
                        m.run_s * 1e3,
                        static_cast<unsigned long long>(m.loops_issued),
                        results[k].last, ok ? "converged" : "NOT CONVERGED");
        }
        auto const sm = sched.metrics();
        std::printf("service: %llu jobs, policy %s, %.1f jobs/s, "
                    "p95 latency %.2f ms\n",
                    static_cast<unsigned long long>(sm.completed + sm.failed),
                    service_policy.c_str(), sm.throughput_jobs_s,
                    sm.p95_latency_s * 1e3);
        hpxlite::finalize();
        return all_ok ? 0 : 1;
    }

    auto const r = run_jacobi(kN, kIters);
    std::printf("Jacobi on %zux%zu grid, %d sweeps (all issued "
                "asynchronously):\n", kN, kN, kIters);
    std::printf("  first        ||u_next - u|| = %.6e\n", r.first);
    std::printf("  final        ||u_next - u|| = %.6e\n", r.last);
    std::printf("u at the source: %.6f (expect > 1, finite)\n", r.u_mid);
    bool const ok = converged(r);
    std::printf("converged: %s\n", ok ? "yes" : "NO");
    hpxlite::finalize();
    return ok ? 0 : 1;
}
