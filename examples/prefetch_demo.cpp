// The prefetching iterator of Section V (Figures 13-14): wrap a loop
// range and its containers in a prefetcher context; for_each then
// prefetches the next chunk of every container while executing the
// current one, in sequential or parallel mode (Table I policies).

#include <cstdio>
#include <cstring>
#include <vector>

#include <hpxlite/hpxlite.hpp>

namespace {

void help(char const* argv0, std::FILE* out) {
    std::fprintf(out,
        "usage: %s [--help]\n"
        "\n"
        "Prefetching-iterator demo (paper Section V, Figures 13-14):\n"
        "runs the same triad loop with and without the prefetcher\n"
        "context, in synchronous and task (asynchronous) policies, and\n"
        "prints the wall time of each. Takes no other options.\n",
        argv0);
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            help(argv[0], stdout);
            return 0;
        }
        help(argv[0], stderr);
        return 2;
    }
    hpxlite::init();

    std::size_t const n = 4'000'000;
    std::vector<double> c1(n, 1.0);
    std::vector<double> c2(n, 2.0);
    std::vector<float> c3(n, 3.0F);  // mixed element types are supported

    // Figure 14, almost verbatim:
    std::size_t const prefetch_distance_factor = 15;
    auto ctx = hpxlite::parallel::make_prefetcher_context(
        0, n, prefetch_distance_factor, c1, c2, c3);

    auto body = [&](std::size_t i) {
        c1[i] = c2[i] + static_cast<double>(c3[i]);
        c2[i] = c1[i] * 0.5;
        c3[i] = static_cast<float>(c2[i]);
    };

    {
        hpxlite::util::stopwatch sw;
        hpxlite::parallel::for_each(hpxlite::parallel::par, ctx.begin(),
                                    ctx.end(), body);
        std::printf("parallel + prefetch  : %8.3f ms\n", sw.elapsed_s() * 1e3);
    }
    {
        hpxlite::util::irange r(0, n);
        hpxlite::util::stopwatch sw;
        hpxlite::parallel::for_each(hpxlite::parallel::par, r.begin(), r.end(),
                                    body);
        std::printf("parallel, no prefetch: %8.3f ms\n", sw.elapsed_s() * 1e3);
    }
    {
        // The same context works with the asynchronous policy: issue the
        // loop, keep working, collect the future later.
        hpxlite::util::stopwatch sw;
        auto f = hpxlite::parallel::for_each(
            hpxlite::parallel::par(hpxlite::parallel::task), ctx.begin(),
            ctx.end(), body);
        double const issue_ms = sw.elapsed_s() * 1e3;
        f.wait();
        std::printf("par(task) + prefetch : %8.3f ms (issued in %.4f ms)\n",
                    sw.elapsed_s() * 1e3, issue_ms);
    }

    std::printf("c1[42] = %.4f\n", c1[42]);
    hpxlite::finalize();
    return 0;
}
