// Sample OP2 application source (classic OP2 API style) used to
// demonstrate the op2c source-to-source translator:
//   build/src/op2c/op2c --backend=both -o /tmp/op2c_out \
//       examples/op2c_input/airfoil_op2.cpp
#include "op_seq.h"

int main(int argc, char** argv) {
  op_set nodes  = op_decl_set(nnode,  "nodes");
  op_set edges  = op_decl_set(nedge,  "edges");
  op_set bedges = op_decl_set(nbedge, "bedges");
  op_set cells  = op_decl_set(ncell,  "cells");

  op_map pedge   = op_decl_map(edges,  nodes, 2, edge,   "pedge");
  op_map pecell  = op_decl_map(edges,  cells, 2, ecell,  "pecell");
  op_map pbedge  = op_decl_map(bedges, nodes, 2, bedge,  "pbedge");
  op_map pbecell = op_decl_map(bedges, cells, 1, becell, "pbecell");
  op_map pcell   = op_decl_map(cells,  nodes, 4, cell,   "pcell");

  op_dat p_bound = op_decl_dat(bedges, 1, "int",    bound, "p_bound");
  op_dat p_x     = op_decl_dat(nodes,  2, "double", x,     "p_x");
  op_dat p_q     = op_decl_dat(cells,  4, "double", q,     "p_q");
  op_dat p_qold  = op_decl_dat(cells,  4, "double", qold,  "p_qold");
  op_dat p_adt   = op_decl_dat(cells,  1, "double", adt,   "p_adt");
  op_dat p_res   = op_decl_dat(cells,  4, "double", res,   "p_res");

  for (int iter = 1; iter <= niter; iter++) {
    op_par_loop(save_soln, "save_soln", cells,
                op_arg_dat(p_q,    -1, OP_ID, 4, "double", OP_READ),
                op_arg_dat(p_qold, -1, OP_ID, 4, "double", OP_WRITE));

    for (int k = 0; k < 2; k++) {
      op_par_loop(adt_calc, "adt_calc", cells,
                  op_arg_dat(p_x,   0, pcell, 2, "double", OP_READ),
                  op_arg_dat(p_x,   1, pcell, 2, "double", OP_READ),
                  op_arg_dat(p_x,   2, pcell, 2, "double", OP_READ),
                  op_arg_dat(p_x,   3, pcell, 2, "double", OP_READ),
                  op_arg_dat(p_q,  -1, OP_ID, 4, "double", OP_READ),
                  op_arg_dat(p_adt,-1, OP_ID, 1, "double", OP_WRITE));

      op_par_loop(res_calc, "res_calc", edges,
                  op_arg_dat(p_x,    0, pedge,  2, "double", OP_READ),
                  op_arg_dat(p_x,    1, pedge,  2, "double", OP_READ),
                  op_arg_dat(p_q,    0, pecell, 4, "double", OP_READ),
                  op_arg_dat(p_q,    1, pecell, 4, "double", OP_READ),
                  op_arg_dat(p_adt,  0, pecell, 1, "double", OP_READ),
                  op_arg_dat(p_adt,  1, pecell, 1, "double", OP_READ),
                  op_arg_dat(p_res,  0, pecell, 4, "double", OP_INC),
                  op_arg_dat(p_res,  1, pecell, 4, "double", OP_INC));

      op_par_loop(bres_calc, "bres_calc", bedges,
                  op_arg_dat(p_x,     0, pbedge,  2, "double", OP_READ),
                  op_arg_dat(p_x,     1, pbedge,  2, "double", OP_READ),
                  op_arg_dat(p_q,     0, pbecell, 4, "double", OP_READ),
                  op_arg_dat(p_adt,   0, pbecell, 1, "double", OP_READ),
                  op_arg_dat(p_res,   0, pbecell, 4, "double", OP_INC),
                  op_arg_dat(p_bound,-1, OP_ID,   1, "int",    OP_READ));

      op_par_loop(update, "update", cells,
                  op_arg_dat(p_qold,-1, OP_ID, 4, "double", OP_READ),
                  op_arg_dat(p_q,   -1, OP_ID, 4, "double", OP_WRITE),
                  op_arg_dat(p_res, -1, OP_ID, 4, "double", OP_RW),
                  op_arg_dat(p_adt, -1, OP_ID, 1, "double", OP_READ),
                  op_arg_gbl(&rms,   1, "double", OP_INC));
    }
  }
}
