// Loop interleaving (paper Figures 10-11): the future returned by one
// op_par_loop feeds the next; independent loops overlap, dependent loops
// wait exactly for what they need — no global barriers.
//
// The demo issues four loops over two independent data sets and prints
// the observed completion order, demonstrating that the two independent
// chains interleave while each chain stays internally ordered.

#include <atomic>
#include <cstdio>
#include <vector>

#include <op2/op2.hpp>

int main() {
    hpxlite::init();

    std::size_t const n = 200'000;
    op2::op_set cells = op2::op_decl_set(n, "cells");
    op2::op_dat a = op2::op_decl_dat_zero<double>(cells, 1, "double", "a");
    op2::op_dat b = op2::op_decl_dat_zero<double>(cells, 1, "double", "b");

    std::atomic<int> order{0};
    std::array<int, 4> completed{};

    op2::loop_options opts;
    opts.part_size = 1024;

    auto mark = [&](int slot) {
        return [&completed, &order, slot] {
            completed[static_cast<std::size_t>(slot)] =
                order.fetch_add(1) + 1;
        };
    };

    // Chain A: a = 1; a += 1  (dependent: must run in order)
    auto fa1 = op2::op_par_loop_hpx(
        opts, "a_init", cells, [](double* x) { *x = 1.0; },
        op2::op_arg_dat(a, -1, op2::OP_ID, 1, "double", op2::OP_WRITE));
    auto fa1m = fa1.then([m = mark(0)](auto&&) { m(); });

    auto fa2 = op2::op_par_loop_hpx(
        opts, "a_inc", cells, [](double* x) { *x += 1.0; },
        op2::op_arg_dat(a, -1, op2::OP_ID, 1, "double", op2::OP_RW));
    auto fa2m = fa2.then([m = mark(1)](auto&&) { m(); });

    // Chain B: b = 10; b *= 2  (independent of chain A)
    auto fb1 = op2::op_par_loop_hpx(
        opts, "b_init", cells, [](double* x) { *x = 10.0; },
        op2::op_arg_dat(b, -1, op2::OP_ID, 1, "double", op2::OP_WRITE));
    auto fb1m = fb1.then([m = mark(2)](auto&&) { m(); });

    auto fb2 = op2::op_par_loop_hpx(
        opts, "b_mul", cells, [](double* x) { *x *= 2.0; },
        op2::op_arg_dat(b, -1, op2::OP_ID, 1, "double", op2::OP_RW));
    auto fb2m = fb2.then([m = mark(3)](auto&&) { m(); });

    fa2m.wait();
    fb2m.wait();
    fa1m.wait();
    fb1m.wait();
    op2::op_fence_all();

    std::printf("completion order (1 = first):\n");
    std::printf("  chain A: a=1 -> #%d,  a+=1 -> #%d\n", completed[0],
                completed[1]);
    std::printf("  chain B: b=10 -> #%d,  b*=2 -> #%d\n", completed[2],
                completed[3]);
    std::printf("invariants: A1 before A2: %s, B1 before B2: %s\n",
                completed[0] < completed[1] ? "yes" : "NO",
                completed[2] < completed[3] ? "yes" : "NO");

    double const a0 = a.view<double>()[0];
    double const b0 = b.view<double>()[0];
    std::printf("results: a[0] = %.1f (expect 2), b[0] = %.1f (expect 20)\n",
                a0, b0);

    hpxlite::finalize();
    return 0;
}
