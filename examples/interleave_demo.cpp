// Loop interleaving (paper Figures 10-11): the future returned by one
// op_par_loop feeds the next; independent loops overlap, dependent loops
// wait exactly for what they need — no global barriers.
//
// The demo issues four loops over two independent data sets and prints
// the observed completion order, demonstrating that the two independent
// chains interleave while each chain stays internally ordered.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include <op2/op2.hpp>

namespace {

void help(char const* argv0, std::FILE* out) {
    std::fprintf(out,
        "usage: %s [--help]\n"
        "\n"
        "Loop-interleaving demo (paper Figures 10-11): two independent\n"
        "two-loop chains are issued back to back; the printed start order\n"
        "shows the chains overlapping while each stays internally ordered.\n"
        "Takes no other options.\n",
        argv0);
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            help(argv[0], stdout);
            return 0;
        }
        help(argv[0], stderr);
        return 2;
    }
    hpxlite::init();

    std::size_t const n = 200'000;
    op2::op_set cells = op2::op_decl_set(n, "cells");
    op2::op_dat a = op2::op_decl_dat_zero<double>(cells, 1, "double", "a");
    op2::op_dat b = op2::op_decl_dat_zero<double>(cells, 1, "double", "b");

    // Each loop stamps the order in which it *starts executing* (first
    // kernel invocation). Within a chain the dataflow engine guarantees
    // the second loop starts only after the first completed, so the
    // start stamps are a race-free witness of the dependency order,
    // while still showing the two chains interleaving freely.
    std::atomic<int> order{0};
    std::array<std::atomic<int>, 4> started{};

    op2::loop_options opts;
    opts.part_size = 1024;

    auto stamp = [&](int slot) {
        auto& s = started[static_cast<std::size_t>(slot)];
        int expected = 0;
        // Claim the slot first, then draw the rank: only the winning
        // element draws from `order`, so ranks stay a permutation of
        // 1..4 even when many blocks of one loop start simultaneously.
        if (s.load(std::memory_order_relaxed) == 0 &&
            s.compare_exchange_strong(expected, -1)) {
            s.store(order.fetch_add(1) + 1, std::memory_order_relaxed);
        }
    };

    // Chain A: a = 1; a += 1  (dependent: must run in order)
    auto fa1 = op2::op_par_loop_hpx(
        opts, "a_init", cells,
        [&stamp](double* x) {
            stamp(0);
            *x = 1.0;
        },
        op2::op_arg_dat(a, -1, op2::OP_ID, 1, "double", op2::OP_WRITE));

    auto fa2 = op2::op_par_loop_hpx(
        opts, "a_inc", cells,
        [&stamp](double* x) {
            stamp(1);
            *x += 1.0;
        },
        op2::op_arg_dat(a, -1, op2::OP_ID, 1, "double", op2::OP_RW));

    // Chain B: b = 10; b *= 2  (independent of chain A)
    auto fb1 = op2::op_par_loop_hpx(
        opts, "b_init", cells,
        [&stamp](double* x) {
            stamp(2);
            *x = 10.0;
        },
        op2::op_arg_dat(b, -1, op2::OP_ID, 1, "double", op2::OP_WRITE));

    auto fb2 = op2::op_par_loop_hpx(
        opts, "b_mul", cells,
        [&stamp](double* x) {
            stamp(3);
            *x *= 2.0;
        },
        op2::op_arg_dat(b, -1, op2::OP_ID, 1, "double", op2::OP_RW));

    fa2.wait();
    fb2.wait();
    fa1.wait();
    fb1.wait();
    op2::op_fence_all();

    std::printf("start order (1 = first):\n");
    std::printf("  chain A: a=1 -> #%d,  a+=1 -> #%d\n", started[0].load(),
                started[1].load());
    std::printf("  chain B: b=10 -> #%d,  b*=2 -> #%d\n", started[2].load(),
                started[3].load());
    std::printf("invariants: A1 before A2: %s, B1 before B2: %s\n",
                started[0].load() < started[1].load() ? "yes" : "NO",
                started[2].load() < started[3].load() ? "yes" : "NO");

    double const a0 = a.view<double>()[0];
    double const b0 = b.view<double>()[0];
    std::printf("results: a[0] = %.1f (expect 2), b[0] = %.1f (expect 20)\n",
                a0, b0);

    hpxlite::finalize();
    return 0;
}
