// Quickstart: the mesh of Figure 1 of the paper — 9 nodes and 12 edges
// on a 3x3 grid — declared through the OP2 API and processed with an
// edge loop that gathers node values and a node loop that normalises
// them, on all three backends.

#include <cstdio>
#include <cstring>
#include <vector>

#include <op2/op2.hpp>

namespace {

void help(char const* argv0, std::FILE* out) {
    std::fprintf(out,
        "usage: %s [--help]\n"
        "\n"
        "Quickstart: the Figure 1 mesh (9 nodes, 12 edges of a 3x3 grid)\n"
        "processed by an indirect edge loop and a dependent node loop on\n"
        "all three backends (seq, fork-join, HPX dataflow). Takes no\n"
        "other options.\n",
        argv0);
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            help(argv[0], stdout);
            return 0;
        }
        help(argv[0], stderr);
        return 2;
    }
    hpxlite::init();

    // --- Figure 1 mesh: 9 nodes, 12 edges of a 3x3 grid ---------------
    op2::op_set nodes = op2::op_decl_set(9, "nodes");
    op2::op_set edges = op2::op_decl_set(12, "edges");

    // The edge->node connectivity from the paper's Section II-A listing.
    std::vector<int> edge_map = {0, 1, 1, 2, 2, 5, 5, 4, 4, 3, 3, 6,
                                 6, 7, 7, 8, 0, 3, 1, 4, 2, 5, 3, 6};
    op2::op_map pedge = op2::op_decl_map(edges, nodes, 2, edge_map, "pedge");

    std::vector<double> node_values = {5.3, 1.2, 0.2, 3.4, 5.4,
                                       6.2, 3.2, 2.5, 0.9};
    std::vector<double> edge_weights(12, 1.0);
    op2::op_dat d_node =
        op2::op_decl_dat(nodes, 1, "double", node_values, "data_node");
    op2::op_dat d_edge =
        op2::op_decl_dat(edges, 1, "double", edge_weights, "data_edge");
    op2::op_dat d_sum = op2::op_decl_dat_zero<double>(nodes, 1, "double", "sum");

    // Edge kernel: scatter each edge's weighted endpoint values.
    auto scatter = [](double const* w, double const* n1, double const* n2,
                      double* s1, double* s2) {
        *s1 += *w * *n2;  // each node accumulates its neighbour's value
        *s2 += *w * *n1;
    };

    auto args = [&] {
        return std::make_tuple(
            op2::op_arg_dat(d_edge, -1, op2::OP_ID, 1, "double", op2::OP_READ),
            op2::op_arg_dat(d_node, 0, pedge, 1, "double", op2::OP_READ),
            op2::op_arg_dat(d_node, 1, pedge, 1, "double", op2::OP_READ),
            op2::op_arg_dat(d_sum, 0, pedge, 1, "double", op2::OP_INC),
            op2::op_arg_dat(d_sum, 1, pedge, 1, "double", op2::OP_INC));
    };

    // 1. Sequential reference.
    {
        auto [a0, a1, a2, a3, a4] = args();
        op2::op_par_loop_seq("scatter", edges, scatter, a0, a1, a2, a3, a4);
    }
    auto ref = op2::op_fetch_data<double>(d_sum);

    // 2. Fork-join (OpenMP-style) backend.
    {
        for (auto& x : d_sum.view<double>()) {
            x = 0.0;
        }
        op2::loop_options opts;
        opts.part_size = 4;
        auto [a0, a1, a2, a3, a4] = args();
        op2::op_par_loop_fork_join(opts, "scatter", edges, scatter, a0, a1, a2,
                                   a3, a4);
    }

    // 3. HPX dataflow backend: issue the scatter and a dependent
    //    normalisation loop; they chain automatically through d_sum.
    {
        for (auto& x : d_sum.view<double>()) {
            x = 0.0;
        }
        op2::loop_options opts;
        opts.part_size = 4;
        auto [a0, a1, a2, a3, a4] = args();
        auto f1 = op2::op_par_loop_hpx(opts, "scatter", edges, scatter, a0, a1,
                                       a2, a3, a4);
        auto f2 = op2::op_par_loop_hpx(
            opts, "halve", nodes, [](double* s) { *s *= 0.5; },
            op2::op_arg_dat(d_sum, -1, op2::OP_ID, 1, "double", op2::OP_RW));
        f2.wait();  // f1 is implicitly ordered before f2 (RAW on d_sum)
    }

    std::printf("node  neighbour-sum (seq)   half-sum (dataflow)\n");
    auto final_sum = op2::op_fetch_data<double>(d_sum);
    for (std::size_t i = 0; i < 9; ++i) {
        std::printf("%4zu  %19.2f   %19.2f\n", i, ref[i], final_sum[i]);
    }

    hpxlite::finalize();
    return 0;
}
