// The Airfoil CFD application (paper Section II-B) end to end:
// generates (or loads) the mesh, runs the five-loop iteration on the
// chosen backend and reports the residual trajectory and timing.
// Doubles as the fault-tolerance demo: with --fault an injection plan
// is armed, and with --checkpoint-every/--retries the run checkpoints
// its state dats and recovers from the injected failures — the final
// output is bitwise-identical to an undisturbed run.
//
// Usage: airfoil_app [seq|fork_join|hpx] [nx ny] [niter]
//                    [--mesh-file PATH] [--checkpoint-every N]
//                    [--retries K] [--fault PLAN] [--watchdog-ms T]
//                    [--fuse] [--localities N] [--no-simd-scatter]
//                    [--no-exec-pool]
//
//   --mesh-file PATH       load a new_grid.dat mesh instead of
//                          generating one (errors name file, section
//                          and line, and exit non-zero)
//   --checkpoint-every N   checkpoint q/qold/adt/res every N iterations
//   --retries K            roll a failed segment back up to K times
//   --fault PLAN           arm an op2::fault plan (see op2/fault.hpp;
//                          e.g. "kernel=res_calc@1.0")
//   --watchdog-ms T        report a graph dump after T ms without
//                          progress
//   --fuse                 fuse adjacent compatible loops of the chain
//                          into single staged passes (hpx backend)
//   --localities N         shard each loop's partitions into N logical
//                          localities with async halo exchange (hpx
//                          backend; also OP2HPX_LOCALITIES; default 1
//                          = shared-everything; fuse takes precedence)
//   --no-simd-scatter      disable the SIMD INC scatter path (scalar
//                          oracle; also OP2HPX_SIMD_SCATTER=0)
//   --no-exec-pool         disable cross-issue executor pooling (also
//                          OP2HPX_EXEC_POOL=0)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <airfoil/app.hpp>
#include <airfoil/mesh_io.hpp>
#include <op2/service.hpp>

namespace {

void help(char const* argv0, std::FILE* out) {
    std::fprintf(
        out,
        "usage: %s [seq|fork_join|hpx] [nx ny] [niter] [flags]\n"
        "\n"
        "positionals (in order):\n"
        "  backend                seq | fork_join | hpx (default hpx)\n"
        "  nx ny                  generated mesh size in cells "
        "(default 120 60)\n"
        "  niter                  time-march iterations (default 200)\n"
        "\n"
        "flags (anywhere on the command line):\n"
        "  --mesh-file PATH       load a new_grid.dat mesh instead of\n"
        "                         generating one\n"
        "  --checkpoint-every N   checkpoint q/qold/adt/res every N\n"
        "                         iterations\n"
        "  --retries K            roll a failed segment back up to K times\n"
        "  --fault PLAN           arm an op2::fault plan (op2/fault.hpp;\n"
        "                         e.g. \"kernel=res_calc@1.0\")\n"
        "  --watchdog-ms T        dump the epoch graph after T ms without\n"
        "                         progress\n"
        "  --fuse                 fuse adjacent compatible loops into\n"
        "                         single staged passes (hpx backend)\n"
        "  --localities N         shard partitions into N logical\n"
        "                         localities with async halo exchange\n"
        "                         (hpx backend; also OP2HPX_LOCALITIES;\n"
        "                         default 1; fuse takes precedence)\n"
        "  --no-simd-scatter      scalar INC scatter oracle (also\n"
        "                         OP2HPX_SIMD_SCATTER=0)\n"
        "  --no-exec-pool         fresh executors per issue (also\n"
        "                         OP2HPX_EXEC_POOL=0)\n"
        "  --service N            service mode: run N independent\n"
        "                         airfoil jobs concurrently through\n"
        "                         op2::service (see docs/service.md)\n"
        "  --policy NAME          service fairness policy: fifo |\n"
        "                         round_robin | shortest_chain_first\n"
        "                         (default fifo)\n"
        "  --help                 this text\n",
        argv0);
}

int usage(char const* argv0) {
    help(argv0, stderr);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    airfoil::app_config cfg;
    cfg.mesh.nx = 120;
    cfg.mesh.ny = 60;
    cfg.niter = 200;
    cfg.rms_stride = 20;
    cfg.be = op2::backend::hpx;

    std::string mesh_file;
    std::string fault_plan;
    long watchdog_ms = 0;
    int service_jobs = 0;
    std::string service_policy = "fifo";

    // Flags may appear anywhere; positionals keep their seed order
    // (backend, nx ny, niter).
    int npos = 0;
    char const* pos[4] = {nullptr, nullptr, nullptr, nullptr};
    for (int i = 1; i < argc; ++i) {
        auto flag_value = [&](char const* name) -> char const* {
            if (std::strcmp(argv[i], name) != 0) {
                return nullptr;
            }
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (char const* v = flag_value("--mesh-file")) {
            mesh_file = v;
        } else if (char const* v = flag_value("--checkpoint-every")) {
            cfg.checkpoint_every = std::atoi(v);
        } else if (char const* v = flag_value("--retries")) {
            cfg.opts.retries = static_cast<std::size_t>(std::atol(v));
        } else if (char const* v = flag_value("--fault")) {
            fault_plan = v;
        } else if (char const* v = flag_value("--watchdog-ms")) {
            watchdog_ms = std::atol(v);
        } else if (std::strcmp(argv[i], "--fuse") == 0) {
            // Chain fusion (hpx backend): adjacent compatible loops of
            // the per-iteration chain run as one staged pass.
            cfg.opts.fuse = true;
        } else if (char const* v = flag_value("--localities")) {
            // Logical localities with async halo exchange (op2/comm).
            // The comm layer engages at partition granularity, so a
            // sharded run implies partitioned issue: two partitions per
            // locality keeps an interior/halo split inside each shard.
            cfg.opts.localities = static_cast<std::size_t>(std::atol(v));
            if (cfg.opts.localities > 1 && cfg.opts.partitions == 0) {
                cfg.opts.partitions = 2 * cfg.opts.localities;
            }
        } else if (std::strcmp(argv[i], "--no-simd-scatter") == 0) {
            cfg.opts.simd_scatter = false;  // scalar INC scatter oracle
        } else if (std::strcmp(argv[i], "--no-exec-pool") == 0) {
            cfg.opts.exec_pool = false;  // fresh executors per issue
        } else if (char const* v = flag_value("--service")) {
            service_jobs = std::atoi(v);
        } else if (char const* v = flag_value("--policy")) {
            service_policy = v;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            help(argv[0], stdout);
            return 0;
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else if (npos < 4) {
            pos[npos++] = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (npos > 0) {
        if (std::strcmp(pos[0], "seq") == 0) {
            cfg.be = op2::backend::seq;
        } else if (std::strcmp(pos[0], "fork_join") == 0) {
            cfg.be = op2::backend::fork_join;
        } else if (std::strcmp(pos[0], "hpx") == 0) {
            cfg.be = op2::backend::hpx;
        } else {
            return usage(argv[0]);
        }
    }
    if (npos > 2) {
        cfg.mesh.nx = static_cast<std::size_t>(std::atoi(pos[1]));
        cfg.mesh.ny = static_cast<std::size_t>(std::atoi(pos[2]));
    }
    if (npos > 3) {
        cfg.niter = std::atoi(pos[3]);
    }

    if (!fault_plan.empty()) {
        try {
            op2::fault::arm(fault_plan);
        } catch (std::exception const& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    hpxlite::init();
    int rc = 0;
    try {
        std::optional<op2::exec::watchdog> dog;
        if (watchdog_ms > 0) {
            dog.emplace(std::chrono::milliseconds(watchdog_ms));
        }

        if (service_jobs > 0) {
            // Service mode: a fleet of independent airfoil jobs (three
            // tenants, three mesh sizes) admitted by the chosen policy
            // and run concurrently on the shared pool — each with its
            // own mesh, plans and fault scope (docs/service.md).
            std::printf("airfoil service: %d job(s), policy=%s\n",
                        service_jobs, service_policy.c_str());
            op2::service::scheduler_options so;
            so.policy = service_policy;
            op2::service::scheduler sched(so);
            auto results = std::vector<airfoil::app_result>(
                static_cast<std::size_t>(service_jobs));
            std::vector<op2::service::job> jobs;
            for (int k = 0; k < service_jobs; ++k) {
                airfoil::app_config jcfg = cfg;
                jcfg.mesh.nx =
                    std::max<std::size_t>(cfg.mesh.nx / 4, 8)
                    << (k % 3);
                jcfg.mesh.ny = std::max<std::size_t>(cfg.mesh.ny / 4, 8);
                jcfg.niter = std::max(cfg.niter / 10, 2);
                jcfg.rms_stride = jcfg.niter;
                op2::service::job_desc d;
                d.name = "airfoil" + std::to_string(k);
                d.tenant = "tenant" + std::to_string(k % 3);
                d.est_loops =
                    static_cast<std::uint64_t>(jcfg.niter) * 4;
                d.est_bytes =
                    jcfg.mesh.nx * jcfg.mesh.ny * 7 * sizeof(double);
                auto* out = &results[static_cast<std::size_t>(k)];
                d.program = [jcfg, out] { *out = airfoil::run(jcfg); };
                jobs.push_back(sched.submit(std::move(d)));
            }
            sched.drain();
            for (std::size_t k = 0; k < jobs.size(); ++k) {
                auto const& j = jobs[k];
                auto const m = j.metrics();
                std::printf(
                    "  %-10s %-9s wait %7.2f ms  run %8.2f ms  "
                    "%4llu loops  rms %.6e\n",
                    j.name().c_str(),
                    j.failed() ? "FAILED" : "completed", m.wait_s * 1e3,
                    m.run_s * 1e3,
                    static_cast<unsigned long long>(m.loops_issued),
                    results[k].rms_history.empty()
                        ? 0.0
                        : results[k].rms_history.back());
            }
            auto const sm = sched.metrics();
            std::printf(
                "service: %llu/%llu job(s) completed, %.1f jobs/s, "
                "p95 %.2f ms, p99 %.2f ms (policy %s)\n",
                static_cast<unsigned long long>(sm.completed),
                static_cast<unsigned long long>(sm.submitted),
                sm.throughput_jobs_s, sm.p95_latency_s * 1e3,
                sm.p99_latency_s * 1e3, sm.policy.c_str());
            hpxlite::finalize();
            return sm.failed == 0 ? 0 : 1;
        }

        airfoil::app_result result;
        if (!mesh_file.empty()) {
            airfoil::mesh m = airfoil::read_mesh_file(mesh_file);
            std::printf(
                "airfoil: %zu nodes / %zu cells from %s, %d iterations, "
                "backend=%s\n",
                m.nnode, m.ncell, mesh_file.c_str(), cfg.niter,
                op2::to_string(cfg.be));
            airfoil::problem prob = airfoil::make_problem(m);
            result = airfoil::run(prob, cfg);
        } else {
            std::printf(
                "airfoil: %zux%zu cells, %d iterations, backend=%s\n",
                cfg.mesh.nx, cfg.mesh.ny, cfg.niter,
                op2::to_string(cfg.be));
            result = airfoil::run(cfg);
        }

        int it = cfg.rms_stride;
        for (double r : result.rms_history) {
            std::printf("  iter %6d  rms %.10e\n", it, r);
            it += cfg.rms_stride;
        }
        std::printf("elapsed: %.4f s  (%.2f us per cell-iteration)\n",
                    result.elapsed_s,
                    result.elapsed_s * 1e6 /
                        (static_cast<double>(cfg.mesh.nx * cfg.mesh.ny) *
                         cfg.niter));
        if (cfg.checkpoint_every > 0) {
            std::printf("checkpoint: every %d iteration(s), %d recover%s\n",
                        cfg.checkpoint_every, result.recoveries,
                        result.recoveries == 1 ? "y" : "ies");
        }
        auto const& cs = op2::comm::stats();
        if (cs.exchanges.load() != 0) {
            std::printf(
                "halo: %llu exchange(s), %llu pack(s), %llu combine(s), "
                "%.1f KiB moved\n",
                static_cast<unsigned long long>(cs.exchanges.load()),
                static_cast<unsigned long long>(cs.packs.load()),
                static_cast<unsigned long long>(cs.combines.load()),
                static_cast<double>(cs.bytes.load()) / 1024.0);
        }

        std::printf("\nper-loop timing (op_timing_output):\n");
        std::ostringstream os;
        op2::op_timing_output(os);
        std::fputs(os.str().c_str(), stdout);
    } catch (airfoil::mesh_io_error const& e) {
        // Structured mesh failure: the message already names file,
        // section and line — report it and exit non-zero.
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        rc = 1;
    } catch (std::exception const& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        rc = 1;
    }

    hpxlite::finalize();
    return rc;
}
