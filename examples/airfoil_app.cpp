// The Airfoil CFD application (paper Section II-B) end to end:
// generates (or loads) the mesh, runs the five-loop iteration on the
// chosen backend and reports the residual trajectory and timing.
// Doubles as the fault-tolerance demo: with --fault an injection plan
// is armed, and with --checkpoint-every/--retries the run checkpoints
// its state dats and recovers from the injected failures — the final
// output is bitwise-identical to an undisturbed run.
//
// Usage: airfoil_app [seq|fork_join|hpx] [nx ny] [niter]
//                    [--mesh-file PATH] [--checkpoint-every N]
//                    [--retries K] [--fault PLAN] [--watchdog-ms T]
//                    [--fuse] [--localities N] [--no-simd-scatter]
//                    [--no-exec-pool]
//
//   --mesh-file PATH       load a new_grid.dat mesh instead of
//                          generating one (errors name file, section
//                          and line, and exit non-zero)
//   --checkpoint-every N   checkpoint q/qold/adt/res every N iterations
//   --retries K            roll a failed segment back up to K times
//   --fault PLAN           arm an op2::fault plan (see op2/fault.hpp;
//                          e.g. "kernel=res_calc@1.0")
//   --watchdog-ms T        report a graph dump after T ms without
//                          progress
//   --fuse                 fuse adjacent compatible loops of the chain
//                          into single staged passes (hpx backend)
//   --localities N         shard each loop's partitions into N logical
//                          localities with async halo exchange (hpx
//                          backend; also OP2HPX_LOCALITIES; default 1
//                          = shared-everything; fuse takes precedence)
//   --no-simd-scatter      disable the SIMD INC scatter path (scalar
//                          oracle; also OP2HPX_SIMD_SCATTER=0)
//   --no-exec-pool         disable cross-issue executor pooling (also
//                          OP2HPX_EXEC_POOL=0)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include <airfoil/app.hpp>
#include <airfoil/mesh_io.hpp>

namespace {

int usage(char const* argv0) {
    std::fprintf(stderr,
                 "usage: %s [seq|fork_join|hpx] [nx ny] [niter]\n"
                 "          [--mesh-file PATH] [--checkpoint-every N]\n"
                 "          [--retries K] [--fault PLAN] "
                 "[--watchdog-ms T]\n"
                 "          [--fuse] [--localities N] [--no-simd-scatter] "
                 "[--no-exec-pool]\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    airfoil::app_config cfg;
    cfg.mesh.nx = 120;
    cfg.mesh.ny = 60;
    cfg.niter = 200;
    cfg.rms_stride = 20;
    cfg.be = op2::backend::hpx;

    std::string mesh_file;
    std::string fault_plan;
    long watchdog_ms = 0;

    // Flags may appear anywhere; positionals keep their seed order
    // (backend, nx ny, niter).
    int npos = 0;
    char const* pos[4] = {nullptr, nullptr, nullptr, nullptr};
    for (int i = 1; i < argc; ++i) {
        auto flag_value = [&](char const* name) -> char const* {
            if (std::strcmp(argv[i], name) != 0) {
                return nullptr;
            }
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (char const* v = flag_value("--mesh-file")) {
            mesh_file = v;
        } else if (char const* v = flag_value("--checkpoint-every")) {
            cfg.checkpoint_every = std::atoi(v);
        } else if (char const* v = flag_value("--retries")) {
            cfg.opts.retries = static_cast<std::size_t>(std::atol(v));
        } else if (char const* v = flag_value("--fault")) {
            fault_plan = v;
        } else if (char const* v = flag_value("--watchdog-ms")) {
            watchdog_ms = std::atol(v);
        } else if (std::strcmp(argv[i], "--fuse") == 0) {
            // Chain fusion (hpx backend): adjacent compatible loops of
            // the per-iteration chain run as one staged pass.
            cfg.opts.fuse = true;
        } else if (char const* v = flag_value("--localities")) {
            // Logical localities with async halo exchange (op2/comm).
            // The comm layer engages at partition granularity, so a
            // sharded run implies partitioned issue: two partitions per
            // locality keeps an interior/halo split inside each shard.
            cfg.opts.localities = static_cast<std::size_t>(std::atol(v));
            if (cfg.opts.localities > 1 && cfg.opts.partitions == 0) {
                cfg.opts.partitions = 2 * cfg.opts.localities;
            }
        } else if (std::strcmp(argv[i], "--no-simd-scatter") == 0) {
            cfg.opts.simd_scatter = false;  // scalar INC scatter oracle
        } else if (std::strcmp(argv[i], "--no-exec-pool") == 0) {
            cfg.opts.exec_pool = false;  // fresh executors per issue
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else if (npos < 4) {
            pos[npos++] = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (npos > 0) {
        if (std::strcmp(pos[0], "seq") == 0) {
            cfg.be = op2::backend::seq;
        } else if (std::strcmp(pos[0], "fork_join") == 0) {
            cfg.be = op2::backend::fork_join;
        } else if (std::strcmp(pos[0], "hpx") == 0) {
            cfg.be = op2::backend::hpx;
        } else {
            return usage(argv[0]);
        }
    }
    if (npos > 2) {
        cfg.mesh.nx = static_cast<std::size_t>(std::atoi(pos[1]));
        cfg.mesh.ny = static_cast<std::size_t>(std::atoi(pos[2]));
    }
    if (npos > 3) {
        cfg.niter = std::atoi(pos[3]);
    }

    if (!fault_plan.empty()) {
        try {
            op2::fault::arm(fault_plan);
        } catch (std::exception const& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    hpxlite::init();
    int rc = 0;
    try {
        std::optional<op2::exec::watchdog> dog;
        if (watchdog_ms > 0) {
            dog.emplace(std::chrono::milliseconds(watchdog_ms));
        }

        airfoil::app_result result;
        if (!mesh_file.empty()) {
            airfoil::mesh m = airfoil::read_mesh_file(mesh_file);
            std::printf(
                "airfoil: %zu nodes / %zu cells from %s, %d iterations, "
                "backend=%s\n",
                m.nnode, m.ncell, mesh_file.c_str(), cfg.niter,
                op2::to_string(cfg.be));
            airfoil::problem prob = airfoil::make_problem(m);
            result = airfoil::run(prob, cfg);
        } else {
            std::printf(
                "airfoil: %zux%zu cells, %d iterations, backend=%s\n",
                cfg.mesh.nx, cfg.mesh.ny, cfg.niter,
                op2::to_string(cfg.be));
            result = airfoil::run(cfg);
        }

        int it = cfg.rms_stride;
        for (double r : result.rms_history) {
            std::printf("  iter %6d  rms %.10e\n", it, r);
            it += cfg.rms_stride;
        }
        std::printf("elapsed: %.4f s  (%.2f us per cell-iteration)\n",
                    result.elapsed_s,
                    result.elapsed_s * 1e6 /
                        (static_cast<double>(cfg.mesh.nx * cfg.mesh.ny) *
                         cfg.niter));
        if (cfg.checkpoint_every > 0) {
            std::printf("checkpoint: every %d iteration(s), %d recover%s\n",
                        cfg.checkpoint_every, result.recoveries,
                        result.recoveries == 1 ? "y" : "ies");
        }
        auto const& cs = op2::comm::stats();
        if (cs.exchanges.load() != 0) {
            std::printf(
                "halo: %llu exchange(s), %llu pack(s), %llu combine(s), "
                "%.1f KiB moved\n",
                static_cast<unsigned long long>(cs.exchanges.load()),
                static_cast<unsigned long long>(cs.packs.load()),
                static_cast<unsigned long long>(cs.combines.load()),
                static_cast<double>(cs.bytes.load()) / 1024.0);
        }

        std::printf("\nper-loop timing (op_timing_output):\n");
        std::ostringstream os;
        op2::op_timing_output(os);
        std::fputs(os.str().c_str(), stdout);
    } catch (airfoil::mesh_io_error const& e) {
        // Structured mesh failure: the message already names file,
        // section and line — report it and exit non-zero.
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        rc = 1;
    } catch (std::exception const& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        rc = 1;
    }

    hpxlite::finalize();
    return rc;
}
