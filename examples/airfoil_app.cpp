// The Airfoil CFD application (paper Section II-B) end to end:
// generates the mesh, runs the five-loop iteration on the chosen
// backend and reports the residual trajectory and timing.
//
// Usage: airfoil_app [seq|fork_join|hpx] [nx ny] [niter]

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <cstring>

#include <airfoil/app.hpp>

int main(int argc, char** argv) {
    airfoil::app_config cfg;
    cfg.mesh.nx = 120;
    cfg.mesh.ny = 60;
    cfg.niter = 200;
    cfg.rms_stride = 20;
    cfg.be = op2::backend::hpx;

    if (argc > 1) {
        if (std::strcmp(argv[1], "seq") == 0) {
            cfg.be = op2::backend::seq;
        } else if (std::strcmp(argv[1], "fork_join") == 0) {
            cfg.be = op2::backend::fork_join;
        } else if (std::strcmp(argv[1], "hpx") == 0) {
            cfg.be = op2::backend::hpx;
        } else {
            std::fprintf(stderr,
                         "usage: %s [seq|fork_join|hpx] [nx ny] [niter]\n",
                         argv[0]);
            return 2;
        }
    }
    if (argc > 3) {
        cfg.mesh.nx = static_cast<std::size_t>(std::atoi(argv[2]));
        cfg.mesh.ny = static_cast<std::size_t>(std::atoi(argv[3]));
    }
    if (argc > 4) {
        cfg.niter = std::atoi(argv[4]);
    }

    hpxlite::init();
    std::printf("airfoil: %zux%zu cells, %d iterations, backend=%s\n",
                cfg.mesh.nx, cfg.mesh.ny, cfg.niter, op2::to_string(cfg.be));

    auto result = airfoil::run(cfg);

    int it = cfg.rms_stride;
    for (double r : result.rms_history) {
        std::printf("  iter %6d  rms %.10e\n", it, r);
        it += cfg.rms_stride;
    }
    std::printf("elapsed: %.4f s  (%.2f us per cell-iteration)\n",
                result.elapsed_s,
                result.elapsed_s * 1e6 /
                    (static_cast<double>(cfg.mesh.nx * cfg.mesh.ny) *
                     cfg.niter));

    std::printf("\nper-loop timing (op_timing_output):\n");
    std::ostringstream os;
    op2::op_timing_output(os);
    std::fputs(os.str().c_str(), stdout);

    hpxlite::finalize();
    return 0;
}
