file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_bandwidth.dir/bench_fig19_bandwidth.cpp.o"
  "CMakeFiles/bench_fig19_bandwidth.dir/bench_fig19_bandwidth.cpp.o.d"
  "bench_fig19_bandwidth"
  "bench_fig19_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
