# Empty dependencies file for bench_fig19_bandwidth.
# This may be replaced when dependencies are built.
