# Empty dependencies file for bench_micro_foreach.
# This may be replaced when dependencies are built.
