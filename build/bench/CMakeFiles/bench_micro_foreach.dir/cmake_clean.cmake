file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_foreach.dir/bench_micro_foreach.cpp.o"
  "CMakeFiles/bench_micro_foreach.dir/bench_micro_foreach.cpp.o.d"
  "bench_micro_foreach"
  "bench_micro_foreach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_foreach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
