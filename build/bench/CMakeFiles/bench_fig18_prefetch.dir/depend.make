# Empty dependencies file for bench_fig18_prefetch.
# This may be replaced when dependencies are built.
