file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_prefetch.dir/bench_fig18_prefetch.cpp.o"
  "CMakeFiles/bench_fig18_prefetch.dir/bench_fig18_prefetch.cpp.o.d"
  "bench_fig18_prefetch"
  "bench_fig18_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
