file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dataflow.dir/bench_micro_dataflow.cpp.o"
  "CMakeFiles/bench_micro_dataflow.dir/bench_micro_dataflow.cpp.o.d"
  "bench_micro_dataflow"
  "bench_micro_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
