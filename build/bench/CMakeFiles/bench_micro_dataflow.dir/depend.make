# Empty dependencies file for bench_micro_dataflow.
# This may be replaced when dependencies are built.
