# Empty dependencies file for bench_fig20_distance.
# This may be replaced when dependencies are built.
