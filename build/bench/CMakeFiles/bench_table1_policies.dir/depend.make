# Empty dependencies file for bench_table1_policies.
# This may be replaced when dependencies are built.
