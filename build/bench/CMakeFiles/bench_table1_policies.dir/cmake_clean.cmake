file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_policies.dir/bench_table1_policies.cpp.o"
  "CMakeFiles/bench_table1_policies.dir/bench_table1_policies.cpp.o.d"
  "bench_table1_policies"
  "bench_table1_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
