# Empty dependencies file for bench_ablation_barrier.
# This may be replaced when dependencies are built.
