file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_barrier.dir/bench_ablation_barrier.cpp.o"
  "CMakeFiles/bench_ablation_barrier.dir/bench_ablation_barrier.cpp.o.d"
  "bench_ablation_barrier"
  "bench_ablation_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
