file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_chunker.dir/bench_ablation_chunker.cpp.o"
  "CMakeFiles/bench_ablation_chunker.dir/bench_ablation_chunker.cpp.o.d"
  "bench_ablation_chunker"
  "bench_ablation_chunker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
