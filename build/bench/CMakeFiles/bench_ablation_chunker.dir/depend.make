# Empty dependencies file for bench_ablation_chunker.
# This may be replaced when dependencies are built.
