file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_prefetch.dir/bench_micro_prefetch.cpp.o"
  "CMakeFiles/bench_micro_prefetch.dir/bench_micro_prefetch.cpp.o.d"
  "bench_micro_prefetch"
  "bench_micro_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
