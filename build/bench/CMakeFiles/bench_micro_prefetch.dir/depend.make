# Empty dependencies file for bench_micro_prefetch.
# This may be replaced when dependencies are built.
