# Empty dependencies file for bench_micro_op2.
# This may be replaced when dependencies are built.
