file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_op2.dir/bench_micro_op2.cpp.o"
  "CMakeFiles/bench_micro_op2.dir/bench_micro_op2.cpp.o.d"
  "bench_micro_op2"
  "bench_micro_op2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_op2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
