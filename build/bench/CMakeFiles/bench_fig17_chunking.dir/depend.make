# Empty dependencies file for bench_fig17_chunking.
# This may be replaced when dependencies are built.
