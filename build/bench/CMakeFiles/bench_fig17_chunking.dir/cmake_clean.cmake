file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_chunking.dir/bench_fig17_chunking.cpp.o"
  "CMakeFiles/bench_fig17_chunking.dir/bench_fig17_chunking.cpp.o.d"
  "bench_fig17_chunking"
  "bench_fig17_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
