file(REMOVE_RECURSE
  "CMakeFiles/bench"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
