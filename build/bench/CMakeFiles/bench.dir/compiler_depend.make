# Empty custom commands generated dependencies file for bench.
# This may be replaced when dependencies are built.
