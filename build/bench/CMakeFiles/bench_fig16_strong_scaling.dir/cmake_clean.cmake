file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_strong_scaling.dir/bench_fig16_strong_scaling.cpp.o"
  "CMakeFiles/bench_fig16_strong_scaling.dir/bench_fig16_strong_scaling.cpp.o.d"
  "bench_fig16_strong_scaling"
  "bench_fig16_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
