# Empty dependencies file for bench_fig16_strong_scaling.
# This may be replaced when dependencies are built.
