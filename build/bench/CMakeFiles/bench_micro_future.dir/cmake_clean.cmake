file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_future.dir/bench_micro_future.cpp.o"
  "CMakeFiles/bench_micro_future.dir/bench_micro_future.cpp.o.d"
  "bench_micro_future"
  "bench_micro_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
