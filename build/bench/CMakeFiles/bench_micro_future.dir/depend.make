# Empty dependencies file for bench_micro_future.
# This may be replaced when dependencies are built.
