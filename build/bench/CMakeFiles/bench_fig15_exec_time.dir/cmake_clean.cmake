file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_exec_time.dir/bench_fig15_exec_time.cpp.o"
  "CMakeFiles/bench_fig15_exec_time.dir/bench_fig15_exec_time.cpp.o.d"
  "bench_fig15_exec_time"
  "bench_fig15_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
