# Empty dependencies file for bench_fig15_exec_time.
# This may be replaced when dependencies are built.
