# Empty dependencies file for example_jacobi_mesh.
# This may be replaced when dependencies are built.
