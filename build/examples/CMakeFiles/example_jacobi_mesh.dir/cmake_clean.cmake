file(REMOVE_RECURSE
  "CMakeFiles/example_jacobi_mesh.dir/jacobi_mesh.cpp.o"
  "CMakeFiles/example_jacobi_mesh.dir/jacobi_mesh.cpp.o.d"
  "example_jacobi_mesh"
  "example_jacobi_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_jacobi_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
