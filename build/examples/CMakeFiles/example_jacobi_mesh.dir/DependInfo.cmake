
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/jacobi_mesh.cpp" "examples/CMakeFiles/example_jacobi_mesh.dir/jacobi_mesh.cpp.o" "gcc" "examples/CMakeFiles/example_jacobi_mesh.dir/jacobi_mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/airfoil/CMakeFiles/airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
