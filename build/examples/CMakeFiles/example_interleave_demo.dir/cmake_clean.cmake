file(REMOVE_RECURSE
  "CMakeFiles/example_interleave_demo.dir/interleave_demo.cpp.o"
  "CMakeFiles/example_interleave_demo.dir/interleave_demo.cpp.o.d"
  "example_interleave_demo"
  "example_interleave_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_interleave_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
