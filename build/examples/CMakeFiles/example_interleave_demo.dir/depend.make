# Empty dependencies file for example_interleave_demo.
# This may be replaced when dependencies are built.
