# Empty dependencies file for example_prefetch_demo.
# This may be replaced when dependencies are built.
