file(REMOVE_RECURSE
  "CMakeFiles/example_prefetch_demo.dir/prefetch_demo.cpp.o"
  "CMakeFiles/example_prefetch_demo.dir/prefetch_demo.cpp.o.d"
  "example_prefetch_demo"
  "example_prefetch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_prefetch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
