file(REMOVE_RECURSE
  "CMakeFiles/example_airfoil_app.dir/airfoil_app.cpp.o"
  "CMakeFiles/example_airfoil_app.dir/airfoil_app.cpp.o.d"
  "example_airfoil_app"
  "example_airfoil_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_airfoil_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
