# Empty dependencies file for example_airfoil_app.
# This may be replaced when dependencies are built.
