# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_hpxlite[1]_include.cmake")
include("/root/repo/build/tests/test_op2[1]_include.cmake")
include("/root/repo/build/tests/test_op2c[1]_include.cmake")
include("/root/repo/build/tests/test_psim[1]_include.cmake")
include("/root/repo/build/tests/test_airfoil[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
