
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hpxlite/test_chunkers.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_chunkers.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_chunkers.cpp.o.d"
  "/root/repo/tests/hpxlite/test_dataflow.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_dataflow.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_dataflow.cpp.o.d"
  "/root/repo/tests/hpxlite/test_for_each.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_for_each.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_for_each.cpp.o.d"
  "/root/repo/tests/hpxlite/test_for_loop.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_for_loop.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_for_loop.cpp.o.d"
  "/root/repo/tests/hpxlite/test_future.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_future.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_future.cpp.o.d"
  "/root/repo/tests/hpxlite/test_irange.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_irange.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_irange.cpp.o.d"
  "/root/repo/tests/hpxlite/test_prefetcher.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_prefetcher.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_prefetcher.cpp.o.d"
  "/root/repo/tests/hpxlite/test_spinlock.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_spinlock.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_spinlock.cpp.o.d"
  "/root/repo/tests/hpxlite/test_sync.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_sync.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_sync.cpp.o.d"
  "/root/repo/tests/hpxlite/test_thread_pool.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_thread_pool.cpp.o.d"
  "/root/repo/tests/hpxlite/test_transform_reduce.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_transform_reduce.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_transform_reduce.cpp.o.d"
  "/root/repo/tests/hpxlite/test_unique_function.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_unique_function.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_unique_function.cpp.o.d"
  "/root/repo/tests/hpxlite/test_when_all.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_when_all.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_when_all.cpp.o.d"
  "/root/repo/tests/hpxlite/test_ws_deque.cpp" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_ws_deque.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite.dir/hpxlite/test_ws_deque.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
