# Empty dependencies file for test_hpxlite.
# This may be replaced when dependencies are built.
