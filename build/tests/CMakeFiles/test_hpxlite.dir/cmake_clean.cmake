file(REMOVE_RECURSE
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_chunkers.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_chunkers.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_dataflow.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_dataflow.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_for_each.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_for_each.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_for_loop.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_for_loop.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_future.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_future.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_irange.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_irange.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_prefetcher.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_prefetcher.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_spinlock.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_spinlock.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_sync.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_sync.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_thread_pool.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_thread_pool.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_transform_reduce.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_transform_reduce.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_unique_function.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_unique_function.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_when_all.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_when_all.cpp.o.d"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_ws_deque.cpp.o"
  "CMakeFiles/test_hpxlite.dir/hpxlite/test_ws_deque.cpp.o.d"
  "test_hpxlite"
  "test_hpxlite.pdb"
  "test_hpxlite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpxlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
