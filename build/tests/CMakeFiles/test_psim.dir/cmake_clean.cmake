file(REMOVE_RECURSE
  "CMakeFiles/test_psim.dir/psim/test_machine.cpp.o"
  "CMakeFiles/test_psim.dir/psim/test_machine.cpp.o.d"
  "CMakeFiles/test_psim.dir/psim/test_memory.cpp.o"
  "CMakeFiles/test_psim.dir/psim/test_memory.cpp.o.d"
  "CMakeFiles/test_psim.dir/psim/test_scheduler.cpp.o"
  "CMakeFiles/test_psim.dir/psim/test_scheduler.cpp.o.d"
  "CMakeFiles/test_psim.dir/psim/test_workload.cpp.o"
  "CMakeFiles/test_psim.dir/psim/test_workload.cpp.o.d"
  "test_psim"
  "test_psim.pdb"
  "test_psim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
