# Empty dependencies file for test_psim.
# This may be replaced when dependencies are built.
