
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/psim/test_machine.cpp" "tests/CMakeFiles/test_psim.dir/psim/test_machine.cpp.o" "gcc" "tests/CMakeFiles/test_psim.dir/psim/test_machine.cpp.o.d"
  "/root/repo/tests/psim/test_memory.cpp" "tests/CMakeFiles/test_psim.dir/psim/test_memory.cpp.o" "gcc" "tests/CMakeFiles/test_psim.dir/psim/test_memory.cpp.o.d"
  "/root/repo/tests/psim/test_scheduler.cpp" "tests/CMakeFiles/test_psim.dir/psim/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_psim.dir/psim/test_scheduler.cpp.o.d"
  "/root/repo/tests/psim/test_workload.cpp" "tests/CMakeFiles/test_psim.dir/psim/test_workload.cpp.o" "gcc" "tests/CMakeFiles/test_psim.dir/psim/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/psim/CMakeFiles/psim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
