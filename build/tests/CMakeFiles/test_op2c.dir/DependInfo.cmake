
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/op2c/test_codegen.cpp" "tests/CMakeFiles/test_op2c.dir/op2c/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/test_op2c.dir/op2c/test_codegen.cpp.o.d"
  "/root/repo/tests/op2c/test_lexer.cpp" "tests/CMakeFiles/test_op2c.dir/op2c/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/test_op2c.dir/op2c/test_lexer.cpp.o.d"
  "/root/repo/tests/op2c/test_parser.cpp" "tests/CMakeFiles/test_op2c.dir/op2c/test_parser.cpp.o" "gcc" "tests/CMakeFiles/test_op2c.dir/op2c/test_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/op2c/CMakeFiles/op2c_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
