# Empty dependencies file for test_op2c.
# This may be replaced when dependencies are built.
