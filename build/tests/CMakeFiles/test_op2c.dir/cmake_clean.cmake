file(REMOVE_RECURSE
  "CMakeFiles/test_op2c.dir/op2c/test_codegen.cpp.o"
  "CMakeFiles/test_op2c.dir/op2c/test_codegen.cpp.o.d"
  "CMakeFiles/test_op2c.dir/op2c/test_lexer.cpp.o"
  "CMakeFiles/test_op2c.dir/op2c/test_lexer.cpp.o.d"
  "CMakeFiles/test_op2c.dir/op2c/test_parser.cpp.o"
  "CMakeFiles/test_op2c.dir/op2c/test_parser.cpp.o.d"
  "test_op2c"
  "test_op2c.pdb"
  "test_op2c[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
