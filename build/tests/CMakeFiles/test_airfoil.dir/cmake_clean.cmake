file(REMOVE_RECURSE
  "CMakeFiles/test_airfoil.dir/airfoil/test_airfoil_app.cpp.o"
  "CMakeFiles/test_airfoil.dir/airfoil/test_airfoil_app.cpp.o.d"
  "CMakeFiles/test_airfoil.dir/airfoil/test_airfoil_kernels.cpp.o"
  "CMakeFiles/test_airfoil.dir/airfoil/test_airfoil_kernels.cpp.o.d"
  "CMakeFiles/test_airfoil.dir/airfoil/test_mesh.cpp.o"
  "CMakeFiles/test_airfoil.dir/airfoil/test_mesh.cpp.o.d"
  "CMakeFiles/test_airfoil.dir/airfoil/test_mesh_io.cpp.o"
  "CMakeFiles/test_airfoil.dir/airfoil/test_mesh_io.cpp.o.d"
  "test_airfoil"
  "test_airfoil.pdb"
  "test_airfoil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_airfoil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
