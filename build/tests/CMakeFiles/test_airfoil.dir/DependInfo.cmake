
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/airfoil/test_airfoil_app.cpp" "tests/CMakeFiles/test_airfoil.dir/airfoil/test_airfoil_app.cpp.o" "gcc" "tests/CMakeFiles/test_airfoil.dir/airfoil/test_airfoil_app.cpp.o.d"
  "/root/repo/tests/airfoil/test_airfoil_kernels.cpp" "tests/CMakeFiles/test_airfoil.dir/airfoil/test_airfoil_kernels.cpp.o" "gcc" "tests/CMakeFiles/test_airfoil.dir/airfoil/test_airfoil_kernels.cpp.o.d"
  "/root/repo/tests/airfoil/test_mesh.cpp" "tests/CMakeFiles/test_airfoil.dir/airfoil/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/test_airfoil.dir/airfoil/test_mesh.cpp.o.d"
  "/root/repo/tests/airfoil/test_mesh_io.cpp" "tests/CMakeFiles/test_airfoil.dir/airfoil/test_mesh_io.cpp.o" "gcc" "tests/CMakeFiles/test_airfoil.dir/airfoil/test_mesh_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/airfoil/CMakeFiles/airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
