# Empty dependencies file for test_airfoil.
# This may be replaced when dependencies are built.
