# Empty dependencies file for test_op2.
# This may be replaced when dependencies are built.
