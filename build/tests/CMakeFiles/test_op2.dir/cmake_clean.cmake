file(REMOVE_RECURSE
  "CMakeFiles/test_op2.dir/op2/test_arg.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_arg.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_kernel_traits.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_kernel_traits.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_par_loop_fork_join.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_par_loop_fork_join.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_par_loop_hpx.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_par_loop_hpx.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_par_loop_seq.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_par_loop_seq.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_plan.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_plan.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_plan_stage.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_plan_stage.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_set_map_dat.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_set_map_dat.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_timing.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_timing.cpp.o.d"
  "test_op2"
  "test_op2.pdb"
  "test_op2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
