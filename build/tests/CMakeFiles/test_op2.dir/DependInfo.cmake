
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/op2/test_arg.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_arg.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_arg.cpp.o.d"
  "/root/repo/tests/op2/test_kernel_traits.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_kernel_traits.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_kernel_traits.cpp.o.d"
  "/root/repo/tests/op2/test_par_loop_fork_join.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_par_loop_fork_join.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_par_loop_fork_join.cpp.o.d"
  "/root/repo/tests/op2/test_par_loop_hpx.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_par_loop_hpx.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_par_loop_hpx.cpp.o.d"
  "/root/repo/tests/op2/test_par_loop_seq.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_par_loop_seq.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_par_loop_seq.cpp.o.d"
  "/root/repo/tests/op2/test_plan.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_plan.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_plan.cpp.o.d"
  "/root/repo/tests/op2/test_plan_stage.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_plan_stage.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_plan_stage.cpp.o.d"
  "/root/repo/tests/op2/test_set_map_dat.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_set_map_dat.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_set_map_dat.cpp.o.d"
  "/root/repo/tests/op2/test_timing.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_timing.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
