
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2/src/dat.cpp" "src/op2/CMakeFiles/op2.dir/src/dat.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/dat.cpp.o.d"
  "/root/repo/src/op2/src/map.cpp" "src/op2/CMakeFiles/op2.dir/src/map.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/map.cpp.o.d"
  "/root/repo/src/op2/src/plan.cpp" "src/op2/CMakeFiles/op2.dir/src/plan.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/plan.cpp.o.d"
  "/root/repo/src/op2/src/runtime.cpp" "src/op2/CMakeFiles/op2.dir/src/runtime.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/runtime.cpp.o.d"
  "/root/repo/src/op2/src/set.cpp" "src/op2/CMakeFiles/op2.dir/src/set.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/set.cpp.o.d"
  "/root/repo/src/op2/src/timing.cpp" "src/op2/CMakeFiles/op2.dir/src/timing.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
