file(REMOVE_RECURSE
  "CMakeFiles/op2.dir/src/dat.cpp.o"
  "CMakeFiles/op2.dir/src/dat.cpp.o.d"
  "CMakeFiles/op2.dir/src/map.cpp.o"
  "CMakeFiles/op2.dir/src/map.cpp.o.d"
  "CMakeFiles/op2.dir/src/plan.cpp.o"
  "CMakeFiles/op2.dir/src/plan.cpp.o.d"
  "CMakeFiles/op2.dir/src/runtime.cpp.o"
  "CMakeFiles/op2.dir/src/runtime.cpp.o.d"
  "CMakeFiles/op2.dir/src/set.cpp.o"
  "CMakeFiles/op2.dir/src/set.cpp.o.d"
  "CMakeFiles/op2.dir/src/timing.cpp.o"
  "CMakeFiles/op2.dir/src/timing.cpp.o.d"
  "libop2.a"
  "libop2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
