# Empty dependencies file for op2.
# This may be replaced when dependencies are built.
