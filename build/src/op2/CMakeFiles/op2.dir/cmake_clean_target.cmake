file(REMOVE_RECURSE
  "libop2.a"
)
