# Empty dependencies file for op2c.
# This may be replaced when dependencies are built.
