file(REMOVE_RECURSE
  "CMakeFiles/op2c.dir/src/main.cpp.o"
  "CMakeFiles/op2c.dir/src/main.cpp.o.d"
  "op2c"
  "op2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
