
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2c/src/main.cpp" "src/op2c/CMakeFiles/op2c.dir/src/main.cpp.o" "gcc" "src/op2c/CMakeFiles/op2c.dir/src/main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/op2c/CMakeFiles/op2c_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
