file(REMOVE_RECURSE
  "libop2c_lib.a"
)
