
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2c/src/codegen.cpp" "src/op2c/CMakeFiles/op2c_lib.dir/src/codegen.cpp.o" "gcc" "src/op2c/CMakeFiles/op2c_lib.dir/src/codegen.cpp.o.d"
  "/root/repo/src/op2c/src/lexer.cpp" "src/op2c/CMakeFiles/op2c_lib.dir/src/lexer.cpp.o" "gcc" "src/op2c/CMakeFiles/op2c_lib.dir/src/lexer.cpp.o.d"
  "/root/repo/src/op2c/src/parser.cpp" "src/op2c/CMakeFiles/op2c_lib.dir/src/parser.cpp.o" "gcc" "src/op2c/CMakeFiles/op2c_lib.dir/src/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
