# Empty dependencies file for op2c_lib.
# This may be replaced when dependencies are built.
