file(REMOVE_RECURSE
  "CMakeFiles/op2c_lib.dir/src/codegen.cpp.o"
  "CMakeFiles/op2c_lib.dir/src/codegen.cpp.o.d"
  "CMakeFiles/op2c_lib.dir/src/lexer.cpp.o"
  "CMakeFiles/op2c_lib.dir/src/lexer.cpp.o.d"
  "CMakeFiles/op2c_lib.dir/src/parser.cpp.o"
  "CMakeFiles/op2c_lib.dir/src/parser.cpp.o.d"
  "libop2c_lib.a"
  "libop2c_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2c_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
