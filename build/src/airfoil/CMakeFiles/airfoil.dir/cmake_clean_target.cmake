file(REMOVE_RECURSE
  "libairfoil.a"
)
