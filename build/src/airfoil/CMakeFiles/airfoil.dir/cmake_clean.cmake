file(REMOVE_RECURSE
  "CMakeFiles/airfoil.dir/src/app.cpp.o"
  "CMakeFiles/airfoil.dir/src/app.cpp.o.d"
  "CMakeFiles/airfoil.dir/src/mesh.cpp.o"
  "CMakeFiles/airfoil.dir/src/mesh.cpp.o.d"
  "CMakeFiles/airfoil.dir/src/mesh_io.cpp.o"
  "CMakeFiles/airfoil.dir/src/mesh_io.cpp.o.d"
  "libairfoil.a"
  "libairfoil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airfoil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
