# Empty dependencies file for airfoil.
# This may be replaced when dependencies are built.
