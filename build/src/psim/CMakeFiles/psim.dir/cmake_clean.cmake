file(REMOVE_RECURSE
  "CMakeFiles/psim.dir/src/machine.cpp.o"
  "CMakeFiles/psim.dir/src/machine.cpp.o.d"
  "CMakeFiles/psim.dir/src/memory.cpp.o"
  "CMakeFiles/psim.dir/src/memory.cpp.o.d"
  "CMakeFiles/psim.dir/src/scheduler.cpp.o"
  "CMakeFiles/psim.dir/src/scheduler.cpp.o.d"
  "CMakeFiles/psim.dir/src/testbed.cpp.o"
  "CMakeFiles/psim.dir/src/testbed.cpp.o.d"
  "CMakeFiles/psim.dir/src/workload.cpp.o"
  "CMakeFiles/psim.dir/src/workload.cpp.o.d"
  "libpsim.a"
  "libpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
