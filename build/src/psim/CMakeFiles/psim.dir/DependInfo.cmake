
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psim/src/machine.cpp" "src/psim/CMakeFiles/psim.dir/src/machine.cpp.o" "gcc" "src/psim/CMakeFiles/psim.dir/src/machine.cpp.o.d"
  "/root/repo/src/psim/src/memory.cpp" "src/psim/CMakeFiles/psim.dir/src/memory.cpp.o" "gcc" "src/psim/CMakeFiles/psim.dir/src/memory.cpp.o.d"
  "/root/repo/src/psim/src/scheduler.cpp" "src/psim/CMakeFiles/psim.dir/src/scheduler.cpp.o" "gcc" "src/psim/CMakeFiles/psim.dir/src/scheduler.cpp.o.d"
  "/root/repo/src/psim/src/testbed.cpp" "src/psim/CMakeFiles/psim.dir/src/testbed.cpp.o" "gcc" "src/psim/CMakeFiles/psim.dir/src/testbed.cpp.o.d"
  "/root/repo/src/psim/src/workload.cpp" "src/psim/CMakeFiles/psim.dir/src/workload.cpp.o" "gcc" "src/psim/CMakeFiles/psim.dir/src/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
