file(REMOVE_RECURSE
  "libpsim.a"
)
