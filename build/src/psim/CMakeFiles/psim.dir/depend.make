# Empty dependencies file for psim.
# This may be replaced when dependencies are built.
