file(REMOVE_RECURSE
  "libhpxlite.a"
)
