
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpxlite/src/chunkers.cpp" "src/hpxlite/CMakeFiles/hpxlite.dir/src/chunkers.cpp.o" "gcc" "src/hpxlite/CMakeFiles/hpxlite.dir/src/chunkers.cpp.o.d"
  "/root/repo/src/hpxlite/src/runtime.cpp" "src/hpxlite/CMakeFiles/hpxlite.dir/src/runtime.cpp.o" "gcc" "src/hpxlite/CMakeFiles/hpxlite.dir/src/runtime.cpp.o.d"
  "/root/repo/src/hpxlite/src/thread_pool.cpp" "src/hpxlite/CMakeFiles/hpxlite.dir/src/thread_pool.cpp.o" "gcc" "src/hpxlite/CMakeFiles/hpxlite.dir/src/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
