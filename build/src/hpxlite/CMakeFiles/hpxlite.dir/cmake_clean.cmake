file(REMOVE_RECURSE
  "CMakeFiles/hpxlite.dir/src/chunkers.cpp.o"
  "CMakeFiles/hpxlite.dir/src/chunkers.cpp.o.d"
  "CMakeFiles/hpxlite.dir/src/runtime.cpp.o"
  "CMakeFiles/hpxlite.dir/src/runtime.cpp.o.d"
  "CMakeFiles/hpxlite.dir/src/thread_pool.cpp.o"
  "CMakeFiles/hpxlite.dir/src/thread_pool.cpp.o.d"
  "libhpxlite.a"
  "libhpxlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpxlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
