# Empty dependencies file for hpxlite.
# This may be replaced when dependencies are built.
