# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/hpxlite")
subdirs("src/op2")
subdirs("src/op2c")
subdirs("src/psim")
subdirs("src/airfoil")
subdirs("tests")
subdirs("bench")
subdirs("examples")
