// Dependency-tracking overhead of the dataflow engine: the epoch-based
// intrusive graph (op2/exec/dataflow.hpp) vs PR 1's future-chain
// machinery (one shared future chained per dat per loop, when_all +
// continuation shared-states per issue), on a dependent RW loop chain —
// the shape of airfoil's time-march. Both variants execute the *same*
// staged executor over the *same* cached plan; only the dependency layer
// differs, so the ratio isolates exactly what this PR replaced.
//
// Plus the partition sweep: the same dependent chain issued at
// partition granularity (one sub-node per (partition, colour)). At
// whole-set granularity loop i+1 waits for all of loop i; at partition
// granularity its sub-node for partition p waits only for loop i's
// partition p, so the partitions pipeline independently through the
// chain — dependent loops overlap.
//
// Plus the placement and same-colour-exemption sections: the partition
// sweep chain re-run with sub-node placement unpinned (placement = any)
// to isolate what worker affinity buys, and a dependent *indirect* INC
// chain over a ring map whose partitions straddle the partition
// boundary — the shape whose same-colour sub-nodes used to serialise
// through conservative WAW record edges — run with the exemption on and
// off.
//
// Emits into BENCH_op2.json (schema op2hpx-bench-v1):
//   dataflow_chain_epoch              ns per loop, epoch-based engine
//   dataflow_chain_future_baseline    ns per loop, PR 1 future chains
//   dataflow_chain_speedup            x, epoch vs future-chain
//   dataflow_chain_part<P>            ns per loop, dependent chain at P
//                                     partitions (P = 1, 2, 4)
//   dataflow_chain_partition_speedup  x, partitioned (P=4) vs whole-set
//   dataflow_chain_part4_anyplace     ns per loop, P=4 with placement=any
//   affinity_placement_speedup        x, affinity vs any placement (P=4)
//   dataflow_chain_default            ns per loop, untuned default
//                                     (partitions = pool size, affinity)
//   dataflow_chain_auto               ns per loop, partitions=auto_tune
//                                     (exploration retired in warmup; the
//                                     label names the chosen config)
//   partition_autotune_speedup        x, tuned vs untuned default
//   dataflow_chain_straddle_exempt    ns per loop, indirect INC chain,
//                                     same-colour exemption on
//   dataflow_chain_straddle_serial    ns per loop, exemption off
//   same_color_exemption_speedup      x, exemption on vs off
//
// Worker counts in row labels are derived from the live pool size, so
// rows recorded on multi-core CI runners are self-describing.
//
// `--quick` shrinks warmup/measured repetitions for the CI smoke run.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <hpxlite/hpxlite.hpp>
#include <hpxlite/lcos/when_all.hpp>
#include <op2/op2.hpp>

#include "bench_json.hpp"

using namespace op2;

namespace {

// Small loops: the chain's cost is dominated by issue + dependency
// resolution + completion hand-off, which is precisely the machinery the
// epoch engine replaced. (With big loop bodies both variants converge on
// kernel time and the comparison measures nothing.)
constexpr std::size_t kElems = 256;
constexpr int kChainLen = 16;  // dependent loops per chain (>= 8)
int g_chains = 400;            // repetitions measured (--quick: 40)
int g_warmup = 50;             // (--quick: 5)

// Partition sweep: a bigger mesh so the loop body amortises the extra
// sub-node/join machinery and the sweep measures overlap, not node
// overhead.
constexpr std::size_t kSweepElems = 262144;
constexpr int kSweepChainLen = 8;
int g_sweep_chains = 30;  // (--quick: 5)

// Straddle chain (same-colour exemption): indirect INC through a ring
// map is heavier per element than the direct sweep, so a smaller mesh
// keeps the section's runtime comparable.
constexpr std::size_t kStraddleElems = 131072;

/// PR 1's dependency layer, verbatim in miniature: a per-dat record of
/// shared futures, when_all over the collected dependencies, and a
/// continuation that runs the staged executor. Kept here as the
/// benchmark baseline after the engine moved to epoch records.
namespace future_chain {

struct dep_rec {
    hpxlite::util::spinlock mtx;
    hpxlite::shared_future<void> last_write;
    std::vector<hpxlite::shared_future<void>> readers;
};

template <typename Kernel, typename... Args>
hpxlite::shared_future<void> par_loop(loop_options const& opts,
                                      char const* name, op_set set,
                                      dep_rec& rec, bool write, Kernel kernel,
                                      Args... args) {
    constexpr std::size_t n = sizeof...(Args);
    auto ex = std::make_shared<op2::detail::loop_executor<Kernel, n>>(
        std::move(set), std::array<op_arg, n>{std::move(args)...},
        std::move(kernel), opts);
    ex->validate(name);
    op_plan const& plan = plan_get(ex->set(), ex->args(), opts.part_size);

    std::vector<hpxlite::shared_future<void>> deps;
    {
        std::lock_guard<hpxlite::util::spinlock> lk(rec.mtx);
        if (write) {
            if (rec.last_write.valid()) {
                deps.push_back(rec.last_write);  // WAW
            }
            for (auto const& r : rec.readers) {
                deps.push_back(r);  // WAR
            }
        } else if (rec.last_write.valid()) {
            deps.push_back(rec.last_write);  // RAW
        }
    }

    auto policy = hpxlite::execution::par.with(opts.chunk);
    auto body =
        hpxlite::when_all(std::move(deps))
            .then([ex, policy, plan_ptr = &plan](
                      hpxlite::future<
                          std::vector<hpxlite::shared_future<void>>>&& ready) {
                for (auto& dep : ready.get()) {
                    dep.get();
                }
                ex->execute(*plan_ptr,
                            [&](std::span<std::size_t const> blocks) {
                                hpxlite::parallel::for_loop(
                                    policy, std::size_t{0}, blocks.size(),
                                    [&](std::size_t k) {
                                        ex->run_block(*plan_ptr, blocks[k]);
                                    });
                            });
            });

    hpxlite::shared_future<void> done = body.share();
    {
        std::lock_guard<hpxlite::util::spinlock> lk(rec.mtx);
        if (write) {
            rec.last_write = done;
            rec.readers.clear();
        } else {
            rec.readers.push_back(done);
        }
    }
    return done;
}

}  // namespace future_chain

double ns_per_loop(double total_s, int chains, int chain_len) {
    return total_s * 1e9 / (static_cast<double>(chains) * chain_len);
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            g_chains = 40;
            g_warmup = 5;
            g_sweep_chains = 5;
        }
    }
    hpxlite::init();

    auto cells = op_decl_set(kElems, "chain_cells");
    auto d = op_decl_dat_zero<double>(cells, 1, "double", "chain_d");
    loop_options opts;
    opts.part_size = 256;
    auto kern = [](double* x) { *x += 1.0; };
    auto arg = [&] {
        return op_arg_dat(d, -1, OP_ID, 1, "double", OP_RW);
    };

    // --- epoch-based engine -------------------------------------------
    // Whole-set granularity (one node per loop), comparable with the
    // future-chain baseline below and with the PR 2 trajectory rows.
    loop_options hpx_opts = opts;
    hpx_opts.backend = exec::backend_kind::hpx_dataflow;
    hpx_opts.partitions = 1;
    auto run_epoch_chain = [&] {
        exec::loop_handle last;
        for (int l = 0; l < kChainLen; ++l) {
            last = exec::run_loop(hpx_opts, "chain", cells, kern, arg());
        }
        last.wait();
    };
    for (int w = 0; w < g_warmup; ++w) {
        run_epoch_chain();
    }
    hpxlite::util::stopwatch sw;
    for (int c = 0; c < g_chains; ++c) {
        run_epoch_chain();
    }
    double const epoch_s = sw.elapsed_s();

    // --- PR 1 future-chain baseline -----------------------------------
    future_chain::dep_rec rec;
    auto run_future_chain = [&] {
        hpxlite::shared_future<void> last;
        for (int l = 0; l < kChainLen; ++l) {
            last = future_chain::par_loop(opts, "chain", cells, rec,
                                          /*write=*/true, kern, arg());
        }
        last.wait();
    };
    for (int w = 0; w < g_warmup; ++w) {
        run_future_chain();
    }
    sw.reset();
    for (int c = 0; c < g_chains; ++c) {
        run_future_chain();
    }
    double const future_s = sw.elapsed_s();

    // Sanity: every loop of both phases ran: warmup + measured, twice.
    double const expect =
        2.0 * static_cast<double>(g_warmup + g_chains) * kChainLen;
    double const got = d.view<double>()[0];
    if (got != expect) {
        std::fprintf(stderr, "FAIL: chain executed %.0f loops, expected %.0f\n",
                     got, expect);
        return 1;
    }

    double const epoch_ns = ns_per_loop(epoch_s, g_chains, kChainLen);
    double const future_ns = ns_per_loop(future_s, g_chains, kChainLen);
    std::printf("dependent chain (%d loops x %d chains, %zu elems):\n",
                kChainLen, g_chains, kElems);
    std::printf("  epoch engine    : %9.1f ns/loop\n", epoch_ns);
    std::printf("  future baseline : %9.1f ns/loop\n", future_ns);
    std::printf("  speedup         : %9.2fx\n", future_ns / epoch_ns);

    // --- partition sweep ----------------------------------------------
    // The same dependent RW chain on a bigger mesh, issued at 1 / 2 / 4
    // partitions on a multi-worker pool. Direct args give each sub-node
    // a single-partition footprint, so at P > 1 the chain becomes P
    // independent pipelines: partition p of loop i+1 starts as soon as
    // partition p of loop i is done, while whole-set granularity holds
    // loop i+1 until all of loop i finished.
    hpxlite::finalize();
    hpxlite::init(hpxlite::runtime_config{4});
    std::size_t const nworkers = hpxlite::get_num_worker_threads();
    std::string const workers_label = std::to_string(nworkers) + " workers";
    auto sweep_cells = op_decl_set(kSweepElems, "sweep_cells");
    auto sweep_d =
        op_decl_dat_zero<double>(sweep_cells, 1, "double", "sweep_d");
    auto sweep_arg = [&] {
        return op_arg_dat(sweep_d, -1, OP_ID, 1, "double", OP_RW);
    };

    benchutil::bench_log log("bench_dataflow_chain");
    std::printf(
        "partition sweep (%d loops x %d chains, %zu elems, %zu workers):\n",
        kSweepChainLen, g_sweep_chains, kSweepElems, nworkers);
    double part1_ns = 0.0;
    double part4_ns = 0.0;
    auto time_sweep_chain = [&](loop_options const& po) {
        auto run_chain = [&] {
            exec::loop_handle last;
            for (int l = 0; l < kSweepChainLen; ++l) {
                last = exec::run_loop(po, "sweep_chain", sweep_cells, kern,
                                      sweep_arg());
            }
            last.wait();
        };
        for (int w = 0; w < 3; ++w) {
            run_chain();
        }
        sw.reset();
        for (int c = 0; c < g_sweep_chains; ++c) {
            run_chain();
        }
        return ns_per_loop(sw.elapsed_s(), g_sweep_chains, kSweepChainLen);
    };
    for (std::size_t parts : {1u, 2u, 4u}) {
        loop_options po = opts;
        po.backend = exec::backend_kind::hpx_dataflow;
        po.partitions = parts;
        double const ns = time_sweep_chain(po);
        if (parts == 1) {
            part1_ns = ns;
        }
        if (parts == 4) {
            part4_ns = ns;
        }
        std::printf("  partitions=%zu    : %9.1f ns/loop\n", parts, ns);
        log.add("dataflow_chain_part" + std::to_string(parts), ns, "ns/iter",
                "dependent RW chain, " + std::to_string(parts) +
                    " partitions, " + workers_label);
    }
    std::printf("  partition spdup : %9.2fx (4 partitions vs whole-set)\n",
                part1_ns / part4_ns);

    // --- placement: affinity vs any -----------------------------------
    // The P=4 sweep above ran with the default affinity placement
    // (partition p pinned to worker p). Re-run it with placement=any —
    // sub-nodes drift to whoever steals first — to isolate what keeping
    // a partition's working set on one core buys across the chain.
    double anyplace_ns = 0.0;
    {
        loop_options po = opts;
        po.backend = exec::backend_kind::hpx_dataflow;
        po.partitions = 4;
        po.placement = placement_kind::any;
        anyplace_ns = time_sweep_chain(po);
        std::printf("  placement=any   : %9.1f ns/loop\n", anyplace_ns);
        std::printf("  affinity spdup  : %9.2fx (pinned vs any, P=4)\n",
                    anyplace_ns / part4_ns);
    }

    // --- online auto-tuning: measured config vs the static default ----
    // The same sweep chain with partitions = op2::auto_tune: the tuner
    // explores its ladder ({1, 2, 4, 8} partitions x placement here)
    // during warmup — every candidate is issued once, measured through
    // the loop's own join-node timing tap — then exploits the measured
    // argmin for the timed chains. Compared against a fresh run of the
    // untuned default (partitions = 0 -> pool size, affinity), timed
    // the same way at the same moment. The tuner can at worst settle on
    // the default config itself, so the ratio is a regression gate on
    // the tuner's decision quality, not a guaranteed win.
    double default_ns = 0.0;
    double auto_ns = 0.0;
    std::string auto_label = "untuned";
    {
        loop_options po = opts;
        po.backend = exec::backend_kind::hpx_dataflow;
        po.partitions = 0;  // the untuned default: pool-size partitions
        default_ns = time_sweep_chain(po);
        std::printf("  default (P=%zu)  : %9.1f ns/loop\n", nworkers,
                    default_ns);

        po.partitions = op2::auto_tune;
        // Extra warmup chains so the whole ladder retires before timing:
        // 7 candidates at 4 workers vs 3 x 8 = 24 warmup issues.
        for (int w = 0; w < 3; ++w) {
            exec::loop_handle last;
            for (int l = 0; l < kSweepChainLen; ++l) {
                last = exec::run_loop(po, "sweep_chain", sweep_cells, kern,
                                      sweep_arg());
            }
            last.wait();
        }
        auto_ns = time_sweep_chain(po);
        auto const st =
            tune::stats("sweep_chain", kSweepElems, nworkers);
        auto_label = tune::describe(st.configs[st.chosen]);
        std::printf("  autotuned       : %9.1f ns/loop (chose %s%s)\n",
                    auto_ns, auto_label.c_str(),
                    st.exploring ? ", still exploring" : "");
        std::printf("  autotune spdup  : %9.2fx (tuned vs default)\n",
                    default_ns / auto_ns);
    }

    // --- same-colour exemption: boundary-straddling INC chain ---------
    // A dependent indirect chain: every loop INCs a cells dat through a
    // ring map (edge i -> cells i, i+1 mod n), so consecutive loops
    // conflict on every record (the chain), and within one loop every
    // partition's footprint straddles into its neighbour. Without the
    // exemption those same-colour sub-nodes serialise through
    // conservative WAW record edges; with it they overlap.
    auto str_cells = op_decl_set(kStraddleElems, "straddle_cells");
    auto str_edges = op_decl_set(kStraddleElems, "straddle_edges");
    std::vector<int> str_tab(2 * kStraddleElems);
    for (std::size_t e = 0; e < kStraddleElems; ++e) {
        str_tab[2 * e] = static_cast<int>(e);
        str_tab[2 * e + 1] = static_cast<int>((e + 1) % kStraddleElems);
    }
    auto str_map = op_decl_map(str_edges, str_cells, 2, str_tab, "str_em");
    auto str_d =
        op_decl_dat_zero<double>(str_cells, 1, "double", "str_d");
    auto str_kern = [](double* a, double* b) {
        *a += 1.0;
        *b += 1.0;
    };
    int straddle_loops = 0;
    auto time_straddle_chain = [&](bool exempt) {
        loop_options po = opts;
        po.backend = exec::backend_kind::hpx_dataflow;
        po.partitions = 4;
        po.color_exemption = exempt;
        auto run_chain = [&] {
            exec::loop_handle last;
            for (int l = 0; l < kSweepChainLen; ++l) {
                last = exec::run_loop(
                    po, "straddle_chain", str_edges, str_kern,
                    op_arg_dat(str_d, 0, str_map, 1, "double", OP_INC),
                    op_arg_dat(str_d, 1, str_map, 1, "double", OP_INC));
            }
            last.wait();
            straddle_loops += kSweepChainLen;
        };
        for (int w = 0; w < 3; ++w) {
            run_chain();
        }
        sw.reset();
        for (int c = 0; c < g_sweep_chains; ++c) {
            run_chain();
        }
        return ns_per_loop(sw.elapsed_s(), g_sweep_chains, kSweepChainLen);
    };
    double const serial_ns = time_straddle_chain(false);
    double const exempt_ns = time_straddle_chain(true);
    op_fence_all();
    // Sanity: every cell has two in-edges, each straddle loop adds 2.
    double const str_expect = 2.0 * straddle_loops;
    if (str_d.view<double>()[0] != str_expect) {
        std::fprintf(stderr,
                     "FAIL: straddle chain executed %.0f INCs/cell, "
                     "expected %.0f\n",
                     str_d.view<double>()[0], str_expect);
        return 1;
    }
    std::printf("straddle INC chain (%d loops x %d chains, %zu edges, %zu "
                "workers):\n",
                kSweepChainLen, g_sweep_chains, kStraddleElems, nworkers);
    std::printf("  exemption off   : %9.1f ns/loop\n", serial_ns);
    std::printf("  exemption on    : %9.1f ns/loop\n", exempt_ns);
    std::printf("  exemption spdup : %9.2fx\n", serial_ns / exempt_ns);

    log.add("dataflow_chain_epoch", epoch_ns, "ns/iter",
            "16-loop RW chain, epoch engine");
    log.add("dataflow_chain_future_baseline", future_ns, "ns/iter",
            "16-loop RW chain, PR1 future chains");
    log.add("dataflow_chain_speedup", future_ns / epoch_ns, "x",
            "epoch_vs_future_chain");
    log.add("dataflow_chain_partition_speedup", part1_ns / part4_ns, "x",
            "partitioned_4_vs_whole_set");
    log.add("dataflow_chain_part4_anyplace", anyplace_ns, "ns/iter",
            "dependent RW chain, 4 partitions, placement=any, " +
                workers_label);
    log.add("affinity_placement_speedup", anyplace_ns / part4_ns, "x",
            "affinity_vs_any_placement, 4 partitions, " + workers_label);
    log.add("dataflow_chain_default", default_ns, "ns/iter",
            "dependent RW chain, default pool-size partitions, " +
                workers_label);
    log.add("dataflow_chain_auto", auto_ns, "ns/iter",
            "dependent RW chain, autotuned, chose " + auto_label + ", " +
                workers_label);
    log.add("partition_autotune_speedup", default_ns / auto_ns, "x",
            "autotuned_vs_default_pool_partitions, chose " + auto_label +
                ", " + workers_label);
    log.add("dataflow_chain_straddle_exempt", exempt_ns, "ns/iter",
            "indirect INC straddle chain, exemption on, " + workers_label);
    log.add("dataflow_chain_straddle_serial", serial_ns, "ns/iter",
            "indirect INC straddle chain, exemption off, " + workers_label);
    log.add("same_color_exemption_speedup", serial_ns / exempt_ns, "x",
            "same_colour_exemption_on_vs_off, " + workers_label);
    log.write();

    hpxlite::finalize();
    return 0;
}
