#pragma once

// Shared helpers for the figure harnesses: table printing and the
// host-measured mini-Airfoil runs that accompany the testbed model.

#include <cstdio>
#include <string>
#include <vector>

#include <psim/testbed.hpp>

namespace benchutil {

inline void print_title(char const* id, char const* what) {
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id, what);
    std::printf("Modeled testbed: 2x Xeon E5-2630 (16 cores, HT on), Airfoil\n");
    std::printf("~720K nodes / 1.5M edges; this host runs a discrete-event\n");
    std::printf("model of that machine (see DESIGN.md, psim/).\n");
    std::printf("==============================================================\n");
}

inline void print_row(std::vector<std::string> const& cells,
                      int width = 14) {
    for (auto const& c : cells) {
        std::printf("%*s", width, c.c_str());
    }
    std::printf("\n");
}

inline std::string fmt(double v, int prec = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string pct(double ratio) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", (ratio - 1.0) * 100.0);
    return buf;
}

}  // namespace benchutil
