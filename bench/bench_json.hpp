#pragma once

// Machine-readable perf-trajectory recorder. Every bench harness that
// contributes to the trajectory appends its measurements to one file,
// BENCH_op2.json (schema documented in bench/README.md), merging by
// result name so re-runs replace stale rows instead of duplicating them.
//
// The format is deliberately line-oriented — one result object per line
// inside "results": [...] — so the merge step only needs to scan lines,
// not parse arbitrary JSON.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace benchutil {

struct bench_entry {
    std::string name;
    double value = 0.0;
    std::string unit;
    std::string label;
    std::string source;
};

class bench_log {
public:
    explicit bench_log(std::string source) : source_(std::move(source)) {}

    void add(std::string name, double value, std::string unit,
             std::string label = "") {
        entries_.push_back({sanitize(std::move(name)), value,
                            sanitize(std::move(unit)),
                            sanitize(std::move(label)), source_});
    }

    /// Output path: $BENCH_OP2_JSON when set, else ./BENCH_op2.json.
    static std::string path() {
        if (char const* p = std::getenv("BENCH_OP2_JSON")) {
            return p;
        }
        return "BENCH_op2.json";
    }

    /// Merge this run's entries into the trajectory file: rows from prior
    /// runs survive unless a row with the same name is re-emitted now.
    void write() const {
        std::vector<std::string> kept = surviving_prior_rows();
        std::ofstream out(path(), std::ios::trunc);
        out << "{\n"
            << "  \"schema\": \"op2hpx-bench-v1\",\n"
            << "  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"results\": [\n";
        bool first = true;
        for (auto const& line : kept) {
            out << (first ? "" : ",\n") << line;
            first = false;
        }
        for (auto const& e : entries_) {
            out << (first ? "" : ",\n") << format_row(e);
            first = false;
        }
        out << "\n  ]\n}\n";
        std::printf("[bench_json] wrote %zu result(s) to %s\n",
                    entries_.size() + kept.size(), path().c_str());
    }

private:
    static std::string sanitize(std::string s) {
        for (auto& c : s) {
            if (c == '"' || c == '\\' || c == '\n') {
                c = '_';
            }
        }
        return s;
    }

    static std::string format_row(bench_entry const& e) {
        std::ostringstream os;
        os << "    {\"name\": \"" << e.name << "\", \"value\": " << e.value
           << ", \"unit\": \"" << e.unit << "\", \"label\": \"" << e.label
           << "\", \"source\": \"" << e.source << "\"}";
        return os.str();
    }

    /// Rows already in the file whose name this run does not re-emit.
    [[nodiscard]] std::vector<std::string> surviving_prior_rows() const {
        std::vector<std::string> kept;
        std::ifstream in(path());
        if (!in) {
            return kept;
        }
        std::string line;
        while (std::getline(in, line)) {
            auto const pos = line.find("{\"name\": \"");
            if (pos == std::string::npos) {
                continue;
            }
            std::string rest = line.substr(pos + 10);
            std::string const name = rest.substr(0, rest.find('"'));
            bool replaced = false;
            for (auto const& e : entries_) {
                if (e.name == name) {
                    replaced = true;
                    break;
                }
            }
            if (!replaced) {
                // Re-normalise: strip any trailing comma.
                std::string row = line.substr(pos);
                while (!row.empty() &&
                       (row.back() == ',' || row.back() == ' ')) {
                    row.pop_back();
                }
                kept.push_back("    " + row);
            }
        }
        return kept;
    }

    std::string source_;
    std::vector<bench_entry> entries_;
};

}  // namespace benchutil
