// Table I: the execution policies implemented in HPX (seq, par,
// seq(task), par(task)) — demonstrated on the real hpxlite runtime on
// this host: each policy runs the same loop; the task variants return
// futures. Reports per-policy wall time and the task-policy asynchrony
// (time to *issue* vs time to *complete*).
//
// Service mode (the second section): the same "named policy" idea one
// level up — op2::service fairness policies scheduling a heavy mixed
// fleet of independent op2 jobs onto the shared pool. Emits the
// service_* row family into BENCH_op2.json: aggregate throughput
// (jobs/s) and p95/p99 job latency per policy (see bench/README.md;
// floors in bench_thresholds.json gate the throughput rows).
//
// Flags: --quick (CI-sized fleet), --help.

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <hpxlite/hpxlite.hpp>
#include <op2/op2.hpp>

#include "bench_json.hpp"

namespace {

/// One tenant job for the service fleet: `iters` iterations of a
/// direct+indirect loop chain (scatter through a random edges->cells
/// map, one reduction per iteration) over a freshly declared mesh of
/// `cells` cells. Mixed sizes across the fleet make the fairness
/// policies actually differ.
op2::service::job_desc make_fleet_job(std::string name, std::string tenant,
                                      unsigned seed, std::size_t cells,
                                      int iters) {
    using namespace op2;
    service::job_desc d;
    d.name = std::move(name);
    d.tenant = std::move(tenant);
    d.est_loops = static_cast<std::uint64_t>(iters) * 3;
    d.est_bytes = cells * 4 * sizeof(double);
    d.program = [seed, cells, iters] {
        std::size_t const nedges = cells * 3;
        auto cset = op_decl_set(cells, "cells");
        auto eset = op_decl_set(nedges, "edges");
        std::mt19937 rng(seed);
        std::uniform_int_distribution<int> cd(
            0, static_cast<int>(cells) - 1);
        std::vector<int> tab(2 * nedges);
        for (auto& v : tab) {
            v = cd(rng);
        }
        auto em = op_decl_map(eset, cset, 2, tab, "em");
        auto q = op_decl_dat_zero<double>(cset, 1, "double", "q");
        auto r = op_decl_dat_zero<double>(cset, 1, "double", "r");

        loop_options o;
        o.backend = exec::backend_kind::hpx_dataflow;
        std::vector<double> sums(static_cast<std::size_t>(iters), 0.0);
        for (int it = 0; it < iters; ++it) {
            (void)exec::run_loop(
                o, "seed", cset, [](double* v) { *v += 1.0; },
                op_arg_dat(q, -1, OP_ID, 1, "double", OP_RW));
            (void)exec::run_loop(
                o, "scatter", eset,
                [](double const* a, double const* b, double* ra,
                   double* rb) {
                    *ra += *b;
                    *rb += *a;
                },
                op_arg_dat(q, 0, em, 1, "double", OP_READ),
                op_arg_dat(q, 1, em, 1, "double", OP_READ),
                op_arg_dat(r, 0, em, 1, "double", OP_INC),
                op_arg_dat(r, 1, em, 1, "double", OP_INC));
            (void)exec::run_loop(
                o, "fold", cset,
                [](double* v, double* s) {
                    *v = 0.0;
                    *s += 1.0;
                },
                op_arg_dat(r, -1, OP_ID, 1, "double", OP_RW),
                op_arg_gbl(&sums[static_cast<std::size_t>(it)], 1, "double",
                           OP_INC));
        }
        op_fence(q);
        op_fence(r);
    };
    return d;
}

op2::service::scheduler_metrics run_fleet(std::string const& policy,
                                          int njobs, std::size_t base_cells,
                                          int iters) {
    op2::service::scheduler_options so;
    so.policy = policy;
    op2::service::scheduler sched(so);
    for (int k = 0; k < njobs; ++k) {
        // Three tenants, three job sizes: small jobs queue behind big
        // ones under fifo, jump them under shortest_chain_first, and
        // take turns under round_robin.
        int const cls = k % 3;
        std::size_t const cells = base_cells << cls;
        (void)sched.submit(make_fleet_job(
            "job" + std::to_string(k), "tenant" + std::to_string(cls),
            static_cast<unsigned>(17 * k + 3), cells, iters));
    }
    sched.drain();
    return sched.metrics();
}

void usage(char const* argv0) {
    std::printf(
        "usage: %s [--quick] [--help]\n"
        "  --quick  CI-sized run: smaller fleet and meshes, same rows\n"
        "  --help   this text\n",
        argv0);
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    std::printf("==============================================================\n");
    std::printf("Table I — execution policies (host-measured, hpxlite)\n");
    std::printf("==============================================================\n");
    hpxlite::init();

    std::size_t const n = quick ? 400'000 : 4'000'000;
    std::vector<double> v(n, 1.0);
    hpxlite::util::irange r(0, n);
    auto body = [&](std::size_t i) { v[i] = v[i] * 1.0001 + 0.5; };

    namespace ex = hpxlite::execution;
    using hpxlite::parallel::for_each;

    {
        hpxlite::util::stopwatch sw;
        for_each(ex::seq, r.begin(), r.end(), body);
        std::printf("%-12s total %8.3f ms   (sequential)\n", "seq",
                    sw.elapsed_s() * 1e3);
    }
    {
        hpxlite::util::stopwatch sw;
        for_each(ex::par, r.begin(), r.end(), body);
        std::printf("%-12s total %8.3f ms   (parallel, synchronous)\n", "par",
                    sw.elapsed_s() * 1e3);
    }
    {
        hpxlite::util::stopwatch sw;
        auto f = for_each(ex::seq(ex::task), r.begin(), r.end(), body);
        double const issue_ms = sw.elapsed_s() * 1e3;
        f.wait();
        std::printf("%-12s total %8.3f ms   (issue returned after %.4f ms)\n",
                    "seq(task)", sw.elapsed_s() * 1e3, issue_ms);
    }
    {
        hpxlite::util::stopwatch sw;
        auto f = for_each(ex::par(ex::task), r.begin(), r.end(), body);
        double const issue_ms = sw.elapsed_s() * 1e3;
        f.wait();
        std::printf("%-12s total %8.3f ms   (issue returned after %.4f ms)\n",
                    "par(task)", sw.elapsed_s() * 1e3, issue_ms);
    }
    std::printf("\n(par_vec of the Parallelism TS is not implemented by HPX "
                "itself — Table I marks it TS-only; hpxlite follows HPX.)\n");

    std::printf("\n==============================================================\n");
    std::printf("Service mode — fairness policies over a mixed job fleet\n");
    std::printf("==============================================================\n");

    int const njobs = quick ? 12 : 48;
    std::size_t const base_cells = quick ? 400 : 2000;
    int const iters = quick ? 3 : 8;
    std::printf("fleet: %d jobs, 3 tenants, meshes %zu/%zu/%zu cells, "
                "%d iteration(s) each\n\n",
                njobs, base_cells, base_cells * 2, base_cells * 4, iters);

    benchutil::bench_log log("bench_table1_policies");
    for (auto policy : op2::service::policy_names()) {
        std::string const pol(policy);
        auto const m = run_fleet(pol, njobs, base_cells, iters);
        std::printf("%-22s %7.1f jobs/s   mean wait %7.2f ms   "
                    "p95 %7.2f ms   p99 %7.2f ms   (%llu loops)\n",
                    pol.c_str(), m.throughput_jobs_s, m.mean_wait_s * 1e3,
                    m.p95_latency_s * 1e3, m.p99_latency_s * 1e3,
                    static_cast<unsigned long long>(m.loops_issued));
        log.add("service_throughput_" + pol, m.throughput_jobs_s, "jobs/s",
                "aggregate job throughput, mixed fleet, policy " + pol);
        log.add("service_p95_ms_" + pol, m.p95_latency_s * 1e3, "ms",
                "p95 job latency (submit->retire), policy " + pol);
        log.add("service_p99_ms_" + pol, m.p99_latency_s * 1e3, "ms",
                "p99 job latency (submit->retire), policy " + pol);
    }
    log.write();

    hpxlite::finalize();
    return 0;
}
