// Table I: the execution policies implemented in HPX (seq, par,
// seq(task), par(task)) — demonstrated on the real hpxlite runtime on
// this host: each policy runs the same loop; the task variants return
// futures. Reports per-policy wall time and the task-policy asynchrony
// (time to *issue* vs time to *complete*).

#include <cstdio>
#include <vector>

#include <hpxlite/hpxlite.hpp>

int main() {
    std::printf("==============================================================\n");
    std::printf("Table I — execution policies (host-measured, hpxlite)\n");
    std::printf("==============================================================\n");
    hpxlite::init();

    std::size_t const n = 4'000'000;
    std::vector<double> v(n, 1.0);
    hpxlite::util::irange r(0, n);
    auto body = [&](std::size_t i) { v[i] = v[i] * 1.0001 + 0.5; };

    namespace ex = hpxlite::execution;
    using hpxlite::parallel::for_each;

    {
        hpxlite::util::stopwatch sw;
        for_each(ex::seq, r.begin(), r.end(), body);
        std::printf("%-12s total %8.3f ms   (sequential)\n", "seq",
                    sw.elapsed_s() * 1e3);
    }
    {
        hpxlite::util::stopwatch sw;
        for_each(ex::par, r.begin(), r.end(), body);
        std::printf("%-12s total %8.3f ms   (parallel, synchronous)\n", "par",
                    sw.elapsed_s() * 1e3);
    }
    {
        hpxlite::util::stopwatch sw;
        auto f = for_each(ex::seq(ex::task), r.begin(), r.end(), body);
        double const issue_ms = sw.elapsed_s() * 1e3;
        f.wait();
        std::printf("%-12s total %8.3f ms   (issue returned after %.4f ms)\n",
                    "seq(task)", sw.elapsed_s() * 1e3, issue_ms);
    }
    {
        hpxlite::util::stopwatch sw;
        auto f = for_each(ex::par(ex::task), r.begin(), r.end(), body);
        double const issue_ms = sw.elapsed_s() * 1e3;
        f.wait();
        std::printf("%-12s total %8.3f ms   (issue returned after %.4f ms)\n",
                    "par(task)", sw.elapsed_s() * 1e3, issue_ms);
    }
    std::printf("\n(par_vec of the Parallelism TS is not implemented by HPX "
                "itself — Table I marks it TS-only; hpxlite follows HPX.)\n");

    hpxlite::finalize();
    return 0;
}
