// Microbenchmarks of parallel::for_each / for_loop under the different
// chunkers — the per-chunk scheduling overhead the paper's Section IV-B
// sets out to control.

#include <benchmark/benchmark.h>

#include <vector>

#include <hpxlite/hpxlite.hpp>

namespace {

namespace ex = hpxlite::execution;

void bm_for_loop_seq(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    std::vector<double> v(n, 1.0);
    for (auto _ : state) {
        hpxlite::parallel::for_loop(ex::seq, std::size_t{0}, n,
                                    [&](std::size_t i) { v[i] += 1.0; });
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(bm_for_loop_seq)->Arg(1000)->Arg(100000);

void bm_for_loop_par_static(benchmark::State& state) {
    hpxlite::init();
    auto const n = static_cast<std::size_t>(state.range(0));
    std::vector<double> v(n, 1.0);
    auto pol = ex::par.with(ex::static_chunk_size{});
    for (auto _ : state) {
        hpxlite::parallel::for_loop(pol, std::size_t{0}, n,
                                    [&](std::size_t i) { v[i] += 1.0; });
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(bm_for_loop_par_static)->Arg(1000)->Arg(100000)->Arg(1000000);

void bm_for_loop_par_auto(benchmark::State& state) {
    hpxlite::init();
    auto const n = static_cast<std::size_t>(state.range(0));
    std::vector<double> v(n, 1.0);
    auto pol = ex::par.with(ex::auto_chunk_size{});
    for (auto _ : state) {
        hpxlite::parallel::for_loop(pol, std::size_t{0}, n,
                                    [&](std::size_t i) { v[i] += 1.0; });
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(bm_for_loop_par_auto)->Arg(100000)->Arg(1000000);

void bm_for_loop_par_persistent(benchmark::State& state) {
    hpxlite::init();
    auto const n = static_cast<std::size_t>(state.range(0));
    std::vector<double> v(n, 1.0);
    ex::chunk_domain dom;
    auto pol = ex::par.with(ex::persistent_auto_chunk_size{&dom});
    for (auto _ : state) {
        hpxlite::parallel::for_loop(pol, std::size_t{0}, n,
                                    [&](std::size_t i) { v[i] += 1.0; });
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(bm_for_loop_par_persistent)->Arg(100000)->Arg(1000000);

void bm_transform_reduce(benchmark::State& state) {
    hpxlite::init();
    auto const n = static_cast<std::size_t>(state.range(0));
    std::vector<double> v(n, 0.5);
    for (auto _ : state) {
        double const s = hpxlite::parallel::transform_reduce(
            ex::par, v.begin(), v.end(), 0.0,
            [](double a, double b) { return a + b; },
            [](double x) { return x * x; });
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(bm_transform_reduce)->Arg(1000000);

}  // namespace

BENCHMARK_MAIN();
