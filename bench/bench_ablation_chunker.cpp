// Ablation: chunk-size policy sweep on the modeled testbed, plus a
// host-measured sweep of the real hpxlite chunkers.
//
// Separates the two ingredients of Fig. 17: chunk *granularity*
// (static-per-thread vs time-targeted) and chunk-time *alignment across
// loops* (auto per loop vs persistent domain).

#include <cstdio>
#include <vector>

#include <hpxlite/hpxlite.hpp>
#include <psim/testbed.hpp>

#include "bench_common.hpp"

int main() {
    using namespace benchutil;
    print_title("Ablation", "chunk-size policies (modeled + host-measured)");

    auto tb = psim::paper_testbed();
    print_row({"threads", "omp_static", "par_static", "auto", "persistent"});
    for (int t : {8, 16, 24, 32}) {
        psim::sim_options o;
        o.threads = t;
        o.iterations = tb.iterations;
        std::vector<std::string> row{std::to_string(t)};
        for (auto cm :
             {psim::chunk_mode::omp_static, psim::chunk_mode::hpx_static,
              psim::chunk_mode::auto_chunk, psim::chunk_mode::persistent}) {
            o.chunking = cm;
            row.push_back(
                fmt(simulate_dataflow(tb.machine, tb.airfoil, o).total_s));
        }
        print_row(row);
    }

    std::printf("\n[host-measured] 2M-element loop under each hpxlite "
                "chunker on this machine:\n");
    hpxlite::init();
    std::size_t const n = 2'000'000;
    std::vector<double> v(n, 1.0);
    namespace ex = hpxlite::execution;
    auto time_with = [&](ex::chunker ck) {
        hpxlite::util::stopwatch sw;
        hpxlite::parallel::for_loop(
            ex::par.with(std::move(ck)), std::size_t{0}, n,
            [&](std::size_t i) { v[i] = v[i] * 1.0001 + 0.5; });
        return sw.elapsed_s() * 1e3;
    };
    std::printf("  static_chunk_size{0}     : %8.3f ms\n",
                time_with(ex::static_chunk_size{}));
    std::printf("  static_chunk_size{4096}  : %8.3f ms\n",
                time_with(ex::static_chunk_size{4096}));
    std::printf("  dynamic_chunk_size{4096} : %8.3f ms\n",
                time_with(ex::dynamic_chunk_size{4096}));
    std::printf("  auto_chunk_size{100us}   : %8.3f ms\n",
                time_with(ex::auto_chunk_size{}));
    ex::chunk_domain dom;
    std::printf("  persistent (calibrating) : %8.3f ms\n",
                time_with(ex::persistent_auto_chunk_size{&dom}));
    std::printf("  persistent (calibrated)  : %8.3f ms  (domain target %lld ns)\n",
                time_with(ex::persistent_auto_chunk_size{&dom}),
                static_cast<long long>(dom.target_ns()));
    hpxlite::finalize();
    return 0;
}
