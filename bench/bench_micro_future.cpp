// Microbenchmarks of the hpxlite LCO primitives (google-benchmark):
// future creation/fulfilment, continuation chaining, async round trips.

#include <benchmark/benchmark.h>

#include <hpxlite/hpxlite.hpp>

namespace {

void bm_make_ready_future(benchmark::State& state) {
    for (auto _ : state) {
        auto f = hpxlite::make_ready_future(42);
        benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(bm_make_ready_future);

void bm_promise_set_get(benchmark::State& state) {
    for (auto _ : state) {
        hpxlite::promise<int> p;
        auto f = p.get_future();
        p.set_value(7);
        benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(bm_promise_set_get);

void bm_then_chain(benchmark::State& state) {
    hpxlite::init();
    auto const depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto f = hpxlite::make_ready_future(0);
        for (int i = 0; i < depth; ++i) {
            f = f.then([](hpxlite::future<int>&& x) { return x.get() + 1; });
        }
        benchmark::DoNotOptimize(f.get());
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(bm_then_chain)->Arg(1)->Arg(8)->Arg(64);

void bm_async_roundtrip(benchmark::State& state) {
    hpxlite::init();
    for (auto _ : state) {
        auto f = hpxlite::async([] { return 1; });
        benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(bm_async_roundtrip);

void bm_shared_future_fanout(benchmark::State& state) {
    hpxlite::init();
    auto const width = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto sf = hpxlite::async([] { return 3; }).share();
        std::vector<hpxlite::future<int>> fs;
        fs.reserve(static_cast<std::size_t>(width));
        for (int i = 0; i < width; ++i) {
            fs.push_back(
                sf.then([](hpxlite::shared_future<int> x) { return x.get(); }));
        }
        int acc = 0;
        for (auto& f : fs) {
            acc += f.get();
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(bm_shared_future_fanout)->Arg(4)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
