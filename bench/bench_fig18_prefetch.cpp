// Figure 18: dataflow (with persistent chunking) with vs without the HPX
// prefetching iterator (Section V) on Airfoil.
//
// Paper observation: speedup increases by ~45% on average when data of
// the next chunk of every container in the loop is prefetched, because
// the thread-based prefetch is combined with asynchronous execution
// rather than a global-barrier prefetcher thread.

#include <cstdio>

#include <psim/testbed.hpp>

#include "bench_common.hpp"

int main() {
    using namespace benchutil;
    print_title("Figure 18", "dataflow with/without data prefetching");

    auto tb = psim::paper_testbed();

    psim::sim_options base;
    base.threads = 1;
    base.iterations = tb.iterations;
    base.chunking = psim::chunk_mode::persistent;
    double const plain1 = simulate_dataflow(tb.machine, tb.airfoil, base).total_s;
    base.prefetch = true;
    base.prefetch_distance = 15.0;
    double const pf1 = simulate_dataflow(tb.machine, tb.airfoil, base).total_s;

    print_row({"threads", "df_speedup", "df+pf_speedup", "pf_gain"});
    double sum_gain = 0.0;
    int count = 0;
    for (int t : psim::paper_thread_counts()) {
        psim::sim_options o;
        o.threads = t;
        o.iterations = tb.iterations;
        o.chunking = psim::chunk_mode::persistent;
        double const plain = simulate_dataflow(tb.machine, tb.airfoil, o).total_s;
        o.prefetch = true;
        o.prefetch_distance = 15.0;
        double const pf = simulate_dataflow(tb.machine, tb.airfoil, o).total_s;
        print_row({std::to_string(t), fmt(plain1 / plain, 2), fmt(pf1 / pf, 2),
                   pct(plain / pf)});
        sum_gain += plain / pf - 1.0;
        ++count;
    }
    std::printf("\npaper: ~45%% average improvement from prefetching; "
                "modeled average: %+.1f%%\n",
                sum_gain / count * 100.0);
    return 0;
}
