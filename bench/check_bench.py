#!/usr/bin/env python3
"""Bench regression gate: fail when a speedup row falls below its floor.

Usage: check_bench.py BENCH_op2.json bench_thresholds.json

Replaces the old "cat BENCH_op2.json for eyeballing" CI step with an
actual check. The threshold file commits a floor per `*_speedup` row
(see bench/README.md for the format); this script fails the job when

  * a row named in the threshold file is present in the emitted bench
    file with a value below its floor, or
  * a row marked "required" in the threshold file is missing from the
    emitted bench file (a silently-vanished measurement is a regression
    of the harness, not a pass).

Speedup rows present in the bench file but absent from the threshold
file are reported as unguarded, without failing — new rows should get a
floor in the same PR that introduces them.

A row's "min" is either a plain number (one floor for every runner) or
an object keyed by minimum hardware-thread count, e.g.
{"1": 0.5, "4": 1.1}: the entry with the largest key <= the bench
file's hardware_threads applies. When no key applies (an
overlap-dependent floor keyed {"2": ...} on a 1-core runner) the row is
skipped — "required" is waived too, since the measurement is
meaningless there, not missing. An unreported thread count ("?") is
treated as 1.

Floors are regression tripwires, not performance targets: they sit well
below the values a healthy run produces (including single-core runs,
where overlap-dependent speedups sink to parity) so that only a real
regression — or a CI runner meltdown worth noticing — trips them.
"""

import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def resolve_floor(spec, hw_threads):
    """The floor applying at `hw_threads`, or None when the row is
    hardware-gated out (no dict key <= the runner's thread count)."""
    floor = spec["min"]
    if not isinstance(floor, dict):
        return floor
    applicable = [int(k) for k in floor if int(k) <= hw_threads]
    if not applicable:
        return None
    return floor[str(max(applicable))]


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench = load(argv[1])
    thresholds = load(argv[2]).get("thresholds", {})

    rows = {
        r["name"]: r
        for r in bench.get("results", [])
        if isinstance(r, dict) and "name" in r
    }
    hw = bench.get("hardware_threads", "?")
    print(f"check_bench: {argv[1]}: {len(rows)} rows, "
          f"{hw} hardware thread(s)")
    try:
        hw_threads = int(hw)
    except (TypeError, ValueError):
        hw_threads = 1

    failures = []
    waived = []   # hardware-gated out (no floor key <= hw_threads)
    skipped = []  # optional rows absent from this run's output
    for name, spec in sorted(thresholds.items()):
        floor = resolve_floor(spec, hw_threads)
        if floor is None:
            print(f"  SKIP {name}: no floor at {hw_threads} hardware "
                  f"thread(s)")
            waived.append(name)
            continue
        row = rows.get(name)
        if row is None:
            if spec.get("required", False):
                failures.append(f"{name}: required row missing from bench "
                                f"output")
            else:
                print(f"  SKIP {name}: not emitted by this run")
                skipped.append(name)
            continue
        value = row["value"]
        status = "ok" if value >= floor else "FAIL"
        # The label carries the row's configuration (e.g. the config the
        # auto-tuner chose) — print it so a CI log shows *what* was
        # measured, not just the number.
        label = row.get("label", "")
        detail = f"  [{label}]" if label else ""
        print(f"  {status:4} {name}: {value:.3f} (floor {floor}){detail}")
        if value < floor:
            failures.append(f"{name}: {value:.3f} below floor {floor}")

    unguarded = [
        n for n in sorted(rows)
        if n.endswith("_speedup") and n not in thresholds
    ]
    for name in unguarded:
        print(f"  WARN {name}: speedup row has no committed floor")

    # Explicit waiver accounting: a gate that silently skips half its
    # rows looks green for the wrong reason — say out loud what was not
    # checked and why, so a CI log reader can tell "enforced and passed"
    # from "never applicable on this runner".
    if waived:
        print(f"check_bench: {len(waived)} row(s) waived at {hw_threads} "
              f"hardware thread(s) (floor requires more parallelism): "
              + ", ".join(waived))
    if skipped:
        print(f"check_bench: {len(skipped)} optional row(s) not emitted "
              f"by this run: " + ", ".join(skipped))
    if not waived and not skipped:
        print("check_bench: no rows waived or skipped")

    if failures:
        print("check_bench: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_bench: all gated rows at or above their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
