// Microbenchmarks of dataflow/when_all: DAG construction and execution
// overhead per node — the cost the paper's redesign pays per op_par_loop.

#include <benchmark/benchmark.h>

#include <hpxlite/hpxlite.hpp>

namespace {

void bm_dataflow_ready_args(benchmark::State& state) {
    hpxlite::init();
    for (auto _ : state) {
        auto f = hpxlite::dataflow(
            hpxlite::unwrapped([](int a, int b) { return a + b; }),
            hpxlite::make_ready_future(1), hpxlite::make_ready_future(2));
        benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(bm_dataflow_ready_args);

void bm_dataflow_chain(benchmark::State& state) {
    hpxlite::init();
    auto const depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto f = hpxlite::make_ready_future(0);
        for (int i = 0; i < depth; ++i) {
            f = hpxlite::dataflow(
                hpxlite::unwrapped([](int x) { return x + 1; }), std::move(f));
        }
        benchmark::DoNotOptimize(f.get());
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(bm_dataflow_chain)->Arg(1)->Arg(16)->Arg(128);

void bm_when_all_vector(benchmark::State& state) {
    hpxlite::init();
    auto const width = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        std::vector<hpxlite::future<int>> fs;
        fs.reserve(width);
        for (std::size_t i = 0; i < width; ++i) {
            fs.push_back(hpxlite::make_ready_future(static_cast<int>(i)));
        }
        auto all = hpxlite::when_all(std::move(fs)).get();
        benchmark::DoNotOptimize(all.size());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(width));
}
BENCHMARK(bm_when_all_vector)->Arg(4)->Arg(64);

void bm_dataflow_diamond(benchmark::State& state) {
    hpxlite::init();
    for (auto _ : state) {
        auto src = hpxlite::async([] { return 1; }).share();
        auto l = hpxlite::dataflow(
            hpxlite::unwrapped([](int x) { return x * 2; }), src);
        auto r = hpxlite::dataflow(
            hpxlite::unwrapped([](int x) { return x * 3; }), src);
        auto join = hpxlite::dataflow(
            hpxlite::unwrapped([](int a, int b) { return a + b; }),
            std::move(l), std::move(r));
        benchmark::DoNotOptimize(join.get());
    }
}
BENCHMARK(bm_dataflow_diamond);

}  // namespace

BENCHMARK_MAIN();
