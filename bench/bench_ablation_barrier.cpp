// Ablation: where does the dataflow gain come from?
// Decomposes the Fig. 15/16 gap on the modeled testbed into
//  (a) removing fork/barrier overhead + straggler absorption
//      (dataflow with the same coarse chunks as OpenMP),
//  (b) fine-grained time-targeted chunks, and
//  (c) chunk-level pipelining between dependent loops.

#include <cstdio>

#include <psim/testbed.hpp>

#include "bench_common.hpp"

int main() {
    using namespace benchutil;
    print_title("Ablation", "barrier removal vs chunking vs pipelining");

    auto tb = psim::paper_testbed();
    print_row({"threads", "omp", "df_coarse", "df_fine_NP", "df_fine_P"});
    for (int t : {8, 16, 24, 32}) {
        psim::sim_options o;
        o.threads = t;
        o.iterations = tb.iterations;

        o.chunking = psim::chunk_mode::omp_static;
        double const omp = simulate_fork_join(tb.machine, tb.airfoil, o).total_s;

        // (a) same chunk granularity as omp, but no global barriers.
        o.chunk_pipelining = false;
        double const coarse =
            simulate_dataflow(tb.machine, tb.airfoil, o).total_s;

        // (b) + fine time-targeted chunks, loop-level sync only.
        o.chunking = psim::chunk_mode::persistent;
        double const fine_np =
            simulate_dataflow(tb.machine, tb.airfoil, o).total_s;

        // (c) + chunk-level pipelining between dependent loops.
        o.chunk_pipelining = true;
        double const fine_p =
            simulate_dataflow(tb.machine, tb.airfoil, o).total_s;

        print_row({std::to_string(t), fmt(omp), fmt(coarse), fmt(fine_np),
                   fmt(fine_p)});
    }
    std::printf("\nColumns are seconds; each step to the right enables one "
                "more mechanism of the paper's redesign.\n");
    return 0;
}
