// Figure 15: Airfoil execution time, OpenMP `#pragma omp parallel for`
// vs HPX `dataflow`, as the thread count grows (HT beyond 16).
//
// Paper observations reproduced here:
//  * identical performance at 1 thread,
//  * dataflow increasingly faster at higher thread counts,
//  * both keep improving (mildly) past 16 threads with hyper-threading.
//
// The modeled columns come from the calibrated discrete-event testbed
// model (psim). A host-measured mini-Airfoil comparison (both backends on
// this machine's core count) is appended as a functional sanity check.

#include <cmath>
#include <cstdio>

#include <airfoil/app.hpp>
#include <psim/testbed.hpp>

#include "bench_common.hpp"
#include "bench_json.hpp"

int main() {
    using namespace benchutil;
    print_title("Figure 15", "execution time: omp parallel-for vs dataflow");

    auto tb = psim::paper_testbed();
    print_row({"threads", "omp_s", "dataflow_s", "df_vs_omp"});
    for (int t : psim::paper_thread_counts()) {
        psim::sim_options o;
        o.threads = t;
        o.iterations = tb.iterations;
        o.chunking = psim::chunk_mode::omp_static;
        auto omp = simulate_fork_join(tb.machine, tb.airfoil, o);
        o.chunking = psim::chunk_mode::auto_chunk;
        auto df = simulate_dataflow(tb.machine, tb.airfoil, o);
        print_row({std::to_string(t), fmt(omp.total_s), fmt(df.total_s),
                   pct(omp.total_s / df.total_s)});
    }

    std::printf("\n[host-measured] mini Airfoil (60x30 mesh, 40 iters), both "
                "backends on this machine:\n");
    hpxlite::init();
    airfoil::app_config cfg;
    cfg.mesh.nx = 60;
    cfg.mesh.ny = 30;
    cfg.niter = 40;
    cfg.rms_stride = 40;
    cfg.be = op2::backend::fork_join;
    auto fj = airfoil::run(cfg);
    cfg.be = op2::backend::hpx;
    auto hx = airfoil::run(cfg);
    std::printf("  fork_join: %.4fs  (final rms %.6e)\n", fj.elapsed_s,
                fj.final_rms);
    std::printf("  dataflow : %.4fs  (final rms %.6e)\n", hx.elapsed_s,
                hx.final_rms);
    bool const agree = std::abs(fj.final_rms - hx.final_rms) <
                       1e-9 * (1.0 + fj.final_rms);
    std::printf("  backends agree: %s\n", agree ? "yes" : "NO");
    hpxlite::finalize();

    // Host-measured rows of the perf trajectory (BENCH_op2.json).
    benchutil::bench_log log("bench_fig15_exec_time");
    log.add("fig15_host_fork_join", fj.elapsed_s, "s", "mini-airfoil 60x30x40");
    log.add("fig15_host_dataflow", hx.elapsed_s, "s", "mini-airfoil 60x30x40");
    log.add("fig15_host_backends_agree", agree ? 1.0 : 0.0, "bool");
    log.write();
    return 0;
}
