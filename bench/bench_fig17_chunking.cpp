// Figure 17: strong scaling of dataflow with vs without setting chunk
// sizes of dependent loops based on each other, i.e. the paper's
// persistent_auto_chunk_size execution policy (Section IV-B, Fig. 12).
//
// Baseline ("without"): the stock `par` policy — static chunks of equal
// *size*, hence unequal execution *time* across dependent loops, and no
// chunk-level pipelining between them (Fig. 12a).
// Treatment ("with"): persistent_auto_chunk_size — the first loop's
// measured chunk time becomes the target for all dependent loops, so
// chunks align in time and pipeline smoothly (Fig. 12b).
//
// Paper observation: ~40% improvement at 32 threads.

#include <cstdio>

#include <psim/testbed.hpp>

#include "bench_common.hpp"

int main() {
    using namespace benchutil;
    print_title("Figure 17",
                "dataflow with/without persistent_auto_chunk_size");

    auto tb = psim::paper_testbed();

    psim::sim_options base;
    base.threads = 1;
    base.iterations = tb.iterations;
    base.chunking = psim::chunk_mode::hpx_static;
    base.chunk_pipelining = false;
    double const nochunk1 =
        simulate_dataflow(tb.machine, tb.airfoil, base).total_s;
    base.chunking = psim::chunk_mode::persistent;
    base.chunk_pipelining = true;
    double const chunk1 = simulate_dataflow(tb.machine, tb.airfoil, base).total_s;

    print_row({"threads", "df_speedup", "df+chunk_spdup", "gain"});
    double gain32 = 0.0;
    for (int t : psim::paper_thread_counts()) {
        psim::sim_options o;
        o.threads = t;
        o.iterations = tb.iterations;
        o.chunking = psim::chunk_mode::hpx_static;
        o.chunk_pipelining = false;
        double const plain = simulate_dataflow(tb.machine, tb.airfoil, o).total_s;
        o.chunking = psim::chunk_mode::persistent;
        o.chunk_pipelining = true;
        double const chunked =
            simulate_dataflow(tb.machine, tb.airfoil, o).total_s;
        print_row({std::to_string(t), fmt(nochunk1 / plain, 2),
                   fmt(chunk1 / chunked, 2), pct(plain / chunked)});
        if (t == 32) {
            gain32 = plain / chunked - 1.0;
        }
    }
    std::printf("\npaper: ~40%% improvement at 32 threads; modeled: %+.1f%%\n",
                gain32 * 100.0);
    return 0;
}
