// Figure 16: strong-scaling speedup (fixed problem, growing threads) of
// `dataflow` vs `#pragma omp parallel for` on Airfoil.
//
// Paper observation: ~33% better performance for dataflow at scale, due
// to asynchronous task execution and interleaving of dependent loops;
// the scaling knee appears at 16 threads where hyper-threading engages.
//
// Plus the sharded-execution section: the same airfoil-shaped chain run
// host-measured at 2 logical localities (op2/comm halo exchange over
// partitions), once bulk-synchronous (every loop's handle waited — a
// halo can never overlap compute) and once fully asynchronous (one
// fence at the end — exchanges overlap interior sub-nodes). The ratio
// is exactly what the async halo machinery buys over per-loop barriers
// on a sharded run. Both variants are checked bitwise against each
// other before any row is emitted.
//
// Emits into BENCH_op2.json (schema op2hpx-bench-v1):
//   locality_sync_per_get   ns per loop, localities=2, per-loop get()
//   locality_async          ns per loop, localities=2, one final fence
//   locality_speedup        x, async vs bulk-sync at 2 localities
//   halo_exchange_count     exchanges issued during the async run
//   halo_exchange_bytes     bytes moved by those exchanges
//
// `--quick` shrinks the mesh and repetitions for the CI smoke run.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <hpxlite/hpxlite.hpp>
#include <op2/op2.hpp>
#include <psim/testbed.hpp>

#include "bench_common.hpp"
#include "bench_json.hpp"

namespace {

// Sharded chain: save_soln / adt_calc / res_calc / update shapes over a
// ring edges->cells mesh, the airfoil time-march in miniature.
std::size_t g_cells = 131072;  // (--quick: 32768)
int g_iters = 24;              // chain iterations measured (--quick: 8)
int g_reps = 5;                // repetitions measured (--quick: 2)

double run_chain(op2::op_set cells, op2::op_set edges, op2::op_map em,
                 op2::op_dat q, op2::op_dat qold, op2::op_dat res,
                 bool per_loop_get) {
    using namespace op2;
    loop_options o;
    o.backend = exec::backend_kind::hpx_dataflow;
    o.part_size = 256;
    o.partitions = 4;
    o.localities = 2;
    o.fuse = false;  // a fusing issue runs unsharded (fuse precedence)

    for (auto& x : q.view<double>()) x = 1.0;
    for (auto& x : qold.view<double>()) x = 0.0;
    for (auto& x : res.view<double>()) x = 0.0;

    hpxlite::util::stopwatch sw;
    for (int it = 0; it < g_iters; ++it) {
        auto h1 = exec::run_loop(o, "save_soln", cells,
                                 [](double const* a, double* b) { *b = *a; },
                                 op_arg_dat(q, -1, OP_ID, 1, "double",
                                            OP_READ),
                                 op_arg_dat(qold, -1, OP_ID, 1, "double",
                                            OP_WRITE));
        auto h2 = exec::run_loop(
            o, "res_calc", edges,
            [](double const* a, double const* b, double* r0, double* r1) {
                double const f = *a + *b;
                *r0 += f;
                *r1 += f;
            },
            op_arg_dat(q, 0, em, 1, "double", OP_READ),
            op_arg_dat(q, 1, em, 1, "double", OP_READ),
            op_arg_dat(res, 0, em, 1, "double", OP_INC),
            op_arg_dat(res, 1, em, 1, "double", OP_INC));
        auto h3 = exec::run_loop(
            o, "update", cells,
            [](double const* qo, double* r, double* qq) {
                *qq = *qo + (*r > 1024.0 ? 0.0 : 1.0);
                *r = 0.0;
            },
            op_arg_dat(qold, -1, OP_ID, 1, "double", OP_READ),
            op_arg_dat(res, -1, OP_ID, 1, "double", OP_RW),
            op_arg_dat(q, -1, OP_ID, 1, "double", OP_WRITE));
        if (per_loop_get) {
            // Bulk-synchronous shape: every handle waited before the
            // next loop issues — halo exchanges serialise with compute.
            h1.get();
            h2.get();
            h3.get();
        }
    }
    op2::op_fence_all();
    return sw.elapsed_s();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace benchutil;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            g_cells = 32768;
            g_iters = 8;
            g_reps = 2;
        }
    }
    print_title("Figure 16", "strong-scaling speedup: omp vs dataflow");

    auto tb = psim::paper_testbed();

    // 1-thread baselines.
    psim::sim_options base;
    base.threads = 1;
    base.iterations = tb.iterations;
    base.chunking = psim::chunk_mode::omp_static;
    double const omp1 = simulate_fork_join(tb.machine, tb.airfoil, base).total_s;
    base.chunking = psim::chunk_mode::auto_chunk;
    double const df1 = simulate_dataflow(tb.machine, tb.airfoil, base).total_s;

    print_row({"threads", "omp_speedup", "df_speedup", "df_gain"});
    double gain32 = 0.0;
    for (int t : psim::paper_thread_counts()) {
        psim::sim_options o;
        o.threads = t;
        o.iterations = tb.iterations;
        o.chunking = psim::chunk_mode::omp_static;
        double const omp = simulate_fork_join(tb.machine, tb.airfoil, o).total_s;
        o.chunking = psim::chunk_mode::auto_chunk;
        double const df = simulate_dataflow(tb.machine, tb.airfoil, o).total_s;
        print_row({std::to_string(t), fmt(omp1 / omp, 2), fmt(df1 / df, 2),
                   pct(omp / df)});
        if (t == 32) {
            gain32 = omp / df - 1.0;
        }
    }
    std::printf("\npaper: ~33%% better performance for dataflow at high "
                "thread counts; modeled at 32 threads: %+.1f%%\n",
                gain32 * 100.0);

    // --- host-measured: sharded execution with async halo exchange ----
    hpxlite::init(hpxlite::runtime_config{4});
    {
        using namespace op2;
        std::size_t const ncells = g_cells;
        auto cells = op_decl_set(ncells, "shard_cells");
        auto edges = op_decl_set(ncells, "shard_edges");
        std::vector<int> tab(2 * ncells);
        for (std::size_t e = 0; e < ncells; ++e) {
            tab[2 * e] = static_cast<int>(e);
            tab[2 * e + 1] = static_cast<int>((e + 1) % ncells);
        }
        auto em = op_decl_map(edges, cells, 2, tab, "shard_em");
        auto q = op_decl_dat_zero<double>(cells, 1, "double", "shard_q");
        auto qold =
            op_decl_dat_zero<double>(cells, 1, "double", "shard_qold");
        auto res = op_decl_dat_zero<double>(cells, 1, "double", "shard_res");

        // Warm plans, halo plans and staging channels, then check the
        // two variants agree bitwise before timing anything.
        (void)run_chain(cells, edges, em, q, qold, res, true);
        std::vector<double> sync_q(q.view<double>().begin(),
                                   q.view<double>().end());
        (void)run_chain(cells, edges, em, q, qold, res, false);
        if (std::memcmp(sync_q.data(), q.view<double>().data(),
                        sync_q.size() * sizeof(double)) != 0) {
            std::fprintf(stderr,
                         "FAIL: sync and async sharded runs diverged\n");
            return 1;
        }

        double sync_s = 0.0;
        double async_s = 0.0;
        op2::comm::reset_stats();
        for (int r = 0; r < g_reps; ++r) {
            sync_s += run_chain(cells, edges, em, q, qold, res, true);
        }
        std::uint64_t const sync_exch = op2::comm::stats().exchanges.load();
        op2::comm::reset_stats();
        for (int r = 0; r < g_reps; ++r) {
            async_s += run_chain(cells, edges, em, q, qold, res, false);
        }
        std::uint64_t const exchanges = op2::comm::stats().exchanges.load();
        std::uint64_t const bytes = op2::comm::stats().bytes.load();

        double const loops =
            static_cast<double>(g_reps) * g_iters * 3.0;
        double const sync_ns = sync_s * 1e9 / loops;
        double const async_ns = async_s * 1e9 / loops;
        std::size_t const nworkers = hpxlite::get_num_worker_threads();
        std::string const label_tail =
            "2 localities, 4 partitions, " + std::to_string(nworkers) +
            " workers";
        std::printf("\nsharded chain, %zu cells, %d iters x %d reps (%s):\n",
                    ncells, g_iters, g_reps, label_tail.c_str());
        std::printf("  bulk-sync (per-loop get) : %9.1f ns/loop "
                    "(%llu exchanges)\n",
                    sync_ns, static_cast<unsigned long long>(sync_exch));
        std::printf("  async (one fence)        : %9.1f ns/loop "
                    "(%llu exchanges, %.1f KiB)\n",
                    async_ns, static_cast<unsigned long long>(exchanges),
                    static_cast<double>(bytes) / 1024.0);
        std::printf("  locality speedup         : %9.2fx\n",
                    sync_ns / async_ns);

        benchutil::bench_log log("bench_fig16_strong_scaling");
        log.add("locality_sync_per_get", sync_ns, "ns/iter",
                "sharded airfoil chain, per-loop get, " + label_tail);
        log.add("locality_async", async_ns, "ns/iter",
                "sharded airfoil chain, single fence, " + label_tail);
        log.add("locality_speedup", sync_ns / async_ns, "x",
                "async_halo_overlap_vs_bulk_sync, " + label_tail);
        log.add("halo_exchange_count", static_cast<double>(exchanges),
                "count", "exchanges during the async reps, " + label_tail);
        log.add("halo_exchange_bytes", static_cast<double>(bytes), "bytes",
                "bytes moved by those exchanges, " + label_tail);
        log.write();
    }
    hpxlite::finalize();
    return 0;
}
