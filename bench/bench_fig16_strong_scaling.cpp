// Figure 16: strong-scaling speedup (fixed problem, growing threads) of
// `dataflow` vs `#pragma omp parallel for` on Airfoil.
//
// Paper observation: ~33% better performance for dataflow at scale, due
// to asynchronous task execution and interleaving of dependent loops;
// the scaling knee appears at 16 threads where hyper-threading engages.

#include <cstdio>

#include <psim/testbed.hpp>

#include "bench_common.hpp"

int main() {
    using namespace benchutil;
    print_title("Figure 16", "strong-scaling speedup: omp vs dataflow");

    auto tb = psim::paper_testbed();

    // 1-thread baselines.
    psim::sim_options base;
    base.threads = 1;
    base.iterations = tb.iterations;
    base.chunking = psim::chunk_mode::omp_static;
    double const omp1 = simulate_fork_join(tb.machine, tb.airfoil, base).total_s;
    base.chunking = psim::chunk_mode::auto_chunk;
    double const df1 = simulate_dataflow(tb.machine, tb.airfoil, base).total_s;

    print_row({"threads", "omp_speedup", "df_speedup", "df_gain"});
    double gain32 = 0.0;
    for (int t : psim::paper_thread_counts()) {
        psim::sim_options o;
        o.threads = t;
        o.iterations = tb.iterations;
        o.chunking = psim::chunk_mode::omp_static;
        double const omp = simulate_fork_join(tb.machine, tb.airfoil, o).total_s;
        o.chunking = psim::chunk_mode::auto_chunk;
        double const df = simulate_dataflow(tb.machine, tb.airfoil, o).total_s;
        print_row({std::to_string(t), fmt(omp1 / omp, 2), fmt(df1 / df, 2),
                   pct(omp / df)});
        if (t == 32) {
            gain32 = omp / df - 1.0;
        }
    }
    std::printf("\npaper: ~33%% better performance for dataflow at high "
                "thread counts; modeled at 32 threads: %+.1f%%\n",
                gain32 * 100.0);
    return 0;
}
