// The locality-aware memory subsystem's two perf rows:
//
//  * SIMD staged gather (loop_options::simd_gather): an airfoil-
//    res_calc-shaped loop — dim-4 and dim-2 double operands read
//    indirectly through an edges->cells map — run on the staged backend
//    with the vectorised gather (read-only operands staged into
//    cache-line-aligned scratch by unrolled fixed-stride copy kernels,
//    then consumed as a pointer bump) against the scalar per-element
//    staged resolution. The two paths are bitwise-identical by
//    construction; the bench asserts that before it reports anything.
//
//  * Partition-affine first touch (OP2HPX_FIRST_TOUCH /
//    memory::set_first_touch): the bench_dataflow_chain partition sweep
//    — a dependent direct RW chain at 4 partitions with affinity
//    placement — over a dat whose pages were first-touched by their
//    owning workers vs. one initialised wholesale by the loading
//    thread. On a single NUMA node this measures cache-warmth at best
//    (parity is expected on small machines); the row exists so the
//    trajectory shows the effect the day CI lands on bigger iron.
//
//  * SIMD INC scatter (loop_options::simd_scatter): the write-side
//    twin of the staged gather — indirect OP_INC operands accumulate
//    into block-private scratch and scatter back through unrolled
//    fixed-stride kernels in colour order, vs the scalar per-element
//    increments. Bitwise-identical by construction; asserted before
//    reporting, like the gather.
//
//  * Chain fusion (loop_options::fuse): a direct producer/consumer
//    loop pair (save_soln/adt_calc shape) issued fused vs unfused on
//    the dataflow backend — fusion halves the graph nodes and pins the
//    intermediate dat hot between the merged passes.
//
// Emits into BENCH_op2.json (schema op2hpx-bench-v1):
//   gather_simd            ns/iter, staged loop, SIMD gather on
//   gather_scalar          ns/iter, staged loop, per-element oracle
//   simd_gather_speedup    x, simd vs scalar
//   scatter_simd           ns/iter, staged INC loop, SIMD scatter on
//   scatter_scalar         ns/iter, staged INC loop, scalar oracle
//   simd_scatter_speedup   x, simd vs scalar
//   fusion_fused           ns/pair, direct loop pair, fused pass
//   fusion_unfused         ns/pair, direct loop pair, two solo issues
//   fusion_speedup         x, fused vs unfused
//   first_touch_on         ns/loop, affinity chain, owner-touched pages
//   first_touch_off        ns/loop, affinity chain, loader-touched pages
//   first_touch_speedup    x, on vs off
//
// `--quick` shrinks repetitions for the CI smoke run.

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <hpxlite/hpxlite.hpp>
#include <op2/op2.hpp>

#include "bench_json.hpp"

using namespace op2;

namespace {

constexpr std::size_t kCells = 100000;
constexpr std::size_t kEdges = 200000;
int g_gather_iters = 60;  // (--quick: 10)

constexpr std::size_t kChainElems = 262144;
constexpr int kChainLen = 8;
int g_chains = 30;  // (--quick: 5)

double time_gather_loop(op_set const& edges, op_dat& q, op_dat& x,
                        op_dat& out, op_map const& ec, op_map const& en,
                        bool simd, int iters) {
    loop_options o;
    o.backend = exec::backend_kind::staged;
    o.part_size = 256;
    o.simd_gather = simd;
    auto kern = [](double const* qa, double const* qb, double const* xa,
                   double* r) {
        r[0] = qa[0] + qb[3] + xa[0] * 0.5;
        r[1] = qa[1] * qb[2] + xa[1];
    };
    auto issue = [&] {
        exec::run_loop(o, "gather", edges, kern,
                       op_arg_dat(q, 0, ec, 4, "double", OP_READ),
                       op_arg_dat(q, 1, ec, 4, "double", OP_READ),
                       op_arg_dat(x, 0, en, 2, "double", OP_READ),
                       op_arg_dat(out, -1, OP_ID, 2, "double", OP_WRITE));
    };
    for (int w = 0; w < 3; ++w) {
        issue();
    }
    hpxlite::util::stopwatch sw;
    for (int i = 0; i < iters; ++i) {
        issue();
    }
    return sw.elapsed_s() * 1e9 / iters;
}

/// The res_calc write side: two indirect INC slots on one dim-2 dat,
/// reading node coordinates. Zeroes the accumulator first so the two
/// variants integrate identical streams for the bitwise oracle.
double time_scatter_loop(op_set const& edges, op_dat& x, op_dat& acc,
                         op_map const& ec, op_map const& en, bool simd,
                         int iters) {
    for (auto& v : acc.view<double>()) {
        v = 0.0;
    }
    loop_options o;
    o.backend = exec::backend_kind::staged;
    o.part_size = 256;
    o.simd_scatter = simd;
    auto kern = [](double const* xa, double const* xb, double* r0,
                   double* r1) {
        double const dx = xa[0] - xb[0];
        double const dy = xa[1] - xb[1];
        r0[0] += dx;
        r0[1] += dy * 0.5;
        r1[0] -= dx * 0.25;
        r1[1] += dx + dy;
    };
    auto issue = [&] {
        exec::run_loop(o, "scatter", edges, kern,
                       op_arg_dat(x, 0, en, 2, "double", OP_READ),
                       op_arg_dat(x, 1, en, 2, "double", OP_READ),
                       op_arg_dat(acc, 0, ec, 2, "double", OP_INC),
                       op_arg_dat(acc, 1, ec, 2, "double", OP_INC));
    };
    for (int w = 0; w < 3; ++w) {
        issue();
    }
    hpxlite::util::stopwatch sw;
    for (int i = 0; i < iters; ++i) {
        issue();
    }
    return sw.elapsed_s() * 1e9 / iters;
}

/// A fusable direct pair per iteration (flux = f(q); q += g(flux)) on
/// the dataflow backend; with fuse on, each pair runs as one merged
/// staged pass. Returns ns per pair; the caller compares final fields
/// bitwise across the fused/unfused runs.
double time_fusion_chain(op_dat& q, op_dat& flux, op_set const& cells,
                         bool fuse, int chains) {
    loop_options o;
    o.backend = exec::backend_kind::hpx_dataflow;
    o.part_size = 256;
    o.partitions = 4;
    o.placement = placement_kind::affinity;
    o.fuse = fuse;
    auto run_chain = [&] {
        exec::loop_handle last;
        for (int l = 0; l < kChainLen; ++l) {
            (void)exec::run_loop(
                o, "fuse_a", cells,
                [](double const* qq, double* f) {
                    *f = *qq * 0.5 + 0.125;
                },
                op_arg_dat(q, -1, OP_ID, 1, "double", OP_READ),
                op_arg_dat(flux, -1, OP_ID, 1, "double", OP_WRITE));
            last = exec::run_loop(
                o, "fuse_b", cells,
                [](double const* f, double* qq) { *qq += *f * 0.25; },
                op_arg_dat(flux, -1, OP_ID, 1, "double", OP_READ),
                op_arg_dat(q, -1, OP_ID, 1, "double", OP_RW));
        }
        last.wait();  // flushes the fusion window, then drains the chain
    };
    for (int w = 0; w < 3; ++w) {
        run_chain();
    }
    hpxlite::util::stopwatch sw;
    for (int c = 0; c < chains; ++c) {
        run_chain();
    }
    return sw.elapsed_s() * 1e9 /
           (static_cast<double>(chains) * kChainLen);
}

double time_chain(op_dat& d, op_set const& cells, int chains) {
    loop_options o;
    o.backend = exec::backend_kind::hpx_dataflow;
    o.part_size = 256;
    o.partitions = 4;
    o.placement = placement_kind::affinity;
    auto kern = [](double* v) { *v += 1.0; };
    auto run_chain = [&] {
        exec::loop_handle last;
        for (int l = 0; l < kChainLen; ++l) {
            last = exec::run_loop(o, "ft_chain", cells, kern,
                                  op_arg_dat(d, -1, OP_ID, 1, "double",
                                             OP_RW));
        }
        last.wait();
    };
    for (int w = 0; w < 3; ++w) {
        run_chain();
    }
    hpxlite::util::stopwatch sw;
    for (int c = 0; c < chains; ++c) {
        run_chain();
    }
    return sw.elapsed_s() * 1e9 /
           (static_cast<double>(chains) * kChainLen);
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            g_gather_iters = 10;
            g_chains = 5;
        }
    }
    hpxlite::init(hpxlite::runtime_config{4});
    std::size_t const nworkers = hpxlite::get_num_worker_threads();
    std::string const workers_label =
        std::to_string(nworkers) + " workers";
    benchutil::bench_log log("bench_gather");

    // --- SIMD staged gather vs scalar oracle ---------------------------
    std::mt19937 rng(1234);
    std::uniform_int_distribution<int> cd(0, kCells - 1);
    std::vector<int> ec_tab(2 * kEdges);
    std::vector<int> en_tab(2 * kEdges);
    for (auto& v : ec_tab) {
        v = cd(rng);
    }
    for (auto& v : en_tab) {
        v = cd(rng);
    }
    auto cells = op_decl_set(kCells, "g_cells");
    auto nodes = op_decl_set(kCells, "g_nodes");
    auto edges = op_decl_set(kEdges, "g_edges");
    auto ec = op_decl_map(edges, cells, 2, ec_tab, "g_ec");
    auto en = op_decl_map(edges, nodes, 2, en_tab, "g_en");
    std::uniform_real_distribution<double> vd(0.0, 1.0);
    std::vector<double> qv(4 * kCells);
    std::vector<double> xv(2 * kCells);
    for (auto& v : qv) {
        v = vd(rng);
    }
    for (auto& v : xv) {
        v = vd(rng);
    }
    auto q = op_decl_dat<double>(cells, 4, "double", qv, "g_q");
    auto x = op_decl_dat<double>(nodes, 2, "double", xv, "g_x");
    auto out = op_decl_dat_zero<double>(edges, 2, "double", "g_out");

    double const scalar_ns =
        time_gather_loop(edges, q, x, out, ec, en, false, g_gather_iters);
    std::vector<double> scalar_out(out.view<double>().begin(),
                                   out.view<double>().end());
    double const simd_ns =
        time_gather_loop(edges, q, x, out, ec, en, true, g_gather_iters);
    // Bitwise oracle check before reporting: the SIMD path copies bytes,
    // it must not change a single bit of the result.
    if (std::memcmp(scalar_out.data(), out.view<double>().data(),
                    scalar_out.size() * sizeof(double)) != 0) {
        std::fprintf(stderr,
                     "FAIL: SIMD gather diverged from the scalar path\n");
        return 1;
    }
    std::printf("staged gather (%zu edges, dim-4 + dim-2 reads, %s):\n",
                kEdges, workers_label.c_str());
    std::printf("  scalar staged   : %12.1f ns/iter\n", scalar_ns);
    std::printf("  simd gather     : %12.1f ns/iter\n", simd_ns);
    std::printf("  speedup         : %12.2fx\n", scalar_ns / simd_ns);
    log.add("gather_scalar", scalar_ns, "ns/iter",
            "staged indirect loop, per-element gather, " + workers_label);
    log.add("gather_simd", simd_ns, "ns/iter",
            "staged indirect loop, SIMD gather, " + workers_label);
    log.add("simd_gather_speedup", scalar_ns / simd_ns, "x",
            "simd_vs_scalar_staged_gather, " + workers_label);

    // --- SIMD INC scatter vs scalar oracle -----------------------------
    auto acc = op_decl_dat_zero<double>(cells, 2, "double", "g_acc");
    double const sc_scalar_ns =
        time_scatter_loop(edges, x, acc, ec, en, false, g_gather_iters);
    std::vector<double> scalar_acc(acc.view<double>().begin(),
                                   acc.view<double>().end());
    double const sc_simd_ns =
        time_scatter_loop(edges, x, acc, ec, en, true, g_gather_iters);
    // Bitwise oracle: the scatter drains block-private partials in the
    // exact element order the scalar path increments in.
    if (std::memcmp(scalar_acc.data(), acc.view<double>().data(),
                    scalar_acc.size() * sizeof(double)) != 0) {
        std::fprintf(stderr,
                     "FAIL: SIMD scatter diverged from the scalar path\n");
        return 1;
    }
    std::printf("staged scatter (%zu edges, two dim-2 INC slots, %s):\n",
                kEdges, workers_label.c_str());
    std::printf("  scalar scatter  : %12.1f ns/iter\n", sc_scalar_ns);
    std::printf("  simd scatter    : %12.1f ns/iter\n", sc_simd_ns);
    std::printf("  speedup         : %12.2fx\n", sc_scalar_ns / sc_simd_ns);
    log.add("scatter_scalar", sc_scalar_ns, "ns/iter",
            "staged indirect INC loop, scalar scatter, " + workers_label);
    log.add("scatter_simd", sc_simd_ns, "ns/iter",
            "staged indirect INC loop, SIMD scatter, " + workers_label);
    log.add("simd_scatter_speedup", sc_scalar_ns / sc_simd_ns, "x",
            "simd_vs_scalar_staged_scatter, " + workers_label);

    // --- chain fusion --------------------------------------------------
    auto fu_cells = op_decl_set(kChainElems, "fu_cells");
    std::vector<double> fu_init(kChainElems);
    for (auto& v : fu_init) {
        v = vd(rng);
    }
    auto q_unf = op_decl_dat<double>(fu_cells, 1, "double", fu_init, "q_unf");
    auto f_unf = op_decl_dat_zero<double>(fu_cells, 1, "double", "f_unf");
    double const unfused_ns =
        time_fusion_chain(q_unf, f_unf, fu_cells, false, g_chains);
    auto q_fus = op_decl_dat<double>(fu_cells, 1, "double", fu_init, "q_fus");
    auto f_fus = op_decl_dat_zero<double>(fu_cells, 1, "double", "f_fus");
    double const fused_ns =
        time_fusion_chain(q_fus, f_fus, fu_cells, true, g_chains);
    // Bitwise oracle: fusion only reorders *issue*, never arithmetic.
    if (std::memcmp(q_unf.view<double>().data(),
                    q_fus.view<double>().data(),
                    kChainElems * sizeof(double)) != 0) {
        std::fprintf(stderr,
                     "FAIL: fused chain diverged from the unfused run\n");
        return 1;
    }
    std::printf("chain fusion (%d direct pairs, %zu elems, %s):\n",
                kChainLen, kChainElems, workers_label.c_str());
    std::printf("  unfused pair    : %12.1f ns/pair\n", unfused_ns);
    std::printf("  fused pair      : %12.1f ns/pair\n", fused_ns);
    std::printf("  speedup         : %12.2fx\n", unfused_ns / fused_ns);
    log.add("fusion_unfused", unfused_ns, "ns/iter",
            "direct producer/consumer pair, two solo issues, " +
                workers_label);
    log.add("fusion_fused", fused_ns, "ns/iter",
            "direct producer/consumer pair, fused pass, " + workers_label);
    log.add("fusion_speedup", unfused_ns / fused_ns, "x",
            "fused_vs_unfused_pair, " + workers_label);

    // --- partition-affine first touch ----------------------------------
    auto chain_cells = op_decl_set(kChainElems, "ft_cells");
    auto d_off = [&] {
        op2::memory::first_touch_scope scope(false);
        return op_decl_dat_zero<double>(chain_cells, 1, "double", "ft_off");
    }();
    double const off_ns = time_chain(d_off, chain_cells, g_chains);
    auto d_on = [&] {
        op2::memory::first_touch_scope scope(true);
        return op_decl_dat_zero<double>(chain_cells, 1, "double", "ft_on");
    }();
    double const on_ns = time_chain(d_on, chain_cells, g_chains);
    // Sanity: both chains executed every loop.
    double const expect = static_cast<double>((3 + g_chains) * kChainLen);
    if (d_off.view<double>()[0] != expect ||
        d_on.view<double>()[0] != expect) {
        std::fprintf(stderr, "FAIL: first-touch chain dropped loops\n");
        return 1;
    }
    std::printf("first touch (%d-loop affinity chain, %zu elems, %s):\n",
                kChainLen, kChainElems, workers_label.c_str());
    std::printf("  loader-touched  : %12.1f ns/loop\n", off_ns);
    std::printf("  owner-touched   : %12.1f ns/loop\n", on_ns);
    std::printf("  speedup         : %12.2fx\n", off_ns / on_ns);
    log.add("first_touch_off", off_ns, "ns/iter",
            "affinity chain, loader-thread first touch, " + workers_label);
    log.add("first_touch_on", on_ns, "ns/iter",
            "affinity chain, partition-affine first touch, " +
                workers_label);
    log.add("first_touch_speedup", off_ns / on_ns, "x",
            "owner_vs_loader_first_touch, " + workers_label);

    log.write();
    hpxlite::finalize();
    return 0;
}
