// Microbenchmarks of the prefetching iterator (Section V) on this host:
// streaming loops with/without prefetcher context at several distances.
// On machines with a strong hardware prefetcher the software prefetch is
// roughly neutral for unit-stride streams; the iterator's value shows on
// the irregular gather pattern below.

#include <benchmark/benchmark.h>

#include <vector>

#include <hpxlite/hpxlite.hpp>

namespace {

constexpr std::size_t kN = 1 << 21;

void bm_stream_standard(benchmark::State& state) {
    hpxlite::init();
    std::vector<double> a(kN, 1.0), b(kN, 2.0), c(kN, 0.0);
    hpxlite::util::irange r(0, kN);
    for (auto _ : state) {
        hpxlite::parallel::for_each(hpxlite::parallel::par, r.begin(), r.end(),
                                    [&](std::size_t i) { c[i] = a[i] + b[i]; });
        benchmark::DoNotOptimize(c.data());
    }
    state.SetBytesProcessed(state.iterations() * static_cast<long>(kN) * 24);
}
BENCHMARK(bm_stream_standard);

void bm_stream_prefetch(benchmark::State& state) {
    hpxlite::init();
    std::vector<double> a(kN, 1.0), b(kN, 2.0), c(kN, 0.0);
    auto const d = static_cast<std::size_t>(state.range(0));
    auto ctx = hpxlite::parallel::make_prefetcher_context(0, kN, d, a, b, c);
    for (auto _ : state) {
        hpxlite::parallel::for_each(hpxlite::parallel::par, ctx.begin(),
                                    ctx.end(),
                                    [&](std::size_t i) { c[i] = a[i] + b[i]; });
        benchmark::DoNotOptimize(c.data());
    }
    state.SetBytesProcessed(state.iterations() * static_cast<long>(kN) * 24);
}
BENCHMARK(bm_stream_prefetch)->Arg(1)->Arg(15)->Arg(100);

// Indirect gather, where hardware prefetch cannot follow the index
// stream but the iterator can prefetch the index array itself.
void bm_gather_prefetch(benchmark::State& state) {
    hpxlite::init();
    std::vector<double> src(kN, 1.5), dst(kN, 0.0);
    std::vector<std::uint32_t> idx(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        idx[i] = static_cast<std::uint32_t>((i * 2654435761u) % kN);
    }
    bool const pf = state.range(0) != 0;
    auto ctx = hpxlite::parallel::make_prefetcher_context(0, kN, 15, idx, dst);
    for (auto _ : state) {
        if (pf) {
            hpxlite::parallel::for_each(
                hpxlite::parallel::par, ctx.begin(), ctx.end(),
                [&](std::size_t i) { dst[i] = src[idx[i]]; });
        } else {
            hpxlite::util::irange r(0, kN);
            hpxlite::parallel::for_each(
                hpxlite::parallel::par, r.begin(), r.end(),
                [&](std::size_t i) { dst[i] = src[idx[i]]; });
        }
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(kN));
}
BENCHMARK(bm_gather_prefetch)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
