// Microbenchmarks of the OP2 layer on this host: plan construction,
// per-backend loop dispatch overhead, and a mini-Airfoil step.

#include <benchmark/benchmark.h>

#include <airfoil/app.hpp>
#include <airfoil/mesh.hpp>
#include <op2/op2.hpp>

namespace {

airfoil::mesh const& bench_mesh() {
    static airfoil::mesh m = [] {
        airfoil::mesh_params p;
        p.nx = 60;
        p.ny = 30;
        return airfoil::make_mesh(p);
    }();
    return m;
}

void bm_plan_build(benchmark::State& state) {
    auto const& m = bench_mesh();
    auto edges = op2::op_decl_set(m.nedge, "edges");
    auto cells = op2::op_decl_set(m.ncell, "cells");
    auto pecell = op2::op_decl_map(edges, cells, 2, m.pecell, "pecell");
    auto res = op2::op_decl_dat_zero<double>(cells, 4, "double", "res");
    std::array<op2::op_arg, 2> args{
        op2::op_arg_dat(res, 0, pecell, 4, "double", op2::OP_INC),
        op2::op_arg_dat(res, 1, pecell, 4, "double", op2::OP_INC)};
    auto const part = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto plan = op2::plan_build(edges, args, part);
        benchmark::DoNotOptimize(plan.ncolors);
    }
}
BENCHMARK(bm_plan_build)->Arg(64)->Arg(128)->Arg(512);

void bm_airfoil_step(benchmark::State& state) {
    hpxlite::init();
    auto const& m = bench_mesh();
    auto prob = airfoil::make_problem(m);
    airfoil::app_config cfg;
    cfg.niter = 1;
    cfg.be = state.range(0) == 0   ? op2::backend::seq
             : state.range(0) == 1 ? op2::backend::fork_join
                                   : op2::backend::hpx;
    for (auto _ : state) {
        auto r = airfoil::run(prob, cfg);
        benchmark::DoNotOptimize(r.final_rms);
    }
    state.SetLabel(op2::to_string(cfg.be));
}
BENCHMARK(bm_airfoil_step)->Arg(0)->Arg(1)->Arg(2);

void bm_loop_dispatch_overhead(benchmark::State& state) {
    hpxlite::init();
    auto set = op2::op_decl_set(64, "tiny");
    auto d = op2::op_decl_dat_zero<double>(set, 1, "double", "d");
    op2::loop_options opts;
    for (auto _ : state) {
        op2::op_par_loop_fork_join(opts, "tiny", set,
                                   [](double* x) { *x += 1.0; },
                                   op2::op_arg_dat(d, -1, op2::OP_ID, 1,
                                                   "double", op2::OP_RW));
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(bm_loop_dispatch_overhead);

}  // namespace

BENCHMARK_MAIN();
