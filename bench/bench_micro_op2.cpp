// Microbenchmarks of the OP2 layer on this host: plan construction,
// per-backend loop dispatch overhead, the staged-vs-legacy argument
// resolution paths of the execution engine, and a mini-Airfoil step.
//
// Running this binary (any build; Release with OP2HPX_BENCH_NATIVE=ON is
// the meaningful configuration) writes/merges the machine-readable perf
// trajectory file BENCH_op2.json — see bench/README.md for the schema.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include <airfoil/app.hpp>
#include <airfoil/mesh.hpp>
#include <op2/op2.hpp>

#include "bench_json.hpp"

namespace {

airfoil::mesh const& bench_mesh() {
    static airfoil::mesh m = [] {
        airfoil::mesh_params p;
        p.nx = 60;
        p.ny = 30;
        return airfoil::make_mesh(p);
    }();
    return m;
}

/// Larger mesh for the indirect resolution benches, so gather cost (not
/// dispatch) dominates.
airfoil::mesh const& gather_mesh() {
    static airfoil::mesh m = [] {
        airfoil::mesh_params p;
        p.nx = 160;
        p.ny = 80;
        return airfoil::make_mesh(p);
    }();
    return m;
}

void bm_plan_build(benchmark::State& state) {
    auto const& m = bench_mesh();
    auto edges = op2::op_decl_set(m.nedge, "edges");
    auto cells = op2::op_decl_set(m.ncell, "cells");
    auto pecell = op2::op_decl_map(edges, cells, 2, m.pecell, "pecell");
    auto res = op2::op_decl_dat_zero<double>(cells, 4, "double", "res");
    std::array<op2::op_arg, 2> args{
        op2::op_arg_dat(res, 0, pecell, 4, "double", op2::OP_INC),
        op2::op_arg_dat(res, 1, pecell, 4, "double", op2::OP_INC)};
    auto const part = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto plan = op2::plan_build(edges, args, part);
        benchmark::DoNotOptimize(plan.ncolors);
    }
}
BENCHMARK(bm_plan_build)->Arg(64)->Arg(128)->Arg(512);

/// The headline engine microbenchmark: a res_calc-shaped indirect loop
/// (4 indirect reads, 2 indirect increments) executed through
///   Arg(0): the seed's per-element resolution (map load + multiply and a
///           per-argument branch for every element), and
///   Arg(1): the staged engine (plan gather tables + pointer bumping).
/// The ratio of the two is the staged-engine speedup recorded in
/// BENCH_op2.json as indirect_gather_speedup.
void bm_indirect_resolution(benchmark::State& state) {
    hpxlite::init();
    auto const& m = gather_mesh();
    auto edges = op2::op_decl_set(m.nedge, "edges");
    auto nodes = op2::op_decl_set(m.nnode, "nodes");
    auto cells = op2::op_decl_set(m.ncell, "cells");
    auto pedge = op2::op_decl_map(edges, nodes, 2, m.pedge, "pedge");
    auto pecell = op2::op_decl_map(edges, cells, 2, m.pecell, "pecell");
    auto x = op2::op_decl_dat<double>(nodes, 2, "double", m.x, "x");
    auto q = op2::op_decl_dat_zero<double>(cells, 4, "double", "q");
    auto res = op2::op_decl_dat_zero<double>(cells, 4, "double", "res");

    op2::loop_options opts;
    opts.staged_gather = state.range(0) == 1;
    for (auto _ : state) {
        op2::op_par_loop_fork_join(
            opts, "gather_scatter", edges,
            [](double const* x1, double const* x2, double const* q1,
               double const* q2, double* r1, double* r2) {
                double const dx = x1[0] - x2[0];
                double const dy = x1[1] - x2[1];
                for (int d = 0; d < 4; ++d) {
                    double const f = dx * q1[d] - dy * q2[d];
                    r1[d] += f;
                    r2[d] -= f;
                }
            },
            op2::op_arg_dat(x, 0, pedge, 2, "double", op2::OP_READ),
            op2::op_arg_dat(x, 1, pedge, 2, "double", op2::OP_READ),
            op2::op_arg_dat(q, 0, pecell, 4, "double", op2::OP_READ),
            op2::op_arg_dat(q, 1, pecell, 4, "double", op2::OP_READ),
            op2::op_arg_dat(res, 0, pecell, 4, "double", op2::OP_INC),
            op2::op_arg_dat(res, 1, pecell, 4, "double", op2::OP_INC));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(m.nedge));
    state.SetLabel(opts.staged_gather ? "staged" : "legacy");
}
BENCHMARK(bm_indirect_resolution)->Arg(0)->Arg(1);

/// Gather-dominated indirect loop (tiny kernel, two indirect reads and a
/// direct write) — isolates pure argument-resolution cost, the thing the
/// staged tables remove.
void bm_indirect_gather(benchmark::State& state) {
    hpxlite::init();
    auto const& m = gather_mesh();
    auto edges = op2::op_decl_set(m.nedge, "edges");
    auto nodes = op2::op_decl_set(m.nnode, "nodes");
    auto pedge = op2::op_decl_map(edges, nodes, 2, m.pedge, "pedge");
    auto x = op2::op_decl_dat<double>(nodes, 2, "double", m.x, "x");
    auto len = op2::op_decl_dat_zero<double>(edges, 2, "double", "len");

    op2::loop_options opts;
    opts.staged_gather = state.range(0) == 1;
    for (auto _ : state) {
        op2::op_par_loop_fork_join(
            opts, "edge_len", edges,
            [](double const* a, double const* b, double* s) {
                s[0] = a[0] - b[0];
                s[1] = a[1] - b[1];
            },
            op2::op_arg_dat(x, 0, pedge, 2, "double", op2::OP_READ),
            op2::op_arg_dat(x, 1, pedge, 2, "double", op2::OP_READ),
            op2::op_arg_dat(len, -1, op2::OP_ID, 2, "double", op2::OP_WRITE));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(m.nedge));
    state.SetLabel(opts.staged_gather ? "staged" : "legacy");
}
BENCHMARK(bm_indirect_gather)->Arg(0)->Arg(1);

/// Same comparison for a purely direct loop: Arg(1) takes the all-direct
/// pointer-bump fast path, Arg(0) recomputes base + i*stride per element.
void bm_direct_resolution(benchmark::State& state) {
    hpxlite::init();
    auto const& m = gather_mesh();
    auto cells = op2::op_decl_set(m.ncell, "cells");
    auto q = op2::op_decl_dat_zero<double>(cells, 4, "double", "q");
    auto qold = op2::op_decl_dat_zero<double>(cells, 4, "double", "qold");

    op2::loop_options opts;
    opts.staged_gather = state.range(0) == 1;
    for (auto _ : state) {
        op2::op_par_loop_fork_join(
            opts, "save_soln", cells,
            [](double const* a, double* b) {
                for (int d = 0; d < 4; ++d) {
                    b[d] = a[d];
                }
            },
            op2::op_arg_dat(q, -1, op2::OP_ID, 4, "double", op2::OP_READ),
            op2::op_arg_dat(qold, -1, op2::OP_ID, 4, "double", op2::OP_WRITE));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(m.ncell));
    state.SetLabel(opts.staged_gather ? "staged" : "legacy");
}
BENCHMARK(bm_direct_resolution)->Arg(0)->Arg(1);

void bm_airfoil_step(benchmark::State& state) {
    hpxlite::init();
    auto const& m = bench_mesh();
    auto prob = airfoil::make_problem(m);
    airfoil::app_config cfg;
    cfg.niter = 1;
    cfg.be = state.range(0) == 0   ? op2::backend::seq
             : state.range(0) == 1 ? op2::backend::fork_join
                                   : op2::backend::hpx;
    for (auto _ : state) {
        auto r = airfoil::run(prob, cfg);
        benchmark::DoNotOptimize(r.final_rms);
    }
    state.SetLabel(op2::to_string(cfg.be));
}
BENCHMARK(bm_airfoil_step)->Arg(0)->Arg(1)->Arg(2);

/// Per-issue cost of a tiny loop, the row that prices the runtime's
/// fixed overhead per op_par_loop:
///   Arg(0): fork-join dispatch (the seed's row),
///   Arg(1): hpx_dataflow issue, a fresh executor group per loop,
///   Arg(2): hpx_dataflow issue through the cross-issue executor pool.
/// The Arg(1)/Arg(2) ratio is recorded as exec_pool_speedup. The hpx
/// variants issue a 16-loop dependent chain per iteration and wait once,
/// so steady-state issue cost dominates over wake-up latency.
void bm_loop_dispatch_overhead(benchmark::State& state) {
    hpxlite::init();
    auto set = op2::op_decl_set(64, "tiny");
    auto d = op2::op_decl_dat_zero<double>(set, 1, "double", "d");
    op2::loop_options opts;
    if (state.range(0) == 0) {
        for (auto _ : state) {
            op2::op_par_loop_fork_join(opts, "tiny", set,
                                       [](double* x) { *x += 1.0; },
                                       op2::op_arg_dat(d, -1, op2::OP_ID, 1,
                                                       "double", op2::OP_RW));
        }
        state.SetItemsProcessed(state.iterations() * 64);
        state.SetLabel("fork_join");
        return;
    }
    constexpr int kChain = 16;
    opts.backend = op2::exec::backend_kind::hpx_dataflow;
    opts.partitions = 2;
    opts.exec_pool = state.range(0) == 2;
    for (auto _ : state) {
        op2::exec::loop_handle last;
        for (int l = 0; l < kChain; ++l) {
            last = op2::exec::run_loop(
                opts, "tiny_hpx", set, [](double* x) { *x += 1.0; },
                op2::op_arg_dat(d, -1, op2::OP_ID, 1, "double", op2::OP_RW));
        }
        last.get();
    }
    state.SetItemsProcessed(state.iterations() * 64 * kChain);
    state.SetLabel(opts.exec_pool ? "hpx+pool" : "hpx");
}
BENCHMARK(bm_loop_dispatch_overhead)->Arg(0)->Arg(1)->Arg(2);

/// Console reporter that additionally collects every run so main() can
/// derive speedups and write the trajectory file.
class trajectory_collector : public benchmark::ConsoleReporter {
public:
    void ReportRuns(std::vector<Run> const& runs) override {
        for (auto const& r : runs) {
            real_ns_[r.benchmark_name()] = r.GetAdjustedRealTime();
        }
        ConsoleReporter::ReportRuns(runs);
    }

    [[nodiscard]] std::map<std::string, double> const& real_ns() const {
        return real_ns_;
    }

private:
    std::map<std::string, double> real_ns_;  // name -> real time (ns/iter)
};

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    trajectory_collector collector;
    benchmark::RunSpecifiedBenchmarks(&collector);

    benchutil::bench_log log("bench_micro_op2");
    for (auto const& [name, ns] : collector.real_ns()) {
        log.add(name, ns, "ns/iter");
    }

    auto speedup = [&](char const* what, std::string const& legacy,
                       std::string const& staged) {
        auto const& m = collector.real_ns();
        auto l = m.find(legacy);
        auto s = m.find(staged);
        if (l == m.end() || s == m.end() || s->second <= 0.0) {
            return;
        }
        double const ratio = l->second / s->second;
        log.add(what, ratio, "x", "staged_vs_legacy");
        std::printf("%-28s %.2fx  (legacy %.0f ns -> staged %.0f ns)\n", what,
                    ratio, l->second, s->second);
    };
    std::printf("\n-- staged engine speedups --\n");
    speedup("indirect_gather_speedup", "bm_indirect_gather/0",
            "bm_indirect_gather/1");
    speedup("indirect_rescalc_speedup", "bm_indirect_resolution/0",
            "bm_indirect_resolution/1");
    speedup("direct_path_speedup", "bm_direct_resolution/0",
            "bm_direct_resolution/1");

    // Not staged-vs-legacy, but the same shape of derived row: issue
    // cost of a pooled executor group vs a fresh one per loop.
    std::printf("\n-- executor pool --\n");
    {
        auto const& m = collector.real_ns();
        auto fresh = m.find("bm_loop_dispatch_overhead/1");
        auto pooled = m.find("bm_loop_dispatch_overhead/2");
        if (fresh != m.end() && pooled != m.end() && pooled->second > 0.0) {
            double const ratio = fresh->second / pooled->second;
            log.add("exec_pool_speedup", ratio, "x", "pooled_vs_fresh_issue");
            std::printf("%-28s %.2fx  (fresh %.0f ns -> pooled %.0f ns)\n",
                        "exec_pool_speedup", ratio, fresh->second,
                        pooled->second);
        }
    }

    log.write();
    benchmark::Shutdown();
    return 0;
}
