// Figure 19: data transfer rate of hpx::for_each using the standard
// random-access iterator vs the prefetching iterator (inside dataflow),
// across thread counts.
//
// Paper observation: the prefetching iterator sustains a markedly higher
// transfer rate at every thread count, scaling up through the HT region.
//
// Columns: modeled GB/s on the testbed; a host-measured mini-stream
// comparison using the real hpxlite prefetcher is appended.

#include <cstdio>
#include <vector>

#include <hpxlite/hpxlite.hpp>
#include <psim/testbed.hpp>

#include "bench_common.hpp"

int main() {
    using namespace benchutil;
    print_title("Figure 19",
                "transfer rate: standard vs prefetching iterator");

    auto tb = psim::paper_testbed();
    auto stream = psim::stream_workload(50'000'000, 3);

    print_row({"threads", "standard_GBs", "prefetch_GBs", "gain"});
    for (int t : psim::paper_thread_counts()) {
        psim::sim_options o;
        o.threads = t;
        o.iterations = 5;
        o.chunking = psim::chunk_mode::persistent;
        auto std_it = simulate_dataflow(tb.machine, stream, o);
        o.prefetch = true;
        o.prefetch_distance = 15.0;
        auto pf_it = simulate_dataflow(tb.machine, stream, o);
        print_row({std::to_string(t), fmt(std_it.bandwidth_gbs(), 1),
                   fmt(pf_it.bandwidth_gbs(), 1),
                   pct(pf_it.bandwidth_gbs() / std_it.bandwidth_gbs())});
    }

    // Host sanity: real prefetcher_context on this machine.
    std::printf("\n[host-measured] for_each over 3 x 8M doubles on this "
                "machine:\n");
    hpxlite::init();
    std::size_t const n = 8'000'000;
    std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.0);
    auto run_std = [&] {
        hpxlite::util::irange r(0, n);
        hpxlite::util::stopwatch sw;
        hpxlite::parallel::for_each(hpxlite::parallel::par, r.begin(), r.end(),
                                    [&](std::size_t i) { c[i] = a[i] + b[i]; });
        return sw.elapsed_s();
    };
    auto run_pf = [&] {
        auto ctx = hpxlite::parallel::make_prefetcher_context(0, n, 15, a, b, c);
        hpxlite::util::stopwatch sw;
        hpxlite::parallel::for_each(hpxlite::parallel::par, ctx.begin(),
                                    ctx.end(),
                                    [&](std::size_t i) { c[i] = a[i] + b[i]; });
        return sw.elapsed_s();
    };
    run_std();  // warm up
    double const ts = run_std();
    double const tp = run_pf();
    double const gb = 3.0 * static_cast<double>(n) * 8.0 * 1e-9;
    std::printf("  standard iterator : %.2f GB/s\n", gb / ts);
    std::printf("  prefetch iterator : %.2f GB/s\n", gb / tp);
    hpxlite::finalize();
    return 0;
}
