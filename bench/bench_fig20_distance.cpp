// Figure 20: data transfer rate of the prefetching iterator for
// different prefetch_distance_factor values.
//
// Paper observations reproduced here:
//  * very small distances prefetch too aggressively/too late — the cost
//    dominates the gains and impedes scaling;
//  * very large distances prefetch data that is evicted before use —
//    no improvement;
//  * distance factor ~15 is the sweet spot for the Airfoil-class loop.

#include <cstdio>

#include <psim/testbed.hpp>

#include "bench_common.hpp"

int main() {
    using namespace benchutil;
    print_title("Figure 20",
                "transfer rate vs prefetch_distance_factor");

    auto tb = psim::paper_testbed();
    auto stream = psim::stream_workload(50'000'000, 3);
    double const distances[] = {1, 2, 5, 10, 15, 25, 50, 100, 200};

    print_row({"threads", "d=1", "d=5", "d=15", "d=50", "d=200"}, 10);
    for (int t : psim::paper_thread_counts()) {
        std::vector<std::string> row{std::to_string(t)};
        for (double d : {1.0, 5.0, 15.0, 50.0, 200.0}) {
            psim::sim_options o;
            o.threads = t;
            o.iterations = 5;
            o.chunking = psim::chunk_mode::persistent;
            o.prefetch = true;
            o.prefetch_distance = d;
            row.push_back(
                fmt(simulate_dataflow(tb.machine, stream, o).bandwidth_gbs(), 1));
        }
        print_row(row, 10);
    }

    std::printf("\nfull sweep at 32 threads (GB/s):\n");
    double best_d = 0.0;
    double best_bw = 0.0;
    for (double d : distances) {
        psim::sim_options o;
        o.threads = 32;
        o.iterations = 5;
        o.chunking = psim::chunk_mode::persistent;
        o.prefetch = true;
        o.prefetch_distance = d;
        double const bw =
            simulate_dataflow(tb.machine, stream, o).bandwidth_gbs();
        std::printf("  distance %6.0f : %8.1f\n", d, bw);
        if (bw > best_bw) {
            best_bw = bw;
            best_d = d;
        }
    }
    std::printf("\npaper: prefetch_distance_factor = 15 performs best; "
                "modeled best: %.0f\n", best_d);
    return 0;
}
