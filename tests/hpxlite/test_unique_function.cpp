#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include <hpxlite/util/unique_function.hpp>

using hpxlite::util::unique_function;

TEST(UniqueFunction, DefaultConstructedIsEmpty) {
    unique_function f;
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, InvokesSmallLambda) {
    int x = 0;
    unique_function f([&x] { x = 42; });
    ASSERT_TRUE(static_cast<bool>(f));
    f();
    EXPECT_EQ(x, 42);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
    auto p = std::make_unique<int>(7);
    int out = 0;
    unique_function f([p = std::move(p), &out] { out = *p; });
    f();
    EXPECT_EQ(out, 7);
}

TEST(UniqueFunction, LargeCaptureGoesToHeap) {
    // > 48 bytes of capture forces the heap path.
    std::array<double, 16> big{};
    big[15] = 3.5;
    double out = 0;
    unique_function f([big, &out] { out = big[15]; });
    f();
    EXPECT_DOUBLE_EQ(out, 3.5);
}

TEST(UniqueFunction, MoveConstructTransfersTarget) {
    int x = 0;
    unique_function a([&x] { ++x; });
    unique_function b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(x, 1);
}

TEST(UniqueFunction, MoveAssignReplacesTarget) {
    int x = 0;
    int y = 0;
    unique_function a([&x] { ++x; });
    unique_function b([&y] { ++y; });
    b = std::move(a);
    b();
    EXPECT_EQ(x, 1);
    EXPECT_EQ(y, 0);
}

TEST(UniqueFunction, ResetDestroysTarget) {
    auto flag = std::make_shared<int>(0);
    std::weak_ptr<int> weak = flag;
    unique_function f([flag = std::move(flag)] { (void)flag; });
    EXPECT_FALSE(weak.expired());
    f.reset();
    EXPECT_TRUE(weak.expired());
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, DestructorReleasesCapture) {
    auto flag = std::make_shared<int>(0);
    std::weak_ptr<int> weak = flag;
    {
        unique_function f([flag = std::move(flag)] { (void)flag; });
    }
    EXPECT_TRUE(weak.expired());
}

TEST(UniqueFunction, ReusableMultipleInvocations) {
    int x = 0;
    unique_function f([&x] { ++x; });
    f();
    f();
    f();
    EXPECT_EQ(x, 3);
}

TEST(UniqueFunction, SelfMoveAssignSafe) {
    int x = 0;
    unique_function f([&x] { ++x; });
    auto* pf = &f;
    f = std::move(*pf);  // self-move must not destroy the target
    ASSERT_TRUE(static_cast<bool>(f));
    f();
    EXPECT_EQ(x, 1);
}

TEST(UniqueFunction, ManyFunctionsInVector) {
    std::vector<unique_function> fs;
    int sum = 0;
    for (int i = 0; i < 100; ++i) {
        fs.emplace_back([&sum, i] { sum += i; });
    }
    for (auto& f : fs) {
        f();
    }
    EXPECT_EQ(sum, 4950);
}
