#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include <hpxlite/algorithms/reduce.hpp>
#include <hpxlite/algorithms/transform.hpp>
#include <hpxlite/runtime.hpp>

namespace {

namespace ex = hpxlite::execution;

class TransformReduceTest : public ::testing::Test {
protected:
    void SetUp() override { hpxlite::init(hpxlite::runtime_config{4}); }
    void TearDown() override { hpxlite::finalize(); }
};

TEST_F(TransformReduceTest, TransformSeq) {
    std::vector<int> in{1, 2, 3};
    std::vector<int> out(3, 0);
    auto end = hpxlite::parallel::transform(ex::seq, in.begin(), in.end(),
                                            out.begin(),
                                            [](int x) { return x * x; });
    EXPECT_EQ(end, out.end());
    EXPECT_EQ(out, (std::vector<int>{1, 4, 9}));
}

TEST_F(TransformReduceTest, TransformPar) {
    std::vector<double> in(50'000);
    std::iota(in.begin(), in.end(), 0.0);
    std::vector<double> out(in.size(), 0.0);
    hpxlite::parallel::transform(ex::par, in.begin(), in.end(), out.begin(),
                                 [](double x) { return 2.0 * x; });
    for (std::size_t i = 0; i < in.size(); ++i) {
        ASSERT_DOUBLE_EQ(out[i], 2.0 * static_cast<double>(i));
    }
}

TEST_F(TransformReduceTest, TransformParTask) {
    std::vector<int> in(1000, 3);
    std::vector<int> out(in.size(), 0);
    auto f = hpxlite::parallel::transform(ex::par(ex::task), in.begin(),
                                          in.end(), out.begin(),
                                          [](int x) { return x + 1; });
    EXPECT_EQ(f.get(), out.end());
    EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                            [](int x) { return x == 4; }));
}

TEST_F(TransformReduceTest, BinaryTransform) {
    std::vector<int> a(5000, 2);
    std::vector<int> b(5000, 3);
    std::vector<int> out(5000, 0);
    hpxlite::parallel::transform(ex::par, a.begin(), a.end(), b.begin(),
                                 out.begin(),
                                 [](int x, int y) { return x * y; });
    EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                            [](int x) { return x == 6; }));
}

TEST_F(TransformReduceTest, ReduceMatchesStdAccumulate) {
    std::vector<double> v(30'000);
    std::mt19937 rng(123);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    for (auto& x : v) {
        x = dist(rng);
    }
    double const expected = std::accumulate(v.begin(), v.end(), 0.0);
    double const got = hpxlite::parallel::reduce(ex::par, v.begin(), v.end(),
                                                 0.0);
    EXPECT_NEAR(got, expected, 1e-9 * expected);
}

TEST_F(TransformReduceTest, ReduceEmptyRangeReturnsInit) {
    std::vector<int> v;
    EXPECT_EQ(hpxlite::parallel::reduce(ex::par, v.begin(), v.end(), 42), 42);
}

TEST_F(TransformReduceTest, ReduceWithCustomOp) {
    std::vector<int> v(100, 1);
    v[17] = 99;
    int const mx = hpxlite::parallel::reduce(
        ex::par, v.begin(), v.end(), 0, [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(mx, 99);
}

TEST_F(TransformReduceTest, TransformReduceDotProduct) {
    std::vector<double> v(10'000, 0.5);
    double const got = hpxlite::parallel::transform_reduce(
        ex::par, v.begin(), v.end(), 0.0,
        [](double a, double b) { return a + b; },
        [](double x) { return x * x; });
    EXPECT_NEAR(got, 2500.0, 1e-9);
}

TEST_F(TransformReduceTest, TransformReduceSeqEqualsPar) {
    std::vector<int> v(5000);
    std::iota(v.begin(), v.end(), -2500);
    auto conv = [](int x) { return static_cast<long>(x) * x; };
    auto op = [](long a, long b) { return a + b; };
    long const s = hpxlite::parallel::transform_reduce(ex::seq, v.begin(),
                                                       v.end(), 0L, op, conv);
    long const p = hpxlite::parallel::transform_reduce(ex::par, v.begin(),
                                                       v.end(), 0L, op, conv);
    EXPECT_EQ(s, p);
}

// Property sweep: reduce equals accumulate for many sizes.
class ReduceSizes : public ::testing::TestWithParam<std::size_t> {
protected:
    void SetUp() override { hpxlite::init(hpxlite::runtime_config{4}); }
    void TearDown() override { hpxlite::finalize(); }
};

TEST_P(ReduceSizes, MatchesAccumulate) {
    std::size_t const n = GetParam();
    std::vector<long> v(n);
    std::mt19937 rng(static_cast<unsigned>(n));
    std::uniform_int_distribution<long> dist(-1000, 1000);
    for (auto& x : v) {
        x = dist(rng);
    }
    long const expected = std::accumulate(v.begin(), v.end(), 0L);
    long const got = hpxlite::parallel::reduce(ex::par, v.begin(), v.end(), 0L);
    EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReduceSizes,
                         ::testing::Values(0, 1, 2, 3, 15, 16, 17, 100, 1023,
                                           4096, 65'537));

}  // namespace
