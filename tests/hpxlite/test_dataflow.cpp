#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include <hpxlite/lcos/dataflow.hpp>
#include <hpxlite/runtime.hpp>
#include <hpxlite/util/unwrapped.hpp>

namespace {

class DataflowTest : public ::testing::Test {
protected:
    void SetUp() override { hpxlite::init(hpxlite::runtime_config{2}); }
    void TearDown() override { hpxlite::finalize(); }
};

TEST_F(DataflowTest, PlainValuesOnly) {
    auto f = hpxlite::dataflow([](int a, int b) { return a + b; }, 2, 3);
    EXPECT_EQ(f.get(), 5);
}

TEST_F(DataflowTest, ReceivesReadyFutures) {
    auto f = hpxlite::dataflow(
        [](hpxlite::future<int>&& a, int b) { return a.get() + b; },
        hpxlite::make_ready_future(4), 6);
    EXPECT_EQ(f.get(), 10);
}

TEST_F(DataflowTest, UnwrappedExtractsValues) {
    auto f = hpxlite::dataflow(
        hpxlite::unwrapped([](int a, int b, int c) { return a + b + c; }),
        hpxlite::make_ready_future(1), 2, hpxlite::async([] { return 3; }));
    EXPECT_EQ(f.get(), 6);
}

TEST_F(DataflowTest, WaitsForUnreadyInput) {
    hpxlite::promise<int> p;
    std::atomic<bool> ran{false};
    auto f = hpxlite::dataflow(
        hpxlite::unwrapped([&ran](int x) {
            ran.store(true);
            return x * 2;
        }),
        p.get_future());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(ran.load());
    p.set_value(11);
    EXPECT_EQ(f.get(), 22);
    EXPECT_TRUE(ran.load());
}

TEST_F(DataflowTest, ChainedGraphExecutesInDependencyOrder) {
    // Figure 6 semantics: F runs as soon as the last input arrives.
    auto a = hpxlite::async([] { return 1; });
    auto b = hpxlite::dataflow(hpxlite::unwrapped([](int x) { return x + 1; }),
                               std::move(a));
    auto c = hpxlite::dataflow(hpxlite::unwrapped([](int x) { return x * 10; }),
                               std::move(b));
    EXPECT_EQ(c.get(), 20);
}

TEST_F(DataflowTest, DiamondGraph) {
    auto src = hpxlite::async([] { return 2; }).share();
    auto l = hpxlite::dataflow(hpxlite::unwrapped([](int x) { return x + 1; }),
                               src);
    auto r = hpxlite::dataflow(hpxlite::unwrapped([](int x) { return x * 3; }),
                               src);
    auto join = hpxlite::dataflow(
        hpxlite::unwrapped([](int a, int b) { return a + b; }), std::move(l),
        std::move(r));
    EXPECT_EQ(join.get(), 9);
}

TEST_F(DataflowTest, VoidResult) {
    int side = 0;
    auto f = hpxlite::dataflow(hpxlite::unwrapped([&side](int x) { side = x; }),
                               hpxlite::make_ready_future(13));
    f.get();
    EXPECT_EQ(side, 13);
}

TEST_F(DataflowTest, ExceptionInFunctionPropagates) {
    auto f = hpxlite::dataflow(
        hpxlite::unwrapped([](int) -> int { throw std::runtime_error("fn"); }),
        hpxlite::make_ready_future(1));
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(DataflowTest, ExceptionInInputPropagatesThroughUnwrapped) {
    auto bad = hpxlite::async([]() -> int { throw std::runtime_error("in"); });
    auto f = hpxlite::dataflow(hpxlite::unwrapped([](int x) { return x; }),
                               std::move(bad));
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(DataflowTest, NestedFutureResultUnwraps) {
    auto f = hpxlite::dataflow(
        hpxlite::unwrapped(
            [](int x) { return hpxlite::async([x] { return x * 7; }); }),
        hpxlite::make_ready_future(3));
    static_assert(std::is_same_v<decltype(f), hpxlite::future<int>>);
    EXPECT_EQ(f.get(), 21);
}

TEST_F(DataflowTest, SharedFutureInputsPassThrough) {
    auto sf = hpxlite::make_ready_future(std::string("ab")).share();
    auto f = hpxlite::dataflow(
        hpxlite::unwrapped([](std::string const& s, std::string const& t) {
            return s + t;
        }),
        sf, sf);
    EXPECT_EQ(f.get(), "abab");
}

TEST_F(DataflowTest, ManyInputs) {
    auto f = hpxlite::dataflow(
        hpxlite::unwrapped([](int a, int b, int c, int d, int e, int g) {
            return a + b + c + d + e + g;
        }),
        hpxlite::async([] { return 1; }), hpxlite::async([] { return 2; }),
        hpxlite::async([] { return 3; }), 4, hpxlite::make_ready_future(5),
        6);
    EXPECT_EQ(f.get(), 21);
}

TEST_F(DataflowTest, LongChainStress) {
    auto f = hpxlite::make_ready_future(0);
    for (int i = 0; i < 500; ++i) {
        f = hpxlite::dataflow(hpxlite::unwrapped([](int x) { return x + 1; }),
                              std::move(f));
    }
    EXPECT_EQ(f.get(), 500);
}

// The paper's op_arg_dat pattern (Fig. 7): dataflow returning the
// argument as a future once its inputs are ready.
TEST_F(DataflowTest, PaperFig7ArgPattern) {
    struct op_arg {
        double* data;
    };
    std::vector<double> storage{1.0, 2.0};
    auto producer = hpxlite::async([&storage] {
        storage[0] = 42.0;
        return op_arg{storage.data()};
    });
    auto arg = hpxlite::dataflow(
        hpxlite::unwrapped([](op_arg a) { return a; }), std::move(producer));
    EXPECT_DOUBLE_EQ(arg.get().data[0], 42.0);
}

}  // namespace
