#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include <hpxlite/algorithms/for_loop.hpp>
#include <hpxlite/runtime.hpp>

namespace {

namespace ex = hpxlite::execution;
using hpxlite::parallel::for_loop;

class ForLoopTest : public ::testing::Test {
protected:
    void SetUp() override { hpxlite::init(hpxlite::runtime_config{4}); }
    void TearDown() override { hpxlite::finalize(); }
};

TEST_F(ForLoopTest, SeqCoversRange) {
    std::vector<int> v(100, 0);
    for_loop(ex::seq, 10, 90, [&](int i) { v[static_cast<std::size_t>(i)] = 1; });
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 80);
    EXPECT_EQ(v[9], 0);
    EXPECT_EQ(v[90], 0);
}

TEST_F(ForLoopTest, ParCoversRange) {
    std::vector<std::atomic<int>> v(10'000);
    for_loop(ex::par, std::size_t{0}, v.size(),
             [&](std::size_t i) { v[i].fetch_add(1); });
    for (auto const& x : v) {
        ASSERT_EQ(x.load(), 1);
    }
}

TEST_F(ForLoopTest, EmptyAndReversedRanges) {
    int calls = 0;
    for_loop(ex::par, 5, 5, [&](int) { ++calls; });
    for_loop(ex::par, 9, 3, [&](int) { ++calls; });
    for_loop(ex::seq, 9, 3, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST_F(ForLoopTest, NonZeroBaseOffsets) {
    std::atomic<long> sum{0};
    for_loop(ex::par, 1000, 2000, [&](int i) { sum += i; });
    EXPECT_EQ(sum.load(), (1000 + 1999) * 1000 / 2);
}

TEST_F(ForLoopTest, SeqTaskAsync) {
    std::atomic<int> count{0};
    auto f = for_loop(ex::seq(ex::task), 0, 100, [&](int) { ++count; });
    f.get();
    EXPECT_EQ(count.load(), 100);
}

TEST_F(ForLoopTest, ParTaskAsync) {
    std::atomic<int> count{0};
    auto f = for_loop(ex::par(ex::task), 0, 5000, [&](int) { ++count; });
    f.get();
    EXPECT_EQ(count.load(), 5000);
}

TEST_F(ForLoopTest, ParTaskEmptyIsReady) {
    auto f = for_loop(ex::par(ex::task), 3, 3, [](int) {});
    EXPECT_TRUE(f.is_ready());
}

TEST_F(ForLoopTest, NestedParallelLoops) {
    // A parallel loop inside a parallel loop must not deadlock even when
    // workers block-wait on inner loops (help-while-waiting).
    std::vector<std::atomic<int>> v(64 * 64);
    for_loop(ex::par, 0, 64, [&](int i) {
        for_loop(ex::par, 0, 64, [&](int j) {
            v[static_cast<std::size_t>(i * 64 + j)].fetch_add(1);
        });
    });
    for (auto const& x : v) {
        ASSERT_EQ(x.load(), 1);
    }
}

TEST_F(ForLoopTest, SingleWorkerPoolStillParallelCorrect) {
    hpxlite::init(hpxlite::runtime_config{1});
    std::atomic<int> count{0};
    for_loop(ex::par, 0, 10'000, [&](int) { ++count; });
    EXPECT_EQ(count.load(), 10'000);
}

TEST_F(ForLoopTest, PolicyOnSpecificPool) {
    hpxlite::threads::thread_pool other(2);
    std::atomic<int> count{0};
    for_loop(ex::par.on(other), 0, 1000, [&](int) { ++count; });
    EXPECT_EQ(count.load(), 1000);
}

}  // namespace
