// The intrusive task_node submit path and the sleeper-parked wait_idle:
// nodes embedded in caller-owned storage ride the pool's deques with no
// per-task allocation, and wait_idle parks instead of polling while
// still helping with (and being woken by) new work.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <hpxlite/lcos/future.hpp>
#include <hpxlite/runtime.hpp>
#include <hpxlite/threads/task_node.hpp>
#include <hpxlite/threads/thread_pool.hpp>

using hpxlite::threads::task_node;
using hpxlite::threads::thread_pool;

namespace {

struct counting_node final : task_node {
    std::atomic<int>* hits = nullptr;

    counting_node() {
        action = [](task_node* n, bool run) {
            auto* self = static_cast<counting_node*>(n);
            if (run) {
                self->hits->fetch_add(1, std::memory_order_relaxed);
            }
        };
    }
};

TEST(TaskNode, IntrusiveNodesRunFromExternalSubmit) {
    thread_pool pool(3);
    std::atomic<int> hits{0};
    constexpr int kTasks = 256;
    std::vector<counting_node> nodes(kTasks);
    for (auto& n : nodes) {
        n.hits = &hits;
        pool.submit(static_cast<task_node*>(&n));
    }
    pool.wait_idle();
    EXPECT_EQ(hits.load(), kTasks);
}

TEST(TaskNode, IntrusiveNodesRunFromWorkerSideSubmit) {
    thread_pool pool(3);
    std::atomic<int> hits{0};
    constexpr int kChildren = 128;
    // The parent task spawns intrusive children from a worker thread —
    // the path that used to heap-allocate one wrapper per task.
    auto children = std::make_unique<counting_node[]>(kChildren);
    for (int i = 0; i < kChildren; ++i) {
        children[i].hits = &hits;
    }
    pool.submit([&pool, &children, &hits] {
        for (int i = 0; i < kChildren; ++i) {
            pool.submit(static_cast<task_node*>(&children[i]));
        }
        hits.fetch_add(1, std::memory_order_relaxed);
    });
    pool.wait_idle();
    EXPECT_EQ(hits.load(), kChildren + 1);
}

TEST(TaskNode, FunctionSubmitStillWorksAlongsideNodes) {
    thread_pool pool(2);
    std::atomic<int> hits{0};
    counting_node node;
    node.hits = &hits;
    pool.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    pool.submit(static_cast<task_node*>(&node));
    pool.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(hits.load(), 3);
}

TEST(WaitIdle, ReturnsOnlyAfterNestedSpawnsDrain) {
    thread_pool pool(4);
    std::atomic<int> done{0};
    constexpr int kRoots = 16;
    for (int r = 0; r < kRoots; ++r) {
        pool.submit([&pool, &done] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            pool.submit([&pool, &done] {
                pool.submit(
                    [&done] { done.fetch_add(1, std::memory_order_relaxed); });
            });
        });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), kRoots);
}

TEST(WaitIdle, ParkedWaiterWakesOnDrainNotByPolling) {
    thread_pool pool(2);
    std::atomic<bool> release{false};
    pool.submit([&release] {
        while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
        }
    });
    // The waiter has nothing to help with (the only task spins on a
    // flag), so it must park; releasing the task must wake it promptly.
    std::thread waiter([&pool] { pool.wait_idle(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release.store(true, std::memory_order_release);
    waiter.join();
    SUCCEED();
}

TEST(TaskNode, EmbeddedFutureContinuationsCoexistWithIntrusiveNodes) {
    // future::then/async now ride a task_node embedded in the shared
    // state (no fn_task_node) — storm the global pool with a mix of
    // bare intrusive nodes, generic function submits and embedded
    // continuation tasks and check nothing is lost or double-run.
    hpxlite::runtime_guard rt(3);
    auto& pool = hpxlite::get_pool();
    std::atomic<int> hits{0};
    constexpr int kEach = 64;
    std::vector<counting_node> nodes(kEach);
    std::vector<hpxlite::future<void>> futs;
    futs.reserve(2 * kEach);
    for (int i = 0; i < kEach; ++i) {
        nodes[static_cast<std::size_t>(i)].hits = &hits;
        pool.submit(
            static_cast<task_node*>(&nodes[static_cast<std::size_t>(i)]));
        pool.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
        futs.push_back(hpxlite::async(
            [&hits] { hits.fetch_add(1, std::memory_order_relaxed); }));
        futs.push_back(hpxlite::async([] {}).then(
            [&hits](hpxlite::future<void>&& f) {
                f.get();
                hits.fetch_add(1, std::memory_order_relaxed);
            }));
    }
    for (auto& f : futs) {
        f.get();
    }
    pool.wait_idle();
    EXPECT_EQ(hits.load(), 4 * kEach);
}

TEST(WaitIdle, ManyConcurrentWaitersAllReturn) {
    thread_pool pool(3);
    std::atomic<int> hits{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&hits] {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            hits.fetch_add(1, std::memory_order_relaxed);
        });
    }
    std::vector<std::thread> waiters;
    for (int i = 0; i < 4; ++i) {
        waiters.emplace_back([&pool] { pool.wait_idle(); });
    }
    for (auto& w : waiters) {
        w.join();
    }
    EXPECT_EQ(hits.load(), 64);
}

}  // namespace
