#include <gtest/gtest.h>

#include <hpxlite/algorithms/detail/bulk.hpp>
#include <hpxlite/execution/chunkers.hpp>
#include <hpxlite/runtime.hpp>

namespace {

namespace ex = hpxlite::execution;
using hpxlite::parallel::detail::resolve_chunk;

class ChunkerTest : public ::testing::Test {
protected:
    void SetUp() override { hpxlite::init(hpxlite::runtime_config{4}); }
    void TearDown() override { hpxlite::finalize(); }

    // A probe body with a controllable, nontrivial per-iteration cost.
    static void spin(std::size_t) {
        volatile double x = 1.0;
        for (int i = 0; i < 50; ++i) {
            x = x * 1.0001 + 0.5;
        }
    }
};

TEST_F(ChunkerTest, StaticExplicitSize) {
    auto body = [](std::size_t) {};
    auto plan = resolve_chunk(ex::static_chunk_size{64}, 1000, 4, body);
    EXPECT_EQ(plan.chunk, 64u);
    EXPECT_FALSE(plan.self_scheduling);
    EXPECT_EQ(plan.probed, 0u);  // static never probes
}

TEST_F(ChunkerTest, StaticDefaultDerivesFromWorkers) {
    auto body = [](std::size_t) {};
    auto plan = resolve_chunk(ex::static_chunk_size{}, 1600, 4, body);
    EXPECT_EQ(plan.chunk, 1600u / 16u);  // n / (4 * workers)
}

TEST_F(ChunkerTest, StaticClampedToWorkerShare) {
    auto body = [](std::size_t) {};
    // Requested chunk larger than n/workers would serialise: clamp.
    auto plan = resolve_chunk(ex::static_chunk_size{10'000}, 1000, 4, body);
    EXPECT_LE(plan.chunk, 250u);
    EXPECT_GE(plan.chunk, 1u);
}

TEST_F(ChunkerTest, DynamicSelfSchedules) {
    auto body = [](std::size_t) {};
    auto plan = resolve_chunk(ex::dynamic_chunk_size{32}, 1000, 4, body);
    EXPECT_TRUE(plan.self_scheduling);
    EXPECT_EQ(plan.chunk, 32u);
}

TEST_F(ChunkerTest, AutoProbesAndTargetsTime) {
    int executed = 0;
    auto body = [&executed](std::size_t) {
        ++executed;
        spin(0);
    };
    auto plan = resolve_chunk(ex::auto_chunk_size{200'000}, 100'000, 4, body);
    EXPECT_GT(plan.probed, 0u);
    EXPECT_EQ(static_cast<std::size_t>(executed), plan.probed);
    EXPECT_GT(plan.per_iter_ns, 0);
    EXPECT_GE(plan.chunk, 1u);
    EXPECT_LE(plan.chunk, 25'000u);  // never coarser than n/workers
}

TEST_F(ChunkerTest, ChunkDomainRecordFirstWins) {
    ex::chunk_domain dom;
    EXPECT_FALSE(dom.calibrated());
    dom.record(500);
    dom.record(900);
    EXPECT_EQ(dom.target_ns(), 500);
    dom.reset();
    EXPECT_FALSE(dom.calibrated());
    dom.record(900);
    EXPECT_EQ(dom.target_ns(), 900);
}

TEST_F(ChunkerTest, PersistentCalibratesDomainOnFirstLoop) {
    ex::chunk_domain dom;
    auto body = [](std::size_t) { spin(0); };
    auto plan = resolve_chunk(ex::persistent_auto_chunk_size{&dom}, 50'000, 4,
                              body);
    EXPECT_TRUE(dom.calibrated());
    // The recorded target equals the calibrating loop's chunk time.
    EXPECT_EQ(dom.target_ns(),
              static_cast<std::int64_t>(plan.chunk) * plan.per_iter_ns);
}

TEST_F(ChunkerTest, PersistentEqualisesChunkTimeAcrossLoops) {
    // Fig. 12b: loop 2 has ~4x the per-iteration cost of loop 1, so its
    // chunk must come out ~4x smaller to equalise chunk execution time.
    ex::chunk_domain dom;
    auto cheap = [](std::size_t) { spin(0); };
    auto costly = [](std::size_t) {
        spin(0);
        spin(0);
        spin(0);
        spin(0);
    };
    auto plan1 = resolve_chunk(ex::persistent_auto_chunk_size{&dom}, 200'000,
                               4, cheap);
    auto plan2 = resolve_chunk(ex::persistent_auto_chunk_size{&dom}, 200'000,
                               4, costly);
    ASSERT_GT(plan1.chunk, 0u);
    ASSERT_GT(plan2.chunk, 0u);
    double const t1 =
        static_cast<double>(plan1.chunk) * static_cast<double>(plan1.per_iter_ns);
    double const t2 =
        static_cast<double>(plan2.chunk) * static_cast<double>(plan2.per_iter_ns);
    // Chunk *times* should match within timing noise (generous 3x band:
    // the probe is only ~1% of the loop).
    EXPECT_LT(t2 / t1, 3.0);
    EXPECT_GT(t2 / t1, 1.0 / 3.0);
    // Chunk *sizes* must differ notably (costly loop => smaller chunks).
    EXPECT_LT(plan2.chunk, plan1.chunk);
}

TEST_F(ChunkerTest, PersistentNullDomainUsesGlobal) {
    ex::global_chunk_domain().reset();
    auto body = [](std::size_t) { spin(0); };
    (void)resolve_chunk(ex::persistent_auto_chunk_size{}, 10'000, 4, body);
    EXPECT_TRUE(ex::global_chunk_domain().calibrated());
    ex::global_chunk_domain().reset();
}

TEST_F(ChunkerTest, ProbeCountBounds) {
    namespace ed = ex::detail;
    EXPECT_EQ(ed::probe_count(1), 1u);
    EXPECT_EQ(ed::probe_count(50), 1u);
    EXPECT_EQ(ed::probe_count(10'000), 100u);
    EXPECT_EQ(ed::probe_count(10'000'000), 1024u);  // capped
}

TEST_F(ChunkerTest, ClampChunkNeverZero) {
    namespace ed = ex::detail;
    EXPECT_EQ(ed::clamp_chunk(0, 100, 4), 1u);
    EXPECT_EQ(ed::clamp_chunk(5, 100, 4), 5u);
    EXPECT_EQ(ed::clamp_chunk(1000, 100, 4), 25u);
    EXPECT_EQ(ed::clamp_chunk(7, 2, 16), 1u);  // tiny n, many workers
}

}  // namespace
