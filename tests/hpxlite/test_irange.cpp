#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <iterator>
#include <vector>

#include <hpxlite/util/irange.hpp>

using hpxlite::util::counting_iterator;
using hpxlite::util::irange;

TEST(IRange, SizeAndBounds) {
    irange r(3, 10);
    EXPECT_EQ(r.size(), 7u);
    EXPECT_EQ(*r.begin(), 3u);
    EXPECT_EQ(r.end() - r.begin(), 7);
}

TEST(IRange, EmptyWhenInverted) {
    irange r(9, 4);
    EXPECT_EQ(r.size(), 0u);
    EXPECT_TRUE(r.begin() == r.end());
}

TEST(IRange, IterationVisitsAllValues) {
    std::vector<std::size_t> out;
    for (std::size_t v : irange(0, 5)) {
        out.push_back(v);
    }
    EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(CountingIterator, SatisfiesRandomAccessRequirements) {
    static_assert(std::random_access_iterator<counting_iterator>);
    counting_iterator a(10);
    counting_iterator b(15);
    EXPECT_EQ(b - a, 5);
    EXPECT_EQ(*(a + 5), 15u);
    EXPECT_EQ(*(5 + a), 15u);
    EXPECT_EQ(*(b - 2), 13u);
    EXPECT_EQ(a[3], 13u);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(a <= b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(b >= a);
    EXPECT_TRUE(a != b);
}

TEST(CountingIterator, IncrementDecrement) {
    counting_iterator it(5);
    EXPECT_EQ(*it++, 5u);
    EXPECT_EQ(*it, 6u);
    EXPECT_EQ(*++it, 7u);
    EXPECT_EQ(*it--, 7u);
    EXPECT_EQ(*--it, 5u);
}

TEST(CountingIterator, CompoundAssignment) {
    counting_iterator it(0);
    it += 10;
    EXPECT_EQ(*it, 10u);
    it -= 4;
    EXPECT_EQ(*it, 6u);
}

TEST(CountingIterator, WorksWithStdAlgorithms) {
    irange r(1, 101);
    auto const sum = std::accumulate(r.begin(), r.end(), std::size_t{0});
    EXPECT_EQ(sum, 5050u);
    auto it = std::find(r.begin(), r.end(), std::size_t{42});
    EXPECT_NE(it, r.end());
    EXPECT_EQ(*it, 42u);
}
