// Unit and stress tests for the Chase–Lev work-stealing deque backing
// the thread pool's per-worker queues.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <hpxlite/threads/ws_deque.hpp>

using hpxlite::threads::ws_deque;

namespace {

TEST(WsDeque, OwnerPopIsLifo) {
    ws_deque<int> d;
    for (int i = 0; i < 10; ++i) {
        d.push(new int(i));
    }
    for (int i = 9; i >= 0; --i) {
        int* p = d.pop();
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(*p, i);
        delete p;
    }
    EXPECT_EQ(d.pop(), nullptr);
}

TEST(WsDeque, StealIsFifo) {
    ws_deque<int> d;
    for (int i = 0; i < 10; ++i) {
        d.push(new int(i));
    }
    for (int i = 0; i < 10; ++i) {
        int* p = d.steal();
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(*p, i);
        delete p;
    }
    EXPECT_EQ(d.steal(), nullptr);
}

TEST(WsDeque, GrowsPastInitialCapacity) {
    ws_deque<int> d(4);
    constexpr int n = 1000;
    for (int i = 0; i < n; ++i) {
        d.push(new int(i));
    }
    for (int i = n - 1; i >= 0; --i) {
        int* p = d.pop();
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(*p, i);
        delete p;
    }
    EXPECT_TRUE(d.empty());
}

TEST(WsDeque, DestructorReclaimsLeftoverItems) {
    // Just must not leak or crash (checked under sanitizers elsewhere).
    ws_deque<int> d;
    for (int i = 0; i < 100; ++i) {
        d.push(new int(i));
    }
}

/// Owner pushes and pops while thieves steal; every pushed value must be
/// consumed exactly once across all participants.
TEST(WsDeque, ConcurrentStealLosesNothing) {
    constexpr int kItems = 20000;
    constexpr int kThieves = 3;
    ws_deque<int> d(8);

    std::vector<std::vector<int>> stolen(kThieves);
    std::vector<int> popped;
    std::atomic<bool> done{false};

    std::vector<std::thread> thieves;
    thieves.reserve(kThieves);
    for (int t = 0; t < kThieves; ++t) {
        thieves.emplace_back([&, t] {
            while (!done.load(std::memory_order_acquire)) {
                if (int* p = d.steal()) {
                    stolen[static_cast<std::size_t>(t)].push_back(*p);
                    delete p;
                } else {
                    std::this_thread::yield();
                }
            }
            // Final drain so nothing is stranded at shutdown.
            while (int* p = d.steal()) {
                stolen[static_cast<std::size_t>(t)].push_back(*p);
                delete p;
            }
        });
    }

    for (int i = 0; i < kItems; ++i) {
        d.push(new int(i));
        if (i % 3 == 0) {
            if (int* p = d.pop()) {
                popped.push_back(*p);
                delete p;
            }
        }
    }
    while (int* p = d.pop()) {
        popped.push_back(*p);
        delete p;
    }
    done.store(true, std::memory_order_release);
    for (auto& th : thieves) {
        th.join();
    }

    std::vector<int> all(popped);
    for (auto const& s : stolen) {
        all.insert(all.end(), s.begin(), s.end());
    }
    ASSERT_EQ(all.size(), static_cast<std::size_t>(kItems));
    std::sort(all.begin(), all.end());
    for (int i = 0; i < kItems; ++i) {
        ASSERT_EQ(all[static_cast<std::size_t>(i)], i) << "lost or duplicated";
    }
}

}  // namespace
