#include <gtest/gtest.h>

#include <hpxlite/lcos/future.hpp>
#include <hpxlite/lcos/when_all.hpp>
#include <hpxlite/runtime.hpp>

namespace {

class WhenAllTest : public ::testing::Test {
protected:
    void SetUp() override { hpxlite::init(hpxlite::runtime_config{2}); }
    void TearDown() override { hpxlite::finalize(); }
};

TEST_F(WhenAllTest, VectorOfFutures) {
    std::vector<hpxlite::future<int>> fs;
    for (int i = 0; i < 10; ++i) {
        fs.push_back(hpxlite::async([i] { return i * i; }));
    }
    auto all = hpxlite::when_all(std::move(fs)).get();
    ASSERT_EQ(all.size(), 10u);
    int sum = 0;
    for (auto& f : all) {
        EXPECT_TRUE(f.is_ready());
        sum += f.get();
    }
    EXPECT_EQ(sum, 285);
}

TEST_F(WhenAllTest, EmptyVectorIsImmediatelyReady) {
    std::vector<hpxlite::future<int>> fs;
    auto all = hpxlite::when_all(std::move(fs));
    EXPECT_TRUE(all.is_ready());
    EXPECT_TRUE(all.get().empty());
}

TEST_F(WhenAllTest, AlreadyReadyInputs) {
    std::vector<hpxlite::future<int>> fs;
    fs.push_back(hpxlite::make_ready_future(1));
    fs.push_back(hpxlite::make_ready_future(2));
    auto all = hpxlite::when_all(std::move(fs));
    EXPECT_TRUE(all.is_ready());
    auto v = all.get();
    EXPECT_EQ(v[0].get() + v[1].get(), 3);
}

TEST_F(WhenAllTest, VariadicMixedTypes) {
    auto a = hpxlite::async([] { return 1; });
    auto b = hpxlite::async([] { return std::string("x"); });
    auto tup = hpxlite::when_all(std::move(a), std::move(b)).get();
    EXPECT_EQ(std::get<0>(tup).get(), 1);
    EXPECT_EQ(std::get<1>(tup).get(), "x");
}

TEST_F(WhenAllTest, VariadicWithSharedFuture) {
    auto a = hpxlite::make_ready_future(2).share();
    auto b = hpxlite::async([] { return 3; });
    auto tup = hpxlite::when_all(a, std::move(b)).get();
    EXPECT_EQ(std::get<0>(tup).get(), 2);
    EXPECT_EQ(std::get<1>(tup).get(), 3);
}

TEST_F(WhenAllTest, ZeroArgs) {
    auto f = hpxlite::when_all();
    EXPECT_TRUE(f.is_ready());
}

TEST_F(WhenAllTest, SharedFutureVector) {
    std::vector<hpxlite::shared_future<int>> fs;
    for (int i = 0; i < 5; ++i) {
        fs.push_back(hpxlite::async([i] { return i; }).share());
    }
    auto all = hpxlite::when_all(std::move(fs)).get();
    int sum = 0;
    for (auto& f : all) {
        sum += f.get();
    }
    EXPECT_EQ(sum, 10);
}

TEST_F(WhenAllTest, ExceptionsAreDeliveredThroughElements) {
    std::vector<hpxlite::future<int>> fs;
    fs.push_back(hpxlite::make_ready_future(1));
    fs.push_back(hpxlite::async([]() -> int { throw std::runtime_error("e"); }));
    auto all = hpxlite::when_all(std::move(fs)).get();  // when_all itself OK
    EXPECT_EQ(all[0].get(), 1);
    EXPECT_THROW(all[1].get(), std::runtime_error);
}

TEST_F(WhenAllTest, ManyConcurrentInputs) {
    std::vector<hpxlite::future<int>> fs;
    constexpr int kN = 500;
    fs.reserve(kN);
    for (int i = 0; i < kN; ++i) {
        fs.push_back(hpxlite::async([i] { return i; }));
    }
    auto all = hpxlite::when_all(std::move(fs)).get();
    long sum = 0;
    for (auto& f : all) {
        sum += f.get();
    }
    EXPECT_EQ(sum, static_cast<long>(kN) * (kN - 1) / 2);
}

}  // namespace
