#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <hpxlite/lcos/future.hpp>
#include <hpxlite/runtime.hpp>

namespace {

class FutureTest : public ::testing::Test {
protected:
    void SetUp() override { hpxlite::init(hpxlite::runtime_config{2}); }
    void TearDown() override { hpxlite::finalize(); }
};

TEST_F(FutureTest, DefaultFutureIsInvalid) {
    hpxlite::future<int> f;
    EXPECT_FALSE(f.valid());
    EXPECT_THROW(f.get(), std::logic_error);
}

TEST_F(FutureTest, MakeReadyFuture) {
    auto f = hpxlite::make_ready_future(5);
    ASSERT_TRUE(f.valid());
    EXPECT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), 5);
    EXPECT_FALSE(f.valid());  // consumed
}

TEST_F(FutureTest, MakeReadyFutureVoid) {
    auto f = hpxlite::make_ready_future();
    EXPECT_TRUE(f.is_ready());
    EXPECT_NO_THROW(f.get());
}

TEST_F(FutureTest, PromiseDeliversValue) {
    hpxlite::promise<std::string> p;
    auto f = p.get_future();
    EXPECT_FALSE(f.is_ready());
    p.set_value("hello");
    EXPECT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), "hello");
}

TEST_F(FutureTest, PromiseDeliversException) {
    hpxlite::promise<int> p;
    auto f = p.get_future();
    p.set_exception(std::make_exception_ptr(std::runtime_error("boom")));
    EXPECT_TRUE(f.is_ready());
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(FutureTest, BrokenPromise) {
    hpxlite::future<int> f;
    {
        hpxlite::promise<int> p;
        f = p.get_future();
    }
    EXPECT_TRUE(f.is_ready());
    EXPECT_THROW(f.get(), std::logic_error);
}

TEST_F(FutureTest, DoubleSetValueThrows) {
    hpxlite::promise<int> p;
    p.set_value(1);
    EXPECT_THROW(p.set_value(2), std::logic_error);
}

TEST_F(FutureTest, DoubleGetFutureThrows) {
    hpxlite::promise<int> p;
    (void)p.get_future();
    EXPECT_THROW((void)p.get_future(), std::logic_error);
}

TEST_F(FutureTest, AsyncComputesOnPool) {
    auto f = hpxlite::async([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST_F(FutureTest, AsyncWithArguments) {
    auto f = hpxlite::async([](int a, int b) { return a * b; }, 6, 7);
    EXPECT_EQ(f.get(), 42);
}

TEST_F(FutureTest, AsyncVoid) {
    int x = 0;
    auto f = hpxlite::async([&x] { x = 9; });
    f.get();
    EXPECT_EQ(x, 9);
}

TEST_F(FutureTest, AsyncPropagatesException) {
    auto f = hpxlite::async([]() -> int { throw std::runtime_error("bad"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(FutureTest, ThenTransformsValue) {
    auto f = hpxlite::async([] { return 10; }).then([](hpxlite::future<int>&& x) {
        return x.get() + 1;
    });
    EXPECT_EQ(f.get(), 11);
}

TEST_F(FutureTest, ThenChains) {
    auto f = hpxlite::make_ready_future(1);
    for (int i = 0; i < 10; ++i) {
        f = f.then([](hpxlite::future<int>&& x) { return x.get() * 2; });
    }
    EXPECT_EQ(f.get(), 1024);
}

TEST_F(FutureTest, ThenReceivesException) {
    auto f = hpxlite::async([]() -> int { throw std::runtime_error("inner"); })
                 .then([](hpxlite::future<int>&& x) {
                     try {
                         x.get();
                         return std::string("no exception");
                     } catch (std::runtime_error const& e) {
                         return std::string(e.what());
                     }
                 });
    EXPECT_EQ(f.get(), "inner");
}

TEST_F(FutureTest, ThenUnwrapsNestedFuture) {
    // Continuation returning a future is unwrapped one level.
    auto f = hpxlite::make_ready_future(2).then([](hpxlite::future<int>&& x) {
        int const v = x.get();
        return hpxlite::async([v] { return v * 50; });
    });
    static_assert(std::is_same_v<decltype(f), hpxlite::future<int>>);
    EXPECT_EQ(f.get(), 100);
}

TEST_F(FutureTest, ThenInvalidatesSource) {
    auto f = hpxlite::make_ready_future(1);
    auto g = f.then([](hpxlite::future<int>&& x) { return x.get(); });
    EXPECT_FALSE(f.valid());
    EXPECT_EQ(g.get(), 1);
}

TEST_F(FutureTest, ShareAllowsMultipleGets) {
    auto sf = hpxlite::async([] { return 21; }).share();
    EXPECT_EQ(sf.get(), 21);
    EXPECT_EQ(sf.get(), 21);
    auto sf2 = sf;  // copyable
    EXPECT_EQ(sf2.get(), 21);
}

TEST_F(FutureTest, SharedFutureThen) {
    auto sf = hpxlite::make_ready_future(3).share();
    auto f1 = sf.then([](hpxlite::shared_future<int> x) { return x.get() + 1; });
    auto f2 = sf.then([](hpxlite::shared_future<int> x) { return x.get() + 2; });
    EXPECT_EQ(f1.get(), 4);
    EXPECT_EQ(f2.get(), 5);
}

TEST_F(FutureTest, SharedFutureVoid) {
    hpxlite::shared_future<void> sf = hpxlite::async([] {}).share();
    EXPECT_NO_THROW(sf.get());
    EXPECT_NO_THROW(sf.get());
}

TEST_F(FutureTest, WaitFromExternalThread) {
    hpxlite::promise<int> p;
    auto f = p.get_future();
    std::thread t([&p] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        p.set_value(1);
    });
    f.wait();
    EXPECT_TRUE(f.is_ready());
    t.join();
    EXPECT_EQ(f.get(), 1);
}

TEST_F(FutureTest, NestedGetInsideTaskDoesNotDeadlock) {
    // A task waiting on another task's future must help-execute it even
    // with a single worker thread.
    hpxlite::init(hpxlite::runtime_config{1});
    auto outer = hpxlite::async([] {
        auto inner = hpxlite::async([] { return 5; });
        return inner.get() + 1;
    });
    EXPECT_EQ(outer.get(), 6);
}

TEST_F(FutureTest, MoveOnlyValueType) {
    auto f = hpxlite::async([] { return std::make_unique<int>(31); });
    auto p = f.get();
    EXPECT_EQ(*p, 31);
}

TEST_F(FutureTest, ExceptionalFutureHelper) {
    auto f = hpxlite::make_exceptional_future<int>(
        std::make_exception_ptr(std::runtime_error("x")));
    EXPECT_TRUE(f.is_ready());
    EXPECT_THROW(f.get(), std::runtime_error);
}

// --- embedded continuation tasks ---------------------------------------
// then/async run through the task_node embedded in the result's shared
// state (no fn_task_node allocation, no continuation-vector slot). The
// mechanism is invisible to well-behaved code, so these tests hammer the
// paths where the embedding could misfire: source already ready (the
// task must submit immediately), many continuations racing one source
// (the intrusive list), deep chains (one embedded task per link,
// re-entrant readiness), and promise-driven sources becoming ready from
// another thread while continuations are still being attached.

TEST_F(FutureTest, ManyContinuationsOnOneSharedSource) {
    hpxlite::promise<int> p;
    auto sf = p.get_future().share();
    std::vector<hpxlite::future<int>> conts;
    conts.reserve(64);
    for (int i = 0; i < 64; ++i) {
        conts.push_back(sf.then(
            [i](hpxlite::shared_future<int> x) { return x.get() + i; }));
    }
    p.set_value(100);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(conts[static_cast<std::size_t>(i)].get(), 100 + i);
    }
}

TEST_F(FutureTest, ContinuationsAttachWhileSourceBecomesReady) {
    // Races add_continuation_task against set_value: every attached
    // continuation must run exactly once whether it was linked into the
    // pending list or submitted on the already-ready path.
    for (int round = 0; round < 20; ++round) {
        hpxlite::promise<int> p;
        auto sf = p.get_future().share();
        std::atomic<int> ran{0};
        std::thread setter([&p] { p.set_value(7); });
        std::vector<hpxlite::future<void>> conts;
        for (int i = 0; i < 16; ++i) {
            conts.push_back(sf.then([&ran](hpxlite::shared_future<int> x) {
                ran.fetch_add(x.get() == 7 ? 1 : 100);
            }));
        }
        setter.join();
        for (auto& c : conts) {
            c.get();
        }
        EXPECT_EQ(ran.load(), 16);
    }
}

TEST_F(FutureTest, DeepThenChainStartedUnready) {
    hpxlite::promise<int> p;
    auto f = p.get_future();
    for (int i = 0; i < 200; ++i) {
        f = f.then([](hpxlite::future<int>&& x) { return x.get() + 1; });
    }
    p.set_value(0);
    EXPECT_EQ(f.get(), 200);
}

TEST_F(FutureTest, ThenExceptionCrossesEmbeddedChain) {
    hpxlite::promise<int> p;
    auto f = p.get_future()
                 .then([](hpxlite::future<int>&& x) { return x.get(); })
                 .then([](hpxlite::future<int>&& x) { return x.get() * 2; });
    p.set_exception(std::make_exception_ptr(std::runtime_error("chain")));
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(FutureTest, AsyncStormAllRunOnce) {
    std::atomic<int> hits{0};
    std::vector<hpxlite::future<void>> fs;
    fs.reserve(256);
    for (int i = 0; i < 256; ++i) {
        fs.push_back(hpxlite::async(
            [&hits] { hits.fetch_add(1, std::memory_order_relaxed); }));
    }
    for (auto& f : fs) {
        f.get();
    }
    EXPECT_EQ(hits.load(), 256);
}

}  // namespace
