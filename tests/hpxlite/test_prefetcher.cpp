#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include <hpxlite/algorithms/for_each.hpp>
#include <hpxlite/prefetching/prefetcher.hpp>
#include <hpxlite/runtime.hpp>
#include <hpxlite/util/irange.hpp>

namespace {

namespace ex = hpxlite::execution;
using hpxlite::parallel::make_prefetcher_context;

class PrefetcherTest : public ::testing::Test {
protected:
    void SetUp() override { hpxlite::init(hpxlite::runtime_config{4}); }
    void TearDown() override { hpxlite::finalize(); }
};

TEST_F(PrefetcherTest, ContextSizeAndBounds) {
    std::vector<double> a(100);
    auto ctx = make_prefetcher_context(10, 60, 15, a);
    EXPECT_EQ(ctx.size(), 50u);
    EXPECT_EQ(*ctx.begin(), 10u);
    EXPECT_EQ(ctx.end() - ctx.begin(), 50);
}

TEST_F(PrefetcherTest, EmptyAndInvertedRange) {
    std::vector<double> a(10);
    auto ctx = make_prefetcher_context(5, 5, 15, a);
    EXPECT_EQ(ctx.size(), 0u);
    auto ctx2 = make_prefetcher_context(8, 3, 15, a);  // inverted clamps
    EXPECT_EQ(ctx2.size(), 0u);
}

TEST_F(PrefetcherTest, IteratorYieldsConsecutiveIndices) {
    std::vector<int> a(32);
    auto ctx = make_prefetcher_context(0, 32, 4, a);
    std::size_t expect = 0;
    for (auto it = ctx.begin(); it != ctx.end(); ++it, ++expect) {
        EXPECT_EQ(*it, expect);
    }
    EXPECT_EQ(expect, 32u);
}

TEST_F(PrefetcherTest, IteratorRandomAccessArithmetic) {
    std::vector<double> a(1000);
    auto ctx = make_prefetcher_context(100, 900, 15, a);
    auto it = ctx.begin();
    auto jt = it + 50;
    EXPECT_EQ(*jt, 150u);
    EXPECT_EQ(jt - it, 50);
    EXPECT_EQ(it[7], 107u);
    EXPECT_TRUE(it < jt);
    EXPECT_TRUE(jt > it);
    jt -= 50;
    EXPECT_TRUE(it == jt);
    auto kt = it++;
    EXPECT_EQ(*kt, 100u);
    EXPECT_EQ(*it, 101u);
    --it;
    EXPECT_EQ(*it, 100u);
}

TEST_F(PrefetcherTest, ForEachSeqOverContext) {
    std::vector<double> a(5000, 1.0);
    std::vector<double> b(5000, 2.0);
    auto ctx = make_prefetcher_context(0, a.size(), 15, a, b);
    hpxlite::parallel::for_each(ex::seq, ctx.begin(), ctx.end(),
                                [&](std::size_t i) { a[i] += b[i]; });
    for (double x : a) {
        ASSERT_DOUBLE_EQ(x, 3.0);
    }
}

TEST_F(PrefetcherTest, ForEachParOverContext) {
    std::vector<double> a(100'000, 1.0);
    std::vector<double> b(100'000, 5.0);
    auto ctx = make_prefetcher_context(0, a.size(), 15, a, b);
    hpxlite::parallel::for_each(ex::par, ctx.begin(), ctx.end(),
                                [&](std::size_t i) { a[i] = b[i] - a[i]; });
    for (double x : a) {
        ASSERT_DOUBLE_EQ(x, 4.0);
    }
}

TEST_F(PrefetcherTest, ForEachParTaskOverContext) {
    std::vector<int> a(10'000, 1);
    auto ctx = make_prefetcher_context(0, a.size(), 15, a);
    auto f = hpxlite::parallel::for_each(ex::par(ex::task), ctx.begin(),
                                         ctx.end(),
                                         [&](std::size_t i) { a[i] = 9; });
    f.get();
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 90'000);
}

TEST_F(PrefetcherTest, MixedElementTypes) {
    // Fig. 14: "it works with any data types even in a case of having
    // different type for each container".
    std::vector<double> a(4096, 1.0);
    std::vector<float> b(4096, 2.0F);
    std::vector<int> c(4096, 3);
    auto ctx = make_prefetcher_context(0, a.size(), 15, a, b, c);
    hpxlite::parallel::for_each(ex::par, ctx.begin(), ctx.end(),
                                [&](std::size_t i) {
                                    a[i] = static_cast<double>(b[i]) + c[i];
                                });
    for (double x : a) {
        ASSERT_DOUBLE_EQ(x, 5.0);
    }
}

TEST_F(PrefetcherTest, LookaheadNearEndOfContainerIsSafe) {
    // Prefetch targets beyond size() must be skipped, not dereferenced.
    std::vector<double> a(64, 1.0);
    auto ctx = make_prefetcher_context(0, a.size(), 1000, a);
    double sum = 0.0;
    hpxlite::parallel::for_each(ex::seq, ctx.begin(), ctx.end(),
                                [&](std::size_t i) { sum += a[i]; });
    EXPECT_DOUBLE_EQ(sum, 64.0);
}

TEST_F(PrefetcherTest, ZeroDistanceFactor) {
    std::vector<double> a(128, 2.0);
    auto ctx = make_prefetcher_context(0, a.size(), 0, a);
    double sum = 0.0;
    hpxlite::parallel::for_each(ex::seq, ctx.begin(), ctx.end(),
                                [&](std::size_t i) { sum += a[i]; });
    EXPECT_DOUBLE_EQ(sum, 256.0);
}

TEST_F(PrefetcherTest, ResultsIdenticalWithAndWithoutPrefetch) {
    std::vector<double> with(20'000);
    std::vector<double> without(20'000);
    std::iota(with.begin(), with.end(), 0.0);
    std::iota(without.begin(), without.end(), 0.0);

    auto ctx = make_prefetcher_context(0, with.size(), 15, with);
    hpxlite::parallel::for_each(ex::par, ctx.begin(), ctx.end(),
                                [&](std::size_t i) { with[i] = with[i] * 1.5; });
    hpxlite::util::irange r(0, without.size());
    hpxlite::parallel::for_each(ex::par, r.begin(), r.end(), [&](std::size_t i) {
        without[i] = without[i] * 1.5;
    });
    EXPECT_EQ(with, without);
}

}  // namespace
