#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include <hpxlite/algorithms/for_each.hpp>
#include <hpxlite/runtime.hpp>
#include <hpxlite/util/irange.hpp>

namespace {

namespace ex = hpxlite::execution;
using hpxlite::parallel::for_each;
using hpxlite::util::irange;

class ForEachTest : public ::testing::Test {
protected:
    void SetUp() override { hpxlite::init(hpxlite::runtime_config{4}); }
    void TearDown() override { hpxlite::finalize(); }
};

TEST_F(ForEachTest, SeqVisitsEveryElementInOrder) {
    std::vector<int> v(100, 0);
    std::vector<std::size_t> visit_order;
    irange r(0, v.size());
    auto last = for_each(ex::seq, r.begin(), r.end(), [&](std::size_t i) {
        v[i] = 1;
        visit_order.push_back(i);
    });
    EXPECT_EQ(*last, v.size());
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 100);
    EXPECT_TRUE(std::is_sorted(visit_order.begin(), visit_order.end()));
}

TEST_F(ForEachTest, ParVisitsEveryElementExactlyOnce) {
    std::vector<std::atomic<int>> counts(50'000);
    irange r(0, counts.size());
    for_each(ex::par, r.begin(), r.end(),
             [&](std::size_t i) { counts[i].fetch_add(1); });
    for (auto const& c : counts) {
        ASSERT_EQ(c.load(), 1);
    }
}

TEST_F(ForEachTest, ParOverContainerIterators) {
    std::vector<double> v(10'000, 2.0);
    for_each(ex::par, v.begin(), v.end(), [](double& x) { x *= 3.0; });
    for (double x : v) {
        ASSERT_DOUBLE_EQ(x, 6.0);
    }
}

TEST_F(ForEachTest, EmptyRangeIsNoop) {
    std::vector<int> v;
    int calls = 0;
    for_each(ex::par, v.begin(), v.end(), [&](int&) { ++calls; });
    for_each(ex::seq, v.begin(), v.end(), [&](int&) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST_F(ForEachTest, SingleElement) {
    std::vector<int> v{5};
    for_each(ex::par, v.begin(), v.end(), [](int& x) { x += 1; });
    EXPECT_EQ(v[0], 6);
}

TEST_F(ForEachTest, SeqTaskReturnsFuture) {
    std::vector<int> v(1000, 0);
    irange r(0, v.size());
    auto f = for_each(ex::seq(ex::task), r.begin(), r.end(),
                      [&](std::size_t i) { v[i] = 2; });
    EXPECT_EQ(*f.get(), v.size());
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 2000);
}

TEST_F(ForEachTest, ParTaskReturnsFuture) {
    std::vector<int> v(20'000, 0);
    irange r(0, v.size());
    auto f = for_each(ex::par(ex::task), r.begin(), r.end(),
                      [&](std::size_t i) { v[i] = 1; });
    f.get();
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 20'000);
}

TEST_F(ForEachTest, ParTaskExceptionPropagates) {
    irange r(0, 10'000);
    auto f = for_each(ex::par(ex::task), r.begin(), r.end(), [](std::size_t i) {
        if (i == 7777) {
            throw std::runtime_error("element failure");
        }
    });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(ForEachTest, ParSyncExceptionPropagates) {
    irange r(0, 10'000);
    EXPECT_THROW(for_each(ex::par, r.begin(), r.end(),
                          [](std::size_t i) {
                              if (i == 1234) {
                                  throw std::logic_error("x");
                              }
                          }),
                 std::logic_error);
}

// --- parameterised sweep: every chunker x several sizes ---------------

struct SweepParam {
    int chunker;  // 0 static, 1 static{37}, 2 dynamic, 3 auto, 4 persistent
    std::size_t n;
};

class ForEachSweep : public ::testing::TestWithParam<SweepParam> {
protected:
    void SetUp() override { hpxlite::init(hpxlite::runtime_config{4}); }
    void TearDown() override { hpxlite::finalize(); }

    static ex::chunker make_chunker(int which, ex::chunk_domain& dom) {
        switch (which) {
            case 0: return ex::static_chunk_size{};
            case 1: return ex::static_chunk_size{37};
            case 2: return ex::dynamic_chunk_size{64};
            case 3: return ex::auto_chunk_size{50'000};
            default: return ex::persistent_auto_chunk_size{&dom};
        }
    }
};

TEST_P(ForEachSweep, EveryElementVisitedExactlyOnce) {
    auto const p = GetParam();
    ex::chunk_domain dom;
    std::vector<std::atomic<int>> counts(p.n);
    irange r(0, p.n);
    auto pol = ex::par.with(ForEachSweep::make_chunker(p.chunker, dom));
    for_each(pol, r.begin(), r.end(),
             [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < p.n; ++i) {
        ASSERT_EQ(counts[i].load(), 1) << "index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllChunkersAllSizes, ForEachSweep,
    ::testing::ValuesIn([] {
        std::vector<SweepParam> ps;
        for (int c = 0; c < 5; ++c) {
            for (std::size_t n : {1ul, 7ul, 64ul, 1000ul, 32'768ul}) {
                ps.push_back({c, n});
            }
        }
        return ps;
    }()));

}  // namespace
